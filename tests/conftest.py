"""Shared fixtures.

Simulation fixtures are session-scoped: generating a workload and
running policies is the expensive part of the suite, and the tests only
read the results.
"""

from __future__ import annotations

import pytest

from repro.accounting.base import UsageRecord, pricing_for_node
from repro.accounting.methods import CarbonBasedAccounting, EnergyBasedAccounting
from repro.apps.registry import APP_REGISTRY
from repro.hardware.catalog import (
    CPU_EXPERIMENT_NODES,
    CPU_EXPERIMENT_YEAR,
    MachineCatalog,
    TABLE1_CARBON_INTENSITY,
)
from repro.sim.scenarios import (
    baseline_scenario,
    low_carbon_scenario,
    tiered_fleet_scenario,
)
from repro.sim.workload import (
    PatelWorkloadGenerator,
    StragglerConfig,
    WorkloadConfig,
    inject_stragglers,
)


@pytest.fixture(scope="session")
def catalog() -> MachineCatalog:
    return MachineCatalog()


@pytest.fixture(scope="session")
def table1_inputs():
    """(records, pricings) for the Table 1 Cholesky experiment."""
    profile = APP_REGISTRY["Cholesky"]
    records, pricings = {}, {}
    for node in CPU_EXPERIMENT_NODES:
        run = profile.run_on(node.name)
        records[node.name] = UsageRecord(
            machine=node.name,
            duration_s=run.runtime_s,
            energy_j=run.energy_j,
            cores=run.requested_cores,
            provisioned_cores=run.provisioned_cores,
        )
        pricings[node.name] = pricing_for_node(
            node, CPU_EXPERIMENT_YEAR, TABLE1_CARBON_INTENSITY[node.name]
        )
    return records, pricings


@pytest.fixture(scope="session")
def sim_machines():
    return baseline_scenario(days=20, seed=3)


@pytest.fixture(scope="session")
def low_carbon_machines():
    return low_carbon_scenario(days=20, seed=3)


@pytest.fixture(scope="session")
def small_workload(sim_machines):
    cfg = WorkloadConfig(n_base_jobs=400, n_users=60, seed=1)
    return PatelWorkloadGenerator(sim_machines, cfg).generate()


@pytest.fixture(scope="session")
def tiered_machines():
    return tiered_fleet_scenario(days=20, seed=3)


@pytest.fixture(scope="session")
def tiered_straggler_config():
    """Aggressive knobs so the straggler paths are well-exercised."""
    return StragglerConfig(frac=0.15, sigma=1.2, seed=1)


@pytest.fixture(scope="session")
def tiered_workload(tiered_machines, tiered_straggler_config):
    """A skewed-tier workload with stragglers and real contention.

    The two-day arrival window keeps the Large tier's slot cap binding
    for most of the run, so the cap/queue paths are genuinely hit.
    """
    cfg = WorkloadConfig(
        n_base_jobs=300,
        n_users=40,
        arrival_window_s=2 * 24 * 3600.0,
        seed=1,
    )
    wl = PatelWorkloadGenerator(tiered_machines, cfg).generate()
    return inject_stragglers(wl, tiered_straggler_config)


@pytest.fixture
def eba() -> EnergyBasedAccounting:
    return EnergyBasedAccounting()


@pytest.fixture
def cba() -> CarbonBasedAccounting:
    return CarbonBasedAccounting()
