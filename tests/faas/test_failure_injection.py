"""Failure injection: the monitor under degraded telemetry.

Real Kafka pipelines drop, delay, and truncate; the §4.1 monitor must
degrade gracefully rather than mis-bill.  These tests corrupt the
telemetry stream between endpoint and monitor and check the attribution
invariants that survive."""

import pytest

from repro.apps.registry import APP_REGISTRY
from repro.faas.bus import MessageBus
from repro.faas.endpoint import COUNTER_TOPIC, ENERGY_TOPIC, Endpoint, Invocation
from repro.faas.monitor import EndpointMonitor
from repro.hardware.catalog import ZEN3_NODE


def run_app(bus: MessageBus, app: str = "Pagerank") -> None:
    endpoint = Endpoint("Zen3", ZEN3_NODE, bus, seed=0)
    profile = APP_REGISTRY[app]
    endpoint.execute(
        Invocation(
            task_id="t1",
            function=app,
            profile=profile.runs["Zen3"],
            signature=profile.signature,
        )
    )


class _DroppingBus(MessageBus):
    """Drops a fraction of counter messages (never energy/task events)."""

    def __init__(self, drop_every: int) -> None:
        super().__init__()
        self.drop_every = drop_every
        self._counter = 0

    def publish(self, topic, key, value, timestamp=0.0):
        if topic == COUNTER_TOPIC:
            self._counter += 1
            if self._counter % self.drop_every == 0:
                return None  # lost in transit
        return super().publish(topic, key, value, timestamp)


class TestLostCounters:
    def test_attribution_survives_sparse_counter_loss(self):
        bus = _DroppingBus(drop_every=5)
        run_app(bus)
        report = EndpointMonitor(bus).finalize()["t1"]
        expect = APP_REGISTRY["Pagerank"].runs["Zen3"].energy_j
        # Intervals that lost their only counter sample are skipped, so
        # the estimate may undershoot — but never overshoot wildly and
        # never go negative.
        assert 0.0 <= report.energy_j <= expect * 1.3

    def test_total_counter_loss_attributes_nothing(self):
        bus = _DroppingBus(drop_every=1)  # every counter message lost
        run_app(bus)
        report = EndpointMonitor(bus).finalize()["t1"]
        assert report.energy_j == 0.0
        # Lifecycle events still give duration.
        assert report.duration_s > 0


class TestRetentionPressure:
    def test_monitor_on_bounded_bus_keeps_invariants(self):
        """With aggressive retention the monitor misses history but must
        not produce negative or absurd energies."""
        bus = MessageBus(max_retained=10)
        run_app(bus)
        report = EndpointMonitor(bus).finalize().get("t1")
        if report is not None:
            expect = APP_REGISTRY["Pagerank"].runs["Zen3"].energy_j
            assert 0.0 <= report.energy_j <= expect * 2.0


class TestEnergyGaps:
    def test_monitor_handles_missing_energy_reading(self):
        """Delete one energy reading: the two adjacent intervals merge
        into one larger delta; totals stay within tolerance because RAPL
        counters are cumulative."""
        bus = MessageBus()
        run_app(bus)
        # Remove a mid-stream energy record before any consumer polls.
        log = bus._topics[ENERGY_TOPIC]
        del log[len(log) // 2]
        report = EndpointMonitor(bus).finalize()["t1"]
        expect = APP_REGISTRY["Pagerank"].runs["Zen3"].energy_j
        assert report.energy_j == pytest.approx(expect, rel=0.3)

    def test_duplicate_energy_reading_harmless(self):
        """A duplicated (same-timestamp) reading yields a zero-length
        interval, which the monitor must skip, not divide by."""
        bus = MessageBus()
        run_app(bus)
        log = bus._topics[ENERGY_TOPIC]
        log.insert(len(log) // 2, log[len(log) // 2])
        report = EndpointMonitor(bus).finalize()["t1"]
        expect = APP_REGISTRY["Pagerank"].runs["Zen3"].energy_j
        assert report.energy_j == pytest.approx(expect, rel=0.15)


class TestMultiEndpointIsolation:
    def test_crossed_streams_stay_separate(self):
        """Two endpoints on one bus: each task's energy comes only from
        its own node's telemetry."""
        from repro.hardware.catalog import CASCADE_LAKE_NODE

        bus = MessageBus()
        zen = Endpoint("Zen3", ZEN3_NODE, bus, seed=0)
        cl = Endpoint("Cascade Lake", CASCADE_LAKE_NODE, bus, seed=1)
        zen.execute(
            Invocation(
                task_id="zen-task",
                function="Pagerank",
                profile=APP_REGISTRY["Pagerank"].runs["Zen3"],
                signature=APP_REGISTRY["Pagerank"].signature,
            )
        )
        cl.execute(
            Invocation(
                task_id="cl-task",
                function="MD",
                profile=APP_REGISTRY["MD"].runs["Cascade Lake"],
                signature=APP_REGISTRY["MD"].signature,
            )
        )
        reports = EndpointMonitor(bus).finalize()
        assert reports["zen-task"].endpoint == "Zen3"
        assert reports["cl-task"].endpoint == "Cascade Lake"
        assert reports["zen-task"].energy_j == pytest.approx(33.0, rel=0.15)
        assert reports["cl-task"].energy_j == pytest.approx(88.0, rel=0.15)
