"""GreenAccess frontend: registration, admission, charging, guidance."""

import pytest

from repro.accounting.base import pricing_for_node
from repro.accounting.methods import CarbonBasedAccounting, EnergyBasedAccounting
from repro.faas.platform import AdmissionError, GreenAccess
from repro.hardware.catalog import (
    CPU_EXPERIMENT_NODES,
    CPU_EXPERIMENT_YEAR,
    DESKTOP_NODE,
    TABLE1_CARBON_INTENSITY,
)


def make_platform(method=None) -> GreenAccess:
    platform = GreenAccess(method=method or EnergyBasedAccounting(), unit="J")
    for node in CPU_EXPERIMENT_NODES:
        platform.register_machine(
            node,
            pricing_for_node(
                node, CPU_EXPERIMENT_YEAR, TABLE1_CARBON_INTENSITY[node.name]
            ),
        )
    return platform


class TestRegistration:
    def test_machines_listed(self):
        assert make_platform().machines == [
            "Cascade Lake", "Desktop", "Ice Lake", "Zen3",
        ]

    def test_double_registration_rejected(self):
        platform = make_platform()
        with pytest.raises(ValueError, match="already registered"):
            platform.register_machine(
                DESKTOP_NODE,
                pricing_for_node(DESKTOP_NODE, CPU_EXPERIMENT_YEAR, 400.0),
            )

    def test_pricing_name_must_match(self):
        platform = GreenAccess()
        wrong = pricing_for_node(DESKTOP_NODE, CPU_EXPERIMENT_YEAR, 400.0)
        from dataclasses import replace

        with pytest.raises(ValueError, match="pricing is for"):
            platform.register_machine(DESKTOP_NODE, replace(wrong, name="Other"))


class TestSubmission:
    def test_placement_follows_cheapest_estimate(self):
        platform = make_platform()
        platform.grant("u", 1e5)
        estimates = platform.estimate_costs("Cholesky")
        receipt = platform.submit("u", "Cholesky")
        assert receipt.machine == min(estimates, key=estimates.__getitem__)

    def test_charge_debited_from_allocation(self):
        platform = make_platform()
        platform.grant("u", 1e5)
        receipt = platform.submit("u", "MD", machine="Desktop")
        assert receipt.balance_after == pytest.approx(1e5 - receipt.charged)
        assert platform.ledger.get("u").spent == pytest.approx(receipt.charged)

    def test_measured_energy_close_to_profile(self):
        platform = make_platform()
        platform.grant("u", 1e5)
        receipt = platform.submit("u", "Pagerank", machine="Zen3")
        assert receipt.measured_energy_j == pytest.approx(33.0, rel=0.1)

    def test_admission_control_blocks_poor_users(self):
        platform = make_platform()
        platform.grant("poor", 1.0)
        with pytest.raises(AdmissionError):
            platform.submit("poor", "MD")
        assert platform.ledger.get("poor").balance == 1.0

    def test_unknown_user(self):
        with pytest.raises(KeyError):
            make_platform().submit("ghost", "MD")

    def test_unknown_machine(self):
        platform = make_platform()
        platform.grant("u", 1e5)
        with pytest.raises(KeyError):
            platform.submit("u", "MD", machine="Frontier")

    def test_grant_tops_up(self):
        platform = make_platform()
        platform.grant("u", 10.0)
        platform.grant("u", 5.0)
        assert platform.ledger.get("u").balance == 15.0

    def test_receipts_accumulate(self):
        platform = make_platform()
        platform.grant("u", 1e5)
        platform.submit("u", "BFS", machine="Desktop")
        platform.submit("u", "MST", machine="Zen3")
        assert [r.function for r in platform.receipts] == ["BFS", "MST"]


class TestAccountingSwap:
    def test_cba_platform_charges_grams(self):
        platform = make_platform(method=CarbonBasedAccounting())
        platform.grant("u", 1e4)
        receipt = platform.submit("u", "Cholesky", machine="Desktop")
        # Table 4 scale: a few mg of CO2e.
        assert 1e-4 < receipt.charged < 1.0

    def test_methods_rank_machines_differently(self):
        eba_platform = make_platform(method=EnergyBasedAccounting())
        cba_platform = make_platform(method=CarbonBasedAccounting())
        eba_est = eba_platform.estimate_costs("Cholesky")
        cba_est = cba_platform.estimate_costs("Cholesky")
        assert set(eba_est) == set(cba_est)


class TestRealExecution:
    def test_real_kernel_runs_and_charges(self):
        platform = GreenAccess(real_execution=True)
        node = CPU_EXPERIMENT_NODES[0]
        platform.register_machine(
            node, pricing_for_node(node, CPU_EXPERIMENT_YEAR, 400.0)
        )
        platform.grant("u", 1e9)
        receipt = platform.submit("u", "MatMul", machine=node.name, cores=4)
        assert receipt.duration_s > 0
        assert receipt.charged > 0
