"""Deferred settlement vs immediate debit: bit-identical, with exact
admission control, across all five accounting methods."""

import pytest

from repro.accounting.base import pricing_for_node
from repro.accounting.methods import all_methods
from repro.faas.platform import AdmissionError, GreenAccess
from repro.hardware.catalog import (
    CPU_EXPERIMENT_NODES,
    CPU_EXPERIMENT_YEAR,
    TABLE1_CARBON_INTENSITY,
)

FUNCTIONS = ("Cholesky", "Pagerank", "BFS", "MatMul", "MST") * 3


def make_platform(method, batched):
    platform = GreenAccess(method=method, unit="u", batched=batched)
    for node in CPU_EXPERIMENT_NODES:
        platform.register_machine(
            node,
            pricing_for_node(
                node, CPU_EXPERIMENT_YEAR, TABLE1_CARBON_INTENSITY[node.name]
            ),
        )
    return platform


def run_submissions(platform):
    """Submit the scripted workload; returns refused submission indices."""
    platform.grant("rich", 1e6)
    platform.grant("tight", 2.0)
    refused = []
    for i, function in enumerate(FUNCTIONS):
        try:
            platform.submit_deferred("rich", function)
        except AdmissionError:
            refused.append(("rich", i))
        try:
            platform.submit_deferred("tight", function)
        except AdmissionError:
            refused.append(("tight", i))
    return refused


class TestBitEquality:
    @pytest.mark.parametrize("method", all_methods(), ids=lambda m: m.name)
    def test_deferred_matches_immediate(self, method):
        immediate = make_platform(method, batched=False)
        deferred = make_platform(method, batched=True)
        refused_immediate = run_submissions(immediate)
        refused_deferred = run_submissions(deferred)
        deferred.settle()

        assert refused_deferred == refused_immediate
        by_task_imm = {r.task_id: r for r in immediate.receipts}
        by_task_def = {r.task_id: r for r in deferred.receipts}
        assert set(by_task_imm) == set(by_task_def)
        for task_id, reference in by_task_imm.items():
            settled = by_task_def[task_id]
            assert settled.charged == reference.charged
            assert settled.balance_after == reference.balance_after
            assert settled.measured_energy_j == reference.measured_energy_j
            assert settled.machine == reference.machine
            assert settled.estimated_cost == reference.estimated_cost
        for user in ("rich", "tight"):
            assert (
                deferred.ledger.get(user).balance
                == immediate.ledger.get(user).balance
            )

    def test_transactions_replay_in_submission_order(self):
        method = all_methods()[3]  # EBA
        immediate = make_platform(method, batched=False)
        deferred = make_platform(method, batched=True)
        run_submissions(immediate)
        run_submissions(deferred)
        deferred.settle()
        for user in ("rich", "tight"):
            txns_imm = immediate.ledger.get(user).transactions
            txns_def = deferred.ledger.get(user).transactions
            assert [(t.amount, t.balance_after, t.job_id) for t in txns_imm] == [
                (t.amount, t.balance_after, t.job_id) for t in txns_def
            ]


class TestDeferralMechanics:
    def test_charges_stay_pending_until_settle(self):
        platform = make_platform(all_methods()[3], batched=True)
        platform.grant("u", 1e6)
        platform.submit_deferred("u", "Cholesky")
        platform.submit_deferred("u", "Pagerank")
        assert platform.pending_settlements == 2
        assert platform.ledger.get("u").balance == 1e6  # nothing debited yet
        receipts = platform.settle("u")
        assert [r.function for r in receipts] == ["Cholesky", "Pagerank"]
        assert platform.pending_settlements == 0
        assert platform.ledger.get("u").balance < 1e6

    def test_low_balance_forces_settlement_before_admission(self):
        """When the optimistic bound cannot prove affordability the queue
        settles, and the admission decision uses the exact balance.

        Needs a method whose bound is strictly looser than its charge:
        CBA on a *varying* intensity trace (the bound prices at the
        trace maximum, execution happens at a cheaper hour).  For EBA
        and the flat Table-1 traces the bound is tight, so optimistic
        failure and exact refusal coincide and this path never runs.
        """
        import numpy as np

        from repro.accounting.methods import CarbonBasedAccounting
        from repro.carbon.intensity import CarbonIntensityTrace

        trace = CarbonIntensityTrace(
            "vary", np.concatenate(([50.0], np.full(23, 900.0)))
        )
        platform = GreenAccess(method=CarbonBasedAccounting(), batched=True)
        node = CPU_EXPERIMENT_NODES[0]
        platform.register_machine(
            node, pricing_for_node(node, CPU_EXPERIMENT_YEAR, trace)
        )
        # Learn the actual charge from an immediate reference platform.
        probe = GreenAccess(method=CarbonBasedAccounting(), batched=False)
        probe.register_machine(
            node, pricing_for_node(node, CPU_EXPERIMENT_YEAR, trace)
        )
        probe.grant("u", 1e9)
        reference = probe.submit("u", "MD", machine=node.name)

        platform.grant("u", reference.estimated_cost + reference.charged * 1.01)
        platform.submit_deferred("u", "MD", machine=node.name)
        assert platform.pending_settlements == 1
        bound = platform._pending["u"].queue.pending_bound
        assert bound > reference.charged  # the trace max makes it loose
        # The second submission's estimate + pending bound exceeds the
        # balance, so the first must settle before the check — and the
        # exact balance then admits it.
        platform.submit_deferred("u", "MD", machine=node.name)
        assert platform.pending_settlements == 1  # first settled, second queued
        assert len(platform.receipts) == 1
        assert platform.receipts[0].charged == reference.charged

    def test_admission_error_leaves_queue_settled_and_balance_intact(self):
        platform = make_platform(all_methods()[3], batched=True)
        platform.grant("u", 5.0)
        with pytest.raises(AdmissionError):
            platform.submit_deferred("u", "MD")
        assert platform.pending_settlements == 0
        assert platform.ledger.get("u").balance == 5.0

    def test_immediate_submit_settles_users_pending_first(self):
        platform = make_platform(all_methods()[3], batched=True)
        platform.grant("u", 1e6)
        platform.submit_deferred("u", "Cholesky")
        receipt = platform.submit("u", "Pagerank")
        # The deferred Cholesky receipt must have been settled (and
        # therefore appended) before the immediate Pagerank one.
        assert [r.function for r in platform.receipts] == ["Cholesky", "Pagerank"]
        assert platform.pending_settlements == 0
        assert receipt.balance_after == platform.ledger.get("u").balance

    def test_unbatched_submit_deferred_is_immediate(self):
        platform = make_platform(all_methods()[3], batched=False)
        platform.grant("u", 1e6)
        task_id = platform.submit_deferred("u", "Cholesky")
        assert platform.pending_settlements == 0
        assert platform.receipts[0].task_id == task_id
        assert platform.settle() == []

    def test_settle_unknown_user_is_noop(self):
        platform = make_platform(all_methods()[3], batched=True)
        assert platform.settle("ghost") == []

    def test_machine_registered_after_first_deferral_still_prices(self):
        """The settlement queue must see the live machine catalogue,
        not a snapshot taken at the user's first deferred submission."""
        platform = GreenAccess(method=all_methods()[3], batched=True)
        first, second = CPU_EXPERIMENT_NODES[:2]
        platform.register_machine(
            first, pricing_for_node(first, CPU_EXPERIMENT_YEAR, 400.0)
        )
        platform.grant("u", 1e7)
        platform.submit_deferred("u", "Cholesky", machine=first.name)
        platform.register_machine(
            second, pricing_for_node(second, CPU_EXPERIMENT_YEAR, 400.0)
        )
        platform.submit_deferred("u", "Cholesky", machine=second.name)
        receipts = platform.settle("u")
        assert [r.machine for r in receipts] == [first.name, second.name]
        assert all(r.charged > 0 for r in receipts)

    def test_overdraft_at_settlement_keeps_unredeemed_entries(self):
        """A measured charge overdrawing the balance mid-settlement must
        not lose receipts of debited entries nor drop later charges."""
        from repro.accounting.allocation import AllocationExhausted

        platform = make_platform(all_methods()[3], batched=True)
        probe = make_platform(all_methods()[3], batched=False)
        probe.grant("u", 1e9)
        charge = probe.submit("u", "MD", machine="Desktop").charged
        # Covers the first measured charge (and each estimate) but not
        # both; estimates are below the measured charge for this app, so
        # both submissions pass admission optimistically.
        estimate = probe.receipts[0].estimated_cost
        assert estimate < charge
        platform.grant("u", charge + estimate + (charge - estimate) / 2)
        platform.submit_deferred("u", "MD", machine="Desktop")
        platform.submit_deferred("u", "MD", machine="Desktop")
        assert platform.pending_settlements == 2
        with pytest.raises(AllocationExhausted):
            platform.settle("u")
        # First entry debited and receipted; second re-queued, not lost.
        assert len(platform.receipts) == 1
        assert platform.receipts[0].charged == charge
        assert platform.pending_settlements == 1
        platform.grant("u", charge)
        receipts = platform.settle("u")
        # The second invocation's measured energy differs slightly (the
        # monitor's power-model fit evolves), hence approx.
        assert len(receipts) == 1
        assert receipts[0].charged == pytest.approx(charge, rel=0.01)
