"""Message bus: offsets, consumer groups, retention."""

import pytest
from hypothesis import given, strategies as st

from repro.faas.bus import MessageBus


class TestPublishPoll:
    def test_poll_returns_new_messages_once(self):
        bus = MessageBus()
        bus.publish("t", "k", {"v": 1})
        bus.publish("t", "k", {"v": 2})
        first = bus.poll("t", "g")
        assert [m.value["v"] for m in first] == [1, 2]
        assert bus.poll("t", "g") == []

    def test_offsets_monotone(self):
        bus = MessageBus()
        offsets = [bus.publish("t", "k", {}).offset for _ in range(5)]
        assert offsets == list(range(5))

    def test_groups_are_independent(self):
        bus = MessageBus()
        bus.publish("t", "k", {"v": 1})
        assert len(bus.poll("t", "g1")) == 1
        assert len(bus.poll("t", "g2")) == 1

    def test_topics_are_independent(self):
        bus = MessageBus()
        bus.publish("a", "k", {})
        bus.publish("b", "k", {})
        assert len(bus.poll("a", "g")) == 1
        assert len(bus.poll("b", "g")) == 1

    def test_max_messages_limits_batch(self):
        bus = MessageBus()
        for i in range(10):
            bus.publish("t", "k", {"i": i})
        batch = bus.poll("t", "g", max_messages=3)
        assert [m.value["i"] for m in batch] == [0, 1, 2]
        rest = bus.poll("t", "g")
        assert [m.value["i"] for m in rest] == list(range(3, 10))

    def test_value_copied_defensively(self):
        bus = MessageBus()
        payload = {"v": 1}
        bus.publish("t", "k", payload)
        payload["v"] = 999
        assert bus.poll("t", "g")[0].value["v"] == 1

    def test_lag(self):
        bus = MessageBus()
        for _ in range(4):
            bus.publish("t", "k", {})
        assert bus.lag("t", "g") == 4
        bus.poll("t", "g", max_messages=1)
        assert bus.lag("t", "g") == 3

    def test_empty_topic_poll(self):
        assert MessageBus().poll("ghost", "g") == []


class TestRetention:
    def test_old_records_dropped(self):
        bus = MessageBus(max_retained=3)
        for i in range(10):
            bus.publish("t", "k", {"i": i})
        values = [m.value["i"] for m in bus.iter_all("t")]
        assert values == [7, 8, 9]

    def test_lagging_consumer_resumes_at_head(self):
        bus = MessageBus(max_retained=2)
        bus.publish("t", "k", {"i": 0})
        bus.poll("t", "g", max_messages=1)
        for i in range(1, 6):
            bus.publish("t", "k", {"i": i})
        values = [m.value["i"] for m in bus.poll("t", "g")]
        assert values == [4, 5]

    def test_rejects_bad_retention(self):
        with pytest.raises(ValueError):
            MessageBus(max_retained=0)


@given(st.lists(st.integers(min_value=1, max_value=5), max_size=20))
def test_all_messages_delivered_exactly_once(batch_sizes):
    bus = MessageBus()
    for i in range(30):
        bus.publish("t", "k", {"i": i})
    seen = []
    for size in batch_sizes:
        seen.extend(m.value["i"] for m in bus.poll("t", "g", max_messages=size))
    seen.extend(m.value["i"] for m in bus.poll("t", "g"))
    assert seen == list(range(30))
