"""Endpoint telemetry -> monitor attribution, the §4.1 pipeline."""

import pytest

from repro.apps.registry import APP_REGISTRY
from repro.faas.bus import MessageBus
from repro.faas.endpoint import ENERGY_TOPIC, Endpoint, Invocation
from repro.faas.monitor import EndpointMonitor
from repro.hardware.catalog import CASCADE_LAKE_NODE, ZEN3_NODE


def profiled_invocation(task_id: str, app: str, machine: str) -> Invocation:
    profile = APP_REGISTRY[app]
    return Invocation(
        task_id=task_id,
        function=app,
        profile=profile.runs[machine],
        signature=profile.signature,
    )


@pytest.fixture
def setup():
    bus = MessageBus()
    endpoint = Endpoint("Zen3", ZEN3_NODE, bus, seed=0)
    monitor = EndpointMonitor(bus)
    return bus, endpoint, monitor


class TestEndpoint:
    def test_profiled_duration(self, setup):
        _, endpoint, _ = setup
        inv = profiled_invocation("t1", "Cholesky", "Zen3")
        result = endpoint.execute(inv)
        assert result.duration_s == pytest.approx(5.65)
        assert result.provisioned_cores == 7

    def test_real_execution_measures_wall_clock(self, setup):
        _, endpoint, _ = setup
        inv = Invocation(task_id="t1", function="f", callable=lambda: sum(range(1000)))
        result = endpoint.execute(inv)
        assert result.duration_s > 0
        assert result.return_value == 499500

    def test_invocation_requires_work(self):
        with pytest.raises(ValueError):
            Invocation(task_id="t", function="f")

    def test_batch_capacity_enforced(self, setup):
        _, endpoint, _ = setup
        too_many = [
            Invocation(task_id=f"t{i}", function="f", cores=64, callable=lambda: 1)
            for i in range(3)
        ]
        with pytest.raises(ValueError, match="cores"):
            endpoint.run_batch(too_many)

    def test_telemetry_published(self, setup):
        bus, endpoint, _ = setup
        endpoint.execute(profiled_invocation("t1", "MD", "Zen3"))
        energies = list(bus.iter_all(ENERGY_TOPIC))
        assert len(energies) > 3
        raws = [m.value["package_raw"] for m in energies]
        # Monotone within no-wrap runs.
        assert all(b >= a for a, b in zip(raws, raws[1:]))

    def test_idle_advance_moves_clock(self, setup):
        _, endpoint, _ = setup
        endpoint.idle_advance(5.0)
        assert endpoint.now == pytest.approx(5.0)

    def test_idle_advance_rejects_negative(self, setup):
        _, endpoint, _ = setup
        with pytest.raises(ValueError):
            endpoint.idle_advance(-1.0)


class TestMonitorAttribution:
    @pytest.mark.parametrize(
        "app,machine,node",
        [
            ("Cholesky", "Zen3", ZEN3_NODE),
            ("Pagerank", "Zen3", ZEN3_NODE),
            ("MD", "Cascade Lake", CASCADE_LAKE_NODE),
        ],
    )
    def test_recovers_profile_energy(self, app, machine, node):
        """End-to-end: attributed energy within 10% of the profile."""
        bus = MessageBus()
        endpoint = Endpoint(machine, node, bus, seed=0)
        monitor = EndpointMonitor(bus)
        profile = APP_REGISTRY[app].runs[machine]
        endpoint.execute(profiled_invocation("t1", app, machine))
        report = monitor.finalize()["t1"]
        assert report.energy_j == pytest.approx(profile.energy_j, rel=0.10)

    def test_concurrent_tasks_disaggregated(self, setup):
        """Two concurrent tasks on one node split the node energy in
        proportion to their activity."""
        bus, endpoint, monitor = setup
        light = profiled_invocation("light", "Cholesky", "Zen3")  # ~3 W
        heavy = profiled_invocation("heavy", "MD", "Zen3")  # ~8.8 W
        endpoint.run_batch([light, heavy])
        reports = monitor.finalize()
        expect_light = APP_REGISTRY["Cholesky"].runs["Zen3"].energy_j
        expect_heavy = APP_REGISTRY["MD"].runs["Zen3"].energy_j
        assert reports["light"].energy_j == pytest.approx(expect_light, rel=0.25)
        assert reports["heavy"].energy_j == pytest.approx(expect_heavy, rel=0.25)

    def test_power_model_learned(self, setup):
        bus, endpoint, monitor = setup
        endpoint.execute(profiled_invocation("t1", "MD", "Zen3"))
        monitor.finalize()
        model = monitor.model_for("Zen3")
        assert model is not None
        # Idle intercept close to the node's true idle power.
        assert model.idle_watts == pytest.approx(
            ZEN3_NODE.idle_power_watts, rel=0.1
        )

    def test_task_lifecycle_tracked(self, setup):
        bus, endpoint, monitor = setup
        endpoint.execute(profiled_invocation("t1", "BFS", "Zen3"))
        report = monitor.finalize()["t1"]
        assert report.duration_s == pytest.approx(
            APP_REGISTRY["BFS"].runs["Zen3"].runtime_s, abs=1.5
        )
        assert report.endpoint == "Zen3"

    def test_pid_reuse_does_not_bill_finished_task(self):
        """A recycled pid must stop attributing energy to the finished
        task once its final interval is flushed (regression: the
        (endpoint, pid) -> task mapping was never cleared on "end")."""
        bus = MessageBus()
        monitor = EndpointMonitor(bus, min_fit_observations=3)
        ep = "EP"

        def counters(pid, t, scale=1.0):
            bus.publish(
                "telemetry.counters",
                ep,
                {"pid": pid, "instructions_per_sec": 1e9 * scale,
                 "llc_misses_per_sec": 1e6 * scale * scale, "cores": 4},
                timestamp=t,
            )

        def energy(raw, t):
            bus.publish(
                "telemetry.energy",
                ep,
                {"package_raw": raw, "energy_unit_j": 1.0, "total_cores": 8},
                timestamp=t,
            )

        bus.publish(
            "telemetry.tasks",
            ep,
            {"event": "start", "pid": 5, "task_id": "A", "user": "u", "cores": 4},
            timestamp=0.0,
        )
        energy(0, 0.0)
        for step in range(1, 6):
            counters(5, float(step), scale=float(step))
            energy(step * step * 100, float(step))
        bus.publish(
            "telemetry.tasks",
            ep,
            {"event": "end", "pid": 5},
            timestamp=5.0,
        )
        monitor.process()
        billed = monitor._reports["A"].energy_j
        assert billed > 0
        # The pid comes back (no new task): later intervals must not
        # grow the finished task's energy.
        for step in range(6, 10):
            counters(5, float(step), scale=float(step))
            energy(step * step * 100, float(step))
        reports = monitor.finalize()
        assert reports["A"].energy_j == billed
        assert reports["A"].end_s == pytest.approx(5.0)

    def test_pid_reuse_by_new_task_attributes_to_new_task(self):
        """A start event on a recycled pid supersedes the retirement of
        the previous owner's mapping."""
        bus = MessageBus()
        monitor = EndpointMonitor(bus, min_fit_observations=3)
        ep = "EP"
        bus.publish(
            "telemetry.tasks", ep,
            {"event": "start", "pid": 5, "task_id": "A", "cores": 4},
            timestamp=0.0,
        )
        bus.publish(
            "telemetry.energy", ep,
            {"package_raw": 0, "energy_unit_j": 1.0, "total_cores": 8},
            timestamp=0.0,
        )
        for step in range(1, 5):
            bus.publish(
                "telemetry.counters", ep,
                {"pid": 5, "instructions_per_sec": 1e9 * step,
                 "llc_misses_per_sec": 1e6 * step * step, "cores": 4},
                timestamp=float(step),
            )
            bus.publish(
                "telemetry.energy", ep,
                {"package_raw": step * step * 100, "energy_unit_j": 1.0,
                 "total_cores": 8},
                timestamp=float(step),
            )
        bus.publish(
            "telemetry.tasks", ep, {"event": "end", "pid": 5}, timestamp=4.0
        )
        bus.publish(
            "telemetry.tasks", ep,
            {"event": "start", "pid": 5, "task_id": "B", "cores": 4},
            timestamp=5.0,
        )
        for step in range(5, 9):
            bus.publish(
                "telemetry.counters", ep,
                {"pid": 5, "instructions_per_sec": 1e9 * (step + 1),
                 "llc_misses_per_sec": 1e6 * (step + 1) ** 2, "cores": 4},
                timestamp=float(step + 1),
            )
            bus.publish(
                "telemetry.energy", ep,
                {"package_raw": (step + 1) ** 2 * 100, "energy_unit_j": 1.0,
                 "total_cores": 8},
                timestamp=float(step + 1),
            )
        reports = monitor.finalize()
        assert reports["B"].energy_j > 0

    def test_fallback_fitted_model_is_stored(self):
        """finalize() with fewer than min_fit_observations but >= 3 fits
        a fallback model for attribution; model_for() must report it
        (regression: it was used but never stored)."""
        bus = MessageBus()
        monitor = EndpointMonitor(bus, min_fit_observations=100)
        ep = "EP"
        bus.publish(
            "telemetry.energy", ep,
            {"package_raw": 0, "energy_unit_j": 1.0, "total_cores": 8},
            timestamp=0.0,
        )
        for step in range(1, 6):
            bus.publish(
                "telemetry.counters", ep,
                {"pid": 5, "instructions_per_sec": 1e9 * step,
                 "llc_misses_per_sec": 1e6, "cores": 4},
                timestamp=float(step),
            )
            bus.publish(
                "telemetry.energy", ep,
                {"package_raw": step * 100 + step * step * 10,
                 "energy_unit_j": 1.0, "total_cores": 8},
                timestamp=float(step),
            )
        assert monitor.model_for(ep) is None
        monitor.finalize()
        assert monitor.model_for(ep) is not None

    def test_bootstrap_model_not_stored(self):
        """With < 3 observations the zero-idle bootstrap is used for
        attribution but is not a fit worth reporting."""
        bus = MessageBus()
        monitor = EndpointMonitor(bus, min_fit_observations=100)
        ep = "EP"
        bus.publish(
            "telemetry.energy", ep,
            {"package_raw": 0, "energy_unit_j": 1.0, "total_cores": 8},
            timestamp=0.0,
        )
        bus.publish(
            "telemetry.counters", ep,
            {"pid": 5, "instructions_per_sec": 1e9,
             "llc_misses_per_sec": 1e6, "cores": 4},
            timestamp=1.0,
        )
        bus.publish(
            "telemetry.energy", ep,
            {"package_raw": 100, "energy_unit_j": 1.0, "total_cores": 8},
            timestamp=1.0,
        )
        monitor.finalize()
        assert monitor.model_for(ep) is None

    def test_incremental_processing_matches_finalize(self):
        """Polling the monitor during execution must not change totals."""
        bus = MessageBus()
        endpoint = Endpoint("Zen3", ZEN3_NODE, bus, seed=0)
        eager = EndpointMonitor(bus, group="eager")
        endpoint.execute(profiled_invocation("t1", "Pagerank", "Zen3"))
        eager.process()
        endpoint.execute(profiled_invocation("t2", "Pagerank", "Zen3"))
        eager_reports = eager.finalize()

        lazy = EndpointMonitor(bus, group="lazy")
        lazy_reports = lazy.finalize()
        assert eager_reports["t2"].energy_j == pytest.approx(
            lazy_reports["t2"].energy_j, rel=0.05
        )
