"""Endpoint telemetry -> monitor attribution, the §4.1 pipeline."""

import numpy as np
import pytest

from repro.apps.registry import APP_REGISTRY
from repro.faas.bus import MessageBus
from repro.faas.endpoint import ENERGY_TOPIC, Endpoint, Invocation
from repro.faas.monitor import EndpointMonitor
from repro.hardware.catalog import CASCADE_LAKE_NODE, ZEN3_NODE


def profiled_invocation(task_id: str, app: str, machine: str) -> Invocation:
    profile = APP_REGISTRY[app]
    return Invocation(
        task_id=task_id,
        function=app,
        profile=profile.runs[machine],
        signature=profile.signature,
    )


@pytest.fixture
def setup():
    bus = MessageBus()
    endpoint = Endpoint("Zen3", ZEN3_NODE, bus, seed=0)
    monitor = EndpointMonitor(bus)
    return bus, endpoint, monitor


class TestEndpoint:
    def test_profiled_duration(self, setup):
        _, endpoint, _ = setup
        inv = profiled_invocation("t1", "Cholesky", "Zen3")
        result = endpoint.execute(inv)
        assert result.duration_s == pytest.approx(5.65)
        assert result.provisioned_cores == 7

    def test_real_execution_measures_wall_clock(self, setup):
        _, endpoint, _ = setup
        inv = Invocation(task_id="t1", function="f", callable=lambda: sum(range(1000)))
        result = endpoint.execute(inv)
        assert result.duration_s > 0
        assert result.return_value == 499500

    def test_invocation_requires_work(self):
        with pytest.raises(ValueError):
            Invocation(task_id="t", function="f")

    def test_batch_capacity_enforced(self, setup):
        _, endpoint, _ = setup
        too_many = [
            Invocation(task_id=f"t{i}", function="f", cores=64, callable=lambda: 1)
            for i in range(3)
        ]
        with pytest.raises(ValueError, match="cores"):
            endpoint.run_batch(too_many)

    def test_telemetry_published(self, setup):
        bus, endpoint, _ = setup
        endpoint.execute(profiled_invocation("t1", "MD", "Zen3"))
        energies = list(bus.iter_all(ENERGY_TOPIC))
        assert len(energies) > 3
        raws = [m.value["package_raw"] for m in energies]
        # Monotone within no-wrap runs.
        assert all(b >= a for a, b in zip(raws, raws[1:]))

    def test_idle_advance_moves_clock(self, setup):
        _, endpoint, _ = setup
        endpoint.idle_advance(5.0)
        assert endpoint.now == pytest.approx(5.0)

    def test_idle_advance_rejects_negative(self, setup):
        _, endpoint, _ = setup
        with pytest.raises(ValueError):
            endpoint.idle_advance(-1.0)


class TestMonitorAttribution:
    @pytest.mark.parametrize(
        "app,machine,node",
        [
            ("Cholesky", "Zen3", ZEN3_NODE),
            ("Pagerank", "Zen3", ZEN3_NODE),
            ("MD", "Cascade Lake", CASCADE_LAKE_NODE),
        ],
    )
    def test_recovers_profile_energy(self, app, machine, node):
        """End-to-end: attributed energy within 10% of the profile."""
        bus = MessageBus()
        endpoint = Endpoint(machine, node, bus, seed=0)
        monitor = EndpointMonitor(bus)
        profile = APP_REGISTRY[app].runs[machine]
        endpoint.execute(profiled_invocation("t1", app, machine))
        report = monitor.finalize()["t1"]
        assert report.energy_j == pytest.approx(profile.energy_j, rel=0.10)

    def test_concurrent_tasks_disaggregated(self, setup):
        """Two concurrent tasks on one node split the node energy in
        proportion to their activity."""
        bus, endpoint, monitor = setup
        light = profiled_invocation("light", "Cholesky", "Zen3")  # ~3 W
        heavy = profiled_invocation("heavy", "MD", "Zen3")  # ~8.8 W
        endpoint.run_batch([light, heavy])
        reports = monitor.finalize()
        expect_light = APP_REGISTRY["Cholesky"].runs["Zen3"].energy_j
        expect_heavy = APP_REGISTRY["MD"].runs["Zen3"].energy_j
        assert reports["light"].energy_j == pytest.approx(expect_light, rel=0.25)
        assert reports["heavy"].energy_j == pytest.approx(expect_heavy, rel=0.25)

    def test_power_model_learned(self, setup):
        bus, endpoint, monitor = setup
        endpoint.execute(profiled_invocation("t1", "MD", "Zen3"))
        monitor.finalize()
        model = monitor.model_for("Zen3")
        assert model is not None
        # Idle intercept close to the node's true idle power.
        assert model.idle_watts == pytest.approx(
            ZEN3_NODE.idle_power_watts, rel=0.1
        )

    def test_task_lifecycle_tracked(self, setup):
        bus, endpoint, monitor = setup
        endpoint.execute(profiled_invocation("t1", "BFS", "Zen3"))
        report = monitor.finalize()["t1"]
        assert report.duration_s == pytest.approx(
            APP_REGISTRY["BFS"].runs["Zen3"].runtime_s, abs=1.5
        )
        assert report.endpoint == "Zen3"

    def test_incremental_processing_matches_finalize(self):
        """Polling the monitor during execution must not change totals."""
        bus = MessageBus()
        endpoint = Endpoint("Zen3", ZEN3_NODE, bus, seed=0)
        eager = EndpointMonitor(bus, group="eager")
        endpoint.execute(profiled_invocation("t1", "Pagerank", "Zen3"))
        eager.process()
        endpoint.execute(profiled_invocation("t2", "Pagerank", "Zen3"))
        eager_reports = eager.finalize()

        lazy = EndpointMonitor(bus, group="lazy")
        lazy_reports = lazy.finalize()
        assert eager_reports["t2"].energy_j == pytest.approx(
            lazy_reports["t2"].energy_j, rel=0.05
        )
