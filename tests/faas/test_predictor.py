"""The prediction endpoint: estimates and cost quotes."""

import pytest

from repro.accounting.base import pricing_for_node
from repro.accounting.methods import EnergyBasedAccounting, RuntimeAccounting
from repro.apps.registry import APP_REGISTRY
from repro.faas.predictor import PredictionService
from repro.hardware.catalog import (
    CPU_EXPERIMENT_NODES,
    CPU_EXPERIMENT_YEAR,
    TABLE1_CARBON_INTENSITY,
)
from repro.hardware.counters import BALANCED, COMPUTE_BOUND, WorkloadSignature


@pytest.fixture(scope="module")
def service():
    return PredictionService()


@pytest.fixture(scope="module")
def pricings():
    return {
        node.name: pricing_for_node(
            node, CPU_EXPERIMENT_YEAR, TABLE1_CARBON_INTENSITY[node.name]
        )
        for node in CPU_EXPERIMENT_NODES
    }


class TestPredictions:
    def test_knows_all_four_machines(self, service):
        assert set(service.machines) == {
            "Desktop", "Cascade Lake", "Ice Lake", "Zen3",
        }

    def test_training_app_roundtrips_with_k1(self):
        """With k=1, predicting a training app's own signature returns
        its profile exactly (the exact-match path of the KNN)."""
        k1 = PredictionService(k=1)
        # "DNA Viz." is the only app with the BALANCED signature, so its
        # feature vector is unique in the training corpus.
        profile = APP_REGISTRY["DNA Viz."]
        pred = k1.predict(profile.signature, "Zen3")
        run = profile.runs["Zen3"]
        assert pred.runtime_s == pytest.approx(run.runtime_s, rel=1e-6)
        assert pred.energy_j == pytest.approx(run.energy_j, rel=1e-6)

    def test_unknown_machine(self, service):
        with pytest.raises(KeyError):
            service.predict(BALANCED, "Summit")

    def test_predict_all_covers_machines(self, service):
        preds = service.predict_all(BALANCED)
        assert set(preds) == set(service.machines)
        assert all(p.runtime_s > 0 and p.energy_j >= 0 for p in preds.values())

    def test_mean_power_property(self, service):
        pred = service.predict(COMPUTE_BOUND, "Desktop")
        assert pred.mean_power_w == pytest.approx(pred.energy_j / pred.runtime_s)


class TestQuotes:
    def test_quote_has_every_machine(self, service, pricings):
        quotes = service.quote(BALANCED, EnergyBasedAccounting(), pricings)
        assert set(quotes) == set(pricings)
        assert all(q > 0 for q in quotes.values())

    def test_cheapest_consistent_with_quotes(self, service, pricings):
        method = EnergyBasedAccounting()
        quotes = service.quote(BALANCED, method, pricings)
        assert service.cheapest(BALANCED, method, pricings) == min(
            quotes, key=quotes.__getitem__
        )

    def test_methods_can_disagree(self, service, pricings):
        """Runtime and EBA quotes need not pick the same machine — the
        whole point of impact-based accounting."""
        runtime_choice = service.cheapest(BALANCED, RuntimeAccounting(), pricings)
        eba_choice = service.cheapest(BALANCED, EnergyBasedAccounting(), pricings)
        # Not asserting inequality (depends on signature); assert both valid.
        assert {runtime_choice, eba_choice} <= set(pricings)

    def test_custom_corpus(self):
        profiles = {"Cholesky": APP_REGISTRY["Cholesky"]}
        service = PredictionService(profiles=profiles, k=1)
        sig = WorkloadSignature(ips=1e9, llc_mpki=1.0)
        pred = service.predict(sig, "Zen3")
        assert pred.runtime_s == pytest.approx(5.65)

    def test_empty_corpus_rejected(self):
        with pytest.raises(ValueError):
            PredictionService(profiles={})
