"""Provider-side fleet reporting."""

import pytest

from repro.accounting.methods import EnergyBasedAccounting
from repro.reporting import (
    fleet_report,
    format_fleet_report,
    local_global_tension,
)
from repro.sim.engine import MultiClusterSimulator
from repro.sim.policies import GreedyPolicy, RuntimePolicy


@pytest.fixture(scope="module")
def greedy_result(sim_machines, small_workload):
    return MultiClusterSimulator(
        sim_machines, EnergyBasedAccounting(), GreedyPolicy()
    ).run(small_workload)


@pytest.fixture(scope="module")
def runtime_result(sim_machines, small_workload):
    return MultiClusterSimulator(
        sim_machines, EnergyBasedAccounting(), RuntimePolicy()
    ).run(small_workload)


class TestFleetReport:
    def test_totals_match_result(self, greedy_result):
        report = fleet_report(greedy_result)
        assert report.total_energy_mwh == pytest.approx(
            greedy_result.total_energy_j() / 3.6e9
        )
        assert sum(m.jobs for m in report.machines) == greedy_result.n_jobs

    def test_per_machine_energy_sums_to_total(self, greedy_result):
        report = fleet_report(greedy_result)
        assert sum(m.energy_mwh for m in report.machines) == pytest.approx(
            report.total_energy_mwh
        )

    def test_load_shares_sum_to_one(self, greedy_result):
        shares = fleet_report(greedy_result).load_shares()
        assert sum(shares.values()) == pytest.approx(1.0)

    def test_machine_lookup(self, greedy_result):
        report = fleet_report(greedy_result)
        assert report.machine("IC").machine == "IC"
        with pytest.raises(KeyError):
            report.machine("Fugaku")

    def test_efficiency_metric_separates_machines(
        self, sim_machines, small_workload
    ):
        """Running the *same* workload entirely on Theta vs entirely on
        FASTER must show Theta's worse delivered kWh per core-hour —
        the hardware fact behind the whole §5 story.  (Policy-filtered
        runs can't show this: Greedy only sends Theta the jobs Theta is
        good at.)"""
        from repro.sim.policies import FixedMachinePolicy

        def fixed(name):
            result = MultiClusterSimulator(
                sim_machines, EnergyBasedAccounting(), FixedMachinePolicy(name)
            ).run(small_workload)
            return fleet_report(result).machine(name)

        theta = fixed("Theta")
        faster = fixed("FASTER")
        assert (
            theta.energy_per_core_hour_kwh * theta.core_hours
            > faster.energy_per_core_hour_kwh * faster.core_hours
        )

    def test_format(self, greedy_result):
        text = format_fleet_report(fleet_report(greedy_result))
        assert "TOTAL" in text and "Greedy" in text


class TestLocalGlobalTension:
    def test_fleet_delta_matches_totals(self, greedy_result, runtime_result):
        tension = local_global_tension(runtime_result, greedy_result)
        expect = (
            greedy_result.total_energy_j() - runtime_result.total_energy_j()
        ) / 3.6e9
        assert tension["__fleet__"]["energy_delta_mwh"] == pytest.approx(expect)

    def test_per_machine_deltas_sum_to_fleet(self, greedy_result, runtime_result):
        tension = local_global_tension(runtime_result, greedy_result)
        per_machine = sum(
            v["energy_delta_mwh"] for k, v in tension.items() if k != "__fleet__"
        )
        assert per_machine == pytest.approx(
            tension["__fleet__"]["energy_delta_mwh"]
        )

    def test_section7_concern_is_observable(self, greedy_result, runtime_result):
        """Moving from Runtime to Greedy saves fleet energy while at
        least one machine's served load increases — the exact local-vs-
        global tension §7 describes."""
        tension = local_global_tension(runtime_result, greedy_result)
        assert tension["__fleet__"]["energy_delta_mwh"] < 0
        gainers = [
            k for k, v in tension.items()
            if k != "__fleet__" and v["load_delta_core_hours"] > 0
        ]
        assert gainers  # someone absorbs more load for the global saving
