"""Make the development tooling under ``tools/`` importable.

``tools/`` is not a package on ``sys.path`` (it is deliberately outside
the ``repro`` distribution), so these tests insert it the same way
``python -m repro lint`` does.
"""

import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[2]
TOOLS_DIR = REPO_ROOT / "tools"
if str(TOOLS_DIR) not in sys.path:
    sys.path.insert(0, str(TOOLS_DIR))
