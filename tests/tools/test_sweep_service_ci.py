"""The sweep-service CI driver at test scale.

``tools/sweep_service_ci.py`` is the same three-pass gate the
``sweep-service`` CI job runs (two server subprocesses over one store);
here it runs at a smaller scale so the tier-1 suite exercises the real
``repro sweep serve`` subprocess path end to end.
"""

from sweep_service_ci import GateFailure, run_gate


def test_gate_passes_at_small_scale(tmp_path):
    stats = run_gate(
        str(tmp_path / "store"), scale=60, jobs=2, verbose=False
    )
    assert stats["failed"] == 0
    assert stats["store"]["corrupt"] == 0


def test_gate_failure_is_a_clean_assertion():
    # The gate's failure channel is an AssertionError subclass so a
    # pytest caller gets a readable diff, not a traceback soup.
    assert issubclass(GateFailure, AssertionError)
