"""The strict-typing ratchet (tools/typing_gate.py).

The load-bearing property is the ratchet itself: the founding modules
can never leave the pyproject allowlist, and a bad allowlist fails
before mypy ever runs.  mypy itself is exercised by CI's invariants
job, not here — these tests pin the gate's own logic, including the
3.10 parser fallback and the skip-without-mypy behaviour.
"""

import builtins

import pytest

import typing_gate
from typing_gate import (
    FOUNDING_MODULES,
    _parse_toml_allowlist,
    load_allowlist,
    main,
)


def test_real_pyproject_allowlist_loads():
    modules = load_allowlist()
    assert FOUNDING_MODULES <= set(modules)


def test_parser_fallback_matches_tomllib(monkeypatch):
    """On 3.10 (no tomllib) the regex fallback must produce the same
    allowlist the real parser does."""
    text = typing_gate.PYPROJECT.read_text(encoding="utf-8")
    expected = _parse_toml_allowlist(text)
    real_import = builtins.__import__

    def no_tomllib(name, *args, **kwargs):
        if name == "tomllib":
            raise ModuleNotFoundError("No module named 'tomllib'")
        return real_import(name, *args, **kwargs)

    monkeypatch.setattr(builtins, "__import__", no_tomllib)
    assert _parse_toml_allowlist(text) == expected


def _gate_pyproject(tmp_path, modules):
    entries = "\n".join(f'    "{m}",' for m in modules)
    text = (
        "[tool.repro.typing-gate]\n"
        "strict-modules = [\n"
        f"{entries}\n"
        "]\n"
    )
    path = tmp_path / "pyproject.toml"
    path.write_text(text, encoding="utf-8")
    return path


def test_removing_a_founding_module_fails(tmp_path, monkeypatch, capsys):
    kept = sorted(FOUNDING_MODULES)[:-1]
    monkeypatch.setattr(typing_gate, "PYPROJECT", _gate_pyproject(tmp_path, kept))
    with pytest.raises(SystemExit) as err:
        load_allowlist()
    assert err.value.code == 1
    assert "never ratchet out" in capsys.readouterr().err


def test_nonexistent_listed_module_fails(tmp_path, monkeypatch, capsys):
    modules = sorted(FOUNDING_MODULES) + ["src/repro/no_such_module.py"]
    monkeypatch.setattr(
        typing_gate, "PYPROJECT", _gate_pyproject(tmp_path, modules)
    )
    with pytest.raises(SystemExit) as err:
        load_allowlist()
    assert err.value.code == 1
    assert "does not exist" in capsys.readouterr().err


def test_duplicate_entry_fails(tmp_path, monkeypatch, capsys):
    modules = sorted(FOUNDING_MODULES)
    modules.append(modules[0])
    monkeypatch.setattr(
        typing_gate, "PYPROJECT", _gate_pyproject(tmp_path, modules)
    )
    with pytest.raises(SystemExit) as err:
        load_allowlist()
    assert err.value.code == 1
    assert "duplicate" in capsys.readouterr().err


def test_missing_gate_section_fails(tmp_path, monkeypatch):
    path = tmp_path / "pyproject.toml"
    path.write_text("[project]\nname = 'x'\n", encoding="utf-8")
    monkeypatch.setattr(typing_gate, "PYPROJECT", path)
    with pytest.raises(SystemExit):
        load_allowlist()


def test_list_mode(capsys):
    assert main(["--list"]) == 0
    out = capsys.readouterr().out
    for module in FOUNDING_MODULES:
        assert module in out
    assert "founding" in out


def test_skips_cleanly_without_mypy(monkeypatch, capsys):
    monkeypatch.setattr(
        typing_gate.importlib.util, "find_spec", lambda name: None
    )
    assert main([]) == 0
    assert "skipping" in capsys.readouterr().out


def test_require_fails_without_mypy(monkeypatch, capsys):
    monkeypatch.setattr(
        typing_gate.importlib.util, "find_spec", lambda name: None
    )
    assert main(["--require"]) == 1
    assert "--require" in capsys.readouterr().err
