"""repro-lint: per-rule fixtures, suppression mechanics, CLI, and the
src/ smoke gate.

Every rule gets the same four-way treatment: a seeded violation is
caught, the idiomatic rewrite is clean, a reasoned inline suppression
waives the hit, and a reasonless suppression is rejected (reported as
RPL000 *and* the original violation survives).
"""

from dataclasses import dataclass
from pathlib import Path

import pytest

import repro_lint
from repro_lint import RULE_CODES, lint_paths, lint_source
from repro_lint.cli import main as lint_cli
from repro_lint.linter import SUPPRESSION_CODE
from repro_lint.rules import package_relative_path

REPO_ROOT = Path(__file__).resolve().parents[2]


def codes(violations):
    return [v.code for v in violations]


@dataclass(frozen=True)
class RuleCase:
    """One rule's fixture pair plus where its violation lands."""

    code: str
    rel: str  # package-relative path driving rule scope
    bad: str
    good: str
    flag_line: int  # 1-indexed line the violation anchors to


CASES = [
    RuleCase(
        code="RPL001",
        rel="sim/engine.py",
        bad=(
            "import time\n"
            "\n"
            "def now():\n"
            "    return time.time()\n"
        ),
        good=(
            "def now(calendar):\n"
            "    return calendar.now\n"
        ),
        flag_line=4,
    ),
    RuleCase(
        code="RPL002",
        rel="accounting/methods.py",
        bad=(
            "import numpy as np\n"
            "\n"
            "def draw():\n"
            "    return np.random.rand(3)\n"
        ),
        good=(
            "import numpy as np\n"
            "\n"
            "def draw(seed):\n"
            "    return np.random.default_rng(seed).random(3)\n"
        ),
        flag_line=4,
    ),
    RuleCase(
        code="RPL003",
        rel="accounting/methods.py",
        bad=(
            "from multiprocessing.shared_memory import SharedMemory\n"
            "\n"
            "def leak():\n"
            "    shm = SharedMemory(create=True, size=64)\n"
            "    return shm.name\n"
        ),
        good=(
            "from multiprocessing.shared_memory import SharedMemory\n"
            "\n"
            "def tidy():\n"
            "    shm = SharedMemory(create=True, size=64)\n"
            "    try:\n"
            "        return bytes(shm.buf[:8])\n"
            "    finally:\n"
            "        shm.unlink()\n"
        ),
        flag_line=4,
    ),
    RuleCase(
        code="RPL004",
        rel="sim/shifting.py",
        bad=(
            "def total(method, records, pricing):\n"
            "    out = 0.0\n"
            "    for record in records:\n"
            "        out += method.charge(record, pricing)\n"
            "    return out\n"
        ),
        good=(
            "def total(method, records, pricing):\n"
            "    return float(method.charge_many(records, pricing).sum())\n"
        ),
        flag_line=4,
    ),
    RuleCase(
        code="RPL005",
        rel="sim/cluster.py",
        bad=(
            "import heapq\n"
            "\n"
            "def push(heap, item):\n"
            "    heapq.heappush(heap, item)\n"
        ),
        good=(
            "def push(calendar, when, payload):\n"
            "    calendar.schedule_finish(when, payload)\n"
        ),
        flag_line=4,
    ),
    RuleCase(
        code="RPL006",
        rel="sim/policies.py",
        bad=(
            "def names(a, b):\n"
            "    out = []\n"
            "    for name in set(a) | set(b):\n"
            "        out.append(name)\n"
            "    return out\n"
        ),
        good=(
            "def names(a, b):\n"
            "    out = []\n"
            "    for name in sorted(set(a) | set(b)):\n"
            "        out.append(name)\n"
            "    return out\n"
        ),
        flag_line=3,
    ),
    RuleCase(
        code="RPL007",
        rel="sim/cluster.py",
        bad=(
            "class Hot:\n"
            "    def __init__(self):\n"
            "        self.x = 1\n"
        ),
        good=(
            "class Hot:\n"
            "    __slots__ = (\"x\",)\n"
            "\n"
            "    def __init__(self):\n"
            "        self.x = 1\n"
        ),
        flag_line=1,
    ),
    RuleCase(
        code="RPL008",
        rel="sim/sweep.py",
        bad=(
            "import pickle\n"
            "\n"
            "def ship(table):\n"
            "    return pickle.dumps(table)\n"
        ),
        good=(
            "def ship(table):\n"
            "    return table.describe()\n"
        ),
        flag_line=4,
    ),
    RuleCase(
        code="RPL009",
        rel="sim/result_store.py",
        bad=(
            "def read(path):\n"
            "    fh = open(path, 'rb')\n"
            "    return fh.read()\n"
        ),
        good=(
            "def read(path):\n"
            "    with open(path, 'rb') as fh:\n"
            "        return fh.read()\n"
        ),
        flag_line=2,
    ),
]

CASE_IDS = [case.code for case in CASES]


def _with_suppression(case: RuleCase, directive: str) -> str:
    """Insert a comment-only directive line directly above the flagged
    line (the waiver form that works for any node shape)."""
    lines = case.bad.splitlines(keepends=True)
    indent = case.bad.splitlines()[case.flag_line - 1]
    pad = indent[: len(indent) - len(indent.lstrip())]
    lines.insert(case.flag_line - 1, f"{pad}{directive}\n")
    return "".join(lines)


class TestPerRuleFixtures:
    @pytest.mark.parametrize("case", CASES, ids=CASE_IDS)
    def test_seeded_violation_caught(self, case):
        violations = lint_source(case.bad, rel_path=case.rel)
        assert codes(violations) == [case.code]
        assert violations[0].line == case.flag_line
        assert case.code in violations[0].render()

    @pytest.mark.parametrize("case", CASES, ids=CASE_IDS)
    def test_idiomatic_rewrite_clean(self, case):
        assert lint_source(case.good, rel_path=case.rel) == []

    @pytest.mark.parametrize("case", CASES, ids=CASE_IDS)
    def test_reasoned_suppression_waives(self, case):
        source = _with_suppression(
            case, f"# repro-lint: disable={case.code} (test fixture reason)"
        )
        assert lint_source(source, rel_path=case.rel) == []

    @pytest.mark.parametrize("case", CASES, ids=CASE_IDS)
    def test_reasonless_suppression_rejected(self, case):
        source = _with_suppression(
            case, f"# repro-lint: disable={case.code}"
        )
        got = codes(lint_source(source, rel_path=case.rel))
        # The malformed waiver is itself reported and waives nothing.
        assert SUPPRESSION_CODE in got
        assert case.code in got

    @pytest.mark.parametrize("case", CASES, ids=CASE_IDS)
    def test_out_of_package_paths_never_flagged(self, case):
        assert lint_source(case.bad, rel_path="") == []


class TestRuleScoping:
    def test_heapq_allowed_in_events_module(self):
        case = next(c for c in CASES if c.code == "RPL005")
        assert lint_source(case.bad, rel_path="sim/events.py") == []

    def test_pickle_allowed_outside_transport_modules(self):
        case = next(c for c in CASES if c.code == "RPL008")
        assert lint_source(case.bad, rel_path="sim/job.py") == []

    def test_wall_clock_out_of_prefix_scope(self):
        case = next(c for c in CASES if c.code == "RPL001")
        assert lint_source(case.bad, rel_path="hardware/catalog.py") == []

    def test_slots_rule_only_in_hot_modules(self):
        case = next(c for c in CASES if c.code == "RPL007")
        assert lint_source(case.bad, rel_path="sim/policies.py") == []

    def test_package_relative_path(self):
        assert (
            package_relative_path("src/repro/sim/engine.py") == "sim/engine.py"
        )
        assert (
            package_relative_path("/ck/src/repro/accounting/spill.py")
            == "accounting/spill.py"
        )
        assert package_relative_path("tools/repro_lint/rules.py") == ""
        assert package_relative_path("tests/sim/test_engine.py") == ""


class TestRuleEdgeCases:
    def test_shm_attach_needs_close(self):
        source = (
            "from multiprocessing.shared_memory import SharedMemory\n"
            "\n"
            "def peek(name):\n"
            "    shm = SharedMemory(name=name)\n"
            "    return bytes(shm.buf[:8])\n"
        )
        assert codes(lint_source(source, rel_path="sim/sweep.py")) == ["RPL003"]
        closed = source.replace(
            "    return bytes(shm.buf[:8])\n",
            "    try:\n"
            "        return bytes(shm.buf[:8])\n"
            "    finally:\n"
            "        shm.close()\n",
        )
        assert lint_source(closed, rel_path="sim/sweep.py") == []

    def test_unseeded_default_rng_flagged_seeded_ok(self):
        bad = "import numpy as np\nrng = np.random.default_rng()\n"
        good = "import numpy as np\nrng = np.random.default_rng(7)\n"
        assert codes(lint_source(bad, rel_path="sim/workload.py")) == ["RPL002"]
        assert lint_source(good, rel_path="sim/workload.py") == []

    def test_stdlib_random_instance_ok(self):
        bad = "import random\nx = random.random()\n"
        good = "import random\nx = random.Random(3).random()\n"
        assert codes(lint_source(bad, rel_path="sim/workload.py")) == ["RPL002"]
        assert lint_source(good, rel_path="sim/workload.py") == []

    def test_import_alias_resolution(self):
        source = "import time as clock\nt = clock.monotonic()\n"
        assert codes(lint_source(source, rel_path="sim/engine.py")) == ["RPL001"]

    def test_from_import_resolution(self):
        source = "from time import perf_counter\nt = perf_counter()\n"
        assert codes(lint_source(source, rel_path="faas/endpoint.py")) == [
            "RPL001"
        ]

    def test_set_comprehension_iteration_flagged(self):
        source = (
            "def f(items):\n"
            "    return [x for x in {i.name for i in items}]\n"
        )
        assert codes(lint_source(source, rel_path="sim/engine.py")) == [
            "RPL006"
        ]

    def test_dataclass_slots_satisfies_rpl007(self):
        source = (
            "from dataclasses import dataclass\n"
            "\n"
            "@dataclass(slots=True)\n"
            "class Hot:\n"
            "    x: int\n"
        )
        assert lint_source(source, rel_path="sim/events.py") == []

    def test_exception_classes_exempt_from_rpl007(self):
        source = "class SimError(ValueError):\n    pass\n"
        assert lint_source(source, rel_path="sim/events.py") == []

    def test_rpl009_lock_acquire_needs_release(self):
        source = (
            "def grab(lock):\n"
            "    lock.acquire()\n"
            "    return 1\n"
        )
        assert codes(
            lint_source(source, rel_path="sim/sweep_service.py")
        ) == ["RPL009"]
        paired = (
            "def grab(lock):\n"
            "    lock.acquire()\n"
            "    try:\n"
            "        return 1\n"
            "    finally:\n"
            "        lock.release()\n"
        )
        assert lint_source(paired, rel_path="sim/sweep_service.py") == []

    def test_rpl009_with_managed_lock_clean(self):
        source = (
            "def grab(lock):\n"
            "    with lock.acquire():\n"
            "        return 1\n"
        )
        assert lint_source(source, rel_path="sim/result_store.py") == []

    def test_rpl009_open_with_same_function_close_clean(self):
        source = (
            "def read(path):\n"
            "    fh = open(path, 'rb')\n"
            "    try:\n"
            "        return fh.read()\n"
            "    finally:\n"
            "        fh.close()\n"
        )
        assert lint_source(source, rel_path="sim/result_store.py") == []

    def test_rpl009_scoped_to_service_modules(self):
        case = next(c for c in CASES if c.code == "RPL009")
        assert lint_source(case.bad, rel_path="sim/engine.py") == []


class TestSuppressionMechanics:
    REL = "sim/engine.py"

    def test_trailing_comment_waives_its_line(self):
        source = (
            "import time\n"
            "t = time.time()  # repro-lint: disable=RPL001 (hardware probe)\n"
        )
        assert lint_source(source, rel_path=self.REL) == []

    def test_multiple_codes_one_directive(self):
        source = (
            "import time, heapq\n"
            "# repro-lint: disable=RPL001, RPL005 (reference path)\n"
            "t = heapq.heappush([], time.time())\n"
        )
        assert lint_source(source, rel_path=self.REL) == []

    def test_unknown_code_reported(self):
        source = (
            "import time\n"
            "t = time.time()  # repro-lint: disable=RPL999 (nope)\n"
        )
        got = codes(lint_source(source, rel_path=self.REL))
        assert SUPPRESSION_CODE in got
        assert "RPL001" in got

    def test_stale_suppression_reported(self):
        source = "# repro-lint: disable=RPL001 (nothing here needs it)\nx = 1\n"
        got = lint_source(source, rel_path=self.REL)
        assert codes(got) == [SUPPRESSION_CODE]
        assert "stale" in got[0].message

    def test_select_filters_rules(self):
        source = (
            "import time, heapq\n"
            "t = heapq.heappush([], time.time())\n"
        )
        got = lint_source(source, rel_path=self.REL, select=["RPL005"])
        assert codes(got) == ["RPL005"]


class TestCliAndSmoke:
    def _write_pkg_file(self, root: Path, rel: str, source: str) -> Path:
        target = root / "src" / "repro" / rel
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(source, encoding="utf-8")
        return target

    def test_cli_reports_violations_exit_1(self, tmp_path, capsys):
        case = CASES[0]
        self._write_pkg_file(tmp_path, case.rel, case.bad)
        rc = lint_cli([str(tmp_path / "src"), "--statistics"])
        out = capsys.readouterr().out
        assert rc == 1
        assert case.code in out
        assert "found 1 violation" in out

    def test_cli_clean_tree_exit_0(self, tmp_path, capsys):
        case = CASES[0]
        self._write_pkg_file(tmp_path, case.rel, case.good)
        rc = lint_cli([str(tmp_path / "src")])
        assert rc == 0

    def test_cli_list_rules(self, capsys):
        rc = lint_cli(["--list-rules"])
        out = capsys.readouterr().out
        assert rc == 0
        for code in sorted(RULE_CODES):
            assert code in out

    def test_cli_missing_path_exit_2(self, tmp_path, capsys):
        rc = lint_cli([str(tmp_path / "does-not-exist")])
        assert rc == 2

    def test_version_exported(self):
        assert repro_lint.__version__

    def test_src_tree_is_clean(self):
        """The gate itself: the shipped source tree has zero violations
        and zero reasonless suppressions."""
        assert lint_paths([REPO_ROOT / "src"]) == []

    def test_repro_cli_lint_subcommand(self, capsys):
        from repro.cli import main

        assert main(["lint", str(REPO_ROOT / "src")]) == 0
