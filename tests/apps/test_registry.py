"""App registry: calibrated profiles, kernels, and Fig. 4 properties."""

import pytest

from repro.apps.linalg import blocked_matmul
from repro.apps.registry import (
    APP_REGISTRY,
    CPU_APP_NAMES,
    GPU_CHOLESKY_PROFILES,
    get_profile,
    kernel_for,
)


class TestProfiles:
    def test_seven_apps_on_four_machines(self):
        assert len(CPU_APP_NAMES) == 7
        for name in CPU_APP_NAMES:
            assert set(APP_REGISTRY[name].runs) == {
                "Desktop", "Cascade Lake", "Ice Lake", "Zen3",
            }

    def test_cholesky_metrics_match_table1(self):
        runs = APP_REGISTRY["Cholesky"].runs
        assert runs["Desktop"].runtime_s == 5.20
        assert runs["Desktop"].energy_j == 18.3
        assert runs["Zen3"].energy_j == 16.8
        assert runs["Ice Lake"].runtime_s == 4.60

    def test_fig4_tradeoffs_vary(self):
        """Different machines win different apps (Fig. 4's point), and
        at least one app's fastest machine is not its most efficient."""
        fastest = {APP_REGISTRY[a].fastest_machine() for a in CPU_APP_NAMES}
        assert len(fastest) >= 2
        assert any(
            APP_REGISTRY[a].fastest_machine()
            != APP_REGISTRY[a].most_efficient_machine()
            for a in CPU_APP_NAMES
        )

    def test_mean_power_positive(self):
        for app in CPU_APP_NAMES:
            for run in APP_REGISTRY[app].runs.values():
                assert run.mean_power_w > 0

    def test_gpu_profiles_match_table3(self):
        assert GPU_CHOLESKY_PROFILES[("P100", 2)].runtime_s == 1396.0
        assert GPU_CHOLESKY_PROFILES[("A100", 8)].energy_j == pytest.approx(1325e3)
        assert len(GPU_CHOLESKY_PROFILES) == 10

    def test_unknown_app(self):
        with pytest.raises(KeyError):
            get_profile("Bitcoin Miner")

    def test_run_on_unknown_machine(self):
        with pytest.raises(KeyError):
            APP_REGISTRY["MD"].run_on("Cray-1")


class TestKernels:
    @pytest.mark.parametrize("name", CPU_APP_NAMES)
    def test_every_app_has_runnable_kernel(self, name):
        result = kernel_for(name)()
        assert result is not None

    def test_cholesky_kernel_is_accurate(self):
        # The demo kernel returns the max reconstruction error.
        assert kernel_for("Cholesky")() < 1e-8

    def test_unknown_kernel(self):
        with pytest.raises(KeyError):
            kernel_for("nope")


class TestBlockedMatmul:
    def test_matches_numpy(self):
        import numpy as np

        rng = np.random.default_rng(0)
        a = rng.standard_normal((37, 23))
        b = rng.standard_normal((23, 41))
        np.testing.assert_allclose(blocked_matmul(a, b, block=8), a @ b, rtol=1e-10)

    def test_rejects_mismatched_shapes(self):
        import numpy as np

        with pytest.raises(ValueError):
            blocked_matmul(np.ones((2, 3)), np.ones((4, 5)))

    def test_rejects_bad_block(self):
        import numpy as np

        with pytest.raises(ValueError):
            blocked_matmul(np.ones((2, 2)), np.ones((2, 2)), block=0)
