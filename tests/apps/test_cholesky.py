"""Cholesky kernels: numerical correctness and task-graph scaling."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.apps.cholesky import cholesky_task_graph, random_spd, tiled_cholesky


class TestTiledCholesky:
    @pytest.mark.parametrize("n,tile", [(16, 4), (50, 16), (64, 64), (33, 8)])
    def test_reconstructs_input(self, n, tile):
        a = random_spd(n, seed=n)
        lower = tiled_cholesky(a, tile=tile)
        np.testing.assert_allclose(lower @ lower.T, a, rtol=1e-8, atol=1e-8)

    def test_lower_triangular(self):
        a = random_spd(20, seed=1)
        lower = tiled_cholesky(a, tile=8)
        assert np.allclose(np.triu(lower, k=1), 0.0)

    def test_matches_numpy(self):
        a = random_spd(30, seed=2)
        np.testing.assert_allclose(
            tiled_cholesky(a, tile=7), np.linalg.cholesky(a), rtol=1e-8
        )

    def test_input_not_mutated(self):
        a = random_spd(12, seed=3)
        before = a.copy()
        tiled_cholesky(a, tile=4)
        np.testing.assert_array_equal(a, before)

    def test_rejects_non_square(self):
        with pytest.raises(ValueError):
            tiled_cholesky(np.ones((3, 4)))

    def test_rejects_bad_tile(self):
        with pytest.raises(ValueError):
            tiled_cholesky(np.eye(4), tile=0)

    @settings(max_examples=20, deadline=None)
    @given(
        st.integers(min_value=2, max_value=24),
        st.integers(min_value=1, max_value=10),
    )
    def test_property_reconstruction(self, n, tile):
        a = random_spd(n, seed=n * 31 + tile)
        lower = tiled_cholesky(a, tile=tile)
        np.testing.assert_allclose(lower @ lower.T, a, rtol=1e-7, atol=1e-7)


class TestTaskGraphCholesky:
    def test_matches_direct_factorization(self):
        a = random_spd(32, seed=5)
        l_graph, _ = cholesky_task_graph(a, tile=8, workers=3)
        np.testing.assert_allclose(l_graph, np.linalg.cholesky(a), rtol=1e-8)

    def test_task_count(self):
        # nt=4 tiles: potrf 4, trsm 3+2+1=6, updates sum_{k} T(nt-1-k) = 10.
        a = random_spd(16, seed=6)
        _, stats = cholesky_task_graph(a, tile=4, workers=1)
        assert stats.n_tasks == 20

    def test_more_gpus_shorter_virtual_makespan(self):
        """The Table 3 scaling effect: makespan shrinks with workers
        until the critical path binds."""
        a = random_spd(48, seed=7)
        spans = [
            cholesky_task_graph(a, tile=8, workers=w)[1].makespan
            for w in (1, 2, 4)
        ]
        assert spans[0] > spans[1] >= spans[2]

    def test_critical_path_limits_scaling(self):
        a = random_spd(48, seed=8)
        _, stats = cholesky_task_graph(a, tile=8, workers=64)
        assert stats.makespan == pytest.approx(stats.critical_path)
