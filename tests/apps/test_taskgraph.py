"""The miniature StarPU: DAG execution, scheduling stats, cycle safety."""

import pytest
from hypothesis import given, strategies as st

from repro.apps.taskgraph import TaskGraph


def diamond() -> TaskGraph:
    g = TaskGraph()
    order = []
    g.add("a", lambda: order.append("a"), cost=1.0)
    g.add("b", lambda: order.append("b"), deps=["a"], cost=1.0)
    g.add("c", lambda: order.append("c"), deps=["a"], cost=1.0)
    g.add("d", lambda: order.append("d"), deps=["b", "c"], cost=1.0)
    g._order = order  # type: ignore[attr-defined]
    return g


class TestExecution:
    def test_dependencies_respected(self):
        g = diamond()
        g.execute(workers=2)
        order = g._order  # type: ignore[attr-defined]
        assert order[0] == "a" and order[-1] == "d"

    def test_results_accessible(self):
        g = TaskGraph()
        g.add("x", lambda: 42)
        g.execute()
        assert g.result("x") == 42

    def test_result_before_execution_raises(self):
        g = TaskGraph()
        g.add("x", lambda: 42)
        with pytest.raises(RuntimeError):
            g.result("x")

    def test_duplicate_task_rejected(self):
        g = TaskGraph()
        g.add("x", lambda: 1)
        with pytest.raises(ValueError, match="duplicate"):
            g.add("x", lambda: 2)

    def test_unknown_dependency_rejected(self):
        g = TaskGraph()
        with pytest.raises(ValueError, match="unknown"):
            g.add("x", lambda: 1, deps=["ghost"])

    def test_negative_cost_rejected(self):
        g = TaskGraph()
        with pytest.raises(ValueError):
            g.add("x", lambda: 1, cost=-1.0)

    def test_zero_workers_rejected(self):
        g = diamond()
        with pytest.raises(ValueError):
            g.execute(workers=0)


class TestSchedule:
    def test_diamond_makespan_one_worker(self):
        stats = diamond().execute(workers=1)
        assert stats.makespan == pytest.approx(4.0)

    def test_diamond_makespan_two_workers(self):
        # b and c run in parallel: 1 + 1 + 1.
        stats = diamond().execute(workers=2)
        assert stats.makespan == pytest.approx(3.0)

    def test_critical_path(self):
        stats = diamond().execute(workers=4)
        assert stats.critical_path == pytest.approx(3.0)

    def test_makespan_never_beats_critical_path(self):
        stats = diamond().execute(workers=16)
        assert stats.makespan >= stats.critical_path - 1e-12

    def test_parallel_efficiency_bounds(self):
        stats = diamond().execute(workers=2)
        assert 0.0 < stats.parallel_efficiency <= 1.0

    @given(
        st.integers(min_value=1, max_value=8),
        st.integers(min_value=1, max_value=30),
    )
    def test_independent_tasks_scale(self, workers, n_tasks):
        g = TaskGraph()
        for i in range(n_tasks):
            g.add(f"t{i}", lambda: None, cost=1.0)
        stats = g.execute(workers=workers)
        # Perfect list scheduling of equal independent tasks.
        expect = -(-n_tasks // workers)  # ceil division
        assert stats.makespan == pytest.approx(float(expect))

    def test_more_workers_never_slower(self):
        import numpy as np

        rng = np.random.default_rng(0)
        g1, g2 = TaskGraph(), TaskGraph()
        names = []
        for i in range(40):
            deps = list(
                rng.choice(
                    names,
                    size=min(len(names), int(rng.integers(0, 3))),
                    replace=False,
                )
            ) if names else []
            cost = float(rng.uniform(0.1, 2.0))
            g1.add(f"t{i}", lambda: None, deps=deps, cost=cost)
            g2.add(f"t{i}", lambda: None, deps=deps, cost=cost)
            names.append(f"t{i}")
        assert g2.execute(workers=8).makespan <= g1.execute(workers=1).makespan + 1e-9
