"""Molecular dynamics: conservation and physical sanity."""

import numpy as np
import pytest

from repro.apps.md import lennard_jones_md


class TestEnergyConservation:
    def test_nve_energy_drift_bounded(self):
        result = lennard_jones_md(n_particles=27, steps=300, dt=0.002, seed=0)
        series = result.energy_series
        drift = abs(series[-1] - series[0]) / max(1.0, abs(series[0]))
        assert drift < 0.05

    def test_total_energy_consistent(self):
        result = lennard_jones_md(n_particles=27, steps=50, seed=1)
        assert result.total_energy == pytest.approx(
            result.potential_energy + result.kinetic_energy
        )

    def test_energy_series_length(self):
        result = lennard_jones_md(n_particles=27, steps=50, seed=1)
        assert len(result.energy_series) == 51


class TestState:
    def test_positions_inside_box(self):
        n, density = 27, 0.5
        box = (n / density) ** (1 / 3)
        result = lennard_jones_md(n_particles=n, steps=50, density=density, seed=2)
        assert np.all(result.positions >= 0.0)
        assert np.all(result.positions <= box)

    def test_shapes(self):
        result = lennard_jones_md(n_particles=27, steps=10, seed=3)
        assert result.positions.shape == (27, 3)
        assert result.velocities.shape == (27, 3)

    def test_deterministic_per_seed(self):
        a = lennard_jones_md(n_particles=27, steps=20, seed=4)
        b = lennard_jones_md(n_particles=27, steps=20, seed=4)
        np.testing.assert_array_equal(a.positions, b.positions)

    def test_kinetic_energy_positive(self):
        result = lennard_jones_md(n_particles=27, steps=20, seed=5)
        assert result.kinetic_energy > 0.0


class TestValidation:
    def test_rejects_too_few_particles(self):
        with pytest.raises(ValueError):
            lennard_jones_md(n_particles=1)

    def test_rejects_zero_steps(self):
        with pytest.raises(ValueError):
            lennard_jones_md(n_particles=8, steps=0)
