"""Graph kernels against NetworkX reference implementations."""

import networkx as nx
import numpy as np
import pytest

from repro.apps.graph import bfs_levels, minimum_spanning_tree, mst_weight, pagerank


@pytest.fixture(scope="module")
def random_graph():
    return nx.gnp_random_graph(80, 0.08, seed=3)


@pytest.fixture(scope="module")
def random_digraph():
    return nx.gnp_random_graph(80, 0.08, seed=4, directed=True)


class TestPagerank:
    def test_matches_networkx_undirected(self, random_graph):
        ours = pagerank(random_graph)
        ref = nx.pagerank(random_graph, alpha=0.85, tol=1e-12)
        for node in random_graph:
            assert ours[node] == pytest.approx(ref[node], abs=1e-6)

    def test_matches_networkx_directed(self, random_digraph):
        ours = pagerank(random_digraph)
        ref = nx.pagerank(random_digraph, alpha=0.85, tol=1e-12)
        for node in random_digraph:
            assert ours[node] == pytest.approx(ref[node], abs=1e-6)

    def test_sums_to_one(self, random_graph):
        assert sum(pagerank(random_graph).values()) == pytest.approx(1.0)

    def test_dangling_nodes(self):
        g = nx.DiGraph([(0, 1), (1, 2)])  # 2 is dangling
        ours = pagerank(g)
        ref = nx.pagerank(g, alpha=0.85, tol=1e-12)
        for node in g:
            assert ours[node] == pytest.approx(ref[node], abs=1e-8)

    def test_empty_graph(self):
        assert pagerank(nx.Graph()) == {}

    def test_rejects_bad_damping(self):
        with pytest.raises(ValueError):
            pagerank(nx.Graph([(0, 1)]), damping=1.0)


class TestBFS:
    def test_matches_networkx(self, random_graph):
        source = next(iter(random_graph))
        ours = bfs_levels(random_graph, source)
        ref = nx.single_source_shortest_path_length(random_graph, source)
        assert ours == dict(ref)

    def test_unreachable_nodes_absent(self):
        g = nx.Graph([(0, 1), (2, 3)])
        levels = bfs_levels(g, 0)
        assert 2 not in levels and 3 not in levels

    def test_missing_source(self):
        with pytest.raises(KeyError):
            bfs_levels(nx.Graph([(0, 1)]), 99)


class TestMST:
    def test_weight_matches_networkx(self):
        rng = np.random.default_rng(5)
        g = nx.gnp_random_graph(40, 0.2, seed=5)
        for u, v in g.edges():
            g[u][v]["weight"] = float(rng.uniform(0.1, 10.0))
        if not nx.is_connected(g):
            g = g.subgraph(max(nx.connected_components(g), key=len)).copy()
        ref = nx.minimum_spanning_tree(g).size(weight="weight")
        assert mst_weight(g) == pytest.approx(ref)

    def test_tree_size(self):
        g = nx.connected_watts_strogatz_graph(30, 4, 0.2, seed=6)
        assert len(minimum_spanning_tree(g)) == 29

    def test_disconnected_rejected(self):
        with pytest.raises(ValueError, match="connected"):
            minimum_spanning_tree(nx.Graph([(0, 1), (2, 3)]))

    def test_empty_graph(self):
        assert minimum_spanning_tree(nx.Graph()) == []

    def test_unweighted_defaults_to_one(self):
        g = nx.path_graph(5)
        assert mst_weight(g) == pytest.approx(4.0)
