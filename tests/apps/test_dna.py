"""DNA k-mer profiling."""

import numpy as np
import pytest

from repro.apps.dna import dna_kmer_profile, random_sequence


class TestKmers:
    def test_counts_sum_to_window_count(self):
        seq = "ACGTACGT"
        profile = dna_kmer_profile(seq, k=3)
        assert sum(profile.kmer_counts.values()) == len(seq) - 2

    def test_known_counts(self):
        profile = dna_kmer_profile("AAAA", k=2)
        assert profile.kmer_counts == {"AA": 3}

    def test_mixed_kmers(self):
        profile = dna_kmer_profile("ACGT", k=2)
        assert profile.kmer_counts == {"AC": 1, "CG": 1, "GT": 1}

    def test_sequence_shorter_than_k(self):
        assert dna_kmer_profile("AC", k=5).kmer_counts == {}

    def test_lowercase_accepted(self):
        assert dna_kmer_profile("acgt", k=2).kmer_counts == {"AC": 1, "CG": 1, "GT": 1}

    def test_invalid_base_rejected(self):
        with pytest.raises(ValueError, match="invalid base"):
            dna_kmer_profile("ACGX", k=2)

    def test_bad_params(self):
        with pytest.raises(ValueError):
            dna_kmer_profile("ACGT", k=0)
        with pytest.raises(ValueError):
            dna_kmer_profile("ACGT", window=0)


class TestGCContent:
    def test_gc_bias_respected(self):
        seq = random_sequence(30_000, seed=0, gc_bias=0.7)
        profile = dna_kmer_profile(seq, window=100)
        assert profile.gc_content == pytest.approx(0.7, abs=0.02)

    def test_pure_at_sequence(self):
        profile = dna_kmer_profile("ATAT" * 50, window=10)
        assert profile.gc_content == 0.0

    def test_window_count(self):
        profile = dna_kmer_profile("ACGT" * 75, window=100)  # 300 bases
        assert len(profile.gc_windows) == 3


class TestSquiggle:
    def test_walk_length(self):
        profile = dna_kmer_profile("ACGTAC")
        assert profile.squiggle.shape == (7, 2)

    def test_walk_steps(self):
        profile = dna_kmer_profile("AT")
        # A: (+1, +1), T: (+1, -1)
        np.testing.assert_allclose(profile.squiggle[1], [1.0, 1.0])
        np.testing.assert_allclose(profile.squiggle[2], [2.0, 0.0])

    def test_cg_moves_vertically(self):
        profile = dna_kmer_profile("CG")
        np.testing.assert_allclose(profile.squiggle[1], [0.0, 1.0])
        np.testing.assert_allclose(profile.squiggle[2], [0.0, 0.0])


class TestRandomSequence:
    def test_length_and_alphabet(self):
        seq = random_sequence(500, seed=1)
        assert len(seq) == 500
        assert set(seq) <= set("ACGT")

    def test_bias_bounds(self):
        with pytest.raises(ValueError):
            random_sequence(10, gc_bias=1.5)
