"""Game engine mechanics: versions, budgets, moves."""

import pytest

from repro.study.game import Game, GameConfig, GameVersion
from repro.study.jobs import default_job_deck


@pytest.fixture
def v1() -> Game:
    return Game(GameVersion.V1)


@pytest.fixture
def v3() -> Game:
    return Game(GameVersion.V3)


class TestEconomics:
    def test_v1_and_v2_charge_core_hours(self):
        g1, g2 = Game(GameVersion.V1), Game(GameVersion.V2)
        job = g1.deck[0]
        machine = job.machines[0]
        assert g1.cost_of(job, machine) == g2.cost_of(job, machine)
        assert g1.cost_of(job, machine) == pytest.approx(
            job.runtime_h[machine] * job.cores
        )

    def test_v3_charges_eba(self, v3):
        job = v3.deck[0]
        machine = job.machines[0]
        m = v3.machines[machine]
        potential = job.runtime_h[machine] * job.cores * m.tdp_watts_per_core / 1e3
        expect = (job.energy_kwh[machine] + potential) / 2
        assert v3.cost_of(job, machine) == pytest.approx(expect)

    def test_v3_allocation_converted(self):
        cfg = GameConfig()
        v1, v3 = Game(GameVersion.V1, config=cfg), Game(GameVersion.V3, config=cfg)
        assert v1.allocation == cfg.allocation_core_hours
        assert v3.allocation != cfg.allocation_core_hours
        assert v3.allocation > 0

    def test_energy_hidden_in_v1_only(self, v1, v3):
        job1 = v1.visible_jobs[0]
        assert all(o.energy_kwh is None for o in v1.offers(job1))
        job3 = v3.visible_jobs[0]
        assert all(o.energy_kwh is not None for o in v3.offers(job3))
        v2 = Game(GameVersion.V2)
        assert all(o.energy_kwh is not None for o in v2.offers(v2.visible_jobs[0]))


class TestMoves:
    def test_schedule_consumes_and_reveals(self, v1):
        job = v1.visible_jobs[0]
        machine = job.machines[0]
        before_alloc = v1.allocation
        v1.schedule(job.job_id, machine)
        assert v1.jobs_completed == 1
        assert v1.allocation < before_alloc
        assert v1.energy_used_kwh > 0
        assert len(v1.visible_jobs) == v1.config.visible_jobs

    def test_machine_queues_serialize(self, v1):
        # Two jobs on one machine: second starts when the first ends.
        jobs = v1.visible_jobs[:2]
        machine = next(m for m in jobs[0].machines if m in jobs[1].machines)
        v1.schedule(jobs[0].job_id, machine)
        offer = next(o for o in v1.offers(jobs[1]) if o.machine == machine)
        assert offer.start_h == pytest.approx(jobs[0].runtime_h[machine])

    def test_cannot_schedule_beyond_allocation(self):
        cfg = GameConfig(allocation_core_hours=1.0, time_budget_h=1000.0)
        game = Game(GameVersion.V1, config=cfg)
        job = game.visible_jobs[0]
        with pytest.raises(ValueError, match="rejected"):
            game.schedule(job.job_id, job.machines[0])

    def test_cannot_schedule_beyond_time(self):
        cfg = GameConfig(allocation_core_hours=1e9, time_budget_h=0.1)
        game = Game(GameVersion.V1, config=cfg)
        job = game.visible_jobs[0]
        assert not game.can_schedule(job.job_id, job.machines[0])

    def test_skip_reveals_next(self, v1):
        first = v1.visible_jobs[0]
        v1.skip(first.job_id)
        assert first.job_id not in {j.job_id for j in v1.visible_jobs}
        assert v1.jobs_completed == 0

    def test_unknown_job_rejected(self, v1):
        with pytest.raises(KeyError):
            v1.schedule(999, "IC")

    def test_wrong_machine_rejected(self, v1):
        big = next(j for j in v1.deck if "Desktop" not in j.machines)
        game = Game(GameVersion.V1, deck=[big])
        with pytest.raises(ValueError, match="cannot run"):
            game.schedule(big.job_id, "Desktop")


class TestClock:
    def test_advance_jumps_to_next_completion(self, v1):
        job = v1.visible_jobs[0]
        machine = job.machines[0]
        v1.schedule(job.job_id, machine)
        v1.advance()
        assert v1.clock_h == pytest.approx(job.runtime_h[machine])

    def test_advance_with_idle_machines_ends_game(self, v1):
        v1.advance()
        assert v1.ended

    def test_moves_after_end_rejected(self, v1):
        v1.end()
        with pytest.raises(RuntimeError):
            v1.advance()
        with pytest.raises(RuntimeError):
            v1.skip(v1.deck[0].job_id)

    def test_time_left(self, v1):
        assert v1.time_left_h == v1.config.time_budget_h


class TestJobDeck:
    def test_deck_is_deterministic(self):
        a = default_job_deck(seed=7)
        b = default_job_deck(seed=7)
        assert [j.runtime_h for j in a] == [j.runtime_h for j in b]

    def test_twenty_jobs(self):
        assert len(default_job_deck()) == 20

    def test_priorities_are_placebo_labels(self):
        from repro.study.jobs import PRIORITIES

        deck = default_job_deck()
        assert {j.priority for j in deck} <= set(PRIORITIES)

    def test_config_validation(self):
        with pytest.raises(ValueError):
            GameConfig(time_budget_h=0.0)
        with pytest.raises(ValueError):
            GameConfig(visible_jobs=0)
