"""Behavioural agents and the Fig. 9 / Fig. 10 analysis."""

import numpy as np
import pytest

from repro.study.agents import AgentParams, BehavioralAgent, play_game
from repro.study.analysis import (
    energy_by_version,
    energy_run_correlation,
    energy_stratified_by_jobs,
    jobs_completed_by_version,
    run_probability_vs_energy,
    run_study,
    v3_energy_ttests,
)
from repro.study.game import Game, GameVersion


@pytest.fixture(scope="module")
def study():
    return run_study(n_users=60, seed=11)


class TestAgent:
    def test_agent_plays_to_completion(self):
        game = play_game(GameVersion.V1, seed=0)
        assert game.ended
        assert game.jobs_completed > 0

    def test_cost_sensitive_agent_prefers_cheap_machines_under_v3(self):
        """An agent with pure cost weight, playing V3, must land at or
        below the energy of the same agent playing V1."""
        params = AgentParams(
            time_weight=0.1, cost_weight=3.0, energy_weight=0.0,
            priority_weight=0.0, decision_noise=0.01, skip_threshold=0.0,
        )
        rng = np.random.default_rng(1)
        v1 = BehavioralAgent(params, rng).play(Game(GameVersion.V1))
        rng = np.random.default_rng(1)
        v3 = BehavioralAgent(params, rng).play(Game(GameVersion.V3))
        energy_per_job_v1 = v1.energy_used_kwh / max(1, v1.jobs_completed)
        energy_per_job_v3 = v3.energy_used_kwh / max(1, v3.jobs_completed)
        assert energy_per_job_v3 <= energy_per_job_v1 * 1.05

    def test_sampled_params_in_range(self):
        rng = np.random.default_rng(0)
        for _ in range(50):
            p = AgentParams.sample(rng)
            assert p.time_weight > 0 and p.cost_weight > 0
            assert p.energy_weight >= 0


class TestStudyProtocol:
    def test_first_plays_discarded(self, study):
        # 60 users x 3 plays with the first dropped -> at most 120.
        assert len(study) <= 120

    def test_records_have_valid_versions(self, study):
        assert {r.version.value for r in study.records} <= {1, 2, 3}

    def test_jobs_run_subset_of_seen(self, study):
        for r in study.records:
            assert r.jobs_run <= r.jobs_seen


class TestFig9:
    def test_v3_uses_less_energy(self, study):
        e = energy_by_version(study)
        assert np.mean(e[3]) < np.mean(e[1])
        assert np.mean(e[3]) < np.mean(e[2])

    def test_energy_information_alone_changes_nothing(self, study):
        """V1 vs V2 indistinguishable (the paper's central negative
        result): means within 10% and nowhere near the V3 effect, which
        is decisive."""
        e = energy_by_version(study)
        assert np.mean(e[2]) == pytest.approx(np.mean(e[1]), rel=0.10)
        t = v3_energy_ttests(study)
        assert t["v3_vs_v1"] < 0.001
        assert t["v1_vs_v2"] > t["v3_vs_v1"] * 100

    def test_v3_completes_fewer_jobs(self, study):
        j = jobs_completed_by_version(study)
        assert np.mean(j[3]) < np.mean(j[1])

    def test_stratified_v3_lower_at_equal_output(self, study):
        strat = energy_stratified_by_jobs(study, bins=[(8, 14)])
        v1 = strat[1]["8-14"]
        v3 = strat[3]["8-14"]
        if not (np.isnan(v1) or np.isnan(v3)):
            assert v3 < v1


class TestFig10:
    def test_points_cover_deck(self, study):
        points = run_probability_vs_energy(study)
        for v in (1, 2, 3):
            assert len(points[v]) >= 10
            assert all(0.0 <= p <= 1.0 for _, p in points[v])

    def test_no_significant_energy_correlation(self, study):
        """Even under EBA, job energy does not predict run probability."""
        for v, (r, p) in energy_run_correlation(study).items():
            assert p > 0.01 or abs(r) < 0.5, (v, r, p)


class TestValidation:
    def test_run_study_rejects_bad_args(self):
        with pytest.raises(ValueError):
            run_study(n_users=0)
        with pytest.raises(ValueError):
            run_study(n_users=5, plays_per_user=1)
