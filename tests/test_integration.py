"""Cross-module integration tests: the paper's pipelines end to end."""

import pytest

from repro.accounting.base import pricing_for_node
from repro.accounting.methods import CarbonBasedAccounting, EnergyBasedAccounting
from repro.faas.platform import GreenAccess
from repro.hardware.catalog import (
    CPU_EXPERIMENT_NODES,
    CPU_EXPERIMENT_YEAR,
    TABLE1_CARBON_INTENSITY,
)


class TestPlatformToLedger:
    """Submit -> execute -> monitor -> charge -> ledger, repeatedly."""

    def test_many_submissions_conserve_ledger(self):
        platform = GreenAccess(method=EnergyBasedAccounting(), unit="J")
        for node in CPU_EXPERIMENT_NODES:
            platform.register_machine(
                node,
                pricing_for_node(
                    node, CPU_EXPERIMENT_YEAR, TABLE1_CARBON_INTENSITY[node.name]
                ),
            )
        platform.grant("alice", 5_000.0)
        platform.grant("bob", 5_000.0)

        total_charged = 0.0
        for user, fn in [
            ("alice", "Cholesky"),
            ("bob", "Pagerank"),
            ("alice", "BFS"),
            ("bob", "MatMul"),
            ("alice", "DNA Viz."),
        ]:
            receipt = platform.submit(user, fn)
            total_charged += receipt.charged

        assert platform.ledger.total_spent() == pytest.approx(total_charged)
        balances = [platform.ledger.get(u).balance for u in ("alice", "bob")]
        assert all(b >= 0 for b in balances)
        assert sum(balances) == pytest.approx(10_000.0 - total_charged)

    def test_platform_steering_reduces_fleet_energy(self):
        """Users who accept the platform's cheapest-EBA placement spend
        less energy than users who always pick the fastest machine —
        the paper's core incentive claim on the §4 hardware."""
        from repro.apps.registry import APP_REGISTRY, CPU_APP_NAMES

        def fleet_energy(pick):
            return sum(
                APP_REGISTRY[app].runs[pick(app)].energy_j for app in CPU_APP_NAMES
            )

        platform = GreenAccess(method=EnergyBasedAccounting())
        for node in CPU_EXPERIMENT_NODES:
            platform.register_machine(
                node,
                pricing_for_node(
                    node, CPU_EXPERIMENT_YEAR, TABLE1_CARBON_INTENSITY[node.name]
                ),
            )

        def cheapest(app):
            estimates = platform.estimate_costs(app)
            return min(estimates, key=estimates.__getitem__)

        def fastest(app):
            return APP_REGISTRY[app].fastest_machine()

        assert fleet_energy(cheapest) < fleet_energy(fastest)


class TestSimulationAccountingConsistency:
    """The simulator must charge exactly what the accounting library
    would charge for the same usage records."""

    def test_costs_recomputable(self, sim_machines, small_workload):
        from repro.accounting.base import UsageRecord
        from repro.sim.engine import MultiClusterSimulator, pricing_for_sim_machine
        from repro.sim.policies import GreedyPolicy

        method = CarbonBasedAccounting()
        result = MultiClusterSimulator(
            sim_machines, method, GreedyPolicy()
        ).run(small_workload)
        pricings = {
            name: pricing_for_sim_machine(m) for name, m in sim_machines.items()
        }
        for outcome in result.outcomes[:200]:
            record = UsageRecord(
                machine=outcome.machine,
                duration_s=outcome.runtime_s,
                energy_j=outcome.energy_j,
                cores=outcome.cores,
                start_time_s=outcome.start_s,
            )
            assert method.charge(record, pricings[outcome.machine]) == pytest.approx(
                outcome.cost, rel=1e-9
            )


class TestGameUsesSimulationSubstrate:
    def test_game_machines_are_table5_machines(self):
        from repro.study.game import Game, GameVersion

        game = Game(GameVersion.V1)
        assert set(game.machines) == {"FASTER", "Desktop", "IC", "Theta"}

    def test_game_energy_consistent_with_curves(self):
        """A game job's per-machine energies follow the same performance
        curves as the batch simulator."""
        from repro.study.game import Game, GameVersion

        game = Game(GameVersion.V2)
        for job in game.deck:
            if "Theta" in job.machines and "IC" in job.machines:
                assert job.runtime_h["Theta"] > job.runtime_h["IC"]
