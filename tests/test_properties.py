"""Cross-cutting property-based tests (hypothesis).

These encode the economic and physical invariants the whole reproduction
rests on, over randomized inputs rather than the calibrated fixtures:

* accounting charges are non-negative, monotone in usage, and linear
  where the formulas say they are;
* EBA interpolates between the Energy and time-based extremes;
* CBA decomposes exactly into operational + embodied;
* depreciation schedules conserve the embodied total;
* the allocation ledger never goes negative under arbitrary workloads;
* the task-graph scheduler never beats its critical path.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.accounting.allocation import Allocation, AllocationExhausted
from repro.accounting.base import MachinePricing, UsageRecord
from repro.accounting.methods import (
    CarbonBasedAccounting,
    EnergyAccounting,
    EnergyBasedAccounting,
    PeakAccounting,
    RuntimeAccounting,
)
from repro.carbon.embodied import DoubleDecliningBalance, LinearDepreciation
from repro.carbon.intensity import constant_trace

# ---------------------------------------------------------------------------
# Strategies
# ---------------------------------------------------------------------------
durations = st.floats(min_value=1e-3, max_value=1e6)
energies = st.floats(min_value=0.0, max_value=1e10)
core_counts = st.integers(min_value=1, max_value=256)
intensities = st.floats(min_value=0.0, max_value=2000.0)
tdps = st.floats(min_value=10.0, max_value=5000.0)


@st.composite
def records(draw):
    return UsageRecord(
        machine="m",
        duration_s=draw(durations),
        energy_j=draw(energies),
        cores=draw(core_counts),
    )


@st.composite
def pricings(draw):
    total = draw(st.integers(min_value=1, max_value=512))
    return MachinePricing(
        name="m",
        total_cores=total,
        tdp_watts=draw(tdps),
        peak_rating=draw(st.floats(min_value=0.1, max_value=100.0)),
        embodied_carbon_g=draw(st.floats(min_value=0.0, max_value=1e7)),
        age_years=draw(st.integers(min_value=0, max_value=10)),
        intensity=constant_trace("flat", draw(intensities)),
    )


ALL_METHODS = [
    RuntimeAccounting(),
    EnergyAccounting(),
    PeakAccounting(),
    EnergyBasedAccounting(),
    CarbonBasedAccounting(),
]


# ---------------------------------------------------------------------------
# Accounting invariants
# ---------------------------------------------------------------------------
@settings(max_examples=150)
@given(records(), pricings())
def test_all_charges_non_negative(record, pricing):
    for method in ALL_METHODS:
        assert method.charge(record, pricing) >= 0.0


@settings(max_examples=100)
@given(records(), pricings(), st.floats(min_value=1.01, max_value=10.0))
def test_charges_monotone_in_duration(record, pricing, factor):
    from dataclasses import replace

    longer = replace(record, duration_s=record.duration_s * factor)
    for method in ALL_METHODS:
        assert method.charge(longer, pricing) >= method.charge(record, pricing) - 1e-9


@settings(max_examples=100)
@given(records(), pricings(), st.floats(min_value=1.01, max_value=10.0))
def test_charges_monotone_in_energy(record, pricing, factor):
    from dataclasses import replace

    hotter = replace(record, energy_j=record.energy_j * factor)
    for method in ALL_METHODS:
        assert method.charge(hotter, pricing) >= method.charge(record, pricing) - 1e-9


@settings(max_examples=100)
@given(records(), pricings())
def test_eba_between_energy_and_potential(record, pricing):
    """EBA is the average of the Energy charge and the potential-use
    energy, so it lies between the two."""
    eba = EnergyBasedAccounting().charge(record, pricing)
    energy = record.energy_j
    potential = record.duration_s * pricing.attributed_tdp_watts(record.occupancy)
    lo, hi = sorted((energy, potential))
    assert lo - 1e-9 <= eba <= hi + 1e-9
    assert eba == pytest.approx((energy + potential) / 2.0, rel=1e-12, abs=1e-12)


@settings(max_examples=100)
@given(records(), pricings())
def test_cba_decomposition_exact(record, pricing):
    cba = CarbonBasedAccounting()
    total = cba.charge(record, pricing)
    assert total == pytest.approx(
        cba.operational_charge(record, pricing) + cba.embodied_charge(record, pricing),
        rel=1e-12, abs=1e-12,
    )


@settings(max_examples=100)
@given(records(), pricings())
def test_runtime_and_peak_linear_in_cores(record, pricing):
    from dataclasses import replace

    doubled = replace(record, cores=record.cores * 2, provisioned_cores=None)
    for method in (RuntimeAccounting(), PeakAccounting()):
        assert method.charge(doubled, pricing) == pytest.approx(
            2 * method.charge(record, pricing)
        )


@settings(max_examples=100)
@given(
    records(),
    pricings(),
    st.floats(min_value=0.0, max_value=1.0),
    st.floats(min_value=0.0, max_value=1.0),
)
def test_eba_monotone_in_beta(record, pricing, beta1, beta2):
    lo, hi = sorted((beta1, beta2))
    charge_lo = EnergyBasedAccounting(beta=lo).charge(record, pricing)
    charge_hi = EnergyBasedAccounting(beta=hi).charge(record, pricing)
    assert charge_lo <= charge_hi + 1e-9


# ---------------------------------------------------------------------------
# Depreciation invariants
# ---------------------------------------------------------------------------
@settings(max_examples=100)
@given(
    st.floats(min_value=0.0, max_value=1e9),
    st.integers(min_value=1, max_value=10),
)
def test_linear_schedule_conserves_total(total, lifetime):
    lin = LinearDepreciation(lifetime_years=lifetime)
    charged = sum(lin.yearly_charge(total, y) for y in range(lifetime + 5))
    assert charged == pytest.approx(total, rel=1e-9, abs=1e-6)


@settings(max_examples=100)
@given(st.floats(min_value=1.0, max_value=1e9), st.integers(min_value=2, max_value=10))
def test_ddb_always_charges_more_in_year_zero(total, lifetime):
    ddb = DoubleDecliningBalance(lifetime_years=lifetime)
    lin = LinearDepreciation(lifetime_years=lifetime)
    assert ddb.yearly_charge(total, 0) == pytest.approx(
        2 * lin.yearly_charge(total, 0)
    )


@settings(max_examples=100)
@given(st.floats(min_value=0.0, max_value=1e9), st.integers(min_value=0, max_value=30))
def test_ddb_charges_bounded_by_remaining(total, age):
    ddb = DoubleDecliningBalance()
    assert 0.0 <= ddb.yearly_charge(total, age) <= ddb.remaining(total, age) + 1e-9


# ---------------------------------------------------------------------------
# Ledger invariants
# ---------------------------------------------------------------------------
@settings(max_examples=100)
@given(
    st.floats(min_value=0.0, max_value=1e6),
    st.lists(st.floats(min_value=0.0, max_value=1e5), max_size=50),
)
def test_ledger_never_negative(initial, debits):
    alloc = Allocation(user="u", unit="x", balance=initial)
    for amount in debits:
        try:
            alloc.debit(amount)
        except AllocationExhausted:
            pass
    assert alloc.balance >= -1e-9
    assert alloc.spent + alloc.balance == pytest.approx(alloc.granted)


# ---------------------------------------------------------------------------
# Scheduling invariants
# ---------------------------------------------------------------------------
@settings(max_examples=30, deadline=None)
@given(
    st.lists(st.floats(min_value=0.01, max_value=5.0), min_size=1, max_size=25),
    st.integers(min_value=1, max_value=8),
    st.randoms(use_true_random=False),
)
def test_taskgraph_makespan_bounds(costs, workers, rnd):
    """Greedy list scheduling respects both classic bounds:
    max(critical path, total/workers) <= makespan <= total."""
    from repro.apps.taskgraph import TaskGraph

    g = TaskGraph()
    names = []
    for i, cost in enumerate(costs):
        k = rnd.randint(0, min(2, len(names)))
        deps = rnd.sample(names, k) if k else []
        g.add(f"t{i}", lambda: None, deps=deps, cost=cost)
        names.append(f"t{i}")
    stats = g.execute(workers=workers)
    total = sum(costs)
    assert stats.makespan <= total + 1e-9
    assert stats.makespan >= stats.critical_path - 1e-9
    assert stats.makespan >= total / workers - 1e-9


# ---------------------------------------------------------------------------
# Trace invariants
# ---------------------------------------------------------------------------
@settings(max_examples=50)
@given(
    st.lists(st.floats(min_value=0.0, max_value=1000.0), min_size=1, max_size=72),
    st.floats(min_value=0.0, max_value=1e6),
    st.floats(min_value=0.0, max_value=1e5),
)
def test_trace_average_bounded(values, start, duration):
    from repro.carbon.intensity import CarbonIntensityTrace

    trace = CarbonIntensityTrace("t", np.array(values))
    avg = trace.average_over(start, duration)
    slack = 1e-6 * (1.0 + trace.max)  # float noise in the width ratios
    assert trace.min - slack <= avg <= trace.max + slack
