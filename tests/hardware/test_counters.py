"""Performance-counter trace generation."""

import numpy as np
import pytest

from repro.hardware.counters import (
    BALANCED,
    COMPUTE_BOUND,
    MEMORY_BOUND,
    CounterSample,
    CounterTraceGenerator,
    WorkloadSignature,
    samples_to_matrix,
)


class TestSignature:
    def test_llc_rate_derived_from_mpki(self):
        sig = WorkloadSignature(ips=1e9, llc_mpki=10.0)
        assert sig.llc_misses_per_sec == pytest.approx(1e7)

    def test_memory_bound_has_more_misses_than_compute_bound(self):
        assert MEMORY_BOUND.llc_misses_per_sec > COMPUTE_BOUND.llc_misses_per_sec
        assert MEMORY_BOUND.ips < COMPUTE_BOUND.ips


class TestGenerator:
    def test_sample_count_matches_duration(self):
        gen = CounterTraceGenerator(BALANCED, sample_period_s=1.0)
        assert len(gen.generate(pid=1, duration_s=10.0)) == 10

    def test_short_run_yields_one_sample(self):
        gen = CounterTraceGenerator(BALANCED)
        assert len(gen.generate(pid=1, duration_s=0.1)) == 1

    def test_mean_tracks_signature(self):
        gen = CounterTraceGenerator(
            BALANCED, cores=4, noise_cv=0.1, rng=np.random.default_rng(0)
        )
        samples = gen.generate(pid=1, duration_s=2000.0)
        mean_ips = np.mean([s.instructions_per_sec for s in samples])
        assert mean_ips == pytest.approx(BALANCED.ips * 4, rel=0.05)

    def test_zero_noise_is_deterministic(self):
        gen = CounterTraceGenerator(BALANCED, noise_cv=0.0)
        samples = gen.generate(pid=1, duration_s=5.0)
        values = {s.instructions_per_sec for s in samples}
        assert len(values) == 1

    def test_timestamps_increase(self):
        gen = CounterTraceGenerator(BALANCED)
        samples = gen.generate(pid=1, duration_s=5.0)
        times = [s.timestamp for s in samples]
        assert times == sorted(times)

    def test_rejects_bad_params(self):
        with pytest.raises(ValueError):
            CounterTraceGenerator(BALANCED, cores=0)
        with pytest.raises(ValueError):
            CounterTraceGenerator(BALANCED, sample_period_s=0)
        with pytest.raises(ValueError):
            CounterTraceGenerator(BALANCED, noise_cv=-0.1)


class TestMatrix:
    def test_matrix_shape_and_order(self):
        samples = [
            CounterSample(pid=1, timestamp=1.0, instructions_per_sec=5.0,
                          llc_misses_per_sec=2.0),
            CounterSample(pid=1, timestamp=2.0, instructions_per_sec=7.0,
                          llc_misses_per_sec=3.0),
        ]
        mat = samples_to_matrix(samples)
        assert mat.shape == (2, 2)
        assert mat[0, 0] == 5.0 and mat[1, 1] == 3.0

    def test_empty_matrix(self):
        assert samples_to_matrix([]).shape == (0, 2)
