"""Simulated NVML board power telemetry."""

import numpy as np
import pytest

from repro.hardware.catalog import A100, P100, V100
from repro.hardware.nvml import SimulatedNVML


@pytest.fixture
def nvml() -> SimulatedNVML:
    return SimulatedNVML([V100, V100, A100])


class TestPowerQueries:
    def test_device_count(self, nvml):
        assert nvml.device_count == 3

    def test_idle_power_is_fraction_of_tdp(self, nvml):
        assert nvml.power_usage_mw(0, 0.0) == pytest.approx(
            0.12 * 250.0 * 1000.0, rel=0.01
        )

    def test_power_clamped_to_limit(self, nvml):
        nvml.set_load(0, lambda t: 10_000.0)  # way past a V100's 250 W
        assert nvml.power_usage_mw(0, 0.0) == nvml.power_limit_mw(0)

    def test_negative_power_rejected(self, nvml):
        nvml.set_load(0, lambda t: -5.0)
        with pytest.raises(ValueError):
            nvml.power_usage_mw(0, 0.0)

    def test_boards_independent(self, nvml):
        nvml.set_load(0, lambda t: 200.0)
        assert nvml.power_usage_mw(0, 0.0) == 200_000
        assert nvml.power_usage_mw(1, 0.0) == pytest.approx(30_000, rel=0.01)

    def test_power_limits_per_model(self):
        nvml = SimulatedNVML([P100, A100])
        assert nvml.power_limit_mw(0) == 250_000
        assert nvml.power_limit_mw(1) == 400_000

    def test_needs_a_board(self):
        with pytest.raises(ValueError):
            SimulatedNVML([])


class TestSampledIntegration:
    def test_constant_power_exact(self, nvml):
        nvml.set_load(0, lambda t: 200.0)
        energy = nvml.integrate_energy_j(0, 0.0, 100.0, sample_period_s=1.0)
        assert energy == pytest.approx(200.0 * 100.0, rel=1e-6)

    def test_linear_ramp_trapezoid_exact(self, nvml):
        nvml.set_load(0, lambda t: 2.0 * t)
        energy = nvml.integrate_energy_j(0, 0.0, 100.0, sample_period_s=1.0)
        # Integral of 2t over [0, 100] = 10,000 J; trapezoid is exact on
        # linear signals up to mW quantization.
        assert energy == pytest.approx(10_000.0, rel=1e-3)

    def test_aliasing_error_shrinks_with_cadence(self, nvml):
        nvml.set_load(0, lambda t: 150.0 + 100.0 * np.sin(t / 3.0) ** 2)
        truth = nvml.integrate_energy_j(0, 0.0, 60.0, sample_period_s=0.01)
        coarse = nvml.integrate_energy_j(0, 0.0, 60.0, sample_period_s=5.0)
        fine = nvml.integrate_energy_j(0, 0.0, 60.0, sample_period_s=0.5)
        assert abs(fine - truth) < abs(coarse - truth)

    def test_zero_window(self, nvml):
        assert nvml.integrate_energy_j(0, 5.0, 5.0) == 0.0

    def test_validation(self, nvml):
        with pytest.raises(ValueError):
            nvml.integrate_energy_j(0, 10.0, 5.0)
        with pytest.raises(ValueError):
            nvml.integrate_energy_j(0, 0.0, 5.0, sample_period_s=0.0)

    def test_node_energy_sums_boards(self, nvml):
        for i in range(3):
            nvml.set_load(i, lambda t: 100.0)
        assert nvml.node_energy_j(0.0, 10.0) == pytest.approx(3_000.0, rel=1e-6)

    def test_table3_scale_plausibility(self):
        """Two P100s at ~64% TDP for 1396 s give roughly the published
        635 kJ — the catalog profile is physically consistent."""
        nvml = SimulatedNVML([P100, P100])
        for i in range(2):
            nvml.set_load(i, lambda t: 0.91 * 250.0)
        energy = nvml.node_energy_j(0.0, 1396.0)
        assert energy == pytest.approx(635e3, rel=0.01)
