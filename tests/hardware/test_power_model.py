"""Power-model fitting and per-process energy disaggregation."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.hardware.power_model import (
    LinearPowerModel,
    PowerModelFitter,
    disaggregate_energy,
)


def fitted_model(idle=100.0, w=(2e-9, 5e-8), n=50, noise=0.0, seed=0):
    rng = np.random.default_rng(seed)
    fitter = PowerModelFitter()
    weights = np.array(w)
    for _ in range(n):
        counters = rng.uniform(0, [5e9, 5e7])
        power = idle + counters @ weights + rng.normal(0, noise)
        fitter.observe(counters, max(0.0, power))
    # Idle observations pin the intercept.
    for _ in range(5):
        fitter.observe(np.zeros(2), idle)
    return fitter.fit()


class TestFitter:
    def test_recovers_known_model(self):
        model = fitted_model()
        assert model.idle_watts == pytest.approx(100.0, rel=0.02)
        assert model.weights[0] == pytest.approx(2e-9, rel=0.05)
        assert model.weights[1] == pytest.approx(5e-8, rel=0.05)

    def test_robust_to_noise(self):
        model = fitted_model(noise=5.0, n=400)
        assert model.idle_watts == pytest.approx(100.0, rel=0.1)

    def test_weights_never_negative(self):
        rng = np.random.default_rng(1)
        fitter = PowerModelFitter()
        # Anti-correlated feature: naive OLS would give it negative weight.
        for _ in range(50):
            x0 = rng.uniform(0, 1e9)
            fitter.observe(np.array([x0, 1e7 - x0 / 100]), 50 + 2e-8 * x0)
        model = fitter.fit()
        assert np.all(model.weights >= 0)
        assert model.idle_watts >= 0

    def test_requires_minimum_observations(self):
        fitter = PowerModelFitter()
        fitter.observe(np.ones(2), 1.0)
        with pytest.raises(RuntimeError, match="at least"):
            fitter.fit()

    def test_bounded_history(self):
        fitter = PowerModelFitter(max_observations=16)
        for i in range(100):
            fitter.observe(np.array([float(i), 1.0]), 1.0)
        assert fitter.n_observations == 16

    def test_rejects_negative_power(self):
        fitter = PowerModelFitter()
        with pytest.raises(ValueError):
            fitter.observe(np.ones(2), -1.0)

    def test_rejects_wrong_shape(self):
        fitter = PowerModelFitter()
        with pytest.raises(ValueError):
            fitter.observe(np.ones(3), 1.0)


class TestModel:
    def test_predict_is_affine(self):
        model = LinearPowerModel(idle_watts=10.0, weights=np.array([1.0, 2.0]))
        assert model.predict(np.array([3.0, 4.0]))[0] == pytest.approx(21.0)

    def test_dynamic_excludes_idle(self):
        model = LinearPowerModel(idle_watts=10.0, weights=np.array([1.0, 2.0]))
        assert model.dynamic_power(np.array([3.0, 4.0]))[0] == pytest.approx(11.0)

    def test_wrong_weight_count_rejected(self):
        with pytest.raises(ValueError):
            LinearPowerModel(idle_watts=0.0, weights=np.array([1.0]))


class TestDisaggregation:
    MODEL = LinearPowerModel(idle_watts=100.0, weights=np.array([1e-9, 0.0]))

    def test_splits_proportionally_to_modelled_power(self):
        shares = disaggregate_energy(
            self.MODEL,
            interval_energy_j=160.0,  # 100 idle + 60 dynamic over 1 s
            interval_s=1.0,
            process_counters={1: np.array([2e10, 0]), 2: np.array([4e10, 0])},
            process_cores={1: 1, 2: 1},
            total_cores=8,
        )
        assert shares[1] == pytest.approx(20.0)
        assert shares[2] == pytest.approx(40.0)

    def test_idle_energy_not_charged_by_default(self):
        shares = disaggregate_energy(
            self.MODEL, 160.0, 1.0,
            {1: np.array([6e10, 0])}, {1: 4}, total_cores=8,
        )
        assert shares[1] == pytest.approx(60.0)

    def test_charge_idle_splits_by_core_share(self):
        shares = disaggregate_energy(
            self.MODEL, 160.0, 1.0,
            {1: np.array([6e10, 0])}, {1: 4}, total_cores=8,
            charge_idle=True,
        )
        assert shares[1] == pytest.approx(60.0 + 100.0 * 4 / 8)

    def test_no_counter_activity_falls_back_to_cores(self):
        shares = disaggregate_energy(
            self.MODEL, 130.0, 1.0,
            {1: np.zeros(2), 2: np.zeros(2)}, {1: 3, 2: 1}, total_cores=8,
        )
        assert shares[1] == pytest.approx(30.0 * 0.75)
        assert shares[2] == pytest.approx(30.0 * 0.25)

    def test_empty_process_set(self):
        assert disaggregate_energy(self.MODEL, 100.0, 1.0, {}, {}, 8) == {}

    def test_rejects_bad_inputs(self):
        with pytest.raises(ValueError):
            disaggregate_energy(self.MODEL, -1.0, 1.0, {}, {}, 8)
        with pytest.raises(ValueError):
            disaggregate_energy(self.MODEL, 1.0, 0.0, {}, {}, 8)

    @settings(max_examples=50)
    @given(
        st.floats(min_value=0, max_value=1e4),
        st.lists(
            st.floats(min_value=0, max_value=1e11), min_size=1, max_size=5
        ),
    )
    def test_attribution_conserves_energy(self, energy, activities):
        counters = {
            pid: np.array([a, a / 100]) for pid, a in enumerate(activities)
        }
        cores = {pid: 1 for pid in counters}
        shares = disaggregate_energy(
            self.MODEL, energy, 1.0, counters, cores, total_cores=8,
            charge_idle=True,
        )
        assert sum(shares.values()) <= energy + 1e-6
        assert all(v >= 0 for v in shares.values())
