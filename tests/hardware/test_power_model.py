"""Power-model fitting and per-process energy disaggregation."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.hardware.power_model import (
    LinearPowerModel,
    PowerModelFitter,
    disaggregate_energy,
)


def fitted_model(idle=100.0, w=(2e-9, 5e-8), n=50, noise=0.0, seed=0):
    rng = np.random.default_rng(seed)
    fitter = PowerModelFitter()
    weights = np.array(w)
    for _ in range(n):
        counters = rng.uniform(0, [5e9, 5e7])
        power = idle + counters @ weights + rng.normal(0, noise)
        fitter.observe(counters, max(0.0, power))
    # Idle observations pin the intercept.
    for _ in range(5):
        fitter.observe(np.zeros(2), idle)
    return fitter.fit()


class TestFitter:
    def test_recovers_known_model(self):
        model = fitted_model()
        assert model.idle_watts == pytest.approx(100.0, rel=0.02)
        assert model.weights[0] == pytest.approx(2e-9, rel=0.05)
        assert model.weights[1] == pytest.approx(5e-8, rel=0.05)

    def test_robust_to_noise(self):
        model = fitted_model(noise=5.0, n=400)
        assert model.idle_watts == pytest.approx(100.0, rel=0.1)

    def test_weights_never_negative(self):
        rng = np.random.default_rng(1)
        fitter = PowerModelFitter()
        # Anti-correlated feature: naive OLS would give it negative weight.
        for _ in range(50):
            x0 = rng.uniform(0, 1e9)
            fitter.observe(np.array([x0, 1e7 - x0 / 100]), 50 + 2e-8 * x0)
        model = fitter.fit()
        assert np.all(model.weights >= 0)
        assert model.idle_watts >= 0

    def test_requires_minimum_observations(self):
        fitter = PowerModelFitter()
        fitter.observe(np.ones(2), 1.0)
        with pytest.raises(RuntimeError, match="at least"):
            fitter.fit()

    def test_bounded_history(self):
        fitter = PowerModelFitter(max_observations=16)
        for i in range(100):
            fitter.observe(np.array([float(i), 1.0]), 1.0)
        assert fitter.n_observations == 16

    def test_rejects_negative_power(self):
        fitter = PowerModelFitter()
        with pytest.raises(ValueError):
            fitter.observe(np.ones(2), -1.0)

    def test_rejects_wrong_shape(self):
        fitter = PowerModelFitter()
        with pytest.raises(ValueError):
            fitter.observe(np.ones(3), 1.0)

    @staticmethod
    def _batch_reference_fit(x, y, ridge=1e-9):
        """The pre-incremental implementation: full design matrix OLS."""
        x = np.array(x)
        y = np.array(y)
        scale = x.std(axis=0)
        scale[scale == 0] = 1.0
        xs = x / scale
        a = np.hstack([np.ones((len(xs), 1)), xs])
        gram = a.T @ a + ridge * np.eye(a.shape[1])
        coef = np.linalg.solve(gram, a.T @ y)
        return max(0.0, float(coef[0])), np.clip(coef[1:] / scale, 0.0, None)

    def test_incremental_moments_match_batch_fit(self):
        rng = np.random.default_rng(3)
        fitter = PowerModelFitter()
        xs, ys = [], []
        for _ in range(120):
            counters = rng.uniform(0, [5e9, 5e7])
            power = 80.0 + counters @ np.array([2e-9, 5e-8]) + rng.normal(0, 2.0)
            xs.append(counters)
            ys.append(max(0.0, power))
            fitter.observe(counters, ys[-1])
        model = fitter.fit()
        idle_ref, weights_ref = self._batch_reference_fit(xs, ys)
        assert model.idle_watts == pytest.approx(idle_ref, rel=1e-9, abs=1e-9)
        assert np.allclose(model.weights, weights_ref, rtol=1e-9)

    def test_incremental_fit_after_eviction_matches_window(self):
        """Downdated moments must describe exactly the retained window."""
        rng = np.random.default_rng(5)
        fitter = PowerModelFitter(max_observations=32)
        xs, ys = [], []
        for _ in range(200):
            counters = rng.uniform(0, [5e9, 5e7])
            power = 120.0 + counters @ np.array([1e-9, 8e-8]) + rng.normal(0, 1.0)
            xs.append(counters)
            ys.append(max(0.0, power))
            fitter.observe(counters, ys[-1])
        model = fitter.fit()
        idle_ref, weights_ref = self._batch_reference_fit(xs[-32:], ys[-32:])
        assert model.idle_watts == pytest.approx(idle_ref, rel=1e-6, abs=1e-6)
        assert np.allclose(model.weights, weights_ref, rtol=1e-6)

    def test_refit_per_interval_is_cheap_once_warm(self):
        """Refitting must not scale with history length (the moments are
        O(d^2)); a generous ratio guard catches an O(n) rebuild."""
        import time

        rng = np.random.default_rng(7)
        fitter = PowerModelFitter(max_observations=4096)
        for _ in range(10):
            fitter.observe(rng.uniform(0, [5e9, 5e7]), rng.uniform(50, 400))
        t0 = time.perf_counter()
        for _ in range(50):
            fitter.fit()
        small = time.perf_counter() - t0
        for _ in range(4000):
            fitter.observe(rng.uniform(0, [5e9, 5e7]), rng.uniform(50, 400))
        t0 = time.perf_counter()
        for _ in range(50):
            fitter.fit()
        large = time.perf_counter() - t0
        assert large < small * 20  # O(n) would be ~400x


class TestModel:
    def test_predict_is_affine(self):
        model = LinearPowerModel(idle_watts=10.0, weights=np.array([1.0, 2.0]))
        assert model.predict(np.array([3.0, 4.0]))[0] == pytest.approx(21.0)

    def test_dynamic_excludes_idle(self):
        model = LinearPowerModel(idle_watts=10.0, weights=np.array([1.0, 2.0]))
        assert model.dynamic_power(np.array([3.0, 4.0]))[0] == pytest.approx(11.0)

    def test_wrong_weight_count_rejected(self):
        with pytest.raises(ValueError):
            LinearPowerModel(idle_watts=0.0, weights=np.array([1.0]))


class TestDisaggregation:
    MODEL = LinearPowerModel(idle_watts=100.0, weights=np.array([1e-9, 0.0]))

    def test_splits_proportionally_to_modelled_power(self):
        shares = disaggregate_energy(
            self.MODEL,
            interval_energy_j=160.0,  # 100 idle + 60 dynamic over 1 s
            interval_s=1.0,
            process_counters={1: np.array([2e10, 0]), 2: np.array([4e10, 0])},
            process_cores={1: 1, 2: 1},
            total_cores=8,
        )
        assert shares[1] == pytest.approx(20.0)
        assert shares[2] == pytest.approx(40.0)

    def test_idle_energy_not_charged_by_default(self):
        shares = disaggregate_energy(
            self.MODEL, 160.0, 1.0,
            {1: np.array([6e10, 0])}, {1: 4}, total_cores=8,
        )
        assert shares[1] == pytest.approx(60.0)

    def test_charge_idle_splits_by_core_share(self):
        shares = disaggregate_energy(
            self.MODEL, 160.0, 1.0,
            {1: np.array([6e10, 0])}, {1: 4}, total_cores=8,
            charge_idle=True,
        )
        assert shares[1] == pytest.approx(60.0 + 100.0 * 4 / 8)

    def test_no_counter_activity_falls_back_to_cores(self):
        shares = disaggregate_energy(
            self.MODEL, 130.0, 1.0,
            {1: np.zeros(2), 2: np.zeros(2)}, {1: 3, 2: 1}, total_cores=8,
        )
        assert shares[1] == pytest.approx(30.0 * 0.75)
        assert shares[2] == pytest.approx(30.0 * 0.25)

    def test_empty_process_set(self):
        assert disaggregate_energy(self.MODEL, 100.0, 1.0, {}, {}, 8) == {}

    def test_rejects_bad_inputs(self):
        with pytest.raises(ValueError):
            disaggregate_energy(self.MODEL, -1.0, 1.0, {}, {}, 8)
        with pytest.raises(ValueError):
            disaggregate_energy(self.MODEL, 1.0, 0.0, {}, {}, 8)

    @settings(max_examples=50)
    @given(
        st.floats(min_value=0, max_value=1e4),
        st.lists(
            st.floats(min_value=0, max_value=1e11), min_size=1, max_size=5
        ),
    )
    def test_attribution_conserves_energy(self, energy, activities):
        counters = {
            pid: np.array([a, a / 100]) for pid, a in enumerate(activities)
        }
        cores = {pid: 1 for pid in counters}
        shares = disaggregate_energy(
            self.MODEL, energy, 1.0, counters, cores, total_cores=8,
            charge_idle=True,
        )
        assert sum(shares.values()) <= energy + 1e-6
        assert all(v >= 0 for v in shares.values())
