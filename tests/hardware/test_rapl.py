"""Simulated RAPL: integration accuracy and wrap-around semantics."""

import pytest
from hypothesis import given, strategies as st

from repro.hardware.rapl import (
    COUNTER_WRAP,
    DEFAULT_ENERGY_UNIT_J,
    RAPLDomain,
    SimulatedRAPL,
    counter_delta_joules,
)


class TestIntegration:
    def test_constant_power(self):
        meter = SimulatedRAPL(package_power=lambda t: 100.0)
        meter.advance(10.0)
        assert meter.read_joules() == pytest.approx(1000.0, rel=1e-4)

    def test_linear_ramp_midpoint_exact(self):
        # Midpoint rule integrates linear power exactly.
        meter = SimulatedRAPL(package_power=lambda t: 10.0 * t)
        meter.advance(10.0)
        assert meter.read_joules() == pytest.approx(500.0, rel=1e-6)

    def test_dram_default_fraction(self):
        meter = SimulatedRAPL(package_power=lambda t: 100.0)
        meter.advance(10.0)
        assert meter.read_joules(RAPLDomain.DRAM) == pytest.approx(120.0, rel=1e-3)

    def test_negative_power_rejected(self):
        meter = SimulatedRAPL(package_power=lambda t: -1.0)
        with pytest.raises(ValueError, match="negative power"):
            meter.advance(1.0)

    def test_time_cannot_go_backwards(self):
        meter = SimulatedRAPL(package_power=lambda t: 1.0)
        with pytest.raises(ValueError):
            meter.advance(-0.5)

    def test_zero_advance_is_noop(self):
        meter = SimulatedRAPL(package_power=lambda t: 100.0)
        before = meter.read_raw()
        meter.advance(0.0)
        assert meter.read_raw() == before

    def test_residual_energy_not_lost(self):
        """Sub-unit energy accumulates across advances instead of being
        truncated each time."""
        meter = SimulatedRAPL(package_power=lambda t: DEFAULT_ENERGY_UNIT_J / 2)
        for _ in range(10):
            meter.advance(1.0)
        # 10 half-unit seconds = 5 units.
        assert meter.read_raw() == 5

    def test_time_tracks_advances(self):
        meter = SimulatedRAPL(package_power=lambda t: 1.0, start_time=100.0)
        meter.advance(2.5)
        assert meter.now == pytest.approx(102.5)


class TestWrapAround:
    def test_counter_wraps_at_2_32(self):
        # Power chosen so one advance overflows the 32-bit counter.
        joules_to_wrap = COUNTER_WRAP * DEFAULT_ENERGY_UNIT_J
        meter = SimulatedRAPL(package_power=lambda t: joules_to_wrap + 100.0)
        meter.advance(1.0)
        assert 0 <= meter.read_raw() < COUNTER_WRAP
        assert meter.read_raw() == pytest.approx(
            100.0 / DEFAULT_ENERGY_UNIT_J, rel=1e-3
        )

    def test_delta_handles_single_wrap(self):
        before = COUNTER_WRAP - 50
        after = 20
        expect = 70 * DEFAULT_ENERGY_UNIT_J
        assert counter_delta_joules(before, after) == pytest.approx(expect)

    def test_delta_without_wrap(self):
        assert counter_delta_joules(100, 600) == pytest.approx(
            500 * DEFAULT_ENERGY_UNIT_J
        )

    @given(
        st.integers(min_value=0, max_value=COUNTER_WRAP - 1),
        st.integers(min_value=0, max_value=COUNTER_WRAP - 1),
    )
    def test_delta_always_non_negative(self, before, after):
        assert counter_delta_joules(before, after) >= 0.0


@given(
    st.floats(min_value=0.1, max_value=500.0),
    st.floats(min_value=0.1, max_value=100.0),
)
def test_energy_matches_power_times_time(power, duration):
    # Keep total energy below the 2^32-unit wrap (65,536 J at the default
    # energy unit) so the raw counter reading is directly comparable.
    if power * duration >= 50_000.0:
        duration = 50_000.0 / power
    meter = SimulatedRAPL(package_power=lambda t: power)
    meter.advance(duration)
    assert meter.read_joules() == pytest.approx(
        power * duration, rel=1e-3, abs=2 * DEFAULT_ENERGY_UNIT_J
    )
