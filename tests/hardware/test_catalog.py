"""The machine catalog must match the paper's published tables."""

import pytest

from repro.carbon.embodied import DoubleDecliningBalance, carbon_rate_per_hour
from repro.hardware.catalog import (
    CHOLESKY_PROVISIONED_CORES,
    CPU_EXPERIMENT_NODES,
    CPU_EXPERIMENT_YEAR,
    GPU_CARBON_RATE,
    SIMULATION_CARBON_INTENSITY,
    SIMULATION_MACHINES,
    SIMULATION_YEAR,
    gpu_experiment_nodes,
)


class TestCPUExperimentNodes:
    def test_names_in_table_order(self, catalog):
        assert catalog.cpu_node_names == [
            "Desktop", "Cascade Lake", "Ice Lake", "Zen3",
        ]

    def test_table4_ages(self, catalog):
        ages = {
            n.name: n.age_years(CPU_EXPERIMENT_YEAR) for n in CPU_EXPERIMENT_NODES
        }
        assert ages == {
            "Desktop": 3, "Cascade Lake": 4, "Ice Lake": 2, "Zen3": 1,
        }

    def test_dual_socket_servers(self, catalog):
        assert catalog.cpu_node("Cascade Lake").sockets == 2
        assert catalog.cpu_node("Desktop").sockets == 1

    def test_cholesky_provisioning_covers_all_nodes(self):
        assert set(CHOLESKY_PROVISIONED_CORES) == {
            n.name for n in CPU_EXPERIMENT_NODES
        }
        for node in CPU_EXPERIMENT_NODES:
            assert CHOLESKY_PROVISIONED_CORES[node.name] <= node.cores

    def test_unknown_node_raises(self, catalog):
        with pytest.raises(KeyError):
            catalog.cpu_node("Raspberry Pi")


class TestSimulationMachines:
    def test_table5_columns(self, catalog):
        expect = {
            "FASTER": (2023, 64, 205.0 * 2, 205.0),
            "Desktop": (2022, 16, 65.0, 6.51),
            "IC": (2021, 48, 205.0 * 2, 136.0),
            "Theta": (2017, 64, 215.0, 110.0),
        }
        for node in SIMULATION_MACHINES:
            year, cores, tdp, idle = expect[node.name]
            assert node.year_deployed == year
            assert node.cores == cores
            assert node.tdp_watts == pytest.approx(tdp)
            assert node.idle_power_watts == pytest.approx(idle)

    def test_table5_carbon_rates_from_embodied_inversion(self):
        """The stored embodied totals must regenerate Table 5's rates."""
        expect = {"FASTER": 105.2, "Desktop": 12.2, "IC": 16.7, "Theta": 2.0}
        for node in SIMULATION_MACHINES:
            rate = carbon_rate_per_hour(
                node.embodied_carbon_g,
                node.age_years(SIMULATION_YEAR),
                DoubleDecliningBalance(),
            )
            assert rate == pytest.approx(expect[node.name], rel=0.01)

    def test_table5_intensities(self):
        assert SIMULATION_CARBON_INTENSITY == {
            "FASTER": 389.0, "Desktop": 454.0, "IC": 454.0, "Theta": 502.0,
        }


class TestGPUCatalog:
    def test_all_table3_configurations_present(self, catalog):
        assert len(gpu_experiment_nodes()) == 10
        assert catalog.gpu_config("V100", 4).count == 4

    def test_carbon_rate_grows_with_count(self):
        for model in ("P100", "V100", "A100"):
            rates = [
                rate for (m, c), rate in sorted(GPU_CARBON_RATE.items())
                if m == model
            ]
            assert rates == sorted(rates)

    def test_newer_gpus_have_higher_rates(self):
        assert (
            GPU_CARBON_RATE[("P100", 1)]
            < GPU_CARBON_RATE[("V100", 1)]
            < GPU_CARBON_RATE[("A100", 1)]
        )

    def test_unknown_config_raises(self, catalog):
        with pytest.raises(KeyError):
            catalog.gpu_config("H100", 1)
