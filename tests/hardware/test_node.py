"""Node/CPU/GPU spec invariants and derived quantities."""

import pytest
from hypothesis import given, strategies as st

from repro.hardware.node import CPUSpec, GPUNodeSpec, GPUSpec, NodeSpec


def make_cpu(cores=8, tdp=100.0) -> CPUSpec:
    return CPUSpec(
        model="test-cpu", cores=cores, tdp_watts=tdp,
        base_clock_ghz=2.5, peak_gflops=cores * 2.0, year=2021,
    )


def make_node(sockets=2, idle=50.0, **kw) -> NodeSpec:
    return NodeSpec(
        name="test-node", cpu=make_cpu(), sockets=sockets,
        idle_power_watts=idle, year_deployed=2020, **kw,
    )


class TestCPUSpec:
    def test_rejects_zero_cores(self):
        with pytest.raises(ValueError, match="cores"):
            make_cpu(cores=0)

    def test_rejects_negative_tdp(self):
        with pytest.raises(ValueError, match="TDP"):
            make_cpu(tdp=-1.0)


class TestNodeSpec:
    def test_total_cores_spans_sockets(self):
        assert make_node(sockets=2).cores == 16

    def test_tdp_spans_sockets(self):
        assert make_node(sockets=2).tdp_watts == 200.0

    def test_peak_per_core(self):
        node = make_node()
        assert node.peak_gflops_per_core == pytest.approx(2.0)

    def test_age_floors_at_zero(self):
        node = make_node()
        assert node.age_years(2018) == 0
        assert node.age_years(2023) == 3

    def test_rejects_negative_idle(self):
        with pytest.raises(ValueError, match="idle"):
            make_node(idle=-5.0)

    def test_rejects_zero_node_count(self):
        with pytest.raises(ValueError, match="node_count"):
            make_node(node_count=0)

    def test_power_at_idle_and_full(self):
        node = make_node()
        assert node.power_at_utilization(0.0) == 50.0
        assert node.power_at_utilization(1.0) == 200.0

    def test_power_clamps_utilization(self):
        node = make_node()
        assert node.power_at_utilization(2.0) == node.power_at_utilization(1.0)
        assert node.power_at_utilization(-1.0) == node.power_at_utilization(0.0)

    def test_energy_is_power_times_time(self):
        node = make_node()
        assert node.energy_at_utilization(0.5, 10.0) == pytest.approx(
            node.power_at_utilization(0.5) * 10.0
        )

    def test_node_hours(self):
        assert make_node().node_hours(7200.0) == pytest.approx(2.0)

    @given(st.floats(min_value=0, max_value=1))
    def test_power_within_idle_tdp_envelope(self, util):
        node = make_node()
        p = node.power_at_utilization(util)
        assert node.idle_power_watts <= p <= node.tdp_watts

    @given(st.floats(min_value=0, max_value=1), st.floats(min_value=0, max_value=1))
    def test_power_monotone_in_utilization(self, u1, u2):
        node = make_node()
        lo, hi = sorted((u1, u2))
        assert node.power_at_utilization(lo) <= node.power_at_utilization(hi) + 1e-12


class TestGPUNodeSpec:
    def test_aggregate_tdp_and_gflops(self):
        gpu = GPUSpec(model="X", year=2020, peak_gflops=1000.0, tdp_watts=250.0)
        config = GPUNodeSpec(gpu=gpu, count=4)
        assert config.tdp_watts == 1000.0
        assert config.peak_gflops == 4000.0
        assert config.name == "Xx4"

    def test_rejects_zero_count(self):
        gpu = GPUSpec(model="X", year=2020, peak_gflops=1000.0, tdp_watts=250.0)
        with pytest.raises(ValueError):
            GPUNodeSpec(gpu=gpu, count=0)

    def test_age(self):
        gpu = GPUSpec(model="X", year=2019, peak_gflops=1.0, tdp_watts=1.0)
        assert GPUNodeSpec(gpu=gpu, count=1).age_years(2024) == 5
