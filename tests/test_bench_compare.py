"""The bench-regression gate itself (``benchmarks/compare.py``).

The gate guards every perf PR, so its own failure modes need pinning:
a regression past the threshold must fail, a guarded benchmark that
vanishes must fail, an absent baseline must skip cleanly only when CI
asks for that, and the GitHub step summary must carry the table.
"""

import json
import os
import subprocess
import sys
from pathlib import Path

import pytest

COMPARE = Path(__file__).resolve().parents[1] / "benchmarks" / "compare.py"

#: Every benchmark the gate insists on, from the gate's own manifest.
sys.path.insert(0, str(COMPARE.parent))
from compare import REQUIRED_BENCHMARKS  # noqa: E402

sys.path.pop(0)


def bench_json(
    path: Path, mins: dict[str, float], rss: dict[str, float] | None = None
) -> Path:
    rss = rss or {}
    benchmarks = []
    for name, value in mins.items():
        entry = {
            "fullname": f"benchmarks/bench_kernels.py::{name}",
            "name": name,
            "stats": {"min": value},
        }
        if name in rss:
            entry["extra_info"] = {"peak_rss_mb": rss[name]}
        benchmarks.append(entry)
    path.write_text(json.dumps({"benchmarks": benchmarks}))
    return path


def run_compare(*args: str, env: dict | None = None):
    merged = dict(os.environ)
    if env:
        merged.update(env)
    return subprocess.run(
        [sys.executable, str(COMPARE), *args],
        capture_output=True,
        text=True,
        env=merged,
    )


@pytest.fixture()
def healthy(tmp_path):
    """Baseline + identical current covering every guarded benchmark."""
    mins = {name: 0.010 * (i + 1) for i, name in enumerate(REQUIRED_BENCHMARKS)}
    baseline = bench_json(tmp_path / "baseline.json", mins)
    current = bench_json(tmp_path / "current.json", mins)
    return baseline, current, mins


class TestVerdicts:
    def test_identical_runs_pass(self, healthy):
        baseline, current, _ = healthy
        proc = run_compare(str(baseline), str(current))
        assert proc.returncode == 0, proc.stderr
        assert "no benchmark regressed" in proc.stdout

    def test_regression_over_threshold_fails(self, tmp_path, healthy):
        baseline, _, mins = healthy
        slow = dict(mins)
        slow[REQUIRED_BENCHMARKS[0]] *= 1.5
        current = bench_json(tmp_path / "slow.json", slow)
        proc = run_compare(str(baseline), str(current), "--threshold", "0.2")
        assert proc.returncode == 1
        assert REQUIRED_BENCHMARKS[0] in proc.stderr
        assert "REGRESSION" in proc.stdout

    def test_slowdown_within_threshold_passes(self, tmp_path, healthy):
        baseline, _, mins = healthy
        slow = {name: value * 1.1 for name, value in mins.items()}
        current = bench_json(tmp_path / "slow.json", slow)
        proc = run_compare(str(baseline), str(current), "--threshold", "0.2")
        assert proc.returncode == 0, proc.stderr

    def test_missing_guarded_benchmark_fails(self, tmp_path, healthy):
        baseline, _, mins = healthy
        gone = dict(mins)
        gone.pop(REQUIRED_BENCHMARKS[-1])
        current = bench_json(tmp_path / "gone.json", gone)
        proc = run_compare(str(baseline), str(current))
        assert proc.returncode == 1
        assert REQUIRED_BENCHMARKS[-1] in proc.stderr
        assert "missing" in proc.stderr

    def test_new_unguarded_benchmark_never_fails(self, tmp_path, healthy):
        baseline, _, mins = healthy
        grown = dict(mins)
        grown["test_shiny_new_kernel"] = 0.001
        current = bench_json(tmp_path / "grown.json", grown)
        proc = run_compare(str(baseline), str(current))
        assert proc.returncode == 0, proc.stderr
        assert "new" in proc.stdout


class TestPeakRss:
    """The peak-RSS side of the gate (``extra_info["peak_rss_mb"]``,
    recorded by the memory-guarded streaming trace benchmark)."""

    RSS_BENCH = "test_swf_stream_1m_jobs"

    def _mins(self):
        return {n: 0.010 * (i + 1) for i, n in enumerate(REQUIRED_BENCHMARKS)}

    def test_rss_regression_fails(self, tmp_path):
        mins = self._mins()
        baseline = bench_json(
            tmp_path / "baseline.json", mins, rss={self.RSS_BENCH: 300.0}
        )
        current = bench_json(
            tmp_path / "current.json", mins, rss={self.RSS_BENCH: 600.0}
        )
        proc = run_compare(str(baseline), str(current), "--rss-threshold", "0.3")
        assert proc.returncode == 1
        assert "peak RSS" in proc.stderr
        assert self.RSS_BENCH in proc.stderr
        assert "RSS REGRESSION" in proc.stdout

    def test_rss_within_threshold_passes(self, tmp_path):
        mins = self._mins()
        baseline = bench_json(
            tmp_path / "baseline.json", mins, rss={self.RSS_BENCH: 300.0}
        )
        current = bench_json(
            tmp_path / "current.json", mins, rss={self.RSS_BENCH: 330.0}
        )
        proc = run_compare(str(baseline), str(current), "--rss-threshold", "0.3")
        assert proc.returncode == 0, proc.stderr
        assert "no benchmark regressed" in proc.stdout

    def test_rss_on_one_side_only_never_fails(self, tmp_path):
        """A benchmark that starts (or stops) recording RSS is reported
        as new/gone, same as unguarded time benchmarks."""
        mins = self._mins()
        baseline = bench_json(tmp_path / "baseline.json", mins)
        current = bench_json(
            tmp_path / "current.json", mins, rss={self.RSS_BENCH: 400.0}
        )
        proc = run_compare(str(baseline), str(current))
        assert proc.returncode == 0, proc.stderr
        assert "new" in proc.stdout

    def test_rss_table_in_summary(self, tmp_path):
        mins = self._mins()
        baseline = bench_json(
            tmp_path / "baseline.json", mins, rss={self.RSS_BENCH: 300.0}
        )
        current = bench_json(
            tmp_path / "current.json", mins, rss={self.RSS_BENCH: 700.0}
        )
        summary = tmp_path / "summary.md"
        proc = run_compare(
            str(baseline),
            str(current),
            env={"GITHUB_STEP_SUMMARY": str(summary)},
        )
        assert proc.returncode == 1
        text = summary.read_text()
        assert "#### Peak RSS" in text
        assert "| benchmark | baseline (MB) | current (MB) | ratio | status |" in text
        assert ":x: regression" in text

    def test_no_rss_section_without_rss_data(self, tmp_path, healthy):
        baseline, current, _ = healthy
        summary = tmp_path / "summary.md"
        proc = run_compare(
            str(baseline),
            str(current),
            env={"GITHUB_STEP_SUMMARY": str(summary)},
        )
        assert proc.returncode == 0, proc.stderr
        assert "Peak RSS" not in summary.read_text()


class TestRecordSnapshot:
    """``--record``: the committed perf-trajectory snapshot
    (``make bench-record`` → ``BENCH_baseline.json``)."""

    RSS_BENCH = "test_swf_stream_1m_jobs"

    def test_record_writes_trimmed_sorted_snapshot(self, tmp_path, healthy):
        _, current, mins = healthy
        out = tmp_path / "BENCH_baseline.json"
        proc = run_compare(str(current), "--record", str(out))
        assert proc.returncode == 0, proc.stderr
        assert "recorded" in proc.stdout
        data = json.loads(out.read_text())
        assert data["format"] == "repro-bench-snapshot-v1"
        assert isinstance(data["benchmarks"], dict)
        names = list(data["benchmarks"])
        assert names == sorted(names)
        assert len(names) == len(mins)
        # Nothing machine- or time-stamped survives the trim.
        assert "machine_info" not in data and "datetime" not in data

    def test_snapshot_loads_as_a_baseline(self, tmp_path, healthy):
        """The whole point: a recorded snapshot sits on the baseline
        side of the gate exactly like a raw pytest-benchmark file."""
        _, current, _ = healthy
        snapshot = tmp_path / "BENCH_baseline.json"
        assert run_compare(str(current), "--record", str(snapshot)).returncode == 0
        proc = run_compare(str(snapshot), str(current))
        assert proc.returncode == 0, proc.stderr
        assert "no benchmark regressed" in proc.stdout

    def test_snapshot_regression_still_fails(self, tmp_path, healthy):
        _, current, mins = healthy
        snapshot = tmp_path / "BENCH_baseline.json"
        assert run_compare(str(current), "--record", str(snapshot)).returncode == 0
        slow = dict(mins)
        slow[REQUIRED_BENCHMARKS[0]] *= 1.5
        slow_run = bench_json(tmp_path / "slow.json", slow)
        proc = run_compare(str(snapshot), str(slow_run), "--threshold", "0.2")
        assert proc.returncode == 1
        assert "REGRESSION" in proc.stdout

    def test_record_preserves_peak_rss(self, tmp_path):
        mins = {n: 0.010 * (i + 1) for i, n in enumerate(REQUIRED_BENCHMARKS)}
        current = bench_json(
            tmp_path / "current.json", mins, rss={self.RSS_BENCH: 321.5}
        )
        out = tmp_path / "snap.json"
        assert run_compare(str(current), "--record", str(out)).returncode == 0
        data = json.loads(out.read_text())
        entry = next(
            v for k, v in data["benchmarks"].items() if self.RSS_BENCH in k
        )
        assert entry["peak_rss_mb"] == 321.5

    def test_record_refuses_missing_guarded_benchmark(self, tmp_path, healthy):
        _, _, mins = healthy
        gone = dict(mins)
        gone.pop(REQUIRED_BENCHMARKS[0])
        current = bench_json(tmp_path / "gone.json", gone)
        out = tmp_path / "snap.json"
        proc = run_compare(str(current), "--record", str(out))
        assert proc.returncode == 1
        assert REQUIRED_BENCHMARKS[0] in proc.stderr
        assert not out.exists()

    def test_compare_still_requires_current_without_record(self, healthy):
        baseline, _, _ = healthy
        proc = run_compare(str(baseline))
        assert proc.returncode == 2
        assert "required unless --record" in proc.stderr


class TestMissingBaseline:
    def test_absent_baseline_errors_by_default(self, tmp_path, healthy):
        _, current, _ = healthy
        proc = run_compare(str(tmp_path / "nope.json"), str(current))
        assert proc.returncode == 2

    def test_absent_baseline_skips_cleanly_when_allowed(
        self, tmp_path, healthy
    ):
        _, current, _ = healthy
        proc = run_compare(
            str(tmp_path / "nope.json"),
            str(current),
            "--allow-missing-baseline",
        )
        assert proc.returncode == 0, proc.stderr
        assert "skipping comparison" in proc.stdout

    def test_corrupt_baseline_still_errors(self, tmp_path, healthy):
        _, current, _ = healthy
        bad = tmp_path / "bad.json"
        bad.write_text("{not json")
        proc = run_compare(
            str(bad), str(current), "--allow-missing-baseline"
        )
        assert proc.returncode == 2
        assert "cannot read benchmark JSON" in proc.stderr


class TestStepSummary:
    def test_markdown_table_appended(self, tmp_path, healthy):
        baseline, current, _ = healthy
        summary = tmp_path / "summary.md"
        proc = run_compare(
            str(baseline),
            str(current),
            env={"GITHUB_STEP_SUMMARY": str(summary)},
        )
        assert proc.returncode == 0, proc.stderr
        text = summary.read_text()
        assert "### Benchmark comparison" in text
        assert "| benchmark | baseline (s) | current (s) | ratio | status |" in text
        for name in REQUIRED_BENCHMARKS:
            assert name in text

    def test_regression_flagged_in_summary(self, tmp_path, healthy):
        baseline, _, mins = healthy
        slow = dict(mins)
        slow[REQUIRED_BENCHMARKS[0]] *= 2.0
        current = bench_json(tmp_path / "slow.json", slow)
        summary = tmp_path / "summary.md"
        proc = run_compare(
            str(baseline),
            str(current),
            env={"GITHUB_STEP_SUMMARY": str(summary)},
        )
        assert proc.returncode == 1
        assert ":x: regression" in summary.read_text()

    def test_skip_notice_appended_on_missing_baseline(
        self, tmp_path, healthy
    ):
        _, current, _ = healthy
        summary = tmp_path / "summary.md"
        proc = run_compare(
            str(tmp_path / "nope.json"),
            str(current),
            "--allow-missing-baseline",
            env={"GITHUB_STEP_SUMMARY": str(summary)},
        )
        assert proc.returncode == 0
        assert "skipping comparison" in summary.read_text()

    def test_no_summary_env_writes_nothing(self, tmp_path, healthy):
        baseline, current, _ = healthy
        proc = run_compare(str(baseline), str(current))
        assert proc.returncode == 0
        assert not (tmp_path / "summary.md").exists()

    @pytest.mark.parametrize("value", ["", "   "], ids=["empty", "whitespace"])
    def test_degenerate_summary_env_writes_nothing(
        self, tmp_path, healthy, value, monkeypatch
    ):
        """A half-configured GITHUB_STEP_SUMMARY (empty / whitespace)
        must behave like local runs: no stray file, not even an empty
        one in the current directory."""
        baseline, current, _ = healthy
        monkeypatch.chdir(tmp_path)
        before = set(tmp_path.iterdir())
        proc = run_compare(
            str(baseline),
            str(current),
            env={"GITHUB_STEP_SUMMARY": value},
        )
        assert proc.returncode == 0, proc.stderr
        assert set(tmp_path.iterdir()) == before

    def test_explicit_summary_flag_writes_locally(self, tmp_path, healthy):
        """--summary captures the table with the CI variable unset —
        the local `make bench-compare BENCH_SUMMARY=...` path."""
        baseline, current, _ = healthy
        out = tmp_path / "local-summary.md"
        proc = run_compare(
            str(baseline), str(current), "--summary", str(out)
        )
        assert proc.returncode == 0, proc.stderr
        assert "### Benchmark comparison" in out.read_text()

    def test_explicit_summary_flag_wins_over_env(self, tmp_path, healthy):
        baseline, current, _ = healthy
        flagged = tmp_path / "flagged.md"
        env_target = tmp_path / "env-target.md"
        proc = run_compare(
            str(baseline),
            str(current),
            "--summary",
            str(flagged),
            env={"GITHUB_STEP_SUMMARY": str(env_target)},
        )
        assert proc.returncode == 0, proc.stderr
        assert flagged.exists()
        assert not env_target.exists()
