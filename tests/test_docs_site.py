"""The documentation site build (``make docs``).

CI gates on this build, so its failure modes need pinning: the real
tree must build with zero problems, dead links and unimportable API
directives must fail, and the API pages must actually carry the live
docstrings (they are the generated API reference the architecture
pages link to).
"""

import sys
from pathlib import Path

import pytest

REPO = Path(__file__).resolve().parents[1]
sys.path.insert(0, str(REPO / "tools"))
from build_docs import (  # noqa: E402
    Page,
    build,
    render_api_object,
    render_markdown,
    render_page_body,
    slugify,
)

sys.path.pop(0)


def make_page(rel="page.md"):
    return Page(src=Path(rel), rel=rel, title="t")


class TestMarkdownRenderer:
    def test_headings_get_github_slugs(self):
        page = make_page()
        html = render_markdown("# Hello World\n## The `code` bit", page)
        assert '<h1 id="hello-world">' in html
        assert '<h2 id="the-code-bit">' in html
        assert page.anchors == {"hello-world", "the-code-bit"}

    def test_code_fences_escape_html(self):
        page = make_page()
        html = render_markdown("```py\nx = a < b\n```", page)
        assert "x = a &lt; b" in html
        assert 'class="language-py"' in html

    def test_tables_and_inline_markup(self):
        page = make_page()
        html = render_markdown(
            "| a | b |\n| --- | --- |\n| `x` | **y** |", page
        )
        assert "<table>" in html and "<th>a</th>" in html
        assert "<code>x</code>" in html and "<strong>y</strong>" in html

    def test_md_links_rewritten_to_html(self):
        page = make_page()
        html = render_markdown("[go](other.md#sec) and [out](https://x.y)", page)
        assert 'href="other.html#sec"' in html
        assert 'href="https://x.y"' in html
        assert page.links == ["other.md#sec", "https://x.y"]

    def test_slugify(self):
        assert slugify("Running table & migration ticks") == (
            "running-table--migration-ticks"
        )


class TestApiDirectives:
    def test_renders_live_docstring_and_members(self):
        page = make_page()
        html = render_api_object("repro.accounting.pricing.QuoteTableCache", page)
        assert "Keyed LRU store" in html
        assert "get_or_build" in html
        assert "repro.accounting.pricing.QuoteTableCache" in page.anchors
        assert "repro.accounting.pricing.QuoteTableCache.stats" in page.anchors

    def test_unknown_object_fails(self):
        with pytest.raises(ValueError, match="no attribute"):
            render_api_object("repro.accounting.pricing.NoSuchThing", make_page())

    def test_directive_inside_page_body(self):
        page = make_page()
        html = render_page_body(
            "# Title\n\n::: repro.sim.events.EventCalendar\n", page
        )
        assert '<h1 id="title">' in html
        assert "Merged event streams" in html
        # The directive's HTML must not be escaped by the markdown pass.
        assert "&lt;section" not in html


class TestRealSiteBuild:
    def test_builds_clean(self, tmp_path):
        problems = build(REPO / "docs", tmp_path / "site", REPO / "mkdocs.yml")
        assert problems == []
        site = tmp_path / "site"
        for expected in (
            "index.html",
            "architecture/pricing.html",
            "architecture/events.html",
            "architecture/running-table.html",
            "architecture/sweep.html",
            "guide/reproducing.html",
            "guide/benchmarks.html",
            "api/pricing.html",
            "api/events.html",
            "api/sim.html",
            "assets/style.css",
        ):
            assert (site / expected).exists(), expected

    def test_api_pages_carry_docstrings(self, tmp_path):
        build(REPO / "docs", tmp_path / "site", REPO / "mkdocs.yml")
        pricing = (tmp_path / "site" / "api" / "pricing.html").read_text()
        assert "workload-determined half of a pricing kernel" in pricing
        events = (tmp_path / "site" / "api" / "events.html").read_text()
        assert "Bounded FCFS + backfill queue" in events


class TestSyntheticFailures:
    def write_site(self, tmp_path, index_md, config=None):
        docs = tmp_path / "docs"
        docs.mkdir()
        (docs / "index.md").write_text(index_md)
        cfg = tmp_path / "mkdocs.yml"
        cfg.write_text(config or "site_name: t\nnav:\n  - Home: index.md\n")
        return docs, cfg

    def test_dead_link_fails(self, tmp_path):
        docs, cfg = self.write_site(tmp_path, "# Hi\n[bad](missing.md)\n")
        problems = build(docs, tmp_path / "site", cfg)
        assert any("dead link" in p for p in problems)

    def test_dead_anchor_fails(self, tmp_path):
        docs, cfg = self.write_site(tmp_path, "# Hi\n[bad](#nope)\n")
        problems = build(docs, tmp_path / "site", cfg)
        assert any("dead same-page anchor" in p for p in problems)

    def test_orphan_page_fails(self, tmp_path):
        docs, cfg = self.write_site(tmp_path, "# Hi\n")
        (docs / "orphan.md").write_text("# Lost\n")
        problems = build(docs, tmp_path / "site", cfg)
        assert any("not referenced in nav" in p for p in problems)

    def test_missing_nav_file_fails(self, tmp_path):
        docs, cfg = self.write_site(
            tmp_path,
            "# Hi\n",
            config="site_name: t\nnav:\n  - Home: index.md\n  - Gone: gone.md\n",
        )
        problems = build(docs, tmp_path / "site", cfg)
        assert any("has no file" in p for p in problems)

    def test_bad_api_directive_fails(self, tmp_path):
        docs, cfg = self.write_site(
            tmp_path, "# Hi\n\n::: repro.not_a_module.Thing\n"
        )
        problems = build(docs, tmp_path / "site", cfg)
        assert any("API directive failed" in p for p in problems)

    def test_nothing_written_on_failure(self, tmp_path):
        docs, cfg = self.write_site(tmp_path, "# Hi\n[bad](missing.md)\n")
        site = tmp_path / "site"
        assert build(docs, site, cfg)
        assert not site.exists()

    def test_failed_directive_reported_once_not_as_orphan(self, tmp_path):
        """A nav page whose directive fails is one problem, not also a
        bogus 'not referenced in nav' report."""
        docs, cfg = self.write_site(
            tmp_path, "# Hi\n\n::: repro.not_a_module.Thing\n"
        )
        problems = build(docs, tmp_path / "site", cfg)
        assert len(problems) == 1
        assert "API directive failed" in problems[0]

    def test_stale_pages_removed_on_rebuild(self, tmp_path):
        """Pages dropped from the nav (and disk) must not survive as
        stale HTML from an earlier build."""
        docs, cfg = self.write_site(
            tmp_path,
            "# Hi\n[old](old.md)\n",
            config="site_name: t\nnav:\n  - Home: index.md\n  - Old: old.md\n",
        )
        (docs / "old.md").write_text("# Old\n")
        site = tmp_path / "site"
        assert build(docs, site, cfg) == []
        assert (site / "old.html").exists()
        (docs / "old.md").unlink()
        (docs / "index.md").write_text("# Hi\n")
        cfg.write_text("site_name: t\nnav:\n  - Home: index.md\n")
        assert build(docs, site, cfg) == []
        assert not (site / "old.html").exists()
