"""Survey data generation and §2.2 analysis round-trip."""

import pytest

from repro.survey.analysis import analyze
from repro.survey.data import generate_respondents
from repro.survey.schema import (
    FIG1_COUNTS,
    FIG2_COUNTS,
    FIG2_FACTORS,
    PAPER_AGGREGATES as AGG,
    fig2_mean_importance,
)


@pytest.fixture(scope="module")
def respondents():
    return generate_respondents(seed=0)


@pytest.fixture(scope="module")
def analysis(respondents):
    return analyze(respondents)


class TestMarginals:
    def test_totals(self, analysis):
        assert analysis.n_responses == 316
        assert analysis.n_complete == 192

    def test_location_counts(self, respondents):
        europe = sum(1 for r in respondents if r.location == "Europe")
        assert europe == AGG["loc_europe"]

    def test_energy_awareness_counts(self, respondents):
        complete = [r for r in respondents if r.completed]
        assert sum(r.aware_energy for r in complete) == AGG["aware_energy"]
        assert sum(r.reduced_energy for r in complete) == AGG["reduced_energy"]

    def test_reducers_unaware_cross_tab(self, analysis):
        """39% of energy reducers are unaware of their consumption."""
        assert analysis.pct_reducers_unaware_energy == pytest.approx(39.0, abs=2.0)

    def test_green500_subset_constraint(self, respondents):
        """Knowing your machine's rank implies knowing the ranking."""
        for r in respondents:
            if r.knows_own_green500:
                assert r.familiar_green500
        knowers = sum(r.knows_own_green500 for r in respondents)
        assert knowers == AGG["green500_know_own_machine"]

    def test_fig1_counts_exact(self, analysis):
        assert analysis.fig1_counts == FIG1_COUNTS

    def test_fig2_counts_exact(self, analysis):
        assert analysis.fig2_counts == FIG2_COUNTS

    def test_deterministic(self):
        a = analyze(generate_respondents(seed=3))
        b = analyze(generate_respondents(seed=3))
        assert a.fig1_counts == b.fig1_counts


class TestHeadlines:
    def test_energy_awareness_low(self, analysis):
        assert analysis.pct_aware_energy < 30.0
        assert analysis.pct_aware_node_hours > 70.0

    def test_energy_ranks_last_in_fig2(self, analysis):
        assert analysis.fig2_rank_by_importance()[-1] == "Energy"

    def test_performance_vs_energy_very_important(self, analysis):
        perf = analysis.fig2_counts["Performance"][3]
        energy = analysis.fig2_counts["Energy"][3]
        assert perf == 83 and energy == 25  # 46% vs 12%

    def test_mean_importance_ordering(self):
        assert fig2_mean_importance("Energy") == min(
            fig2_mean_importance(f) for f in FIG2_FACTORS
        )


class TestValidation:
    def test_analyze_rejects_empty(self):
        with pytest.raises(ValueError):
            analyze([])
