"""Synthetic grid generation: means, shapes, reproducibility."""

import numpy as np
import pytest

from repro.carbon.grids import (
    GRID_PROFILES,
    GridProfile,
    synthetic_trace,
    trace_for_region,
)


class TestGeneration:
    @pytest.mark.parametrize("region", sorted(GRID_PROFILES))
    def test_mean_matches_profile(self, region):
        trace = trace_for_region(region, days=120, seed=0)
        target = GRID_PROFILES[region].mean_g_per_kwh
        assert trace.mean == pytest.approx(target, rel=0.02)

    @pytest.mark.parametrize("region", sorted(GRID_PROFILES))
    def test_respects_floor(self, region):
        trace = trace_for_region(region, days=60, seed=1)
        assert trace.min >= GRID_PROFILES[region].floor_g_per_kwh - 1e-9

    def test_deterministic_per_seed(self):
        a = trace_for_region("AU-SA", days=10, seed=5)
        b = trace_for_region("AU-SA", days=10, seed=5)
        np.testing.assert_array_equal(a.hourly_g_per_kwh, b.hourly_g_per_kwh)

    def test_seeds_differ(self):
        a = trace_for_region("AU-SA", days=10, seed=5)
        b = trace_for_region("AU-SA", days=10, seed=6)
        assert not np.array_equal(a.hourly_g_per_kwh, b.hourly_g_per_kwh)

    def test_unknown_region(self):
        with pytest.raises(KeyError, match="unknown region"):
            trace_for_region("XX-YY")

    def test_length(self):
        assert len(trace_for_region("CA-ON", days=30)) == 30 * 24


class TestDiurnalShape:
    def test_solar_grid_trough_at_midday(self):
        """AU-SA's mean day must dip around hour 13 (rooftop solar)."""
        trace = trace_for_region("AU-SA", days=120, seed=0)
        hourly = trace.hourly_g_per_kwh.reshape(-1, 24).mean(axis=0)
        assert 10 <= int(np.argmin(hourly)) <= 16
        assert hourly.max() / hourly.min() > 2.0

    def test_wind_grid_low_overnight(self):
        trace = trace_for_region("DK-BHM", days=120, seed=0)
        hourly = trace.hourly_g_per_kwh.reshape(-1, 24).mean(axis=0)
        night = hourly[[0, 1, 2, 3, 4]].mean()
        day = hourly[[12, 13, 14, 15, 16, 17]].mean()
        assert night < day

    def test_hydro_grid_nearly_flat(self):
        trace = trace_for_region("NO-NO2", days=120, seed=0)
        hourly = trace.hourly_g_per_kwh.reshape(-1, 24).mean(axis=0)
        assert hourly.max() / hourly.min() < 1.5

    def test_fig7c_crossover_exists(self):
        """At some hours DK-BHM is below AU-SA and at others above —
        the crossover Fig. 7c depends on."""
        au = trace_for_region("AU-SA", days=120, seed=0)
        dk = trace_for_region("DK-BHM", days=120, seed=0)
        au_day = au.hourly_g_per_kwh.reshape(-1, 24).mean(axis=0)
        dk_day = dk.hourly_g_per_kwh.reshape(-1, 24).mean(axis=0)
        diff = au_day - dk_day
        assert (diff > 0).any() and (diff < 0).any()


class TestProfileValidation:
    def test_rejects_non_positive_mean(self):
        with pytest.raises(ValueError):
            GridProfile(region="x", mean_g_per_kwh=0.0)

    def test_rejects_amplitude_out_of_range(self):
        with pytest.raises(ValueError):
            GridProfile(region="x", mean_g_per_kwh=100.0, diurnal_amplitude=1.5)

    def test_rejects_zero_days(self):
        with pytest.raises(ValueError):
            synthetic_trace(GRID_PROFILES["CA-ON"], days=0)
