"""Depreciation schedules: the paper's Eq. for R_f, D_f and the rate."""

import pytest
from hypothesis import given, strategies as st

from repro.carbon.embodied import (
    DoubleDecliningBalance,
    LinearDepreciation,
    carbon_rate_per_hour,
    embodied_carbon_charge,
)
from repro.units import HOURS_PER_YEAR


class TestLinear:
    def test_constant_yearly_charge(self):
        lin = LinearDepreciation(lifetime_years=5)
        assert lin.yearly_charge(1000.0, 0) == pytest.approx(200.0)
        assert lin.yearly_charge(1000.0, 4) == pytest.approx(200.0)

    def test_zero_after_lifetime(self):
        lin = LinearDepreciation(lifetime_years=5)
        assert lin.yearly_charge(1000.0, 5) == 0.0
        assert lin.yearly_charge(1000.0, 10) == 0.0

    def test_full_life_sums_to_total(self):
        lin = LinearDepreciation(lifetime_years=5)
        total = sum(lin.yearly_charge(1000.0, y) for y in range(10))
        assert total == pytest.approx(1000.0)


class TestDoubleDecliningBalance:
    def test_paper_formula(self):
        """R_f(y) = C * 0.6^y ; D_f(y) = 0.4 * R_f(y)."""
        ddb = DoubleDecliningBalance(lifetime_years=5)
        c = 1000.0
        assert ddb.remaining(c, 0) == pytest.approx(c)
        assert ddb.remaining(c, 2) == pytest.approx(c * 0.36)
        assert ddb.yearly_charge(c, 1) == pytest.approx(0.4 * c * 0.6)

    def test_rate_is_yearly_over_8760(self):
        ddb = DoubleDecliningBalance()
        rate = ddb.rate_per_hour(1000.0, 0)
        assert rate == pytest.approx(400.0 / HOURS_PER_YEAR)

    def test_never_fully_depreciates(self):
        ddb = DoubleDecliningBalance()
        assert ddb.yearly_charge(1000.0, 20) > 0.0

    def test_charges_decline_each_year(self):
        ddb = DoubleDecliningBalance()
        charges = [ddb.yearly_charge(1000.0, y) for y in range(10)]
        assert charges == sorted(charges, reverse=True)

    def test_crossover_with_linear(self):
        """Accelerated charges more than linear early (ages 0-1) and less
        later (ages >= 2) — the Table 4 narrative."""
        ddb = DoubleDecliningBalance(lifetime_years=5)
        lin = LinearDepreciation(lifetime_years=5)
        c = 1000.0
        assert ddb.yearly_charge(c, 0) > lin.yearly_charge(c, 0)
        assert ddb.yearly_charge(c, 1) > lin.yearly_charge(c, 1)
        assert ddb.yearly_charge(c, 2) < lin.yearly_charge(c, 2)
        assert ddb.yearly_charge(c, 4) < lin.yearly_charge(c, 4)

    @given(
        st.floats(min_value=0, max_value=1e9),
        st.integers(min_value=0, max_value=30),
    )
    def test_remaining_plus_charges_conserve_total(self, total, years):
        ddb = DoubleDecliningBalance()
        charged = sum(ddb.yearly_charge(total, y) for y in range(years))
        assert charged + ddb.remaining(total, years) == pytest.approx(
            total, rel=1e-9, abs=1e-6
        )


class TestCharges:
    def test_rate_helper_uses_accelerated_default(self):
        assert carbon_rate_per_hour(1000.0, 0) == pytest.approx(
            400.0 / HOURS_PER_YEAR
        )

    def test_job_charge_scales_with_share_and_time(self):
        full = embodied_carbon_charge(1000.0, 0, duration_s=3600.0, node_share=1.0)
        half = embodied_carbon_charge(1000.0, 0, duration_s=3600.0, node_share=0.5)
        double = embodied_carbon_charge(1000.0, 0, duration_s=7200.0, node_share=1.0)
        assert half == pytest.approx(full / 2)
        assert double == pytest.approx(full * 2)

    def test_rejects_invalid_share(self):
        with pytest.raises(ValueError):
            embodied_carbon_charge(1000.0, 0, 3600.0, node_share=1.5)

    def test_rejects_negative_inputs(self):
        with pytest.raises(ValueError):
            embodied_carbon_charge(-1.0, 0, 3600.0)
        with pytest.raises(ValueError):
            embodied_carbon_charge(1.0, -1, 3600.0)
        with pytest.raises(ValueError):
            embodied_carbon_charge(1.0, 0, -3600.0)

    def test_rejects_bad_lifetime(self):
        with pytest.raises(ValueError):
            LinearDepreciation(lifetime_years=0)
        with pytest.raises(ValueError):
            DoubleDecliningBalance(lifetime_years=-1)
