"""Carbon-intensity trace semantics."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.carbon.intensity import CarbonIntensityTrace, constant_trace


def ramp_trace(hours=48) -> CarbonIntensityTrace:
    return CarbonIntensityTrace(
        region="ramp", hourly_g_per_kwh=np.arange(hours, dtype=float)
    )


class TestLookup:
    def test_at_hour_boundaries(self):
        trace = ramp_trace()
        assert trace.at(0.0) == 0.0
        assert trace.at(3600.0) == 1.0
        assert trace.at(3599.9) == 0.0

    def test_wraps_cyclically(self):
        trace = ramp_trace(hours=24)
        assert trace.at(25 * 3600.0) == trace.at(3600.0)

    def test_vectorized_matches_scalar(self):
        trace = ramp_trace()
        times = np.array([0.0, 3700.0, 50 * 3600.0])
        np.testing.assert_allclose(
            trace.at_many(times), [trace.at(float(t)) for t in times]
        )

    def test_constant_trace(self):
        trace = constant_trace("flat", 400.0)
        assert trace.at(123456.0) == 400.0
        assert trace.mean == 400.0

    def test_rejects_negative_values(self):
        with pytest.raises(ValueError):
            CarbonIntensityTrace("bad", np.array([1.0, -2.0]))

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            CarbonIntensityTrace("bad", np.array([]))


class TestAverageOver:
    def test_within_one_hour(self):
        trace = ramp_trace()
        assert trace.average_over(0.0, 1800.0) == pytest.approx(0.0)

    def test_spanning_two_hours_weighted(self):
        trace = ramp_trace()
        # 30 min at 0 plus 30 min at 1 -> 0.5
        assert trace.average_over(1800.0, 3600.0) == pytest.approx(0.5)

    def test_zero_duration_is_point_lookup(self):
        trace = ramp_trace()
        assert trace.average_over(7200.0, 0.0) == trace.at(7200.0)

    def test_full_cycle_average_equals_mean(self):
        trace = ramp_trace(hours=24)
        assert trace.average_over(0.0, 24 * 3600.0) == pytest.approx(trace.mean)

    def test_negative_duration_rejected(self):
        with pytest.raises(ValueError):
            ramp_trace().average_over(0.0, -1.0)

    @given(
        st.floats(min_value=0, max_value=1e6),
        st.floats(min_value=1.0, max_value=1e5),
    )
    def test_average_bounded_by_extremes(self, start, duration):
        trace = ramp_trace()
        avg = trace.average_over(start, duration)
        assert trace.min - 1e-9 <= avg <= trace.max + 1e-9


class TestDayProfile:
    def test_profile_has_24_values(self):
        assert len(ramp_trace().day_profile(0)) == 24

    def test_second_day_offsets(self):
        trace = ramp_trace(hours=48)
        np.testing.assert_allclose(trace.day_profile(1), np.arange(24) + 24)
