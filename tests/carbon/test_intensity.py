"""Carbon-intensity trace semantics."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.carbon.intensity import CarbonIntensityTrace, constant_trace


def ramp_trace(hours=48) -> CarbonIntensityTrace:
    return CarbonIntensityTrace(
        region="ramp", hourly_g_per_kwh=np.arange(hours, dtype=float)
    )


class TestLookup:
    def test_at_hour_boundaries(self):
        trace = ramp_trace()
        assert trace.at(0.0) == 0.0
        assert trace.at(3600.0) == 1.0
        assert trace.at(3599.9) == 0.0

    def test_wraps_cyclically(self):
        trace = ramp_trace(hours=24)
        assert trace.at(25 * 3600.0) == trace.at(3600.0)

    def test_vectorized_matches_scalar(self):
        trace = ramp_trace()
        times = np.array([0.0, 3700.0, 50 * 3600.0])
        np.testing.assert_allclose(
            trace.at_many(times), [trace.at(float(t)) for t in times]
        )

    def test_constant_trace(self):
        trace = constant_trace("flat", 400.0)
        assert trace.at(123456.0) == 400.0
        assert trace.mean == 400.0

    def test_rejects_negative_values(self):
        with pytest.raises(ValueError):
            CarbonIntensityTrace("bad", np.array([1.0, -2.0]))

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            CarbonIntensityTrace("bad", np.array([]))


class TestAverageOver:
    def test_within_one_hour(self):
        trace = ramp_trace()
        assert trace.average_over(0.0, 1800.0) == pytest.approx(0.0)

    def test_spanning_two_hours_weighted(self):
        trace = ramp_trace()
        # 30 min at 0 plus 30 min at 1 -> 0.5
        assert trace.average_over(1800.0, 3600.0) == pytest.approx(0.5)

    def test_zero_duration_is_point_lookup(self):
        trace = ramp_trace()
        assert trace.average_over(7200.0, 0.0) == trace.at(7200.0)

    def test_full_cycle_average_equals_mean(self):
        trace = ramp_trace(hours=24)
        assert trace.average_over(0.0, 24 * 3600.0) == pytest.approx(trace.mean)

    def test_negative_duration_rejected(self):
        with pytest.raises(ValueError):
            ramp_trace().average_over(0.0, -1.0)

    @given(
        st.floats(min_value=0, max_value=1e6),
        st.floats(min_value=1.0, max_value=1e5),
    )
    def test_average_bounded_by_extremes(self, start, duration):
        trace = ramp_trace()
        avg = trace.average_over(start, duration)
        assert trace.min - 1e-9 <= avg <= trace.max + 1e-9


def _integral_average(trace, start_s, duration_s):
    """The seed implementation: materialise one edge per spanned hour
    and integrate — the reference the O(1) prefix-sum path must match."""
    edges = np.arange(
        np.floor(start_s / 3600.0),
        np.floor((start_s + duration_s) / 3600.0) + 2,
    ) * 3600.0
    edges[0] = start_s
    edges[-1] = start_s + duration_s
    widths = np.diff(edges)
    mids = (edges[:-1] + edges[1:]) / 2.0
    vals = trace.at_many(mids)
    return float((vals * widths).sum() / duration_s)


class TestPrefixSumPath:
    @given(
        st.lists(
            st.floats(min_value=0.0, max_value=1000.0), min_size=1, max_size=72
        ),
        st.floats(min_value=0.0, max_value=1e6),
        st.floats(min_value=1.0, max_value=1e5),
    )
    def test_matches_seed_integral(self, values, start, duration):
        trace = CarbonIntensityTrace("t", np.array(values))
        assert trace.average_over(start, duration) == pytest.approx(
            _integral_average(trace, start, duration), rel=1e-9, abs=1e-9
        )

    def test_matches_seed_integral_random_windows(self):
        rng = np.random.default_rng(17)
        trace = CarbonIntensityTrace("t", rng.uniform(10.0, 800.0, size=48))
        starts = rng.uniform(0.0, 2e6, size=300)
        durations = rng.uniform(1.0, 3e5, size=300)
        for start, duration in zip(starts, durations):
            assert trace.average_over(start, duration) == pytest.approx(
                _integral_average(trace, start, duration), rel=1e-9
            )

    def test_average_over_many_matches_scalar(self):
        rng = np.random.default_rng(23)
        trace = CarbonIntensityTrace("t", rng.uniform(10.0, 800.0, size=30))
        starts = rng.uniform(0.0, 1e6, size=200)
        durations = np.concatenate(
            [rng.uniform(0.0, 1e5, size=196), [0.0, 1e-12, 1e-9, 2.5]]
        )
        many = trace.average_over_many(starts, durations)
        scalar = np.array(
            [trace.average_over(s, d) for s, d in zip(starts, durations)]
        )
        np.testing.assert_array_equal(many, scalar)

    def test_tiny_duration_relative_guard(self):
        """A 1e-9 s window at t=32 s has hour-chunk widths dominated by
        float rounding; it must degrade to the point lookup."""
        trace = ramp_trace()
        assert trace.average_over(32.0, 1e-9) == trace.at(32.0)
        assert trace.average_over(3600.0 - 5e-10, 1e-9) == trace.at(3600.0 - 5e-10)

    def test_average_over_many_rejects_negative(self):
        trace = ramp_trace()
        with pytest.raises(ValueError):
            trace.average_over_many(np.array([0.0]), np.array([-1.0]))

    def test_average_over_many_bounded(self):
        rng = np.random.default_rng(5)
        trace = CarbonIntensityTrace("t", rng.uniform(0.0, 1000.0, size=24))
        starts = rng.uniform(0.0, 1e6, size=500)
        durations = 10.0 ** rng.uniform(-12, 5, size=500)
        avg = trace.average_over_many(starts, durations)
        slack = 1e-6 * (1.0 + trace.max)
        assert np.all(avg >= trace.min - slack)
        assert np.all(avg <= trace.max + slack)


class TestDayProfile:
    def test_profile_has_24_values(self):
        assert len(ramp_trace().day_profile(0)) == 24

    def test_second_day_offsets(self):
        trace = ramp_trace(hours=48)
        np.testing.assert_allclose(trace.day_profile(1), np.arange(24) + 24)
