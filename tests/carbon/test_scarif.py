"""SCARIF-style embodied estimation: plausibility and calibration checks."""

import pytest

from repro.carbon.scarif import ScarifEstimator
from repro.hardware.catalog import (
    CPU_EXPERIMENT_NODES,
    GPU_CARBON_RATE,
    GPU_EXPERIMENT_YEAR,
    gpu_experiment_nodes,
)
from repro.carbon.embodied import DoubleDecliningBalance
from repro.hardware.node import CPUSpec, NodeSpec


class TestCPUEstimates:
    def test_order_of_magnitude_vs_catalog(self):
        """Estimates must land within ~3x of the paper-derived totals."""
        est = ScarifEstimator()
        for node in CPU_EXPERIMENT_NODES:
            predicted = est.estimate_cpu_node_g(node)
            ratio = predicted / node.embodied_carbon_g
            assert 1 / 3 <= ratio <= 3, (node.name, ratio)

    def test_more_dram_more_carbon(self):
        est = ScarifEstimator()
        cpu = CPUSpec("x", 16, 100.0, 2.0, 32.0, 2021)
        small = NodeSpec(name="s", cpu=cpu, dram_gb=64)
        big = NodeSpec(name="b", cpu=cpu, dram_gb=512)
        assert est.estimate_cpu_node_g(big) > est.estimate_cpu_node_g(small)

    def test_fill_embodied_respects_datasheet_value(self):
        est = ScarifEstimator()
        cpu = CPUSpec("x", 16, 100.0, 2.0, 32.0, 2021)
        node = NodeSpec(name="n", cpu=cpu, embodied_carbon_g=123.0)
        assert est.fill_embodied(node).embodied_carbon_g == 123.0

    def test_fill_embodied_estimates_when_missing(self):
        est = ScarifEstimator()
        cpu = CPUSpec("x", 16, 100.0, 2.0, 32.0, 2021)
        node = NodeSpec(name="n", cpu=cpu, embodied_carbon_g=0.0)
        filled = est.fill_embodied(node)
        assert filled.embodied_carbon_g == pytest.approx(
            est.estimate_cpu_node_g(node)
        )


class TestGPUEstimates:
    def test_rates_within_factor_two_of_table2(self):
        est = ScarifEstimator()
        ddb = DoubleDecliningBalance()
        for config in gpu_experiment_nodes():
            total = est.estimate_gpu_node_g(config)
            rate = ddb.rate_per_hour(total, config.age_years(GPU_EXPERIMENT_YEAR))
            published = GPU_CARBON_RATE[(config.gpu.model, config.count)]
            assert 0.5 <= rate / published <= 2.0, (config.name, rate)

    def test_rate_grows_with_count(self):
        est = ScarifEstimator()
        one = est.estimate_gpu_node_g(
            next(c for c in gpu_experiment_nodes() if c.name == "V100x1")
        )
        eight = est.estimate_gpu_node_g(
            next(c for c in gpu_experiment_nodes() if c.name == "V100x8")
        )
        assert eight > one
        # Sub-linear: 8 GPUs cost less than 8x one config (shared host).
        assert eight < 8 * one
