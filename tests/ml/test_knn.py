"""KNN regressor: interpolation, weighting, multi-output."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.ml.knn import KNNRegressor


class TestBasics:
    def test_exact_match_returns_training_target(self):
        x = np.array([[0.0], [1.0], [2.0]])
        y = np.array([10.0, 20.0, 30.0])
        model = KNNRegressor(k=2).fit(x, y)
        assert model.predict([[1.0]])[0] == pytest.approx(20.0)

    def test_k1_is_nearest_neighbour(self):
        x = np.array([[0.0], [10.0]])
        y = np.array([1.0, 2.0])
        model = KNNRegressor(k=1).fit(x, y)
        assert model.predict([[3.0]])[0] == 1.0
        assert model.predict([[7.0]])[0] == 2.0

    def test_inverse_distance_weighting(self):
        x = np.array([[0.0], [3.0]])
        y = np.array([0.0, 3.0])
        model = KNNRegressor(k=2, standardize=False).fit(x, y)
        # Query at 1: weights 1/1 and 1/2 -> (0*1 + 3*0.5) / 1.5 = 1.0
        assert model.predict([[1.0]])[0] == pytest.approx(1.0)

    def test_multi_output(self):
        x = np.array([[0.0], [1.0]])
        y = np.array([[1.0, 10.0], [3.0, 30.0]])
        model = KNNRegressor(k=2).fit(x, y)
        pred = model.predict([[0.5]])
        assert pred.shape == (1, 2)
        assert pred[0, 0] == pytest.approx(2.0)
        assert pred[0, 1] == pytest.approx(20.0)

    def test_k_clipped_to_training_size(self):
        model = KNNRegressor(k=10).fit(np.array([[0.0], [1.0]]), np.array([1.0, 2.0]))
        assert np.isfinite(model.predict([[0.5]])[0])

    def test_standardization_makes_scales_comparable(self):
        # Feature 2 is 1000x feature 1; without standardization it would
        # dominate every distance.
        x = np.array([[0.0, 0.0], [1.0, 1000.0], [0.1, 900.0]])
        y = np.array([0.0, 1.0, 2.0])
        model = KNNRegressor(k=1).fit(x, y)
        assert model.predict([[0.05, 450.0]])[0] in (0.0, 2.0)


class TestValidation:
    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            KNNRegressor().fit(np.zeros((0, 2)), np.zeros(0))

    def test_rejects_length_mismatch(self):
        with pytest.raises(ValueError):
            KNNRegressor().fit(np.zeros((3, 2)), np.zeros(2))

    def test_rejects_bad_k(self):
        with pytest.raises(ValueError):
            KNNRegressor(k=0)

    def test_unfitted_raises(self):
        with pytest.raises(RuntimeError):
            KNNRegressor().predict([[1.0]])


@settings(max_examples=40)
@given(
    st.lists(
        st.tuples(
            st.floats(min_value=-10, max_value=10),
            st.floats(min_value=-5, max_value=5),
        ),
        min_size=2,
        max_size=20,
        unique_by=lambda t: t[0],
    ),
    st.floats(min_value=-10, max_value=10),
)
def test_prediction_within_target_hull(points, query):
    """IDW predictions are convex combinations of neighbour targets."""
    x = np.array([[p[0]] for p in points])
    y = np.array([p[1] for p in points])
    model = KNNRegressor(k=3).fit(x, y)
    pred = model.predict([[query]])[0]
    assert y.min() - 1e-9 <= pred <= y.max() + 1e-9


def test_near_constant_feature_never_predicts_nan():
    """Standardizing a near-constant feature (std ~1e-158) overflows
    every squared distance to inf, which used to zero all IDW weights
    and emit a NaN prediction; the regressor now falls back to a
    uniform mean over the neighbours (hypothesis-found regression)."""
    x = np.array([[0.0], [1.2699038738388975e-157]])
    y = np.array([0.25, 0.75])
    with np.errstate(over="ignore"):
        pred = KNNRegressor(k=3).fit(x, y).predict([[1.0]])[0]
    assert np.isfinite(pred)
    assert y.min() <= pred <= y.max()
