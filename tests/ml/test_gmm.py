"""EM Gaussian mixture: recovery, likelihood, sampling."""

import numpy as np
import pytest

from repro.ml.gmm import GaussianMixture


def two_cluster_data(n=600, seed=0):
    rng = np.random.default_rng(seed)
    a = rng.normal([-4.0, 0.0], 0.5, size=(n // 2, 2))
    b = rng.normal([4.0, 2.0], 0.5, size=(n // 2, 2))
    return np.vstack([a, b])


class TestFit:
    def test_recovers_cluster_means(self):
        gmm = GaussianMixture(n_components=2, seed=0).fit(two_cluster_data())
        means = sorted(gmm.means_.tolist())
        np.testing.assert_allclose(means[0], [-4.0, 0.0], atol=0.2)
        np.testing.assert_allclose(means[1], [4.0, 2.0], atol=0.2)

    def test_weights_sum_to_one(self):
        gmm = GaussianMixture(n_components=3, seed=0).fit(two_cluster_data())
        assert gmm.weights_.sum() == pytest.approx(1.0)

    def test_em_increases_likelihood(self):
        data = two_cluster_data()
        short = GaussianMixture(n_components=2, max_iter=1, seed=0).fit(data)
        long = GaussianMixture(n_components=2, max_iter=100, seed=0).fit(data)
        assert (
            long.score_samples(data).mean()
            >= short.score_samples(data).mean() - 1e-9
        )

    def test_converged_flag(self):
        gmm = GaussianMixture(n_components=2, seed=0).fit(two_cluster_data())
        assert gmm.converged_

    def test_single_component_is_gaussian_mle(self):
        data = two_cluster_data()
        gmm = GaussianMixture(n_components=1, seed=0).fit(data)
        np.testing.assert_allclose(gmm.means_[0], data.mean(axis=0), atol=1e-6)

    def test_rejects_too_few_samples(self):
        with pytest.raises(ValueError):
            GaussianMixture(n_components=5).fit(np.zeros((3, 2)))

    def test_rejects_1d_input(self):
        with pytest.raises(ValueError):
            GaussianMixture().fit(np.zeros(10))

    def test_rejects_zero_components(self):
        with pytest.raises(ValueError):
            GaussianMixture(n_components=0)


class TestPredictAndSample:
    def test_predict_separates_clusters(self):
        gmm = GaussianMixture(n_components=2, seed=0).fit(two_cluster_data())
        labels = gmm.predict(np.array([[-4.0, 0.0], [4.0, 2.0]]))
        assert labels[0] != labels[1]

    def test_samples_resemble_training_distribution(self):
        gmm = GaussianMixture(n_components=2, seed=0).fit(two_cluster_data())
        samples = gmm.sample(2000, rng=np.random.default_rng(1))
        assert samples.shape == (2000, 2)
        # Half the mass near each cluster.
        left = (samples[:, 0] < 0).mean()
        assert 0.4 < left < 0.6

    def test_unfitted_raises(self):
        gmm = GaussianMixture()
        with pytest.raises(RuntimeError):
            gmm.sample(5)
        with pytest.raises(RuntimeError):
            gmm.score_samples(np.zeros((1, 2)))

    def test_sample_rejects_zero(self):
        gmm = GaussianMixture(n_components=1, seed=0).fit(two_cluster_data())
        with pytest.raises(ValueError):
            gmm.sample(0)

    def test_deterministic_with_rng(self):
        gmm = GaussianMixture(n_components=2, seed=0).fit(two_cluster_data())
        a = gmm.sample(10, rng=np.random.default_rng(7))
        b = gmm.sample(10, rng=np.random.default_rng(7))
        np.testing.assert_array_equal(a, b)
