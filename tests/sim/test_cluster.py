"""Cluster queue model: FCFS + backfill + the per-user rule."""

import pytest

from repro.sim.cluster import ClusterSim
from repro.sim.job import Job


def job(job_id, user=0, cores=8, rt=100.0, machine="IC") -> Job:
    return Job(
        job_id=job_id,
        user=user,
        cores=cores,
        submit_s=0.0,
        runtime_s={machine: rt},
        energy_j={machine: 1000.0},
    )


@pytest.fixture
def cluster(sim_machines):
    return ClusterSim(sim_machines["IC"])  # 12 nodes x 48 cores = 576


class TestStartFinish:
    def test_start_consumes_cores(self, cluster):
        cluster.enqueue(job(1, cores=48))
        started = cluster.startable(0.0)
        assert [j.job_id for j in started] == [1]
        assert cluster.free_cores == 576 - 48

    def test_finish_releases(self, cluster):
        cluster.enqueue(job(1, cores=48))
        cluster.startable(0.0)
        cluster.finish(1)
        assert cluster.free_cores == 576

    def test_end_time(self, cluster):
        cluster.enqueue(job(1, rt=250.0))
        cluster.startable(10.0)
        assert cluster.end_time_of(1) == pytest.approx(260.0)

    def test_wrong_machine_rejected(self, cluster):
        with pytest.raises(ValueError, match="not eligible"):
            cluster.enqueue(job(1, machine="Theta"))

    def test_utilization(self, cluster):
        cluster.enqueue(job(1, cores=288))
        cluster.startable(0.0)
        assert cluster.utilization == pytest.approx(0.5)


class TestUserRule:
    def test_one_running_job_per_user(self, cluster):
        cluster.enqueue(job(1, user=7, cores=8))
        cluster.enqueue(job(2, user=7, cores=8))
        started = cluster.startable(0.0)
        assert [j.job_id for j in started] == [1]
        assert cluster.user_busy(7)

    def test_second_job_starts_after_first_finishes(self, cluster):
        cluster.enqueue(job(1, user=7))
        cluster.enqueue(job(2, user=7))
        cluster.startable(0.0)
        cluster.finish(1)
        started = cluster.startable(100.0)
        assert [j.job_id for j in started] == [2]

    def test_different_users_run_concurrently(self, cluster):
        cluster.enqueue(job(1, user=1))
        cluster.enqueue(job(2, user=2))
        assert len(cluster.startable(0.0)) == 2


class TestBackfill:
    def test_small_job_backfills_past_blocked_head(self, cluster):
        cluster.enqueue(job(1, user=1, cores=576))  # fills the machine
        cluster.enqueue(job(2, user=2, cores=576))  # blocked head
        cluster.enqueue(job(3, user=3, cores=8))    # can backfill? no cores
        assert len(cluster.startable(0.0)) == 1
        cluster.finish(1)
        # 576 free: job 2 starts; job 3 no longer fits? 576-576=0 -> queued.
        started = cluster.startable(100.0)
        assert [j.job_id for j in started] == [2]

    def test_backfill_when_head_blocked_by_user_rule(self, cluster):
        cluster.enqueue(job(1, user=1, cores=8))
        cluster.startable(0.0)
        cluster.enqueue(job(2, user=1, cores=8))  # head blocked (user busy)
        cluster.enqueue(job(3, user=2, cores=8))  # should backfill
        started = cluster.startable(1.0)
        assert [j.job_id for j in started] == [3]
        assert cluster.queue_length == 1

    def test_fcfs_order_among_startable(self, cluster):
        for i in range(1, 4):
            cluster.enqueue(job(i, user=i, cores=8))
        started = cluster.startable(0.0)
        assert [j.job_id for j in started] == [1, 2, 3]

    def test_backfill_window_bounds_scan(self, sim_machines):
        cluster = ClusterSim(sim_machines["IC"], backfill_window=2)
        cluster.enqueue(job(1, user=1, cores=576))
        cluster.startable(0.0)
        cluster.enqueue(job(2, user=2, cores=576))  # blocked
        cluster.enqueue(job(3, user=3, cores=576))  # blocked
        cluster.enqueue(job(4, user=4, cores=8))    # beyond window
        assert cluster.startable(0.0) == []

    def test_rejects_bad_window(self, sim_machines):
        with pytest.raises(ValueError):
            ClusterSim(sim_machines["IC"], backfill_window=0)


class TestWaitEstimate:
    def test_empty_cluster_no_wait(self, cluster):
        assert cluster.estimated_wait_s(0.0) == 0.0

    def test_wait_grows_with_backlog(self, cluster):
        cluster.enqueue(job(1, cores=576, rt=1000.0))
        w1 = cluster.estimated_wait_s(0.0)
        cluster.enqueue(job(2, user=2, cores=576, rt=1000.0))
        assert cluster.estimated_wait_s(0.0) > w1 > 0

    def test_wait_shrinks_on_finish(self, cluster):
        cluster.enqueue(job(1, cores=576, rt=1000.0))
        cluster.startable(0.0)
        before = cluster.estimated_wait_s(0.0)
        cluster.finish(1)
        assert cluster.estimated_wait_s(0.0) < before

    def test_running_jobs_count_only_their_remainder(self, cluster):
        """The docstring's promise, pinned: committed core-seconds are
        running *remainders* plus queued demand, over capacity."""
        cluster.enqueue(job(1, user=1, cores=288, rt=1000.0))
        cluster.startable(0.0)  # runs over [0, 1000]
        cluster.enqueue(job(2, user=2, cores=576, rt=500.0))  # queued
        capacity = 576
        # At t=400 the running job has 600 s left on 288 cores.
        expected = (288 * 600.0 + 576 * 500.0) / capacity
        assert cluster.estimated_wait_s(400.0) == pytest.approx(expected)
        # At t=0 (start) the remainder is the full runtime: the old
        # full-runtime accounting and the fix agree there.
        expected_at_start = (288 * 1000.0 + 576 * 500.0) / capacity
        assert cluster.estimated_wait_s(0.0) == pytest.approx(expected_at_start)

    def test_wait_decays_monotonically_as_time_passes(self, cluster):
        cluster.enqueue(job(1, cores=576, rt=1000.0))
        cluster.startable(0.0)
        waits = [cluster.estimated_wait_s(t) for t in (0.0, 250.0, 500.0, 1000.0)]
        assert waits == sorted(waits, reverse=True)
        assert waits[-1] == 0.0

    def test_wait_never_negative_past_scheduled_end(self, cluster):
        cluster.enqueue(job(1, cores=576, rt=1000.0))
        cluster.startable(0.0)
        assert cluster.estimated_wait_s(5000.0) == 0.0

    def test_reschedule_end_updates_remainder(self, cluster):
        cluster.enqueue(job(1, cores=576, rt=1000.0))
        cluster.startable(0.0)
        cluster.reschedule_end(1, 400.0)  # continuation carries less work
        assert cluster.end_time_of(1) == pytest.approx(400.0)
        assert cluster.estimated_wait_s(100.0) == pytest.approx(
            576 * 300.0 / 576
        )
        cluster.finish(1)
        assert cluster.estimated_wait_s(400.0) == 0.0
