"""Scenario construction and metric aggregation."""

import pytest

from repro.accounting.methods import EnergyBasedAccounting
from repro.sim.engine import MultiClusterSimulator
from repro.sim.metrics import format_summaries, summarize
from repro.sim.policies import GreedyPolicy
from repro.sim.scenarios import PERF_CURVES


class TestBaselineScenario:
    def test_four_machines(self, sim_machines):
        assert set(sim_machines) == {"FASTER", "Desktop", "IC", "Theta"}

    def test_intensity_means_match_table5(self, sim_machines):
        expect = {"FASTER": 389.0, "Desktop": 454.0, "IC": 454.0, "Theta": 502.0}
        for name, machine in sim_machines.items():
            assert machine.intensity.mean == pytest.approx(expect[name], rel=1e-6)

    def test_carbon_rates_match_table5(self, sim_machines):
        expect = {"FASTER": 105.2, "Desktop": 12.2, "IC": 16.7, "Theta": 2.0}
        for name, machine in sim_machines.items():
            assert machine.carbon_rate_g_per_h == pytest.approx(
                expect[name], rel=0.01
            )

    def test_derived_per_core_quantities(self, sim_machines):
        ic = sim_machines["IC"]
        assert ic.cores_per_node == 48
        assert ic.total_cores == 48 * ic.node.node_count
        assert ic.tdp_watts_per_core == pytest.approx(410.0 / 48)
        assert ic.embodied_rate_per_core_hour() == pytest.approx(16.7 / 48, rel=0.01)


class TestLowCarbonScenario:
    def test_regions_reassigned(self, low_carbon_machines):
        regions = {
            name: m.intensity.region for name, m in low_carbon_machines.items()
        }
        assert regions == {
            "IC": "AU-SA", "FASTER": "CA-ON", "Desktop": "NO-NO2", "Theta": "DK-BHM",
        }

    def test_embodied_rates_unchanged(self, sim_machines, low_carbon_machines):
        for name in sim_machines:
            assert low_carbon_machines[name].carbon_rate_g_per_h == pytest.approx(
                sim_machines[name].carbon_rate_g_per_h
            )

    def test_intensities_much_lower(self, sim_machines, low_carbon_machines):
        for name in sim_machines:
            assert (
                low_carbon_machines[name].intensity.mean
                < sim_machines[name].intensity.mean
            )


class TestPerfCurves:
    def test_ic_is_reference(self):
        assert PERF_CURVES["IC"].runtime_scale(0.5) == 1.0

    def test_theta_slowest_everywhere(self):
        for m in (0.0, 0.5, 1.0):
            theta = PERF_CURVES["Theta"].runtime_scale(m)
            assert all(
                theta >= PERF_CURVES[name].runtime_scale(m)
                for name in ("FASTER", "IC", "Desktop")
            )

    def test_scale_clamps_memory_intensity(self):
        curve = PERF_CURVES["FASTER"]
        assert curve.runtime_scale(-1.0) == curve.runtime_scale(0.0)
        assert curve.runtime_scale(2.0) == curve.runtime_scale(1.0)

    def test_power_within_tdp(self, sim_machines):
        """idle + cores*dyn stays near/below the node TDP (Table 5)."""
        for name, machine in sim_machines.items():
            full = (
                machine.node.idle_power_watts
                + machine.cores_per_node * machine.perf.dyn_watts_per_core
            )
            assert full <= machine.node.tdp_watts * 1.05, name


class TestSummaries:
    def test_summary_units(self, sim_machines, small_workload):
        result = MultiClusterSimulator(
            sim_machines, EnergyBasedAccounting(), GreedyPolicy()
        ).run(small_workload)
        s = summarize(result, budget=result.total_cost())
        assert s.energy_mwh == pytest.approx(result.total_energy_j() / 3.6e9)
        assert s.jobs_completed == result.n_jobs
        assert s.work_with_budget_core_hours == pytest.approx(
            result.total_work_core_hours()
        )
        assert s.jobs_with_budget == result.n_jobs

    def test_format_contains_policy(self, sim_machines, small_workload):
        result = MultiClusterSimulator(
            sim_machines, EnergyBasedAccounting(), GreedyPolicy()
        ).run(small_workload)
        text = format_summaries([summarize(result)])
        assert "Greedy" in text and "Energy(MWh)" in text
