"""The content-addressed result store and the OutcomeTable shm transport.

Recovery contract under test: *anything* undecodable on disk —
truncated, corrupt, wrong format — is a miss that deletes the entry and
recomputes; the store never raises for bad bytes.
"""

import io
import os

import numpy as np
import pytest

from repro.accounting.methods import all_methods, method_by_name
from repro.accounting.pricing import (
    OUTCOME_FIELDS,
    OutcomeTable,
    QuoteTable,
    fingerprint_digest,
)
from repro.sim.engine import MultiClusterSimulator, pricing_for_sim_machine
from repro.sim.result_store import (
    STORE_FORMAT,
    ResultStore,
    task_store_key,
)
from repro.sim.sweep import SweepTask

SCALE = 120
SEED = 3

METHOD_NAMES = [m.name for m in all_methods()]


@pytest.fixture(scope="module")
def machines():
    from repro.experiments._simulation import scenario

    return dict(scenario("baseline", SEED))


@pytest.fixture(scope="module")
def sample_results(machines):
    """One Greedy run per accounting method (all five)."""
    from repro.experiments._simulation import workload
    from repro.sim.policies import GreedyPolicy

    wl = workload("baseline", SCALE, SEED)
    return {
        name: MultiClusterSimulator(
            machines, method_by_name(name), GreedyPolicy()
        ).run(wl)
        for name in METHOD_NAMES
    }


@pytest.fixture(scope="module")
def pricing_fp(machines):
    return QuoteTable.fingerprint(
        {
            name: pricing_for_sim_machine(machine)
            for name, machine in machines.items()
        }
    )


def task_for(method: str) -> SweepTask:
    return SweepTask("baseline", "Greedy", method, SCALE, SEED)


def assert_results_equal(got, expected):
    assert got.policy == expected.policy
    assert got.method == expected.method
    assert got.machines == expected.machines
    assert got.outcomes == expected.outcomes
    assert got.total_cost() == expected.total_cost()
    assert got.total_energy_j() == expected.total_energy_j()
    assert (
        got.total_attributed_carbon_g()
        == expected.total_attributed_carbon_g()
    )


class TestKeying:
    def test_key_is_stable(self, pricing_fp):
        task = task_for("EBA")
        assert task_store_key(task, pricing_fp) == task_store_key(
            task, pricing_fp
        )

    def test_key_folds_every_grid_coordinate(self, pricing_fp):
        base = task_for("EBA")
        variants = [
            SweepTask("low-carbon", "Greedy", "EBA", SCALE, SEED),
            SweepTask("baseline", "EFT", "EBA", SCALE, SEED),
            SweepTask("baseline", "Greedy", "CBA", SCALE, SEED),
            SweepTask("baseline", "Greedy", "EBA", SCALE + 1, SEED),
            SweepTask("baseline", "Greedy", "EBA", SCALE, SEED + 1),
        ]
        keys = {task_store_key(t, pricing_fp) for t in [base, *variants]}
        assert len(keys) == len(variants) + 1

    def test_key_folds_pricing_fingerprint(self, pricing_fp):
        task = task_for("EBA")
        other_fp = fingerprint_digest("not-the-same-catalogue")
        assert task_store_key(task, pricing_fp) != task_store_key(
            task, other_fp
        )

    def test_tiered_straggler_knobs_fold_into_key(self, pricing_fp):
        """Straggler knobs ride in the scenario name, so every knob
        setting is its own store entry — a tuned run can never be
        served a stale default-knob result."""
        from repro.sim.scenarios import tiered_scenario_name

        names = [
            tiered_scenario_name(),  # "tiered", the defaults
            tiered_scenario_name(0.2, 1.0),
            tiered_scenario_name(0.08, 2.5),
            tiered_scenario_name(0.2, 2.5),
        ]
        keys = {
            task_store_key(
                SweepTask(name, "LargestFirst", "EBA", SCALE, SEED),
                pricing_fp,
            )
            for name in names
        }
        assert len(keys) == len(names)


class TestRoundTrip:
    @pytest.mark.parametrize("method", METHOD_NAMES)
    def test_all_five_methods_bit_identical(
        self, tmp_path, sample_results, pricing_fp, method
    ):
        store = ResultStore(tmp_path)
        key = task_store_key(task_for(method), pricing_fp)
        store.put(key, sample_results[method])
        got = store.get(key)
        assert got is not None
        assert_results_equal(got, sample_results[method])

    def test_put_is_idempotent(self, tmp_path, sample_results, pricing_fp):
        store = ResultStore(tmp_path)
        key = task_store_key(task_for("EBA"), pricing_fp)
        store.put(key, sample_results["EBA"])
        store.put(key, sample_results["EBA"])
        assert store.stats().entries == 1
        assert_results_equal(store.get(key), sample_results["EBA"])

    def test_tiered_straggler_run_round_trips(self, tmp_path):
        """A tiered run (slot caps, straggler-inflated runtimes) stores
        and loads bit-identically, keyed by its own pricing catalogue."""
        from repro.experiments._simulation import scenario, workload
        from repro.sim.policies import LargestFirstPolicy

        tiered = dict(scenario("tiered", SEED))
        wl = workload("tiered", SCALE, SEED)
        result = MultiClusterSimulator(
            tiered, method_by_name("CBA"), LargestFirstPolicy()
        ).run(wl)
        fp = QuoteTable.fingerprint(
            {n: pricing_for_sim_machine(m) for n, m in tiered.items()}
        )
        key = task_store_key(
            SweepTask("tiered", "LargestFirst", "CBA", SCALE, SEED), fp
        )
        store = ResultStore(tmp_path)
        store.put(key, result)
        got = store.get(key)
        assert got is not None
        assert_results_equal(got, result)

    def test_unknown_key_is_a_miss(self, tmp_path):
        store = ResultStore(tmp_path)
        assert store.get(fingerprint_digest("nothing here")) is None
        stats = store.stats()
        assert (stats.hits, stats.misses, stats.corrupt) == (0, 1, 0)


class TestRecovery:
    """Truncated / corrupt / partially-written entries recompute, never
    crash."""

    def _stored(self, tmp_path, sample_results, pricing_fp):
        store = ResultStore(tmp_path)
        key = task_store_key(task_for("EBA"), pricing_fp)
        store.put(key, sample_results["EBA"])
        return store, key, store._path(key)

    def test_truncated_entry(self, tmp_path, sample_results, pricing_fp):
        store, key, path = self._stored(tmp_path, sample_results, pricing_fp)
        path.write_bytes(path.read_bytes()[: path.stat().st_size // 2])
        assert store.get(key) is None
        assert not path.exists()  # dropped, so the recompute can re-put
        stats = store.stats()
        assert stats.corrupt == 1 and stats.misses == 1
        store.put(key, sample_results["EBA"])
        assert_results_equal(store.get(key), sample_results["EBA"])

    def test_corrupt_entry(self, tmp_path, sample_results, pricing_fp):
        store, key, path = self._stored(tmp_path, sample_results, pricing_fp)
        path.write_bytes(b"\x00" * 512)
        assert store.get(key) is None
        assert store.stats().corrupt == 1

    def test_stale_format_version(self, tmp_path, sample_results, pricing_fp):
        store, key, path = self._stored(tmp_path, sample_results, pricing_fp)
        with np.load(io.BytesIO(path.read_bytes())) as data:
            columns = {name: data[name] for name in data.files}
        columns["__meta__"] = np.frombuffer(
            b'{"format": "repro-result-store-v0"}', dtype=np.uint8
        )
        buffer = io.BytesIO()
        np.savez(buffer, **columns)
        path.write_bytes(buffer.getvalue())
        assert store.get(key) is None
        assert store.stats().corrupt == 1

    def test_partially_written_tmp_invisible(
        self, tmp_path, sample_results, pricing_fp
    ):
        store, key, path = self._stored(tmp_path, sample_results, pricing_fp)
        # A crash mid-put leaves a .tmp in the root; it is never listed
        # as an entry and never consulted by get.
        (tmp_path / "put-crashed.tmp").write_bytes(b"half a payload")
        assert store.stats().entries == 1
        assert_results_equal(store.get(key), sample_results["EBA"])


class TestEviction:
    def test_lru_eviction_respects_budget(
        self, tmp_path, sample_results, pricing_fp
    ):
        entry_size = len(
            ResultStore(tmp_path / "probe")._encode(sample_results["EBA"])
        )
        store = ResultStore(tmp_path / "store", max_bytes=2 * entry_size + 64)
        keys = [
            task_store_key(task_for(method), pricing_fp)
            for method in ("Runtime", "Energy", "Peak")
        ]
        store.put(keys[0], sample_results["Runtime"])
        store.put(keys[1], sample_results["Energy"])
        # Pin the ordering below filesystem mtime granularity.
        os.utime(store._path(keys[0]), (100, 100))
        os.utime(store._path(keys[1]), (200, 200))
        store.put(keys[2], sample_results["Peak"])
        stats = store.stats()
        assert stats.entries == 2
        assert stats.evictions == 1
        assert stats.bytes <= store.max_bytes
        # Oldest-touched went first.
        assert store.get(keys[0]) is None
        assert store.get(keys[2]) is not None

    def test_hit_bumps_recency(self, tmp_path, sample_results, pricing_fp):
        entry_size = len(
            ResultStore(tmp_path / "probe")._encode(sample_results["EBA"])
        )
        store = ResultStore(tmp_path / "store", max_bytes=2 * entry_size + 64)
        keys = {
            method: task_store_key(task_for(method), pricing_fp)
            for method in ("Runtime", "Energy", "Peak")
        }
        store.put(keys["Runtime"], sample_results["Runtime"])
        store.put(keys["Energy"], sample_results["Energy"])
        # Age both well into the past (filesystem mtime granularity can
        # otherwise make same-tick writes indistinguishable), with
        # Runtime the older of the two.
        os.utime(store._path(keys["Runtime"]), (100, 100))
        os.utime(store._path(keys["Energy"]), (200, 200))
        assert store.get(keys["Runtime"]) is not None  # bump Runtime
        assert store._path(keys["Runtime"]).stat().st_mtime > 200
        store.put(keys["Peak"], sample_results["Peak"])
        assert store.get(keys["Runtime"]) is not None  # survived
        assert store.get(keys["Energy"]) is None  # evicted instead

    def test_budget_below_one_entry_keeps_newest(
        self, tmp_path, sample_results, pricing_fp
    ):
        store = ResultStore(tmp_path, max_bytes=1)
        first = task_store_key(task_for("Runtime"), pricing_fp)
        second = task_store_key(task_for("Energy"), pricing_fp)
        store.put(first, sample_results["Runtime"])
        store.put(second, sample_results["Energy"])
        # Degrades to most-recent-only caching, never to empty.
        assert store.stats().entries == 1
        assert store.get(second) is not None

    def test_clear_removes_entries(self, tmp_path, sample_results, pricing_fp):
        store = ResultStore(tmp_path)
        key = task_store_key(task_for("EBA"), pricing_fp)
        store.put(key, sample_results["EBA"])
        store.clear()
        assert store.stats().entries == 0
        assert store.get(key) is None

    def test_stats_as_dict_shape(self, tmp_path):
        stats = ResultStore(tmp_path).stats()
        assert set(stats.as_dict()) == {
            "entries",
            "bytes",
            "max_bytes",
            "hits",
            "misses",
            "evictions",
            "corrupt",
        }


class TestOutcomeTableShm:
    """The PR-7 leftover: outcome tables ship as shm blocks, both whole
    and streamed block-at-a-time."""

    def _table(self, sample_results):
        return sample_results["EBA"].table

    def test_round_trip(self, sample_results):
        table = self._table(sample_results)
        descriptor = table.to_shm()
        try:
            attached = OutcomeTable.attach(descriptor)
        finally:
            descriptor.unlink()
        assert attached.machines == table.machines
        assert len(attached) == len(table)
        for name, _ in OUTCOME_FIELDS:
            np.testing.assert_array_equal(
                getattr(attached, name), getattr(table, name)
            )

    def test_stream_to_shm_from_blocks(self, sample_results):
        table = self._table(sample_results)
        split = len(table) // 2
        blocks = [
            OutcomeTable(
                list(table.machines),
                **{
                    name: getattr(table, name)[sl]
                    for name, _ in OUTCOME_FIELDS
                },
            )
            for sl in (slice(None, split), slice(split, None))
        ]
        descriptor = OutcomeTable.stream_to_shm(
            iter(blocks), len(table), list(table.machines)
        )
        try:
            attached = OutcomeTable.attach(descriptor)
        finally:
            descriptor.unlink()
        for name, _ in OUTCOME_FIELDS:
            np.testing.assert_array_equal(
                getattr(attached, name), getattr(table, name)
            )

    def test_empty_table_round_trip(self, sample_results):
        table = self._table(sample_results)
        empty = OutcomeTable(
            list(table.machines),
            **{
                name: getattr(table, name)[:0]
                for name, _ in OUTCOME_FIELDS
            },
        )
        descriptor = empty.to_shm()
        try:
            attached = OutcomeTable.attach(descriptor)
        finally:
            descriptor.unlink()
        assert len(attached) == 0

    def test_unlink_is_idempotent(self, sample_results):
        descriptor = self._table(sample_results).to_shm()
        descriptor.unlink()
        descriptor.unlink()  # second call: clean no-op

    def test_row_count_mismatch_raises_without_leak(self, sample_results):
        table = self._table(sample_results)
        with pytest.raises(ValueError, match="row count"):
            OutcomeTable.stream_to_shm(
                iter([table]), len(table) + 1, list(table.machines)
            )
        with pytest.raises(ValueError, match="row count"):
            OutcomeTable.stream_to_shm(
                iter([table]), len(table) - 1, list(table.machines)
            )

    def test_store_format_in_module_all(self):
        assert isinstance(STORE_FORMAT, str) and STORE_FORMAT
