"""The migration extension (§7 limitation, lifted)."""

import dataclasses

import numpy as np
import pytest

from repro.accounting.methods import (
    CarbonBasedAccounting,
    EnergyBasedAccounting,
    all_methods,
)
from repro.accounting.pricing import QuoteTable
from repro.carbon.intensity import CarbonIntensityTrace
from repro.sim.engine import MultiClusterSimulator, pricing_for_sim_machine
from repro.sim.job import Job
from repro.sim.migration import MigratingSimulator
from repro.sim.policies import FixedMachinePolicy, GreedyPolicy
from repro.sim.workload import (
    PatelWorkloadGenerator,
    Workload,
    WorkloadConfig,
)


@pytest.fixture(scope="module")
def long_job_workload(low_carbon_machines):
    """Long jobs (median 4 h) — migration only matters for jobs that
    span intensity changes."""
    cfg = WorkloadConfig(
        n_base_jobs=200, n_users=40, seed=6, runtime_median_s=4 * 3600.0
    )
    return PatelWorkloadGenerator(low_carbon_machines, cfg).generate()


@pytest.fixture(scope="module")
def results(low_carbon_machines, long_job_workload):
    cba = CarbonBasedAccounting()
    plain = MultiClusterSimulator(
        low_carbon_machines, cba, GreedyPolicy()
    ).run(long_job_workload)
    migrating = MigratingSimulator(
        low_carbon_machines, cba, GreedyPolicy(), min_saving=0.15
    ).run(long_job_workload)
    return plain, migrating


class TestConservation:
    def test_every_job_still_completes(self, results, long_job_workload):
        plain, migrating = results
        assert migrating.n_jobs == plain.n_jobs == len(long_job_workload)
        assert len({o.job_id for o in migrating.outcomes}) == migrating.n_jobs

    def test_work_conserved(self, results):
        plain, migrating = results
        assert migrating.total_work_core_hours() == pytest.approx(
            plain.total_work_core_hours()
        )

    def test_costs_and_energy_positive(self, results):
        _, migrating = results
        for outcome in migrating.outcomes:
            assert outcome.cost > 0
            assert outcome.energy_j > 0
            assert outcome.submit_s <= outcome.start_s <= outcome.end_s

    def test_policy_label(self, results):
        _, migrating = results
        assert migrating.policy == "Greedy+migrate"


class TestBenefit:
    def test_migration_reduces_operational_carbon(self, results):
        """The point of lifting the limitation: jobs follow the cheap
        grid hours and operational carbon drops."""
        plain, migrating = results
        assert (
            migrating.total_operational_carbon_g()
            < plain.total_operational_carbon_g()
        )

    def test_migration_does_not_inflate_cost(self, results):
        plain, migrating = results
        assert migrating.total_cost() <= plain.total_cost() * 1.02


class TestBatchedExactness:
    """The batched pricing paths (kernel quotes, batched probes,
    deferred segment settlement) against the per-record reference, for
    every accounting method — same outcomes, same order, same floats."""

    @pytest.fixture(scope="class")
    def exactness_workload(self, low_carbon_machines):
        cfg = WorkloadConfig(
            n_base_jobs=120, n_users=30, seed=11, runtime_median_s=5 * 3600.0
        )
        return PatelWorkloadGenerator(low_carbon_machines, cfg).generate()

    @pytest.mark.parametrize(
        "method", all_methods(), ids=lambda m: m.name
    )
    def test_bit_identical_outcomes(
        self, low_carbon_machines, exactness_workload, method
    ):
        reference = MigratingSimulator(
            low_carbon_machines,
            method,
            GreedyPolicy(),
            min_saving=0.1,
            batched=False,
        ).run(exactness_workload)
        batched = MigratingSimulator(
            low_carbon_machines, method, GreedyPolicy(), min_saving=0.1
        ).run(exactness_workload)
        assert batched.outcomes == reference.outcomes
        assert batched.machines == reference.machines
        assert batched.policy == reference.policy

    def test_migrations_actually_happen_under_cba(
        self, low_carbon_machines, exactness_workload
    ):
        """Guard the guard: the exactness fixture must exercise the
        migration (segment-splitting) code path, not just plain runs."""
        sim = MigratingSimulator(
            low_carbon_machines,
            CarbonBasedAccounting(),
            GreedyPolicy(),
            min_saving=0.1,
        )
        result = sim.run(exactness_workload)
        assert result.n_jobs == len(exactness_workload)
        plain = MultiClusterSimulator(
            low_carbon_machines, CarbonBasedAccounting(), GreedyPolicy()
        ).run(exactness_workload)
        assert result.total_cost() != plain.total_cost()


class TestPrebuiltQuoteTable:
    """Runs that adopt a sweep-shared quote table must change nothing."""

    def test_prebuilt_table_bit_identical(
        self, low_carbon_machines, long_job_workload
    ):
        cba = CarbonBasedAccounting()
        pricings = {
            name: pricing_for_sim_machine(m)
            for name, m in low_carbon_machines.items()
        }
        table = QuoteTable.build(long_job_workload.jobs, pricings, cba)
        fresh = MigratingSimulator(
            low_carbon_machines, cba, GreedyPolicy(), min_saving=0.15
        ).run(long_job_workload)
        adopted = MigratingSimulator(
            low_carbon_machines,
            cba,
            GreedyPolicy(),
            min_saving=0.15,
            quote_table=table,
        ).run(long_job_workload)
        assert adopted.outcomes == fresh.outcomes

    def test_mismatched_table_rejected(
        self, low_carbon_machines, long_job_workload
    ):
        cba = CarbonBasedAccounting()
        pricings = {
            name: pricing_for_sim_machine(m)
            for name, m in low_carbon_machines.items()
        }
        table = QuoteTable.build(
            long_job_workload.jobs[:5], pricings, cba
        )
        sim = MigratingSimulator(
            low_carbon_machines, cba, GreedyPolicy(), quote_table=table
        )
        with pytest.raises(ValueError, match="quote table does not match"):
            sim.run(long_job_workload)


class TestKnobs:
    def test_infinite_hurdle_means_no_migration(
        self, low_carbon_machines, long_job_workload
    ):
        """min_saving ~ 1 disables migration; results must match the
        plain engine's totals (same placements, same charging)."""
        cba = CarbonBasedAccounting()
        frozen = MigratingSimulator(
            low_carbon_machines, cba, GreedyPolicy(), min_saving=0.999
        ).run(long_job_workload)
        plain = MultiClusterSimulator(
            low_carbon_machines, cba, GreedyPolicy()
        ).run(long_job_workload)
        assert frozen.total_energy_j() == pytest.approx(
            plain.total_energy_j(), rel=1e-6
        )
        assert frozen.total_cost() == pytest.approx(plain.total_cost(), rel=1e-6)

    def test_time_invariant_method_never_migrates(
        self, low_carbon_machines, long_job_workload
    ):
        """Under EBA nothing changes with the clock, so migrating and
        plain runs coincide."""
        eba = EnergyBasedAccounting()
        migrating = MigratingSimulator(
            low_carbon_machines, eba, GreedyPolicy(), min_saving=0.05
        ).run(long_job_workload)
        plain = MultiClusterSimulator(
            low_carbon_machines, eba, GreedyPolicy()
        ).run(long_job_workload)
        assert migrating.total_cost() == pytest.approx(plain.total_cost(), rel=1e-6)

    def test_validation(self, low_carbon_machines):
        cba = CarbonBasedAccounting()
        with pytest.raises(ValueError):
            MigratingSimulator(
                low_carbon_machines, cba, GreedyPolicy(), reevaluate_every_s=0
            )
        with pytest.raises(ValueError):
            MigratingSimulator(low_carbon_machines, cba, GreedyPolicy(), overhead_s=-1)
        with pytest.raises(ValueError):
            MigratingSimulator(low_carbon_machines, cba, GreedyPolicy(), min_saving=1.0)


class TestVectorizedDecisionTieBreak:
    """Exactly tied move targets: the masked-argmin decision pass must
    pick the scalar walk's winner — the *first* machine in the job's own
    eligibility order that reaches the minimum move cost."""

    @pytest.fixture()
    def tied_world(self, low_carbon_machines):
        """Home on a dirty grid plus two bit-identical clean clones.

        CloneA and CloneB share one node spec, one intensity trace
        object, and (below) identical per-job runtimes/energies, so
        their move probes are equal to the last bit and every migration
        decision is a tie between them.
        """
        base = low_carbon_machines["FASTER"]
        hours = 21 * 24
        dirty = CarbonIntensityTrace("dirty", np.full(hours, 900.0))
        clean = CarbonIntensityTrace("clean", np.full(hours, 20.0))

        def clone(name, trace):
            return dataclasses.replace(
                base,
                node=dataclasses.replace(base.node, name=name),
                intensity=trace,
            )

        machines = {
            "Home": clone("Home", dirty),
            "CloneA": clone("CloneA", clean),
            "CloneB": clone("CloneB", clean),
        }
        jobs = [
            Job(
                job_id=i,
                user=i,
                cores=4,
                submit_s=0.0,
                # Eligibility order: Home, CloneA, CloneB — the scalar
                # walk must settle on CloneA.
                runtime_s={
                    "Home": 10 * 3600.0,
                    "CloneA": 10 * 3600.0,
                    "CloneB": 10 * 3600.0,
                },
                energy_j={"Home": 5e8, "CloneA": 5e8, "CloneB": 5e8},
            )
            for i in range(6)
        ]
        workload = Workload(
            jobs=jobs, config=WorkloadConfig(), machines=list(machines)
        )
        return machines, workload

    def _run(self, machines, workload, **kwargs):
        sim = MigratingSimulator(
            machines,
            CarbonBasedAccounting(),
            FixedMachinePolicy("Home"),
            min_saving=0.05,
            overhead_s=30.0,
            **kwargs,
        )
        return sim

    def test_tied_targets_bit_identical_and_first_eligible_wins(
        self, tied_world
    ):
        machines, workload = tied_world
        reference = self._run(machines, workload, batched=False).run(workload)
        vectorized = self._run(machines, workload)
        vectorized.tick_vector_min = 0
        vectorized.probe_vector_min = 0
        result = vectorized.run(workload)
        assert result.outcomes == reference.outcomes
        # The tie must actually occur and resolve to the first-eligible
        # clone, or this proves nothing about argmin tie-breaking.
        finals = {o.machine for o in reference.outcomes}
        assert finals == {"CloneA"}


class TestRunningTableLiveRows:
    """Dense live-row layout of the running table.

    Rows ``[0, len(table))`` are all live; ``remove`` fills the hole it
    leaves by swapping the last row down.  ``candidates`` must therefore
    do zero work proportional to dead capacity — high-churn runs used to
    pay for their slot-array high-water mark on every tick (bounded, but
    not eliminated, by the old compaction heuristic)."""

    def _build(self, n):
        from repro.sim.migration import RunningTable

        table = RunningTable()
        sentinels = {}
        for i in range(n):
            state = object()
            sentinels[i] = state
            table.add(
                job_id=i,
                job_row=i,
                machine_idx=i % 4,
                start_s=0.0,
                end_s=1000.0 + i,
                remaining_fraction=1.0,
                state=state,
            )
        return table, sentinels

    def _churn(self, table, n, keep_every=16):
        for i in range(n):
            if i % keep_every:
                table.remove(i)

    def test_candidates_touch_only_live_rows(self):
        """The scan-free contract: after heavy churn a scan visits
        exactly the live rows, never the 512-row high-water mark."""
        table, _ = self._build(512)
        self._churn(table, 512)
        live = 512 // 16
        assert len(table) == live
        rows, _, _ = table.candidates(500.0)
        assert table.last_scan_rows == live
        assert len(rows) == live
        assert int(rows.max()) < live

    def test_remove_swaps_last_row_into_hole(self):
        table, sentinels = self._build(4)
        table.remove(1)
        assert len(table) == 3
        row = table._slot_of[3]
        assert row == 1
        assert table.job_id[row] == 3
        assert table.states[row] is sentinels[3]

    def test_swap_removal_is_invisible_to_the_scan(self):
        """(job, remaining, frac_done) from a churned table equals the
        per-survivor scalar math, in (machine, seq) candidate order."""
        table, _ = self._build(512)
        self._churn(table, 512)
        rows, remaining, frac_done = table.candidates(500.0)
        got = [
            (int(table.job_id[r]), float(rem), float(f))
            for r, rem, f in zip(rows, remaining, frac_done)
        ]
        survivors = sorted(
            (i for i in range(512) if i % 16 == 0),
            key=lambda i: (i % 4, i),  # (machine, insertion seq)
        )
        expected = []
        for i in survivors:
            done = (500.0 - 0.0) / ((1000.0 + i) - 0.0)
            frac = 1.0 * done
            expected.append((i, 1.0 - frac, frac))
        assert got == expected

    def test_capacity_shrinks_as_an_allocator_detail(self):
        from repro.sim.migration import COMPACT_MIN_CAPACITY

        table, _ = self._build(512)
        assert len(table.machine) >= 512
        self._churn(table, 512)
        assert table.shrinks >= 1
        assert len(table.machine) < 512
        assert len(table.machine) >= COMPACT_MIN_CAPACITY

    def test_table_stays_consistent_after_churn(self):
        table, sentinels = self._build(512)
        self._churn(table, 512)
        live = sorted(table._slot_of)
        assert live == [i for i in range(512) if i % 16 == 0]
        for job_id, row in table._slot_of.items():
            assert row < len(table)
            assert table.job_id[row] == job_id
            assert table.machine[row] == job_id % 4
            assert table.end[row] == 1000.0 + job_id
            assert table.states[row] is sentinels[job_id]
        # Adds keep working off the shrunk arrays.
        table.add(
            job_id=9000,
            job_row=9000,
            machine_idx=1,
            start_s=0.0,
            end_s=5000.0,
            remaining_fraction=1.0,
            state=object(),
        )
        assert 9000 in table._slot_of
        assert len(table) == len(live) + 1
        assert table.job_id[table._slot_of[9000]] == 9000
