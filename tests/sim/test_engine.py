"""The event-driven engine: conservation, determinism, and paper shapes."""

import pytest

from repro.accounting.methods import CarbonBasedAccounting, EnergyBasedAccounting
from repro.sim.engine import MultiClusterSimulator, pricing_for_sim_machine
from repro.sim.policies import (
    EnergyPolicy,
    GreedyPolicy,
    standard_policies,
)


@pytest.fixture(scope="module")
def eba_results(sim_machines, small_workload):
    method = EnergyBasedAccounting()
    return {
        p.name: MultiClusterSimulator(sim_machines, method, p).run(small_workload)
        for p in standard_policies()
    }


class TestConservation:
    def test_every_job_completes_exactly_once(self, eba_results, small_workload):
        for result in eba_results.values():
            ids = [o.job_id for o in result.outcomes]
            assert len(ids) == len(small_workload)
            assert len(set(ids)) == len(ids)

    def test_total_work_is_policy_independent(self, eba_results, small_workload):
        expect = small_workload.total_work_core_hours
        for result in eba_results.values():
            assert result.total_work_core_hours() == pytest.approx(expect)

    def test_causality(self, eba_results):
        for result in eba_results.values():
            for o in result.outcomes[:500]:
                assert o.submit_s <= o.start_s <= o.end_s

    def test_costs_positive(self, eba_results):
        for result in eba_results.values():
            assert all(o.cost > 0 for o in result.outcomes)

    def test_fixed_policy_uses_one_machine(self, eba_results):
        dist = eba_results["Theta"].machine_distribution()
        used = {m for m, n in dist.items() if n > 0}
        assert used == {"Theta"}

    def test_attributed_at_least_operational(self, eba_results):
        result = eba_results["Greedy"]
        for o in result.outcomes[:500]:
            assert o.attributed_carbon_g >= o.operational_carbon_g


class TestDeterminism:
    def test_same_inputs_same_outcomes(self, sim_machines, small_workload):
        method = EnergyBasedAccounting()
        a = MultiClusterSimulator(sim_machines, method, GreedyPolicy()).run(
            small_workload
        )
        b = MultiClusterSimulator(sim_machines, method, GreedyPolicy()).run(
            small_workload
        )
        assert [o.job_id for o in a.outcomes] == [o.job_id for o in b.outcomes]
        assert a.total_cost() == pytest.approx(b.total_cost())


class TestBudgets:
    def test_work_monotone_in_budget(self, eba_results):
        result = eba_results["Greedy"]
        total = result.total_cost()
        works = [result.work_with_budget(f * total) for f in (0.1, 0.5, 1.0)]
        assert works[0] <= works[1] <= works[2]

    def test_full_budget_completes_everything(self, eba_results, small_workload):
        result = eba_results["Greedy"]
        assert result.work_with_budget(result.total_cost() * 1.001) == pytest.approx(
            small_workload.total_work_core_hours
        )

    def test_zero_budget_zero_work(self, eba_results):
        assert eba_results["Greedy"].work_with_budget(0.0) == 0.0

    def test_negative_budget_rejected(self, eba_results):
        with pytest.raises(ValueError):
            eba_results["Greedy"].work_with_budget(-1.0)

    def test_jobs_finished_by_is_cumulative(self, eba_results):
        result = eba_results["EFT"]
        times = [0.0, result.makespan_s / 2, result.makespan_s]
        counts = result.jobs_finished_by(times)
        assert counts[0] == 0
        assert counts == sorted(counts)
        assert counts[-1] == result.n_jobs


class TestPaperShapes:
    """The §5.4 qualitative findings at reduced scale."""

    def test_energy_policy_uses_least_energy(self, eba_results):
        e_energy = eba_results["Energy"].total_energy_j()
        for name in ("Mixed", "EFT", "Runtime", "Theta", "IC", "FASTER"):
            assert eba_results[name].total_energy_j() >= e_energy * 0.999

    def test_greedy_close_to_energy(self, eba_results):
        ratio = (
            eba_results["Greedy"].total_energy_j()
            / eba_results["Energy"].total_energy_j()
        )
        assert ratio < 1.10  # paper: +2%

    def test_greedy_beats_eft_on_fixed_allocation(self, eba_results):
        budget = 0.5 * eba_results["Greedy"].total_cost()
        greedy = eba_results["Greedy"].work_with_budget(budget)
        eft = eba_results["EFT"].work_with_budget(budget)
        assert greedy > eft

    def test_theta_policy_worst_energy(self, eba_results):
        assert eba_results["Theta"].total_energy_j() == max(
            r.total_energy_j() for r in eba_results.values()
        )

    def test_greedy_mostly_avoids_theta(self, eba_results):
        dist = eba_results["Greedy"].machine_distribution()
        assert dist["Theta"] / sum(dist.values()) < 0.15

    def test_runtime_policy_favours_ic(self, eba_results):
        dist = eba_results["Runtime"].machine_distribution()
        assert max(dist, key=dist.__getitem__) == "IC"

    def test_single_machine_policies_have_long_queues(self, eba_results):
        assert (
            eba_results["Theta"].mean_queue_wait_s()
            > eba_results["EFT"].mean_queue_wait_s()
        )


class TestCBAEngine:
    def test_greedy_shifts_away_from_faster_under_cba(
        self, sim_machines, small_workload
    ):
        eba = MultiClusterSimulator(
            sim_machines, EnergyBasedAccounting(), GreedyPolicy()
        ).run(small_workload)
        cba = MultiClusterSimulator(
            sim_machines, CarbonBasedAccounting(), GreedyPolicy()
        ).run(small_workload)
        share_eba = eba.machine_distribution()["FASTER"] / eba.n_jobs
        share_cba = cba.machine_distribution()["FASTER"] / cba.n_jobs
        assert share_cba < share_eba

    def test_cba_cost_in_grams_scale(self, sim_machines, small_workload):
        cba = MultiClusterSimulator(
            sim_machines, CarbonBasedAccounting(), EnergyPolicy()
        ).run(small_workload)
        # Mean job: grams, not kilograms or micrograms.
        mean_cost = cba.total_cost() / cba.n_jobs
        assert 0.1 < mean_cost < 1e5


class TestPricingAdapter:
    def test_fleet_pricing_scales_embodied_linearly(self, sim_machines):
        from repro.accounting.base import UsageRecord

        machine = sim_machines["IC"]
        pricing = pricing_for_sim_machine(machine)
        cba = CarbonBasedAccounting()
        r1 = UsageRecord(machine="IC", duration_s=3600.0, energy_j=0.0, cores=48)
        r2 = UsageRecord(machine="IC", duration_s=3600.0, energy_j=0.0, cores=96)
        one_node = cba.embodied_charge(r1, pricing)
        two_nodes = cba.embodied_charge(r2, pricing)
        assert one_node == pytest.approx(machine.carbon_rate_g_per_h, rel=1e-6)
        assert two_nodes == pytest.approx(2 * one_node, rel=1e-6)
