"""The shared event core: calendar ordering + ready-queue indexing."""

import pytest

from repro.sim.events import ARRIVAL, FINISH, TICK, EventCalendar, ReadyQueue
from repro.sim.job import Job


def job(job_id, submit=0.0, user=0, cores=8, rt=100.0, machine="IC"):
    return Job(
        job_id=job_id,
        user=user,
        cores=cores,
        submit_s=submit,
        runtime_s={machine: rt},
        energy_j={machine: 1000.0},
    )


class TestEventCalendar:
    def test_empty_calendar_is_falsy(self):
        calendar = EventCalendar([])
        assert not calendar
        assert calendar.pop() is None

    def test_arrivals_pop_in_submit_order(self):
        jobs = [job(1, submit=5.0), job(2, submit=1.0), job(3, submit=3.0)]
        calendar = EventCalendar(jobs)
        order = [calendar.pop()[2].job_id for _ in range(3)]
        assert order == [2, 3, 1]

    def test_equal_time_arrivals_keep_submission_order(self):
        jobs = [job(9, submit=1.0), job(4, submit=1.0), job(7, submit=1.0)]
        calendar = EventCalendar(jobs)
        order = [calendar.pop()[2].job_id for _ in range(3)]
        assert order == [9, 4, 7]

    def test_arrival_beats_finish_at_equal_time(self):
        calendar = EventCalendar([job(1, submit=10.0)])
        calendar.schedule_finish(10.0, "f")
        assert calendar.pop()[1] == ARRIVAL
        assert calendar.pop()[1] == FINISH

    def test_finish_beats_tick_at_equal_time(self):
        calendar = EventCalendar([])
        calendar.schedule_tick(10.0)
        calendar.schedule_finish(10.0, "f")
        assert calendar.pop()[1] == FINISH
        now, kind, payload = calendar.pop()
        assert (now, kind, payload) == (10.0, TICK, None)

    def test_equal_time_finishes_pop_in_push_order(self):
        calendar = EventCalendar([])
        for payload in ("a", "b", "c"):
            calendar.schedule_finish(2.0, payload)
        assert [calendar.pop()[2] for _ in range(3)] == ["a", "b", "c"]

    def test_tick_is_single_and_reschedulable(self):
        calendar = EventCalendar([])
        calendar.schedule_tick(5.0)
        calendar.schedule_tick(7.0)  # supersedes
        now, kind, _ = calendar.pop()
        assert (now, kind) == (7.0, TICK)
        assert not calendar

    def test_interleaved_streams_respect_global_time(self):
        calendar = EventCalendar([job(1, submit=1.0), job(2, submit=6.0)])
        calendar.schedule_finish(4.0, "f1")
        calendar.schedule_tick(5.0)
        kinds = []
        while calendar:
            kinds.append(calendar.pop()[1])
        assert kinds == [ARRIVAL, FINISH, TICK, ARRIVAL]


class TestReadyQueue:
    def test_rejects_bad_window(self):
        with pytest.raises(ValueError):
            ReadyQueue(0)

    def test_push_classifies_cores_blocked(self):
        rq = ReadyQueue(8)
        rq.synced = True  # as after a scan of an (empty) window
        rq.push(job(1, cores=100), free_cores=10, busy_users=set())
        assert rq.synced
        assert rq.min_blocked_cores == 100

    def test_push_classifies_user_blocked(self):
        rq = ReadyQueue(8)
        rq.synced = True
        rq.push(job(1, user=7, cores=4), free_cores=10, busy_users={7})
        assert rq.synced
        assert rq.blocked_users == {7}

    def test_push_of_startable_job_clears_synced(self):
        rq = ReadyQueue(8)
        rq.synced = True
        rq.push(job(1, cores=4), free_cores=10, busy_users=set())
        assert not rq.synced

    def test_push_beyond_window_keeps_synced(self):
        rq = ReadyQueue(1)
        rq.synced = True
        rq.push(job(1, cores=100), free_cores=10, busy_users=set())
        # Second job lands beyond the 1-wide window: unreachable, so the
        # index stays valid even though the job would fit.
        rq.push(job(2, cores=4), free_cores=10, busy_users=set())
        assert rq.synced

    def test_note_release_wakes_on_enough_cores(self):
        rq = ReadyQueue(8)
        rq.synced = True
        rq.push(job(1, cores=100), free_cores=10, busy_users=set())
        rq.note_release(user=99, free_cores=50)
        assert rq.synced  # still short of 100 cores, no scan needed
        rq.note_release(user=99, free_cores=100)
        assert not rq.synced

    def test_note_release_wakes_on_blocking_user_drain(self):
        rq = ReadyQueue(8)
        rq.synced = True
        rq.push(job(1, user=7, cores=4), free_cores=10, busy_users={7})
        rq.note_release(user=3, free_cores=1)
        assert rq.synced  # unrelated user
        rq.note_release(user=7, free_cores=1)
        assert not rq.synced

    def test_reindex_rebuilds_buckets(self):
        rq = ReadyQueue(2)
        rq.push(job(1, user=1, cores=100), free_cores=0, busy_users=set())
        rq.push(job(2, user=2, cores=50), free_cores=0, busy_users=set())
        rq.push(job(3, user=3, cores=1), free_cores=0, busy_users=set())
        rq.reindex(free_cores=10, busy_users={1})
        assert rq.synced
        assert rq.blocked_users == {1}
        # Job 3 sits beyond the window, so the min comes from job 2 only.
        assert rq.min_blocked_cores == 50

    def test_reindex_stays_unsynced_when_a_window_job_fits(self):
        rq = ReadyQueue(4)
        rq.push(job(1, cores=100), free_cores=0, busy_users=set())
        rq.push(job(2, cores=4), free_cores=0, busy_users=set())
        rq.reindex(free_cores=10, busy_users=set())
        assert not rq.synced
