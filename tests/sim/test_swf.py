"""SWF trace import/export."""

import pytest

from repro.sim.swf import (
    HEADER_TEMPLATE,
    REFERENCE_MACHINE,
    iter_swf_job_chunks,
    open_swf_stream,
    read_swf,
    roundtrip_consistent,
    write_swf,
    write_synthetic_swf,
)
from repro.sim.workload import PatelWorkloadGenerator, WorkloadConfig


@pytest.fixture(scope="module")
def tiny_workload(sim_machines):
    cfg = WorkloadConfig(n_base_jobs=60, n_users=15, seed=8)
    return PatelWorkloadGenerator(sim_machines, cfg).generate()


class TestWrite:
    def test_writes_header_and_records(self, tiny_workload, tmp_path):
        path = write_swf(tiny_workload, tmp_path / "trace.swf")
        text = path.read_text()
        assert text.startswith(";")
        data_lines = [ln for ln in text.splitlines() if ln and not ln.startswith(";")]
        assert len(data_lines) == len(tiny_workload)
        assert all(len(ln.split()) == 18 for ln in data_lines)

    def test_reference_runtime_recorded(self, tiny_workload, tmp_path):
        path = write_swf(tiny_workload, tmp_path / "trace.swf")
        first = next(
            ln for ln in path.read_text().splitlines()
            if ln and not ln.startswith(";")
        ).split()
        job = tiny_workload.jobs[0]
        assert int(first[3]) == round(job.runtime_s[REFERENCE_MACHINE])
        assert int(first[4]) == job.cores


class TestRead:
    def test_roundtrip_preserves_reference_columns(
        self, tiny_workload, sim_machines, tmp_path
    ):
        assert roundtrip_consistent(
            tiny_workload, sim_machines, tmp_path / "rt.swf", seed=1
        )

    def test_read_extrapolates_all_machines(
        self, tiny_workload, sim_machines, tmp_path
    ):
        path = write_swf(tiny_workload, tmp_path / "trace.swf")
        back = read_swf(path, sim_machines, seed=1)
        for job in back.jobs:
            assert REFERENCE_MACHINE in job.runtime_s
            for machine, runtime in job.runtime_s.items():
                assert runtime > 0
                assert job.energy_j[machine] > 0
            if job.cores > 16:
                assert "Desktop" not in job.runtime_s

    def test_read_trace_is_simulatable(self, tiny_workload, sim_machines, tmp_path):
        from repro.accounting.methods import EnergyBasedAccounting
        from repro.sim.engine import MultiClusterSimulator
        from repro.sim.policies import GreedyPolicy

        path = write_swf(tiny_workload, tmp_path / "trace.swf")
        back = read_swf(path, sim_machines, seed=1)
        result = MultiClusterSimulator(
            sim_machines, EnergyBasedAccounting(), GreedyPolicy()
        ).run(back)
        assert result.n_jobs == len(back)

    def test_skips_cancelled_records(self, sim_machines, tmp_path):
        path = tmp_path / "bad.swf"
        path.write_text(
            "; header\n"
            "1 0 -1 100 8 -1 -1 -1 -1 -1 -1 3 -1 5000 -1 -1 -1 -1\n"
            "2 10 -1 0 8 -1 -1 -1 -1 -1 -1 3 -1 5000 -1 -1 -1 -1\n"  # runtime 0
            "3 20 -1 100 0 -1 -1 -1 -1 -1 -1 3 -1 5000 -1 -1 -1 -1\n"  # cores 0
        )
        back = read_swf(path, sim_machines, seed=1)
        assert [j.job_id for j in back.jobs] == [1]

    def test_empty_trace_rejected(self, sim_machines, tmp_path):
        path = tmp_path / "empty.swf"
        path.write_text("; nothing here\n")
        with pytest.raises(ValueError, match="no usable records"):
            read_swf(path, sim_machines)

    def test_malformed_record_rejected(self, sim_machines, tmp_path):
        path = tmp_path / "short.swf"
        path.write_text("1 2 3\n")
        with pytest.raises(ValueError, match="malformed"):
            read_swf(path, sim_machines)

    def test_thirteen_field_record_rejected(self, sim_machines, tmp_path):
        """One field short of the 14 the energy convention needs."""
        path = tmp_path / "thirteen.swf"
        path.write_text(" ".join(["1", "0", "-1", "100", "8"] + ["-1"] * 8) + "\n")
        with pytest.raises(ValueError, match="malformed"):
            read_swf(path, sim_machines)

    def test_non_numeric_field_rejected(self, sim_machines, tmp_path):
        path = tmp_path / "garbled.swf"
        path.write_text(
            "1 0 -1 oops 8 -1 -1 -1 -1 -1 -1 3 -1 5000 -1 -1 -1 -1\n"
        )
        with pytest.raises(ValueError):
            read_swf(path, sim_machines)


class TestEnergyConvention:
    """Field 14 ("requested memory", site-defined per the archive spec)
    carries reference-machine energy in joules; the header documents it."""

    def test_header_documents_field_14(self, tiny_workload, tmp_path):
        assert "field 14 = energy" in HEADER_TEMPLATE
        path = write_swf(tiny_workload, tmp_path / "trace.swf")
        header = "\n".join(
            ln for ln in path.read_text().splitlines() if ln.startswith(";")
        )
        assert "field 14 = energy" in header
        assert REFERENCE_MACHINE in header

    def test_field_14_lands_in_reference_energy(self, sim_machines, tmp_path):
        path = tmp_path / "one.swf"
        path.write_text(
            "7 0 -1 120 4 -1 -1 -1 -1 -1 -1 3 -1 98765 -1 -1 -1 -1\n"
        )
        back = read_swf(path, sim_machines, seed=1)
        (job,) = back.jobs
        assert job.job_id == 7
        assert job.energy_j[REFERENCE_MACHINE] == 98765.0
        assert job.runtime_s[REFERENCE_MACHINE] == 120.0


class TestChunkInvariance:
    def test_chunk_boundaries_do_not_change_any_float(
        self, tiny_workload, sim_machines, tmp_path
    ):
        """Record i's extrapolated runtimes/energies are a pure function
        of (seed, i): reading the trace in chunks of 1, 7, or 1000 jobs
        yields bit-identical jobs to the whole-trace read."""
        path = write_swf(tiny_workload, tmp_path / "trace.swf")
        whole = read_swf(path, sim_machines, seed=3)
        for chunk_jobs in (1, 7, 64, 1000):
            chunked = read_swf(path, sim_machines, seed=3, chunk_jobs=chunk_jobs)
            assert len(chunked) == len(whole)
            for a, b in zip(whole.jobs, chunked.jobs):
                assert a.job_id == b.job_id
                assert a.runtime_s == b.runtime_s  # exact float equality
                assert a.energy_j == b.energy_j

    def test_streamed_chunks_match_whole_read(
        self, tiny_workload, sim_machines, tmp_path
    ):
        path = write_swf(tiny_workload, tmp_path / "trace.swf")
        whole = read_swf(path, sim_machines, seed=3)
        stream = open_swf_stream(path, sim_machines, seed=3, chunk_jobs=17)
        streamed = [job for chunk in stream.chunks() for job in chunk]
        assert [j.job_id for j in streamed] == [j.job_id for j in whole.jobs]
        for a, b in zip(whole.jobs, streamed):
            assert a.runtime_s == b.runtime_s
            assert a.energy_j == b.energy_j


class TestStreamOrder:
    def test_unsorted_trace_rejected_when_required(self, sim_machines, tmp_path):
        path = tmp_path / "unsorted.swf"
        path.write_text(
            "1 100 -1 60 1 -1 -1 -1 -1 -1 -1 3 -1 5000 -1 -1 -1 -1\n"
            "2 50 -1 60 1 -1 -1 -1 -1 -1 -1 3 -1 5000 -1 -1 -1 -1\n"
        )
        with pytest.raises(ValueError, match="submit-sorted"):
            list(
                iter_swf_job_chunks(
                    path, sim_machines, seed=1, require_sorted=True
                )
            )

    def test_unsorted_across_chunk_boundary_rejected(
        self, sim_machines, tmp_path
    ):
        path = tmp_path / "unsorted2.swf"
        path.write_text(
            "1 100 -1 60 1 -1 -1 -1 -1 -1 -1 3 -1 5000 -1 -1 -1 -1\n"
            "2 50 -1 60 1 -1 -1 -1 -1 -1 -1 3 -1 5000 -1 -1 -1 -1\n"
        )
        with pytest.raises(ValueError, match="submit-sorted"):
            list(
                iter_swf_job_chunks(
                    path, sim_machines, seed=1, chunk_jobs=1, require_sorted=True
                )
            )

    def test_unsorted_trace_fine_in_memory(self, sim_machines, tmp_path):
        """read_swf sorts, so unsorted archives stay importable."""
        path = tmp_path / "unsorted3.swf"
        path.write_text(
            "1 100 -1 60 1 -1 -1 -1 -1 -1 -1 3 -1 5000 -1 -1 -1 -1\n"
            "2 50 -1 60 1 -1 -1 -1 -1 -1 -1 3 -1 5000 -1 -1 -1 -1\n"
        )
        back = read_swf(path, sim_machines, seed=1)
        assert [j.job_id for j in back.jobs] == [2, 1]


class TestSyntheticTrace:
    def test_deterministic_and_parseable(self, sim_machines, tmp_path):
        a = write_synthetic_swf(tmp_path / "a.swf", 500, seed=4)
        b = write_synthetic_swf(tmp_path / "b.swf", 500, seed=4)
        assert a.read_bytes() == b.read_bytes()
        chunks = list(
            iter_swf_job_chunks(
                a, sim_machines, seed=0, chunk_jobs=128, require_sorted=True
            )
        )
        jobs = [job for chunk in chunks for job in chunk]
        assert len(jobs) == 500  # small core counts: nothing dropped
        submits = [j.submit_s for j in jobs]
        assert submits == sorted(submits)
        assert all(j.cores <= 8 for j in jobs)

    def test_rejects_empty(self, tmp_path):
        with pytest.raises(ValueError, match="at least one job"):
            write_synthetic_swf(tmp_path / "x.swf", 0)
