"""SWF trace import/export."""

import pytest

from repro.sim.swf import REFERENCE_MACHINE, read_swf, roundtrip_consistent, write_swf
from repro.sim.workload import PatelWorkloadGenerator, WorkloadConfig


@pytest.fixture(scope="module")
def tiny_workload(sim_machines):
    cfg = WorkloadConfig(n_base_jobs=60, n_users=15, seed=8)
    return PatelWorkloadGenerator(sim_machines, cfg).generate()


class TestWrite:
    def test_writes_header_and_records(self, tiny_workload, tmp_path):
        path = write_swf(tiny_workload, tmp_path / "trace.swf")
        text = path.read_text()
        assert text.startswith(";")
        data_lines = [ln for ln in text.splitlines() if ln and not ln.startswith(";")]
        assert len(data_lines) == len(tiny_workload)
        assert all(len(ln.split()) == 18 for ln in data_lines)

    def test_reference_runtime_recorded(self, tiny_workload, tmp_path):
        path = write_swf(tiny_workload, tmp_path / "trace.swf")
        first = next(
            ln for ln in path.read_text().splitlines()
            if ln and not ln.startswith(";")
        ).split()
        job = tiny_workload.jobs[0]
        assert int(first[3]) == round(job.runtime_s[REFERENCE_MACHINE])
        assert int(first[4]) == job.cores


class TestRead:
    def test_roundtrip_preserves_reference_columns(
        self, tiny_workload, sim_machines, tmp_path
    ):
        assert roundtrip_consistent(
            tiny_workload, sim_machines, tmp_path / "rt.swf", seed=1
        )

    def test_read_extrapolates_all_machines(
        self, tiny_workload, sim_machines, tmp_path
    ):
        path = write_swf(tiny_workload, tmp_path / "trace.swf")
        back = read_swf(path, sim_machines, seed=1)
        for job in back.jobs:
            assert REFERENCE_MACHINE in job.runtime_s
            for machine, runtime in job.runtime_s.items():
                assert runtime > 0
                assert job.energy_j[machine] > 0
            if job.cores > 16:
                assert "Desktop" not in job.runtime_s

    def test_read_trace_is_simulatable(self, tiny_workload, sim_machines, tmp_path):
        from repro.accounting.methods import EnergyBasedAccounting
        from repro.sim.engine import MultiClusterSimulator
        from repro.sim.policies import GreedyPolicy

        path = write_swf(tiny_workload, tmp_path / "trace.swf")
        back = read_swf(path, sim_machines, seed=1)
        result = MultiClusterSimulator(
            sim_machines, EnergyBasedAccounting(), GreedyPolicy()
        ).run(back)
        assert result.n_jobs == len(back)

    def test_skips_cancelled_records(self, sim_machines, tmp_path):
        path = tmp_path / "bad.swf"
        path.write_text(
            "; header\n"
            "1 0 -1 100 8 -1 -1 -1 -1 -1 -1 3 -1 5000 -1 -1 -1 -1\n"
            "2 10 -1 0 8 -1 -1 -1 -1 -1 -1 3 -1 5000 -1 -1 -1 -1\n"  # runtime 0
            "3 20 -1 100 0 -1 -1 -1 -1 -1 -1 3 -1 5000 -1 -1 -1 -1\n"  # cores 0
        )
        back = read_swf(path, sim_machines, seed=1)
        assert [j.job_id for j in back.jobs] == [1]

    def test_empty_trace_rejected(self, sim_machines, tmp_path):
        path = tmp_path / "empty.swf"
        path.write_text("; nothing here\n")
        with pytest.raises(ValueError, match="no usable records"):
            read_swf(path, sim_machines)

    def test_malformed_record_rejected(self, sim_machines, tmp_path):
        path = tmp_path / "short.swf"
        path.write_text("1 2 3\n")
        with pytest.raises(ValueError, match="malformed"):
            read_swf(path, sim_machines)
