"""The tiered-fleet differential harness.

Everything the tiered scenario pack promises, proven in one place:

* the scenario itself (skewed core counts, per-tier slot caps, name
  round-trip for straggler knobs);
* the straggler model (pure, seed-deterministic, chunk- and
  order-invariant — hypothesis properties over the hash streams);
* the engine (all five accounting methods over the skewed fleet with
  stragglers: batched bit-identical to the scalar path and to the
  per-record seed loop, conservation invariants, slot caps actually
  enforced *and* binding);
* the sweep (identical seeds give identical outcomes across a spawn
  process boundary);
* the fairness report (per-user charge intensity grouped by dominant
  tier, bounded spread under every method).
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.accounting.methods import all_methods, method_by_name
from repro.experiments._simulation import scenario, workload
from repro.reporting import format_tier_fairness, format_tier_metrics
from repro.sim.engine import MultiClusterSimulator
from repro.sim.job import Job
from repro.sim.metrics import tier_fairness, tier_metrics
from repro.sim.policies import LargestFirstPolicy, MachineView
from repro.sim.scenarios import (
    DEFAULT_STRAGGLER_FRAC,
    DEFAULT_STRAGGLER_SIGMA,
    TIER_CONCURRENCY_LIMITS,
    TIER_ORDER,
    TIERED_SCENARIO,
    is_tiered_scenario,
    parse_tiered_scenario,
    tiered_scenario_name,
)
from repro.sim.sweep import SweepRunner, SweepTask
from repro.sim.workload import (
    PatelWorkloadGenerator,
    StragglerConfig,
    StreamingWorkload,
    Workload,
    WorkloadConfig,
    apply_stragglers,
    inject_stragglers,
    straggle_stream,
    straggler_factors,
    straggler_mask,
)
from test_event_equivalence import assert_results_identical, seed_engine_run

METHOD_NAMES = tuple(m.name for m in all_methods())

SWEEP_SCALE = 120
SWEEP_SEED = 3


# ---------------------------------------------------------------------------
# Scenario pack
# ---------------------------------------------------------------------------


class TestTieredScenario:
    def test_tier_order_matches_policy_default(self):
        assert TIER_ORDER == LargestFirstPolicy.DEFAULT_ORDER

    def test_fleet_shape(self, tiered_machines):
        # Insertion order is the policy's preference order.
        assert tuple(tiered_machines) == TIER_ORDER
        cores = {n: m.total_cores for n, m in tiered_machines.items()}
        # Skewed capacity: many slow cores, few fast ones.
        assert cores == {"Small": 384, "Medium": 288, "Large": 240}
        caps = {
            n: m.max_concurrent_jobs for n, m in tiered_machines.items()
        }
        assert caps == TIER_CONCURRENCY_LIMITS
        assert caps["Large"] == 6 and caps["Medium"] == 16
        assert caps["Small"] is None
        # The fast tiers really are faster per core, at every memory
        # intensity in range.
        for intensity in (0.0, 0.5, 1.0):
            assert (
                tiered_machines["Large"].perf.runtime_scale(intensity)
                < tiered_machines["Medium"].perf.runtime_scale(intensity)
                < tiered_machines["Small"].perf.runtime_scale(intensity)
            )

    def test_scenario_name_round_trip(self):
        assert tiered_scenario_name() == TIERED_SCENARIO
        assert parse_tiered_scenario(TIERED_SCENARIO) == (
            DEFAULT_STRAGGLER_FRAC,
            DEFAULT_STRAGGLER_SIGMA,
        )
        name = tiered_scenario_name(0.25, 1.75)
        assert is_tiered_scenario(name)
        assert name != TIERED_SCENARIO
        assert parse_tiered_scenario(name) == (0.25, 1.75)

    @pytest.mark.parametrize(
        "bad",
        ["baseline", "tiered:frac", "tiered:cheese=1.0", "low-carbon"],
    )
    def test_scenario_name_rejects(self, bad):
        with pytest.raises(KeyError):
            parse_tiered_scenario(bad)

    def test_registered_with_experiments(self):
        machines = dict(scenario(TIERED_SCENARIO, seed=0))
        assert tuple(machines) == TIER_ORDER
        wl = workload(TIERED_SCENARIO, 60, seed=0)
        assert len(wl.jobs) >= 60
        # The registered workload really is straggler-inflated: knobs
        # come from the name, seed from the workload seed.
        ids = np.fromiter(
            (j.job_id for j in wl.jobs), dtype=np.int64, count=len(wl.jobs)
        )
        cfg = StragglerConfig(
            frac=DEFAULT_STRAGGLER_FRAC,
            sigma=DEFAULT_STRAGGLER_SIGMA,
            seed=0,
        )
        assert straggler_mask(ids, cfg).any()

    def test_config_validation(self):
        with pytest.raises(ValueError):
            StragglerConfig(frac=-0.1)
        with pytest.raises(ValueError):
            StragglerConfig(frac=1.5)
        with pytest.raises(ValueError):
            StragglerConfig(sigma=-1.0)
        with pytest.raises(ValueError):
            StragglerConfig(scale=0.0)


# ---------------------------------------------------------------------------
# Straggler model: hypothesis properties over the pure hash streams
# ---------------------------------------------------------------------------

ids_strategy = st.lists(
    st.integers(min_value=0, max_value=2**31 - 1),
    min_size=1,
    max_size=300,
    unique=True,
)

config_strategy = st.builds(
    StragglerConfig,
    frac=st.floats(min_value=0.01, max_value=1.0, allow_nan=False),
    sigma=st.floats(min_value=0.0, max_value=3.0, allow_nan=False),
    scale=st.floats(min_value=0.1, max_value=5.0, allow_nan=False),
    seed=st.integers(min_value=0, max_value=2**32 - 1),
)


class TestStragglerProperties:
    @given(ids=ids_strategy, config=config_strategy)
    @settings(max_examples=60, deadline=None)
    def test_pure_and_order_invariant(self, ids, config):
        arr = np.asarray(ids, dtype=np.int64)
        a = straggler_factors(arr, config)
        b = straggler_factors(arr, config)
        assert np.array_equal(a, b)
        # Per-element purity: any permutation permutes the factors.
        rev = straggler_factors(arr[::-1], config)
        assert np.array_equal(rev, a[::-1])
        # A straggler only ever gets slower.
        assert (a >= 1.0).all()
        assert np.array_equal(straggler_mask(arr, config), a > 1.0)

    @given(
        ids=ids_strategy,
        config=config_strategy,
        split=st.integers(min_value=0, max_value=300),
    )
    @settings(max_examples=60, deadline=None)
    def test_factors_chunk_invariant(self, ids, config, split):
        arr = np.asarray(ids, dtype=np.int64)
        cut = min(split, len(arr))
        whole = straggler_factors(arr, config)
        parts = np.concatenate(
            [
                straggler_factors(arr[:cut], config),
                straggler_factors(arr[cut:], config),
            ]
        )
        assert np.array_equal(whole, parts)

    @given(
        s1=st.integers(min_value=0, max_value=2**31 - 1),
        s2=st.integers(min_value=0, max_value=2**31 - 1),
    )
    @settings(max_examples=30, deadline=None)
    def test_distinct_seeds_distinct_outcomes(self, s1, s2):
        assume(s1 != s2)
        ids = np.arange(2_000, dtype=np.int64)
        a = straggler_factors(ids, StragglerConfig(seed=s1))
        b = straggler_factors(ids, StragglerConfig(seed=s2))
        assert not np.array_equal(a, b)

    def test_frac_zero_is_identity(self, tiered_workload):
        cfg = StragglerConfig(frac=0.0, seed=7)
        assert inject_stragglers(tiered_workload, cfg).jobs == list(
            tiered_workload.jobs
        )

    def test_apply_preserves_ids_and_submit_order(self, tiered_workload):
        cfg = StragglerConfig(frac=0.5, sigma=2.0, seed=11)
        out = apply_stragglers(tiered_workload.jobs, cfg)
        assert [j.job_id for j in out] == [
            j.job_id for j in tiered_workload.jobs
        ]
        assert [j.submit_s for j in out] == [
            j.submit_s for j in tiered_workload.jobs
        ]
        assert [j.cores for j in out] == [
            j.cores for j in tiered_workload.jobs
        ]
        # Energy scales with runtime (power held constant).
        for before, after in zip(tiered_workload.jobs, out):
            for m, rt in before.runtime_s.items():
                factor = after.runtime_s[m] / rt
                assert after.energy_j[m] == pytest.approx(
                    before.energy_j[m] * factor, rel=1e-12
                )


# ---------------------------------------------------------------------------
# Satellite: injection is chunk-size invariant end to end
# ---------------------------------------------------------------------------


class TestChunkSizeInvariance:
    @given(chunk=st.integers(min_value=1, max_value=311))
    @settings(max_examples=25, deadline=None)
    def test_injection_chunk_size_invariant(self, chunk):
        wl = workload(TIERED_SCENARIO, 80, seed=5)
        # Re-inject over the raw ids with fresh knobs so the property is
        # not about the fixture's specific seed.
        cfg = StragglerConfig(frac=0.2, sigma=1.5, seed=9)
        jobs = wl.jobs
        whole = apply_stragglers(jobs, cfg)
        chunked = [
            job
            for i in range(0, len(jobs), chunk)
            for job in apply_stragglers(jobs[i : i + chunk], cfg)
        ]
        assert len(whole) == len(chunked)
        for a, b in zip(whole, chunked):
            assert a.job_id == b.job_id
            assert a.runtime_s == b.runtime_s
            assert a.energy_j == b.energy_j

    def test_streamed_injection_matches_in_memory_run(
        self, tiered_machines, tiered_straggler_config
    ):
        """straggle_stream() over chunks == inject_stragglers() whole,

        all the way through the engine: the streamed run's outcome
        blocks concatenate to the in-memory run's table bit-for-bit.
        """
        cfg = WorkloadConfig(
            n_base_jobs=150,
            n_users=25,
            arrival_window_s=2 * 24 * 3600.0,
            seed=4,
        )
        raw = PatelWorkloadGenerator(tiered_machines, cfg).generate()
        jobs = sorted(raw.jobs, key=lambda j: j.submit_s)

        def factory():
            return (
                jobs[i : i + 40] for i in range(0, len(jobs), 40)
            )

        stream = straggle_stream(
            StreamingWorkload(
                chunk_factory=factory,
                machines=list(raw.machines),
                source="<tiered test stream>",
            ),
            tiered_straggler_config,
        )
        inflated = inject_stragglers(
            Workload(
                jobs=jobs, config=raw.config, machines=list(raw.machines)
            ),
            tiered_straggler_config,
        )
        method = method_by_name("EBA")
        policy = LargestFirstPolicy()
        streamed = MultiClusterSimulator(
            tiered_machines, method, policy
        ).run(stream)
        in_memory = MultiClusterSimulator(
            tiered_machines, method, policy
        ).run(inflated)
        assert_results_identical(streamed, in_memory)


# ---------------------------------------------------------------------------
# The differential harness: five methods over the skewed fleet
# ---------------------------------------------------------------------------


@pytest.fixture(scope="module", params=METHOD_NAMES)
def method_run(request, tiered_machines, tiered_workload):
    """(method name, batched result, scalar result) per accounting method."""
    method = method_by_name(request.param)
    policy = LargestFirstPolicy()
    batched = MultiClusterSimulator(tiered_machines, method, policy).run(
        tiered_workload
    )
    scalar = MultiClusterSimulator(
        tiered_machines, method, policy, batched=False
    ).run(tiered_workload)
    return request.param, batched, scalar


class TestDifferentialHarness:
    def test_batched_matches_scalar_and_seed_loop(
        self, method_run, tiered_machines, tiered_workload
    ):
        name, batched, scalar = method_run
        assert_results_identical(batched, scalar)
        reference = seed_engine_run(
            tiered_machines,
            method_by_name(name),
            LargestFirstPolicy(),
            tiered_workload,
        )
        assert_results_identical(batched, reference)

    def test_conservation(self, method_run, tiered_workload):
        _, result, _ = method_run
        table = result.table
        # Every job accounted for exactly once.
        assert result.n_jobs == len(tiered_workload.jobs)
        assert np.array_equal(
            np.sort(table.job_id),
            np.sort(
                np.fromiter(
                    (j.job_id for j in tiered_workload.jobs),
                    dtype=np.int64,
                    count=len(tiered_workload.jobs),
                )
            ),
        )
        # Causality and non-negative charges.
        assert (table.start_s >= table.submit_s).all()
        assert (table.end_s >= table.start_s).all()
        assert (table.cost >= 0.0).all()
        assert (table.energy_j > 0.0).all()
        # The ledger balances: per-user settlements sum to the total.
        balances = result.user_balances()
        assert sum(balances.values()) == pytest.approx(
            result.total_cost(), rel=1e-9
        )

    def test_schedule_is_method_independent(
        self, method_run, tiered_machines, tiered_workload
    ):
        """LargestFirst never consults charges, so the *schedule* (and
        with it energy, carbon, and requested work) is identical under
        every accounting method — only the cost column may move."""
        _, result, _ = method_run
        method = method_by_name("EBA")
        baseline = MultiClusterSimulator(
            tiered_machines, method, LargestFirstPolicy()
        ).run(tiered_workload)
        for field in (
            "job_id",
            "machine_code",
            "start_s",
            "end_s",
            "energy_j",
            "work_core_hours",
            "operational_carbon_g",
            "attributed_carbon_g",
        ):
            assert np.array_equal(
                getattr(result.table, field), getattr(baseline.table, field)
            ), f"column {field} differs from the EBA schedule"

    def test_cba_charge_is_total_carbon(self, tiered_machines, tiered_workload):
        """CBA charges exactly the attributed (operational + embodied)
        carbon — the two columns are the same float expression."""
        result = MultiClusterSimulator(
            tiered_machines, method_by_name("CBA"), LargestFirstPolicy()
        ).run(tiered_workload)
        assert np.array_equal(
            result.table.cost, result.table.attributed_carbon_g
        )

    def test_slot_cap_enforced_and_binding(self, method_run, tiered_machines):
        _, result, _ = method_run
        for tier, cap in TIER_CONCURRENCY_LIMITS.items():
            if cap is None:
                continue
            code = result.machines.index(tier)
            on_tier = result.table.machine_code == code
            starts = result.table.start_s[on_tier]
            ends = result.table.end_s[on_tier]
            # Sweep-line: ends settle before starts at equal times (a
            # finishing job frees its slot to a same-instant start).
            events = sorted(
                [(t, 1) for t in starts] + [(t, -1) for t in ends],
                key=lambda e: (e[0], e[1]),
            )
            live = peak = 0
            for _, delta in events:
                live += delta
                peak = max(peak, live)
            assert peak <= cap, f"{tier} exceeded its slot cap"
            if tier == "Large":
                # The contended workload must actually saturate the
                # Large tier, or the cap assertions are vacuous.
                assert peak == cap


# ---------------------------------------------------------------------------
# Sweep: identical seeds, identical outcomes across process boundaries
# ---------------------------------------------------------------------------


class TestSpawnSweepDeterminism:
    def test_spawn_sweep_bit_identical_to_serial(self):
        tasks = [
            SweepTask(
                scenario=TIERED_SCENARIO,
                policy="LargestFirst",
                method=name,
                scale=SWEEP_SCALE,
                seed=SWEEP_SEED,
            )
            for name in METHOD_NAMES
        ]
        runner = SweepRunner(
            scenario_fn=scenario,
            workload_fn=workload,
            method_fn=method_by_name,
            workers=2,
            mp_context="spawn",
        )
        spawned = runner.run(tasks)
        serial = SweepRunner(
            scenario_fn=scenario,
            workload_fn=workload,
            method_fn=method_by_name,
        )
        for task in tasks:
            assert_results_identical(spawned[task], serial.run_task(task))

    def test_straggler_knobs_change_the_outcome(self):
        base = SweepTask(
            scenario=TIERED_SCENARIO,
            policy="LargestFirst",
            method="EBA",
            scale=SWEEP_SCALE,
            seed=SWEEP_SEED,
        )
        hot = SweepTask(
            scenario=tiered_scenario_name(0.4, 2.0),
            policy="LargestFirst",
            method="EBA",
            scale=SWEEP_SCALE,
            seed=SWEEP_SEED,
        )
        runner = SweepRunner(
            scenario_fn=scenario,
            workload_fn=workload,
            method_fn=method_by_name,
        )
        a, b = runner.run_task(base), runner.run_task(hot)
        assert a.makespan_s != b.makespan_s


# ---------------------------------------------------------------------------
# LargestFirstPolicy unit behaviour
# ---------------------------------------------------------------------------


def _view(machine: str, wait: float) -> MachineView:
    return MachineView(
        machine=machine,
        runtime_s=100.0,
        energy_j=1e6,
        queue_wait_s=wait,
        cost=1.0,
    )


_JOB = Job(
    job_id=0,
    user=0,
    cores=1,
    submit_s=0.0,
    runtime_s={"Large": 50.0, "Medium": 75.0, "Small": 100.0},
    energy_j={"Large": 1e6, "Medium": 1e6, "Small": 1e6},
)


class TestLargestFirstPolicy:
    def test_free_largest_tier_wins(self):
        policy = LargestFirstPolicy()
        views = [_view("Small", 0.0), _view("Medium", 0.0), _view("Large", 0.0)]
        assert policy.select(_JOB, views) == "Large"

    def test_spills_down_tier_when_saturated(self):
        policy = LargestFirstPolicy()
        views = [_view("Small", 0.0), _view("Medium", 0.0), _view("Large", 60.0)]
        assert policy.select(_JOB, views) == "Medium"
        views = [_view("Small", 0.0), _view("Medium", 30.0), _view("Large", 60.0)]
        assert policy.select(_JOB, views) == "Small"

    def test_all_busy_queues_on_least_backlogged(self):
        policy = LargestFirstPolicy()
        views = [_view("Small", 10.0), _view("Medium", 5.0), _view("Large", 60.0)]
        assert policy.select(_JOB, views) == "Medium"

    def test_tie_prefers_larger_tier(self):
        policy = LargestFirstPolicy()
        views = [_view("Small", 10.0), _view("Medium", 10.0), _view("Large", 10.0)]
        assert policy.select(_JOB, views) == "Large"

    def test_unknown_machines_sort_last(self):
        policy = LargestFirstPolicy()
        views = [_view("Theta", 0.0), _view("Small", 0.0)]
        assert policy.select(_JOB, views) == "Small"
        views = [_view("Theta", 0.0), _view("Small", 10.0)]
        assert policy.select(_JOB, views) == "Theta"

    def test_custom_order(self):
        policy = LargestFirstPolicy(order=("Small", "Large"))
        views = [_view("Small", 0.0), _view("Large", 0.0)]
        assert policy.select(_JOB, views) == "Small"


# ---------------------------------------------------------------------------
# Tier metrics and the fairness report
# ---------------------------------------------------------------------------


@pytest.fixture(scope="module")
def showcase_run(tiered_machines, tiered_workload):
    return MultiClusterSimulator(
        tiered_machines, method_by_name("EBA"), LargestFirstPolicy()
    ).run(tiered_workload)


class TestTierReports:
    def test_tier_metrics_well_formed(
        self, showcase_run, tiered_machines, tiered_straggler_config
    ):
        rows = tier_metrics(
            showcase_run, tiered_machines, tiered_straggler_config
        )
        assert [r.machine for r in rows] == list(tiered_machines)
        assert sum(r.jobs for r in rows) == showcase_run.n_jobs
        ids = showcase_run.table.job_id
        expected_stragglers = int(
            straggler_mask(ids, tiered_straggler_config).sum()
        )
        assert sum(r.straggler_jobs for r in rows) == expected_stragglers
        assert expected_stragglers > 0
        assert sum(1 for r in rows if r.bottleneck) == 1
        for row in rows:
            assert 0.0 <= row.utilization <= 1.0
            assert row.straggler_jobs <= row.jobs
            assert row.straggler_core_hours <= row.core_hours + 1e-9
            assert row.mean_queue_wait_h >= 0.0

    @pytest.mark.parametrize("method", METHOD_NAMES)
    def test_fairness_report_bounded_spread(
        self, method, tiered_machines, tiered_workload
    ):
        """Per-user charge per core-hour of *requested* work stays in a
        narrow band across tiers under every method: no tier's users
        pay wildly more for the same work than another's."""
        result = MultiClusterSimulator(
            tiered_machines, method_by_name(method), LargestFirstPolicy()
        ).run(tiered_workload)
        rows = tier_fairness(result)
        assert rows, "fairness report is empty"
        users = sum(r.users for r in rows)
        assert users == len(np.unique(result.table.user))
        for row in rows:
            assert (
                row.min_cost_per_core_hour
                <= row.mean_cost_per_core_hour
                <= row.max_cost_per_core_hour
            )
            assert row.min_cost_per_core_hour >= 0.0
        means = [r.mean_cost_per_core_hour for r in rows]
        assert max(means) / min(means) < 4.0, (
            f"{method}: cross-tier charge intensity spread too wide: {means}"
        )

    def test_report_rendering(
        self, showcase_run, tiered_machines, tiered_straggler_config
    ):
        metrics_text = format_tier_metrics(
            tier_metrics(showcase_run, tiered_machines, tiered_straggler_config)
        )
        fairness_text = format_tier_fairness(tier_fairness(showcase_run))
        for tier in TIER_ORDER:
            assert tier in metrics_text
            assert tier in fairness_text
        assert "<--" in metrics_text  # the bottleneck marker
