"""Carbon-aware temporal shifting (extension beyond the paper)."""

import pytest

from repro.accounting.methods import CarbonBasedAccounting, EnergyBasedAccounting
from repro.sim.engine import MultiClusterSimulator
from repro.sim.policies import GreedyPolicy
from repro.sim.shifting import ShiftingSimulator, TemporalShiftPlanner
from repro.sim.workload import PatelWorkloadGenerator, WorkloadConfig


@pytest.fixture(scope="module")
def low_carbon_workload(low_carbon_machines):
    cfg = WorkloadConfig(n_base_jobs=300, n_users=50, seed=4)
    return PatelWorkloadGenerator(low_carbon_machines, cfg).generate()


class TestPlanner:
    def test_plan_never_increases_cost(self, low_carbon_machines, low_carbon_workload):
        planner = TemporalShiftPlanner(
            low_carbon_machines, CarbonBasedAccounting(), max_delay_h=12
        )
        for job in low_carbon_workload.jobs[:100]:
            plan = planner.plan(job, job.submit_s)
            assert plan.cost_at_release <= plan.cost_now + 1e-9
            assert 0.0 <= plan.delay_s <= 12 * 3600.0

    def test_some_jobs_actually_deferred(
        self, low_carbon_machines, low_carbon_workload
    ):
        planner = TemporalShiftPlanner(
            low_carbon_machines, CarbonBasedAccounting(), max_delay_h=12
        )
        delays = [
            planner.plan(job, job.submit_s).delay_s
            for job in low_carbon_workload.jobs[:200]
        ]
        assert any(d > 0 for d in delays)

    def test_time_invariant_method_never_defers(
        self, low_carbon_machines, low_carbon_workload
    ):
        """EBA costs do not depend on the clock, so nothing is shifted."""
        planner = TemporalShiftPlanner(
            low_carbon_machines, EnergyBasedAccounting(), max_delay_h=12
        )
        for job in low_carbon_workload.jobs[:50]:
            assert planner.plan(job, job.submit_s).delay_s == 0.0

    def test_patience_hurdle_suppresses_small_savings(
        self, low_carbon_machines, low_carbon_workload
    ):
        eager = TemporalShiftPlanner(
            low_carbon_machines, CarbonBasedAccounting(), max_delay_h=12, patience=0.0
        )
        picky = TemporalShiftPlanner(
            low_carbon_machines, CarbonBasedAccounting(), max_delay_h=12, patience=0.5
        )
        jobs = low_carbon_workload.jobs[:200]
        eager_deferrals = sum(
            1 for j in jobs if eager.plan(j, j.submit_s).delay_s > 0
        )
        picky_deferrals = sum(
            1 for j in jobs if picky.plan(j, j.submit_s).delay_s > 0
        )
        assert picky_deferrals <= eager_deferrals

    def test_zero_max_delay_is_identity(self, low_carbon_machines, low_carbon_workload):
        planner = TemporalShiftPlanner(
            low_carbon_machines, CarbonBasedAccounting(), max_delay_h=0
        )
        for job in low_carbon_workload.jobs[:30]:
            assert planner.plan(job, job.submit_s).delay_s == 0.0

    def test_validation(self, low_carbon_machines):
        with pytest.raises(ValueError):
            TemporalShiftPlanner(
                low_carbon_machines, CarbonBasedAccounting(), max_delay_h=-1
            )
        with pytest.raises(ValueError):
            TemporalShiftPlanner(
                low_carbon_machines, CarbonBasedAccounting(), patience=1.0
            )


class TestShiftingSimulator:
    def test_shifting_reduces_operational_carbon(
        self, low_carbon_machines, low_carbon_workload
    ):
        """The headline: deferral into intensity troughs cuts operational
        carbon without losing jobs."""
        cba = CarbonBasedAccounting()
        plain = MultiClusterSimulator(
            low_carbon_machines, cba, GreedyPolicy()
        ).run(low_carbon_workload)
        shifted = ShiftingSimulator(
            low_carbon_machines, cba, GreedyPolicy(), max_delay_h=12
        ).run(low_carbon_workload)
        assert shifted.n_jobs == plain.n_jobs
        assert (
            shifted.total_operational_carbon_g()
            < plain.total_operational_carbon_g()
        )

    def test_bounded_makespan_penalty(self, low_carbon_machines, low_carbon_workload):
        cba = CarbonBasedAccounting()
        plain = MultiClusterSimulator(
            low_carbon_machines, cba, GreedyPolicy()
        ).run(low_carbon_workload)
        shifted = ShiftingSimulator(
            low_carbon_machines, cba, GreedyPolicy(), max_delay_h=12
        ).run(low_carbon_workload)
        assert shifted.makespan_s <= plain.makespan_s + 12 * 3600.0

    def test_policy_label(self, low_carbon_machines, low_carbon_workload):
        shifted = ShiftingSimulator(
            low_carbon_machines, CarbonBasedAccounting(), GreedyPolicy()
        ).run(low_carbon_workload)
        assert shifted.policy == "Greedy+shift"
