"""The eight selection policies."""

import pytest

from repro.sim.job import Job
from repro.sim.policies import (
    EFTPolicy,
    EnergyPolicy,
    FixedMachinePolicy,
    GreedyPolicy,
    MachineView,
    MixedPolicy,
    RuntimePolicy,
    standard_policies,
)


def view(machine, runtime=100.0, energy=1000.0, wait=0.0, cost=1.0) -> MachineView:
    return MachineView(
        machine=machine, runtime_s=runtime, energy_j=energy,
        queue_wait_s=wait, cost=cost,
    )


JOB = Job(
    job_id=0, user=0, cores=8, submit_s=0.0,
    runtime_s={"A": 100.0, "B": 50.0}, energy_j={"A": 10.0, "B": 20.0},
)

VIEWS = [
    view("A", runtime=100.0, energy=10.0, wait=0.0, cost=5.0),
    view("B", runtime=50.0, energy=20.0, wait=500.0, cost=2.0),
    view("C", runtime=80.0, energy=15.0, wait=10.0, cost=9.0),
]


class TestSimplePolicies:
    def test_greedy_minimizes_cost(self):
        assert GreedyPolicy().select(JOB, VIEWS) == "B"

    def test_energy_minimizes_energy(self):
        assert EnergyPolicy().select(JOB, VIEWS) == "A"

    def test_runtime_minimizes_runtime_ignoring_queue(self):
        assert RuntimePolicy().select(JOB, VIEWS) == "B"

    def test_eft_minimizes_completion(self):
        # A: 100, B: 550, C: 90 -> C
        assert EFTPolicy().select(JOB, VIEWS) == "C"


class TestMixed:
    def test_prefers_cheapest_by_default(self):
        views = [
            view("cheap", runtime=100.0, cost=1.0),
            view("fast", runtime=60.0, cost=5.0),
        ]
        assert MixedPolicy().select(JOB, views) == "cheap"

    def test_switches_for_2x_speedup(self):
        views = [
            view("cheap", runtime=100.0, cost=1.0),
            view("fast", runtime=40.0, cost=5.0),
        ]
        assert MixedPolicy().select(JOB, views) == "fast"

    def test_threshold_parameter(self):
        views = [
            view("cheap", runtime=100.0, cost=1.0),
            view("fast", runtime=60.0, cost=5.0),
        ]
        assert MixedPolicy(speedup_threshold=1.5).select(JOB, views) == "fast"

    def test_counts_queue_in_completion(self):
        views = [
            view("cheap", runtime=100.0, wait=0.0, cost=1.0),
            view("fast", runtime=10.0, wait=400.0, cost=5.0),
        ]
        assert MixedPolicy().select(JOB, views) == "cheap"

    def test_rejects_bad_threshold(self):
        with pytest.raises(ValueError):
            MixedPolicy(speedup_threshold=0.5)


class TestFixed:
    def test_selects_target_when_available(self):
        assert FixedMachinePolicy("C").select(JOB, VIEWS) == "C"

    def test_falls_back_to_fastest(self):
        views = [view("A", runtime=100.0), view("B", runtime=50.0)]
        assert FixedMachinePolicy("Z").select(JOB, views) == "B"

    def test_name_is_machine(self):
        assert FixedMachinePolicy("Theta").name == "Theta"


class TestStandardSet:
    def test_paper_order(self):
        names = [p.name for p in standard_policies()]
        assert names == [
            "Greedy", "Energy", "Mixed", "EFT", "Runtime",
            "Theta", "IC", "FASTER",
        ]

    def test_custom_fixed_targets(self):
        names = [p.name for p in standard_policies(["X"])]
        assert names[-1] == "X" and len(names) == 6
