"""The flat-memory streaming trace path (chunked ingestion, sharded
quote tables, spill-to-disk outcome blocks).

The load-bearing contract: a streamed run is **bit-identical** to the
in-memory reference for every accounting method — same outcome columns,
same aggregates, same budget cutoffs — while holding only O(chunk)
state.  The fixtures force small chunks and spill blocks so every run
here crosses many chunk/shard/spill boundaries.
"""

import numpy as np
import pytest

from repro.accounting.methods import all_methods
from repro.accounting.pricing import OUTCOME_FIELDS, QuoteTable
from repro.accounting.spill import OutcomeSpillStore
from repro.reporting import fleet_report
from repro.sim.engine import MultiClusterSimulator, StreamingSimulationResult
from repro.sim.events import EventCalendar
from repro.sim.job import Job
from repro.sim.policies import EFTPolicy
from repro.sim.swf import open_swf_stream, read_swf, write_swf
from repro.sim.workload import PatelWorkloadGenerator, WorkloadConfig

SEED = 2
CHUNK_JOBS = 97  # prime, small: every run crosses many chunk boundaries
SPILL_BLOCK_JOBS = 64

METHOD_NAMES = [m.name for m in all_methods()]


@pytest.fixture(scope="module")
def trace_path(sim_machines, tmp_path_factory):
    cfg = WorkloadConfig(n_base_jobs=200, n_users=40, seed=5)
    workload = PatelWorkloadGenerator(sim_machines, cfg).generate()
    return write_swf(workload, tmp_path_factory.mktemp("swf") / "mid.swf")


@pytest.fixture(scope="module")
def result_pairs(trace_path, sim_machines, tmp_path_factory):
    """(in-memory reference, streamed) per accounting method."""
    spill_root = tmp_path_factory.mktemp("spill")
    pairs = {}
    for method in all_methods():
        reference = MultiClusterSimulator(
            sim_machines, method, EFTPolicy()
        ).run(read_swf(trace_path, sim_machines, seed=SEED))
        spill_dir = spill_root / method.name
        spill_dir.mkdir()
        streamed = MultiClusterSimulator(
            sim_machines,
            method,
            EFTPolicy(),
            spill_dir=str(spill_dir),
            spill_block_jobs=SPILL_BLOCK_JOBS,
        ).run(
            open_swf_stream(
                trace_path, sim_machines, seed=SEED, chunk_jobs=CHUNK_JOBS
            )
        )
        pairs[method.name] = (reference, streamed)
    return pairs


class TestBitIdentity:
    @pytest.mark.parametrize("method_name", METHOD_NAMES)
    def test_outcome_columns_identical(self, result_pairs, method_name):
        reference, streamed = result_pairs[method_name]
        assert isinstance(streamed, StreamingSimulationResult)
        ref_table = reference.table
        stream_table = streamed.table  # materializes the spilled blocks
        assert stream_table.machines == ref_table.machines
        for field, _ in OUTCOME_FIELDS:
            assert np.array_equal(
                getattr(stream_table, field), getattr(ref_table, field)
            ), field

    @pytest.mark.parametrize("method_name", METHOD_NAMES)
    def test_aggregates_identical(self, result_pairs, method_name):
        reference, streamed = result_pairs[method_name]
        assert streamed.n_jobs == reference.n_jobs
        assert streamed.makespan_s == reference.makespan_s
        assert streamed.total_cost() == reference.total_cost()
        assert streamed.total_energy_j() == reference.total_energy_j()
        assert (
            streamed.total_work_core_hours() == reference.total_work_core_hours()
        )
        assert (
            streamed.total_operational_carbon_g()
            == reference.total_operational_carbon_g()
        )
        assert (
            streamed.total_attributed_carbon_g()
            == reference.total_attributed_carbon_g()
        )
        assert streamed.mean_queue_wait_s() == reference.mean_queue_wait_s()
        assert streamed.user_balances() == reference.user_balances()
        assert (
            streamed.machine_distribution() == reference.machine_distribution()
        )

    @pytest.mark.parametrize("method_name", METHOD_NAMES)
    def test_budget_reductions_identical(self, result_pairs, method_name):
        """Fig. 5/6-style reductions stream the spilled blocks in
        completion order — cutoffs must land on the same row."""
        reference, streamed = result_pairs[method_name]
        total = reference.total_cost()
        for fraction in (0.0, 0.1, 0.5, 0.9, 1.0, 1.5):
            budget = fraction * total
            assert streamed.jobs_with_budget(budget) == reference.jobs_with_budget(
                budget
            ), fraction
            assert streamed.work_with_budget(budget) == reference.work_with_budget(
                budget
            ), fraction
        horizons = [
            fraction * reference.makespan_s
            for fraction in (0.0, 0.25, 0.75, 1.0)
        ]
        assert streamed.jobs_finished_by(horizons) == reference.jobs_finished_by(
            horizons
        )

    @pytest.mark.parametrize("method_name", METHOD_NAMES)
    def test_fleet_report_identical(self, result_pairs, method_name):
        reference, streamed = result_pairs[method_name]
        assert fleet_report(streamed) == fleet_report(reference)

    def test_runs_actually_streamed(self, result_pairs):
        """Guard the fixture: the identity above must have been earned
        across real chunk/shard/spill boundaries, not one big block."""
        for method_name in METHOD_NAMES:
            _, streamed = result_pairs[method_name]
            stats = streamed.shard_stats
            assert stats["built"] > 1
            assert stats["built"] == stats["retired"]
            assert stats["peak_live"] <= stats["built"]
            assert streamed.store.n_blocks > 1
            assert streamed.store.spilled_bytes > 0


class TestSpillStore:
    def _table(self, machines, n, seed=0):
        rng = np.random.default_rng(seed)
        quotes = {
            field: rng.uniform(1.0, 2.0, size=n).astype(dtype)
            for field, dtype in OUTCOME_FIELDS
        }
        from repro.accounting.pricing import OutcomeTable

        return OutcomeTable(machines, **quotes)

    def test_disk_roundtrip(self, tmp_path):
        machines = ["A", "B"]
        with OutcomeSpillStore(machines, directory=tmp_path) as store:
            first = self._table(machines, 5, seed=1)
            second = self._table(machines, 3, seed=2)
            store.append(first)
            store.append(second)
            assert store.n_blocks == 2
            assert len(store) == 8
            assert store.spilled_bytes > 0
            blocks = list(store.blocks())
            for field, _ in OUTCOME_FIELDS:
                assert np.array_equal(
                    getattr(blocks[0], field), getattr(first, field)
                )
            merged = store.materialize()
            for field, _ in OUTCOME_FIELDS:
                assert np.array_equal(
                    getattr(merged, field),
                    np.concatenate(
                        [getattr(first, field), getattr(second, field)]
                    ),
                )

    def test_machine_mismatch_rejected(self, tmp_path):
        store = OutcomeSpillStore(["A", "B"], directory=tmp_path)
        with pytest.raises(ValueError, match="machine"):
            store.append(self._table(["A", "C"], 2))

    def test_empty_blocks_dropped(self, tmp_path):
        store = OutcomeSpillStore(["A"], directory=tmp_path)
        store.append(self._table(["A"], 0))
        assert store.n_blocks == 0
        assert len(store.materialize()) == 0

    def test_close_removes_segments(self, tmp_path):
        store = OutcomeSpillStore(["A"], directory=tmp_path)
        store.append(self._table(["A"], 4))
        assert any(tmp_path.iterdir())
        store.close()
        assert not any(tmp_path.iterdir())

    def test_in_memory_mode(self):
        store = OutcomeSpillStore(["A"])  # no directory: list-backed
        store.append(self._table(["A"], 4))
        assert store.spilled_bytes == 0
        assert len(store.materialize()) == 4


class TestSpillCleanupOnError:
    def test_mid_flight_failure_unlinks_spilled_blocks(
        self, trace_path, sim_machines, tmp_path
    ):
        """A run that dies mid-stream must not strand ``block-*.npz``
        segments: nobody holds the store on the error path, so the
        engine unlinks them before propagating."""
        from repro.sim.workload import StreamingWorkload

        saw_blocks = []

        def poisoned():
            # Small chunks so many refills happen; raise on the first
            # refill *after* at least one block has been spilled, which
            # is exactly the window where segments would otherwise leak.
            inner = open_swf_stream(
                trace_path, sim_machines, seed=SEED, chunk_jobs=13
            ).chunks()
            for chunk in inner:
                if any(tmp_path.glob("block-*.npz")):
                    saw_blocks.append(True)
                    raise RuntimeError("poisoned stream")
                yield chunk

        stream = StreamingWorkload(
            chunk_factory=poisoned,
            machines=list(sim_machines),
            source=str(trace_path),
        )
        sim = MultiClusterSimulator(
            sim_machines,
            all_methods()[0],
            EFTPolicy(),
            spill_dir=str(tmp_path),
            spill_block_jobs=8,
        )
        with pytest.raises(RuntimeError, match="poisoned"):
            sim.run(stream)
        # Guard the fixture: the failure really did happen after spill.
        assert saw_blocks
        assert not list(tmp_path.glob("block-*.npz"))


class TestCalendarRefill:
    def _job(self, job_id, submit):
        return Job(
            job_id=job_id,
            user=0,
            cores=1,
            submit_s=submit,
            runtime_s={"A": 60.0},
            energy_j={"A": 1e3},
        )

    def test_refill_continues_the_arrival_stream(self):
        calendar = EventCalendar([self._job(1, 0.0)])
        calendar.pop()
        assert not calendar.arrivals_pending
        calendar.refill([self._job(2, 5.0)])
        kind, _, job = calendar.pop()
        assert job.job_id == 2

    def test_refill_with_arrivals_pending_rejected(self):
        calendar = EventCalendar([self._job(1, 0.0), self._job(2, 1.0)])
        calendar.pop()
        with pytest.raises(RuntimeError, match="pending"):
            calendar.refill([self._job(3, 2.0)])

    def test_refill_going_backwards_rejected(self):
        calendar = EventCalendar([self._job(1, 10.0)])
        calendar.pop()
        with pytest.raises(ValueError, match="submit order"):
            calendar.refill([self._job(2, 5.0)])


class TestEngineGuards:
    def test_streaming_requires_batched(self, trace_path, sim_machines):
        method = all_methods()[0]
        sim = MultiClusterSimulator(
            sim_machines, method, EFTPolicy(), batched=False
        )
        stream = open_swf_stream(trace_path, sim_machines, seed=SEED)
        with pytest.raises(ValueError, match="batched"):
            sim.run(stream)

    def test_streaming_rejects_prebuilt_quote_table(
        self, trace_path, sim_machines
    ):
        method = all_methods()[0]
        workload = read_swf(trace_path, sim_machines, seed=SEED)
        pricings = MultiClusterSimulator(
            sim_machines, method, EFTPolicy()
        ).pricings
        prebuilt = QuoteTable.build(workload.jobs, pricings, method)
        sim = MultiClusterSimulator(
            sim_machines, method, EFTPolicy(), quote_table=prebuilt
        )
        stream = open_swf_stream(trace_path, sim_machines, seed=SEED)
        with pytest.raises(ValueError, match="quote table"):
            sim.run(stream)

    def test_spill_block_jobs_validated(self, sim_machines):
        method = all_methods()[0]
        with pytest.raises(ValueError, match="spill_block_jobs"):
            MultiClusterSimulator(
                sim_machines, method, EFTPolicy(), spill_block_jobs=0
            )


class TestTraceDriver:
    def test_streaming_matches_in_memory(self, trace_path, tmp_path):
        from repro.experiments._simulation import simulate_swf_trace

        streamed = simulate_swf_trace(
            str(trace_path),
            method_name="EBA",
            policy_name="EFT",
            streaming=True,
            chunk_jobs=CHUNK_JOBS,
            spill_dir=str(tmp_path),
            seed=SEED,
        )
        reference = simulate_swf_trace(
            str(trace_path),
            method_name="EBA",
            policy_name="EFT",
            streaming=False,
            seed=SEED,
        )
        assert streamed.total_cost() == reference.total_cost()
        assert streamed.n_jobs == reference.n_jobs

    def test_unknown_policy_rejected(self, trace_path):
        from repro.experiments._simulation import simulate_swf_trace

        with pytest.raises(KeyError, match="policy"):
            simulate_swf_trace(str(trace_path), policy_name="Nope")

    def test_cli_trace_smoke(self, trace_path, capsys):
        from repro.cli import main

        rc = main(
            [
                "trace",
                str(trace_path),
                "--method",
                "Runtime",
                "--chunk-jobs",
                str(CHUNK_JOBS),
                "--seed",
                str(SEED),
            ]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "jobs" in out and "total cost" in out
