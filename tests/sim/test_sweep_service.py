"""The long-lived sweep service: incremental resubmission, crash
retry, and the JSON-lines protocol.

The acceptance bar mirrors the sweep runner's: results served from the
store are *bit-identical* to the cold computed run (all five accounting
methods), an identical resubmit computes zero grid points, and a
strict-superset grid computes only the delta — all proven through the
surfaced hit/miss counters.
"""

import io
import json
import multiprocessing
import os
import signal
import time

import pytest

from repro.sim.engine import MultiClusterSimulator
from repro.sim.result_store import ResultStore
from repro.sim.sweep import SweepTask, sweep_grid
from repro.sim.sweep_service import (
    SweepService,
    SweepTaskError,
    serve_stdio,
)

SCALE = 100
SEED = 2

METHOD_NAMES = ["Runtime", "Energy", "Peak", "EBA", "CBA"]
BASE_POLICIES = ["Greedy", "EFT"]
SUPERSET_POLICIES = ["Greedy", "EFT", "Theta"]

#: Env var naming a file the blocking workload builder spins on — lets
#: tests hold a worker mid-task deterministically.  Module level so
#: non-fork workers (which re-import this module) could see it too.
_BLOCK_FILE_ENV = "REPRO_TEST_SWEEP_BLOCK"

requires_fork = pytest.mark.skipif(
    "fork" not in multiprocessing.get_all_start_methods(),
    reason="platform has no fork start method",
)


def _blocking_workload(scenario_name, scale, seed):
    """Module-level (picklable) workload builder that stalls while the
    block file exists, then delegates to the memoized builder."""
    path = os.environ.get(_BLOCK_FILE_ENV)
    while path and os.path.exists(path):
        time.sleep(0.01)
    from repro.experiments._simulation import workload

    return workload(scenario_name, scale, seed)


def _service(store_root, workload_fn=None, **kwargs):
    from repro.accounting.methods import method_by_name
    from repro.experiments._simulation import scenario, workload

    kwargs.setdefault("workers", 2)
    return SweepService(
        scenario,
        workload_fn or workload,
        method_by_name,
        store=ResultStore(store_root),
        **kwargs,
    )


def _grid(policies):
    return sweep_grid(
        scenarios=["baseline"],
        policies=policies,
        methods=METHOD_NAMES,
        scales=[SCALE],
        seeds=[SEED],
    )


def _wait_for(predicate, timeout=15.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return
        time.sleep(0.02)
    raise AssertionError("condition not reached in time")


class TestIncrementalStore:
    def test_resubmit_and_superset_all_five_methods(self, tmp_path):
        """The tentpole contract end to end, across a service restart:
        cold run computes everything; the identical resubmit is served
        entirely from the store, bit-identical; the superset computes
        only the delta.  All five methods."""
        from repro.accounting.methods import method_by_name
        from repro.experiments._simulation import scenario, workload
        from repro.sim.policies import standard_policies

        base = _grid(BASE_POLICIES)
        with _service(tmp_path) as service:
            first = service.submit(base)
            cold = first.wait()
            assert (first.from_store, first.computed) == (0, len(base))
            stats = service.stats()
            assert stats.computed == len(base) and stats.from_store == 0
            assert stats.store.misses == len(base)
            assert stats.store.entries == len(base)

        # A *new* service on the same store: nothing is recomputed.
        with _service(tmp_path) as service:
            second = service.submit(base)
            warm = second.wait()
            assert (second.from_store, second.computed) == (len(base), 0)
            assert service.stats().store.hits == len(base)
            for task in base:
                assert warm[task].outcomes == cold[task].outcomes
                assert warm[task].total_cost() == cold[task].total_cost()
                assert (
                    warm[task].total_energy_j() == cold[task].total_energy_j()
                )
                assert (
                    warm[task].total_attributed_carbon_g()
                    == cold[task].total_attributed_carbon_g()
                )

            superset = _grid(SUPERSET_POLICIES)
            delta = len(superset) - len(base)
            third = service.submit(superset)
            full = third.wait()
            assert (third.from_store, third.computed) == (len(base), delta)
            stats = service.stats()
            assert stats.computed == delta
            assert stats.failed == 0 and stats.worker_restarts == 0

        # And the cold run itself matches the in-process serial
        # reference, method by method.
        machines = dict(scenario("baseline", SEED))
        wl = workload("baseline", SCALE, SEED)
        policies = {p.name: p for p in standard_policies()}
        for task in base:
            reference = MultiClusterSimulator(
                machines, method_by_name(task.method), policies[task.policy]
            ).run(wl)
            assert cold[task].outcomes == reference.outcomes

    def test_overlapping_submissions_share_one_computation(
        self, tmp_path, monkeypatch
    ):
        block = tmp_path / "block"
        block.touch()
        monkeypatch.setenv(_BLOCK_FILE_ENV, str(block))
        task = SweepTask("baseline", "Greedy", "EBA", SCALE, SEED)
        with _service(
            tmp_path / "store", workload_fn=_blocking_workload, workers=1
        ) as service:
            first = service.submit([task])
            second = service.submit([task])
            assert len(service._jobs_by_key) == 1  # deduplicated
            block.unlink()
            a = first.wait(timeout=60)
            b = second.wait(timeout=60)
            assert a[task].outcomes == b[task].outcomes
            stats = service.stats()
            assert stats.submitted == 2 and stats.computed == 1


class TestFailureHandling:
    @requires_fork
    def test_killed_worker_retries_and_result_lands(
        self, tmp_path, monkeypatch
    ):
        """SIGKILL mid-task: the worker is replaced, the task retried,
        and the result is delivered exactly once — never lost, never
        duplicated."""
        block = tmp_path / "block"
        block.touch()
        monkeypatch.setenv(_BLOCK_FILE_ENV, str(block))
        task = SweepTask("baseline", "Greedy", "EBA", SCALE, SEED)
        with _service(
            tmp_path / "store",
            workload_fn=_blocking_workload,
            workers=1,
            mp_context="fork",
        ) as service:
            submission = service.submit([task])
            _wait_for(lambda: service.stats().in_flight == 1)
            busy = next(
                w for w in service._workers.values() if w.job is not None
            )
            os.kill(busy.process.pid, signal.SIGKILL)
            _wait_for(lambda: service.stats().worker_restarts == 1)
            block.unlink()  # let the retry proceed
            delivered = list(submission.results(timeout=60))
            assert len(delivered) == 1  # exactly once
            stats = service.stats()
            assert stats.retries == 1
            assert stats.worker_restarts == 1
            assert stats.computed == 1 and stats.failed == 0
            assert stats.store.entries == 1  # the retry's result landed

    def test_deterministic_error_surfaces_without_retry(self, tmp_path):
        bogus = SweepTask("baseline", "NoSuchPolicy", "EBA", SCALE, SEED)
        with _service(tmp_path, workers=1) as service:
            submission = service.submit([bogus])
            with pytest.raises(SweepTaskError, match="NoSuchPolicy"):
                submission.wait(timeout=60)
            stats = service.stats()
            assert stats.failed == 1
            assert stats.retries == 0  # raising is not crashing
            assert stats.worker_restarts == 0

    def test_close_fails_outstanding_jobs(self, tmp_path, monkeypatch):
        block = tmp_path / "block"
        block.touch()
        monkeypatch.setenv(_BLOCK_FILE_ENV, str(block))
        task = SweepTask("baseline", "Greedy", "EBA", SCALE, SEED)
        service = _service(
            tmp_path / "store", workload_fn=_blocking_workload, workers=1
        )
        try:
            submission = service.submit([task])
            service.close(timeout=0.5)
            with pytest.raises(SweepTaskError, match="service closed"):
                submission.wait(timeout=10)
        finally:
            block.unlink()
            service.close()

    def test_negative_retry_budget_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="max_retries"):
            _service(tmp_path, max_retries=-1)


class TestIntrospection:
    def test_stats_shape(self, tmp_path):
        service = _service(tmp_path)
        stats = service.stats().as_dict()
        assert set(stats) == {
            "submitted",
            "completed",
            "from_store",
            "computed",
            "failed",
            "retries",
            "worker_restarts",
            "queue_depth",
            "in_flight",
            "workers",
            "store",
        }
        assert set(stats["store"]) == {
            "entries",
            "bytes",
            "max_bytes",
            "hits",
            "misses",
            "evictions",
            "corrupt",
        }
        service.close()

    def test_store_key_matches_store_module(self, tmp_path):
        from repro.sim.result_store import task_store_key

        service = _service(tmp_path)
        try:
            task = SweepTask("baseline", "Greedy", "EBA", SCALE, SEED)
            expected = task_store_key(
                task, service._pricing_fingerprint("baseline", SEED)
            )
            assert service.store_key(task) == expected
        finally:
            service.close()

    def test_tiered_knobs_change_store_key(self, tmp_path):
        """Regression: straggler/tier knobs are part of the scenario
        name, so tuning them can never alias a stale store entry."""
        from repro.sim.scenarios import tiered_scenario_name

        service = _service(tmp_path)
        try:

            def key(name):
                return service.store_key(
                    SweepTask(name, "LargestFirst", "EBA", SCALE, SEED)
                )

            keys = {
                key(tiered_scenario_name()),
                key(tiered_scenario_name(0.3, 1.0)),
                key(tiered_scenario_name(0.08, 0.5)),
            }
            assert len(keys) == 3
        finally:
            service.close()


class TestServeStdio:
    def _serve(self, tmp_path, lines):
        service = _service(tmp_path)
        out = io.StringIO()
        code = serve_stdio(service, io.StringIO("".join(lines)), out)
        events = [json.loads(line) for line in out.getvalue().splitlines()]
        return code, events

    def test_protocol_round_trip(self, tmp_path):
        request = {
            "op": "sweep",
            "policies": ["Greedy"],
            "methods": ["EBA"],
            "scales": [SCALE],
            "seeds": [SEED],
        }
        code, events = self._serve(
            tmp_path,
            [
                "not json\n",
                '{"op": "frobnicate"}\n',
                '{"op": "stats"}\n',
                json.dumps(request) + "\n",
                '{"op": "shutdown"}\n',
            ],
        )
        assert code == 0
        kinds = [e["event"] for e in events]
        assert kinds == [
            "ready",
            "error",  # malformed line never crashes the server
            "error",  # unknown op
            "stats",
            "result",
            "sweep-done",
            "bye",
        ]
        result = next(e for e in events if e["event"] == "result")
        assert result["policy"] == "Greedy"
        assert result["method"] == "EBA"
        assert isinstance(result["total_cost"], float)
        done = next(e for e in events if e["event"] == "sweep-done")
        assert (done["from_store"], done["computed"]) == (0, 1)

    def test_resubmit_over_protocol_served_from_store(self, tmp_path):
        request = (
            json.dumps(
                {
                    "op": "sweep",
                    "policies": ["Greedy"],
                    "methods": ["EBA"],
                    "scales": [SCALE],
                    "seeds": [SEED],
                }
            )
            + "\n"
        )
        code, first = self._serve(tmp_path, [request, '{"op": "shutdown"}\n'])
        assert code == 0
        code, second = self._serve(tmp_path, [request, '{"op": "shutdown"}\n'])
        assert code == 0
        done = next(e for e in second if e["event"] == "sweep-done")
        assert (done["from_store"], done["computed"]) == (1, 0)
        # Full-precision JSON floats: textual equality == bit identity.
        line1 = next(e for e in first if e["event"] == "result")
        line2 = next(e for e in second if e["event"] == "result")
        assert json.dumps(line1, sort_keys=True) == json.dumps(
            line2, sort_keys=True
        )
