"""Job model and the Patel-style workload generator."""

import numpy as np
import pytest

from repro.sim.job import Job
from repro.sim.workload import (
    PatelWorkloadGenerator,
    WorkloadConfig,
    build_cross_platform_knn,
    fit_counter_gmm,
    synthetic_ic_counter_data,
)


class TestJob:
    def make(self, **kw):
        base = dict(
            job_id=0,
            user=1,
            cores=8,
            submit_s=0.0,
            runtime_s={"A": 100.0, "B": 200.0},
            energy_j={"A": 1000.0, "B": 1500.0},
        )
        base.update(kw)
        return Job(**base)

    def test_work_is_machine_averaged_core_hours(self):
        job = self.make()
        assert job.work_core_hours == pytest.approx(8 * 150.0 / 3600.0)

    def test_eligible_machines(self):
        assert set(self.make().eligible_machines) == {"A", "B"}

    def test_core_seconds(self):
        assert self.make().core_seconds_on("B") == pytest.approx(1600.0)

    def test_rejects_machine_set_mismatch(self):
        with pytest.raises(ValueError):
            self.make(energy_j={"A": 1.0})

    def test_rejects_nowhere_runnable(self):
        with pytest.raises(ValueError):
            self.make(runtime_s={}, energy_j={})


class TestCounterModels:
    def test_ic_counter_data_shape(self):
        data = synthetic_ic_counter_data(500, seed=0)
        assert data.shape == (500, 2)

    def test_gmm_finds_three_populations(self):
        gmm = fit_counter_gmm(seed=0)
        assert gmm.n_components == 3
        # The compute-bound and memory-bound cluster means are far apart
        # in MPKI (feature 1).
        mpki = sorted(gmm.means_[:, 1])
        assert mpki[-1] - mpki[0] > 1.0  # >1 decade

    def test_knn_covers_all_machines(self, sim_machines):
        models = build_cross_platform_knn(sim_machines, seed=0)
        assert set(models) == set(sim_machines)


class TestWorkloadGenerator:
    def test_size_is_base_times_repeat(self, small_workload):
        cfg = small_workload.config
        assert len(small_workload) <= cfg.n_base_jobs * cfg.repeat
        assert len(small_workload) >= cfg.n_base_jobs * cfg.repeat * 0.95

    def test_large_job_fraction_near_17_percent(self, sim_machines):
        cfg = WorkloadConfig(n_base_jobs=4000, seed=0)
        wl = PatelWorkloadGenerator(sim_machines, cfg).generate()
        assert wl.frac_requiring_large_machine() == pytest.approx(0.17, abs=0.05)

    def test_big_jobs_cannot_use_desktop(self, small_workload):
        for job in small_workload.jobs:
            if job.cores > 16:
                assert "Desktop" not in job.runtime_s
            else:
                assert "Desktop" in job.runtime_s

    def test_submissions_sorted(self, small_workload):
        submits = [j.submit_s for j in small_workload.jobs]
        assert submits == sorted(submits)

    def test_deterministic_per_seed(self, sim_machines):
        cfg = WorkloadConfig(n_base_jobs=50, seed=9)
        a = PatelWorkloadGenerator(sim_machines, cfg).generate()
        b = PatelWorkloadGenerator(sim_machines, cfg).generate()
        assert len(a) == len(b)
        for ja, jb in zip(a.jobs, b.jobs):
            assert ja.runtime_s == jb.runtime_s
            assert ja.submit_s == jb.submit_s

    def test_runtimes_positive_and_bounded(self, small_workload):
        for job in small_workload.jobs[:500]:
            for machine, rt in job.runtime_s.items():
                assert rt > 0
                assert job.energy_j[machine] > 0

    def test_theta_slower_than_ic_on_average(self, small_workload):
        """The calibrated hardware facts survive generation: Theta is the
        slowest machine, and energies differ across machines."""
        ratios = [
            job.runtime_s["Theta"] / job.runtime_s["IC"]
            for job in small_workload.jobs[:2000]
            if "Theta" in job.runtime_s and "IC" in job.runtime_s
        ]
        assert np.mean(ratios) > 1.8

    def test_power_of_two_cores(self, small_workload):
        allowed = {1, 2, 4, 8, 16, 32, 64, 128}
        assert {j.cores for j in small_workload.jobs} <= allowed

    def test_config_validation(self):
        with pytest.raises(ValueError):
            WorkloadConfig(n_base_jobs=0)
        with pytest.raises(ValueError):
            WorkloadConfig(repeat=0)
        with pytest.raises(ValueError):
            WorkloadConfig(frac_over_16_cores=1.5)

    def test_requires_machines(self):
        with pytest.raises(ValueError):
            PatelWorkloadGenerator({}, WorkloadConfig(n_base_jobs=10))
