"""Engine stress and degenerate-configuration tests."""

import pytest

from dataclasses import replace

from repro.accounting.methods import EnergyBasedAccounting
from repro.sim.engine import MultiClusterSimulator
from repro.sim.job import Job
from repro.sim.policies import EFTPolicy, GreedyPolicy
from repro.sim.scenarios import baseline_scenario
from repro.sim.workload import PatelWorkloadGenerator, Workload, WorkloadConfig


def tiny_fleet(node_count=1):
    machines = baseline_scenario(days=5, seed=0)
    shrunk = {}
    for name, m in machines.items():
        shrunk[name] = replace(m, node=replace(m.node, node_count=node_count))
    return shrunk


class TestSaturation:
    def test_single_node_fleet_still_completes_everything(self):
        """Brutal contention: one node per machine; every job must still
        finish exactly once (no deadlock, no loss)."""
        machines = tiny_fleet(node_count=1)
        cfg = WorkloadConfig(n_base_jobs=150, n_users=30, seed=2)
        wl = PatelWorkloadGenerator(machines, cfg).generate()
        result = MultiClusterSimulator(
            machines, EnergyBasedAccounting(), EFTPolicy()
        ).run(wl)
        assert result.n_jobs == len(wl)
        assert result.mean_queue_wait_s() > 0

    def test_one_user_serializes_per_cluster(self):
        """A single user is capped at one running job per cluster, so
        with 4 machines at most 4 jobs overlap; with many same-user jobs
        queue waits must be substantial."""
        machines = tiny_fleet(node_count=4)
        cfg = WorkloadConfig(n_base_jobs=80, n_users=1, seed=3)
        wl = PatelWorkloadGenerator(machines, cfg).generate()
        result = MultiClusterSimulator(
            machines, EnergyBasedAccounting(), GreedyPolicy()
        ).run(wl)
        assert result.n_jobs == len(wl)
        # Check no instant at which >4 of this user's jobs run.
        intervals = sorted((o.start_s, o.end_s) for o in result.outcomes)
        events = []
        for start, end in intervals:
            events.append((start, 1))
            events.append((end, -1))
        events.sort()
        concurrent = 0
        peak = 0
        for _, delta in events:
            concurrent += delta
            peak = max(peak, concurrent)
        assert peak <= 4

    def test_job_bigger_than_any_single_machine_is_dropped_gracefully(self):
        machines = tiny_fleet(node_count=1)
        giant = Job(
            job_id=999_999,
            user=0,
            cores=64,
            submit_s=0.0,
            runtime_s={"Theta": 100.0},
            energy_j={"Theta": 1000.0},
        )
        small = Job(
            job_id=1,
            user=1,
            cores=8,
            submit_s=0.0,
            runtime_s={"IC": 50.0},
            energy_j={"IC": 500.0},
        )
        wl = Workload(
            jobs=[giant, small],
            config=WorkloadConfig(n_base_jobs=2, repeat=1),
            machines=list(machines),
        )
        # Restrict the fleet to machines that cannot host the giant.
        subset = {"IC": machines["IC"]}
        result = MultiClusterSimulator(
            subset, EnergyBasedAccounting(), GreedyPolicy()
        ).run(wl)
        assert [o.job_id for o in result.outcomes] == [1]


class TestDegenerateWorkloads:
    def test_empty_workload(self, sim_machines):
        wl = Workload(
            jobs=[], config=WorkloadConfig(n_base_jobs=1), machines=list(sim_machines)
        )
        result = MultiClusterSimulator(
            sim_machines, EnergyBasedAccounting(), GreedyPolicy()
        ).run(wl)
        assert result.n_jobs == 0
        assert result.total_cost() == 0.0
        assert result.work_with_budget(100.0) == 0.0

    def test_simultaneous_submissions(self, sim_machines):
        jobs = [
            Job(
                job_id=i,
                user=i,
                cores=8,
                submit_s=0.0,
                runtime_s={"IC": 100.0},
                energy_j={"IC": 1000.0},
            )
            for i in range(20)
        ]
        wl = Workload(
            jobs=jobs, config=WorkloadConfig(n_base_jobs=20, repeat=1),
            machines=list(sim_machines),
        )
        result = MultiClusterSimulator(
            sim_machines, EnergyBasedAccounting(), GreedyPolicy()
        ).run(wl)
        assert result.n_jobs == 20
        # All fit at once on IC (20 x 8 = 160 <= 576 cores).
        assert result.mean_queue_wait_s() == pytest.approx(0.0)
