"""The parallel sweep engine and the batched engine's exactness.

The acceptance bar for the batched/parallel subsystem is *bit-identical*
results: same outcomes, same order, same floats as the per-record serial
reference paths.
"""

import multiprocessing
import os

import pytest

from repro.accounting.methods import CarbonBasedAccounting, EnergyBasedAccounting
from repro.sim.engine import MultiClusterSimulator
from repro.sim.policies import (
    EFTPolicy,
    FixedMachinePolicy,
    GreedyPolicy,
    MixedPolicy,
    standard_policies,
)
from repro.sim.sweep import (
    _QUOTE_TABLES,
    DEFAULT_KERNEL_CACHE_SIZE,
    SweepRunner,
    SweepTask,
    _resolve_cache_capacity,
    clear_quote_tables,
    policy_by_name,
    resolve_workers,
    set_default_workers,
    set_quote_table_capacity,
    sweep_grid,
)

SCALE = 250
SEED = 5

#: Env var naming a file the sentinel workload builder appends its pid
#: to — the regeneration detector for the spawn-context tests.  Module
#: level so spawn workers (which re-import this module) see it too.
_WORKLOAD_SENTINEL_ENV = "REPRO_TEST_WORKLOAD_CALLS"

requires_fork = pytest.mark.skipif(
    "fork" not in multiprocessing.get_all_start_methods(),
    reason="platform has no fork start method",
)


def _sentinel_workload(scenario_name, scale, seed):
    """Module-level (spawn-picklable) workload builder that records the
    calling pid before delegating to the memoized builder."""
    path = os.environ.get(_WORKLOAD_SENTINEL_ENV)
    if path:
        with open(path, "a") as fh:
            fh.write(f"{os.getpid()}\n")
    from repro.experiments._simulation import workload

    return workload(scenario_name, scale, seed)


@pytest.fixture(autouse=True, params=["platform", "spawn"])
def mp_start_method(request, monkeypatch):
    """Run the whole suite under the platform default (fork on Linux)
    AND with ``REPRO_SWEEP_MP_CONTEXT=spawn``, so every pool test also
    exercises the shipped-quote-table transport the knob enables."""
    if request.param == "spawn":
        monkeypatch.setenv("REPRO_SWEEP_MP_CONTEXT", "spawn")
    else:
        monkeypatch.delenv("REPRO_SWEEP_MP_CONTEXT", raising=False)
    return request.param


@pytest.fixture(scope="module")
def sweep_fns():
    from repro.experiments._simulation import method_for, scenario, workload

    return scenario, workload, method_for


class TestBatchedEngineExactness:
    """The vectorized pricing paths against the per-record reference."""

    @pytest.mark.parametrize(
        "method", [EnergyBasedAccounting(), CarbonBasedAccounting()]
    )
    @pytest.mark.parametrize(
        "policy_cls", [GreedyPolicy, MixedPolicy, EFTPolicy]
    )
    def test_bit_identical_outcomes(
        self, sim_machines, small_workload, method, policy_cls
    ):
        reference = MultiClusterSimulator(
            sim_machines, method, policy_cls(), batched=False
        ).run(small_workload)
        batched = MultiClusterSimulator(
            sim_machines, method, policy_cls()
        ).run(small_workload)
        assert batched.outcomes == reference.outcomes
        assert batched.machines == reference.machines

    def test_fixed_policy_bit_identical(self, sim_machines, small_workload):
        method = EnergyBasedAccounting()
        reference = MultiClusterSimulator(
            sim_machines, method, FixedMachinePolicy("Theta"), batched=False
        ).run(small_workload)
        batched = MultiClusterSimulator(
            sim_machines, method, FixedMachinePolicy("Theta")
        ).run(small_workload)
        assert batched.outcomes == reference.outcomes


class TestSweepRunner:
    def test_parallel_matches_serial_exactly(self, sweep_fns):
        """Two pool workers vs the serial in-process loop: bit-equal."""
        from repro.experiments._simulation import policy_sweep_serial

        scenario, workload, method_for = sweep_fns
        runner = SweepRunner(
            scenario_fn=scenario,
            workload_fn=workload,
            method_fn=method_for,
            workers=2,
        )
        tasks = [
            SweepTask("baseline", p.name, "EBA", SCALE, SEED)
            for p in standard_policies()
        ]
        parallel = runner.run(tasks)
        serial = policy_sweep_serial("baseline", "EBA", SCALE, SEED)
        assert len(parallel) == len(serial) == 8
        for task in tasks:
            a, b = parallel[task], serial[task.policy]
            assert a.policy == b.policy
            assert a.method == b.method
            assert a.outcomes == b.outcomes

    def test_policy_sweep_uses_runner_and_matches_serial(self, sweep_fns):
        from repro.experiments._simulation import (
            policy_sweep,
            policy_sweep_serial,
        )

        fast = policy_sweep("baseline", "CBA", SCALE, SEED)
        slow = policy_sweep_serial("baseline", "CBA", SCALE, SEED)
        assert set(fast) == set(slow)
        for name in fast:
            assert fast[name].outcomes == slow[name].outcomes

    def test_empty_task_list(self, sweep_fns):
        scenario, workload, method_for = sweep_fns
        runner = SweepRunner(scenario, workload, method_for, workers=2)
        assert runner.run([]) == {}

    def test_run_task_single_cell(self, sweep_fns):
        scenario, workload, method_for = sweep_fns
        runner = SweepRunner(scenario, workload, method_for, workers=1)
        result = runner.run_task(
            SweepTask("baseline", "Greedy", "EBA", SCALE, SEED)
        )
        assert result.policy == "Greedy"
        assert result.n_jobs == len(workload("baseline", SCALE, SEED))

    def test_run_task_desktop_fixed_policy_is_valid(self, sweep_fns):
        """'Desktop' is a real baseline machine, so the fixed-policy
        fallback is legitimate there."""
        scenario, workload, method_for = sweep_fns
        runner = SweepRunner(scenario, workload, method_for, workers=1)
        result = runner.run_task(
            SweepTask("baseline", "Desktop", "EBA", SCALE, SEED)
        )
        assert result.policy == "Desktop"

    def test_run_task_rejects_typoed_policy(self, sweep_fns):
        scenario, workload, method_for = sweep_fns
        runner = SweepRunner(scenario, workload, method_for, workers=1)
        with pytest.raises(KeyError, match="unknown policy 'greedy'"):
            runner.run_task(SweepTask("baseline", "greedy", "EBA", SCALE, SEED))


class TestSharedMemoryReturn:
    """Pickle-free result transport: byte-identical to pickled returns."""

    def test_shm_round_trip_preserves_result(self, sweep_fns):
        from repro.sim.sweep import _result_from_shm, _result_to_shm

        scenario, workload, method_for = sweep_fns
        runner = SweepRunner(scenario, workload, method_for, workers=1)
        original = runner.run_task(
            SweepTask("baseline", "Greedy", "EBA", SCALE, SEED)
        )
        clone = _result_from_shm(_result_to_shm(original))
        assert clone.policy == original.policy
        assert clone.method == original.method
        assert clone.machines == original.machines
        assert clone.outcomes == original.outcomes

    def test_parallel_shm_matches_pickled(self, sweep_fns):
        scenario, workload, method_for = sweep_fns
        tasks = [
            SweepTask("baseline", p.name, "EBA", SCALE, SEED)
            for p in standard_policies()[:3]
        ]
        with_shm = SweepRunner(
            scenario, workload, method_for, workers=2, shared_memory=True
        ).run(tasks)
        pickled = SweepRunner(
            scenario, workload, method_for, workers=2, shared_memory=False
        ).run(tasks)
        for task in tasks:
            assert with_shm[task].outcomes == pickled[task].outcomes

    def test_env_knob_disables_shm(self, sweep_fns, monkeypatch):
        scenario, workload, method_for = sweep_fns
        monkeypatch.setenv("REPRO_SWEEP_SHM", "0")
        assert not SweepRunner(scenario, workload, method_for).shared_memory
        monkeypatch.delenv("REPRO_SWEEP_SHM")
        assert SweepRunner(scenario, workload, method_for).shared_memory

    def test_env_knob_fallback_path_matches_serial(self, sweep_fns, monkeypatch):
        """REPRO_SWEEP_SHM=0 through a real pool: the pickled-return
        fallback must produce bit-identical results."""
        from repro.experiments._simulation import policy_sweep_serial

        scenario, workload, method_for = sweep_fns
        monkeypatch.setenv("REPRO_SWEEP_SHM", "0")
        runner = SweepRunner(scenario, workload, method_for, workers=2)
        assert not runner.shared_memory
        tasks = [
            SweepTask("baseline", p.name, "EBA", SCALE, SEED)
            for p in standard_policies()[:3]
        ]
        results = runner.run(tasks)
        serial = policy_sweep_serial("baseline", "EBA", SCALE, SEED)
        for task in tasks:
            assert results[task].outcomes == serial[task.policy].outcomes

    def test_shm_creation_failure_falls_back_to_pickling(
        self, sweep_fns, monkeypatch
    ):
        """A worker that cannot create a shared block returns the result
        itself; the parent must handle the mixed shapes."""
        import repro.sim.sweep as sweep_mod

        def broken(result):
            raise OSError("no shared memory on this box")

        # Patched before the pool forks, so workers inherit the failure.
        monkeypatch.setattr(sweep_mod, "_result_to_shm", broken)
        scenario, workload, method_for = sweep_fns
        runner = SweepRunner(
            scenario, workload, method_for, workers=2, shared_memory=True
        )
        tasks = [
            SweepTask("baseline", p.name, "EBA", SCALE, SEED)
            for p in standard_policies()[:2]
        ]
        results = runner.run(tasks)
        reference = runner.run_task(tasks[0])
        assert results[tasks[0]].outcomes == reference.outcomes


class TestKernelCache:
    """Cross-run quote-table sharing: bit-identical, built once."""

    def test_cache_on_matches_cache_off_exactly(self, sweep_fns):
        scenario, workload, method_for = sweep_fns
        tasks = [
            SweepTask("baseline", p.name, "CBA", SCALE, SEED)
            for p in standard_policies()
        ]
        clear_quote_tables()
        cached = SweepRunner(
            scenario, workload, method_for, workers=1, kernel_cache=True
        ).run(tasks)
        uncached = SweepRunner(
            scenario, workload, method_for, workers=1, kernel_cache=False
        ).run(tasks)
        for task in tasks:
            assert cached[task].outcomes == uncached[task].outcomes

    def test_parallel_cache_matches_serial(self, sweep_fns):
        scenario, workload, method_for = sweep_fns
        tasks = [
            SweepTask("baseline", p.name, "EBA", SCALE, SEED)
            for p in standard_policies()[:4]
        ]
        clear_quote_tables()
        parallel = SweepRunner(
            scenario, workload, method_for, workers=2, kernel_cache=True
        ).run(tasks)
        serial = SweepRunner(
            scenario, workload, method_for, workers=1, kernel_cache=False
        ).run(tasks)
        for task in tasks:
            assert parallel[task].outcomes == serial[task].outcomes

    def test_warm_builds_one_table_per_distinct_config(self, sweep_fns):
        scenario, workload, method_for = sweep_fns
        clear_quote_tables()
        runner = SweepRunner(
            scenario, workload, method_for, workers=1, kernel_cache=True
        )
        tasks = [
            SweepTask("baseline", p.name, "EBA", SCALE, SEED)
            for p in standard_policies()
        ] + [
            SweepTask("baseline", p.name, "CBA", SCALE, SEED)
            for p in standard_policies()
        ]
        runner._warm(tasks)
        # 8 policies x 2 methods share exactly 2 tables.
        assert len(_QUOTE_TABLES) == 2
        runner.run(tasks)
        assert len(_QUOTE_TABLES) == 2
        clear_quote_tables()

    def test_env_knob_disables_kernel_cache(self, sweep_fns, monkeypatch):
        scenario, workload, method_for = sweep_fns
        monkeypatch.setenv("REPRO_SWEEP_KERNEL_CACHE", "0")
        assert not SweepRunner(scenario, workload, method_for).kernel_cache
        monkeypatch.delenv("REPRO_SWEEP_KERNEL_CACHE")
        assert SweepRunner(scenario, workload, method_for).kernel_cache

    def test_kernel_cache_opt_out_bypasses_cache_entirely(self, sweep_fns):
        """kernel_cache=False (the REPRO_SWEEP_KERNEL_CACHE=0 path) must
        generate zero cache traffic, not merely ignore hits."""
        scenario, workload, method_for = sweep_fns
        clear_quote_tables()
        runner = SweepRunner(
            scenario, workload, method_for, workers=1, kernel_cache=False
        )
        tasks = [
            SweepTask("baseline", p.name, "EBA", SCALE, SEED)
            for p in standard_policies()[:2]
        ]
        runner.run(tasks)
        assert len(_QUOTE_TABLES) == 0
        stats = runner.last_cache_stats
        assert (stats.hits, stats.misses, stats.evictions) == (0, 0, 0)


class TestKernelCacheLRU:
    """The bounded cache under sweeps wider than its capacity."""

    @pytest.fixture()
    def bounded_cache(self):
        """Capacity 2 for the test, restored (and drained) afterwards."""
        clear_quote_tables()
        set_quote_table_capacity(2)
        yield
        set_quote_table_capacity(_resolve_cache_capacity())
        clear_quote_tables()

    def _wide_tasks(self):
        """Four distinct (method, seed) quote-table configs, two policies
        each — more distinct tables than the bounded cache can hold."""
        return [
            SweepTask("baseline", p.name, method, SCALE, seed)
            for method in ("EBA", "CBA")
            for seed in (SEED, SEED + 1)
            for p in standard_policies()[:2]
        ]

    def test_sweep_beyond_capacity_is_bounded_and_bit_identical(
        self, sweep_fns, bounded_cache
    ):
        scenario, workload, method_for = sweep_fns
        tasks = self._wide_tasks()
        bounded = SweepRunner(
            scenario, workload, method_for, workers=1, kernel_cache=True
        )
        with pytest.warns(RuntimeWarning, match="distinct quote tables"):
            results = bounded.run(tasks)
        stats = bounded.last_cache_stats
        assert len(_QUOTE_TABLES) <= 2
        assert stats.size <= 2 and stats.capacity == 2
        assert stats.evictions > 0
        reference = SweepRunner(
            scenario, workload, method_for, workers=1, kernel_cache=False
        ).run(tasks)
        for task in tasks:
            assert results[task].outcomes == reference[task].outcomes

    def test_stats_surfaced_per_run(self, sweep_fns):
        """Unbounded enough for the working set: the warm phase builds
        each distinct table once (misses), every task then hits."""
        scenario, workload, method_for = sweep_fns
        clear_quote_tables()
        runner = SweepRunner(
            scenario, workload, method_for, workers=1, kernel_cache=True
        )
        tasks = [
            SweepTask("baseline", p.name, method, SCALE, SEED)
            for method in ("EBA", "CBA")
            for p in standard_policies()[:3]
        ]
        runner.run(tasks)
        stats = runner.last_cache_stats
        assert stats.misses == 2  # one build per distinct (method,) config
        assert stats.hits == len(tasks)
        assert stats.evictions == 0
        assert runner.cache_stats().size == 2
        clear_quote_tables()

    def test_capacity_resolution_from_env(self, monkeypatch):
        monkeypatch.delenv("REPRO_SWEEP_KERNEL_CACHE_SIZE", raising=False)
        assert _resolve_cache_capacity() == DEFAULT_KERNEL_CACHE_SIZE
        monkeypatch.setenv("REPRO_SWEEP_KERNEL_CACHE_SIZE", "7")
        assert _resolve_cache_capacity() == 7
        monkeypatch.setenv("REPRO_SWEEP_KERNEL_CACHE_SIZE", "0")
        assert _resolve_cache_capacity() is None
        monkeypatch.setenv("REPRO_SWEEP_KERNEL_CACHE_SIZE", "-1")
        assert _resolve_cache_capacity() is None
        monkeypatch.setenv("REPRO_SWEEP_KERNEL_CACHE_SIZE", "bogus")
        with pytest.warns(RuntimeWarning, match="KERNEL_CACHE_SIZE"):
            assert _resolve_cache_capacity() == DEFAULT_KERNEL_CACHE_SIZE


class TestSpawnContext:
    """The ``mp_context=`` knob: spawn pools must attach shipped quote
    tables and reconstruct workloads from them — bit-identical to fork,
    with zero worker-side workload regeneration."""

    def test_mp_context_resolution_and_validation(self, sweep_fns, monkeypatch):
        scenario, workload, method_for = sweep_fns
        monkeypatch.delenv("REPRO_SWEEP_MP_CONTEXT", raising=False)
        assert SweepRunner(scenario, workload, method_for).mp_context is None
        monkeypatch.setenv("REPRO_SWEEP_MP_CONTEXT", "spawn")
        assert SweepRunner(scenario, workload, method_for).mp_context == "spawn"
        # Explicit argument beats the environment.
        assert (
            SweepRunner(
                scenario, workload, method_for, mp_context="spawn"
            ).mp_context
            == "spawn"
        )
        with pytest.raises(ValueError, match="start method"):
            SweepRunner(scenario, workload, method_for, mp_context="bogus")

    @requires_fork
    def test_spawn_matches_fork_without_regeneration(
        self, monkeypatch, tmp_path
    ):
        """The acceptance bar: spawn results bit-identical to fork, all
        worker-side misses satisfied by shm attaches (no rebuilds), and
        the workload builder never called outside the parent."""
        from repro.experiments._simulation import method_for, scenario

        sentinel = tmp_path / "workload-calls"
        monkeypatch.setenv(_WORKLOAD_SENTINEL_ENV, str(sentinel))
        clear_quote_tables()
        tasks = [
            SweepTask("baseline", p.name, "EBA", SCALE, SEED)
            for p in standard_policies()[:4]
        ]
        spawn_runner = SweepRunner(
            scenario,
            _sentinel_workload,
            method_for,
            workers=2,
            mp_context="spawn",
            kernel_cache=True,
        )
        spawn_results = spawn_runner.run(tasks)
        worker = spawn_runner.last_worker_cache_stats
        assert worker is not None
        assert worker.shm_attached >= 1
        # Every worker-side miss was satisfied by attaching a shipped
        # block — nothing was re-priced or regenerated.
        assert worker.misses == worker.shm_attached
        assert worker.hits == len(tasks) - worker.shm_attached
        spawn_pids = set(sentinel.read_text().split())
        assert spawn_pids == {str(os.getpid())}
        clear_quote_tables()
        fork_runner = SweepRunner(
            scenario,
            _sentinel_workload,
            method_for,
            workers=2,
            mp_context="fork",
            kernel_cache=True,
        )
        fork_results = fork_runner.run(tasks)
        # Fork workers inherit the warmed cache: pure hits, no attaches.
        fork_worker = fork_runner.last_worker_cache_stats
        assert fork_worker.shm_attached == 0 and fork_worker.misses == 0
        assert fork_worker.hits == len(tasks)
        for task in tasks:
            assert spawn_results[task].outcomes == fork_results[task].outcomes
        clear_quote_tables()

    def test_spawn_cache_opt_out_regenerates_per_worker(
        self, monkeypatch, tmp_path
    ):
        """REPRO_SWEEP_KERNEL_CACHE=0 restores the old spawn behaviour —
        workers regenerate workloads themselves — and stays correct."""
        from repro.experiments._simulation import method_for, scenario

        sentinel = tmp_path / "workload-calls"
        monkeypatch.setenv(_WORKLOAD_SENTINEL_ENV, str(sentinel))
        tasks = [
            SweepTask("baseline", p.name, "EBA", SCALE, SEED)
            for p in standard_policies()[:2]
        ]
        runner = SweepRunner(
            scenario,
            _sentinel_workload,
            method_for,
            workers=2,
            mp_context="spawn",
            kernel_cache=False,
        )
        results = runner.run(tasks)
        worker = runner.last_worker_cache_stats
        assert (worker.hits, worker.misses, worker.shm_attached) == (0, 0, 0)
        pids = set(sentinel.read_text().split())
        assert str(os.getpid()) in pids
        assert len(pids) >= 2  # at least one worker regenerated
        reference = SweepRunner(
            scenario, _sentinel_workload, method_for, workers=1,
            kernel_cache=False,
        ).run(tasks)
        for task in tasks:
            assert results[task].outcomes == reference[task].outcomes

    def test_spawn_shipping_unlinks_blocks_after_run(self, monkeypatch):
        """The parent owns the shipped blocks: after a run none remain
        linked (``_shipped`` drained, descriptors unlinked)."""
        from multiprocessing import shared_memory

        from repro.experiments._simulation import method_for, scenario, workload

        clear_quote_tables()
        tasks = [
            SweepTask("baseline", p.name, "EBA", SCALE, SEED)
            for p in standard_policies()[:2]
        ]
        runner = SweepRunner(
            scenario, workload, method_for, workers=2,
            mp_context="spawn", kernel_cache=True,
        )
        runner._warm(tasks)
        runner._ship_tables(tasks)
        assert len(runner._shipped) == 1  # 2 tasks share one table
        names = [d.shm_name for d in runner._shipped.values()]
        runner._release_shipped()
        assert runner._shipped == {}
        for name in names:
            with pytest.raises(FileNotFoundError):
                shared_memory.SharedMemory(name=name)
        runner.run(tasks)  # the full path drains the dict too
        assert runner._shipped == {}
        clear_quote_tables()


class TestKnobs:
    def test_policy_by_name_standard(self):
        for policy in standard_policies():
            assert policy_by_name(policy.name).name == policy.name

    def test_policy_by_name_falls_back_to_fixed(self):
        policy = policy_by_name("Desktop")
        assert isinstance(policy, FixedMachinePolicy)
        assert policy.machine == "Desktop"

    def test_sweep_grid_shape_and_order(self):
        tasks = sweep_grid(
            scenarios=["baseline"],
            policies=["Greedy", "EFT"],
            methods=["EBA", "CBA"],
            scales=[100],
            seeds=[0, 1],
        )
        assert len(tasks) == 8
        assert tasks[0] == SweepTask("baseline", "Greedy", "EBA", 100, 0)
        # Policies vary fastest, so one (scenario, method, seed) block
        # stays contiguous for cache warmth.
        assert tasks[1].policy == "EFT"

    def test_resolve_workers_precedence(self, monkeypatch):
        monkeypatch.setenv("REPRO_SWEEP_WORKERS", "3")
        assert resolve_workers() == 3
        assert resolve_workers(2) == 2
        set_default_workers(5)
        try:
            assert resolve_workers() == 5
        finally:
            set_default_workers(None)
        monkeypatch.setenv("REPRO_SWEEP_WORKERS", "bogus")
        with pytest.warns(RuntimeWarning, match="REPRO_SWEEP_WORKERS"):
            assert resolve_workers() == max(1, os.cpu_count() or 1)

    def test_set_default_workers_rejects_zero(self):
        with pytest.raises(ValueError):
            set_default_workers(0)
