"""Event-order equivalence: the indexed event core vs the seed loops.

The indexed ready-queue and the shared :class:`EventCalendar` claim to
be pure mechanism swaps: every start decision, event ordering, and
priced outcome must be **bit-identical** to the seed implementations
(per-simulator heaps + an always-rescanned backfill window).  This
module keeps faithful ports of those seed loops and asserts exact
equality of the resulting tables for the engine, the migration
simulator (batched and unbatched), and the shifting wrapper, across all
five accounting methods — plus a randomized op-sequence property test
on the ready-queue itself.

The ports use the *fixed* committed-core-seconds heuristic (running
remainders, not full runtimes), so the comparison isolates the
scheduling machinery from that intentional behaviour change.
"""

import dataclasses
import heapq
import random
from collections import deque

import numpy as np
import pytest

from repro.accounting.base import UsageRecord
from repro.accounting.methods import CarbonBasedAccounting, all_methods
from repro.accounting.pricing import OUTCOME_FIELDS
from repro.sim.cluster import ClusterSim, _Running
from repro.sim.engine import (
    MultiClusterSimulator,
    SimulationResult,
    pricing_for_sim_machine,
)
from repro.sim.job import Job, JobOutcome
from repro.sim.migration import MigratingSimulator
from repro.sim.policies import (
    EFTPolicy,
    GreedyPolicy,
    LargestFirstPolicy,
    MachineView,
    MixedPolicy,
)
from repro.sim.shifting import ShiftingSimulator, TemporalShiftPlanner
from repro.sim.workload import Workload, WorkloadConfig, PatelWorkloadGenerator
from repro.units import operational_carbon_g

_ARRIVAL = 0
_FINISH = 1
_REEVALUATE = 2


# ---------------------------------------------------------------------------
# Seed ports
# ---------------------------------------------------------------------------
class SeedCluster:
    """The seed ClusterSim: rescans the backfill window on every call.

    Committed-core-seconds bookkeeping replays the exact float-operation
    sequence of the new :class:`ClusterSim`, so wait estimates (and thus
    EFT/Mixed decisions) can be compared for bit-equality.
    """

    def __init__(self, machine, backfill_window: int = 64) -> None:
        self.machine = machine
        self.backfill_window = backfill_window
        self.name = machine.name
        self.total_cores = machine.total_cores
        self._capacity = max(1, self.total_cores)
        self.free_cores = self.total_cores
        self.queue: deque[Job] = deque()
        self.running: dict[int, _Running] = {}
        self._busy_users: set[int] = set()
        self._queued_core_s = 0.0
        self._running_cores = 0
        self._running_end_core_s = 0.0
        self.max_concurrent = machine.max_concurrent_jobs

    def estimated_wait_s(self, now: float) -> float:
        committed = self._queued_core_s + (
            self._running_end_core_s - now * self._running_cores
        )
        return committed / self._capacity if committed > 0.0 else 0.0

    def enqueue(self, job: Job) -> None:
        runtime = job.runtime_s[self.name]
        self.queue.append(job)
        self._queued_core_s += job.cores * runtime

    def startable(self, now: float) -> list[Job]:
        if not self.queue or self.free_cores <= 0:
            return []
        started: list[Job] = []
        scanned = 0
        remaining: deque[Job] = deque()
        busy = self._busy_users
        cap = self.max_concurrent
        while self.queue and scanned < self.backfill_window:
            job = self.queue.popleft()
            scanned += 1
            if (
                job.cores <= self.free_cores
                and job.user not in busy
                and (cap is None or len(self.running) < cap)
            ):
                self._start(job, now)
                started.append(job)
            else:
                remaining.append(job)
        self.queue = remaining + self.queue
        return started

    def _start(self, job: Job, now: float) -> None:
        self.free_cores -= job.cores
        runtime = job.runtime_s[self.name]
        end = now + runtime
        self.running[job.job_id] = _Running(job=job, end_s=end)
        self._busy_users.add(job.user)
        self._queued_core_s -= job.cores * runtime
        self._running_cores += job.cores
        self._running_end_core_s += job.cores * end

    def finish(self, job_id: int) -> Job:
        entry = self.running.pop(job_id)
        job = entry.job
        self.free_cores += job.cores
        self._running_cores -= job.cores
        self._running_end_core_s -= job.cores * entry.end_s
        self._busy_users.discard(job.user)
        return job

    def reschedule_end(self, job_id: int, end_s: float) -> None:
        entry = self.running[job_id]
        self._running_end_core_s += entry.job.cores * (end_s - entry.end_s)
        entry.end_s = end_s

    def end_time_of(self, job_id: int) -> float:
        return self.running[job_id].end_s


def seed_engine_run(machines, method, policy, workload) -> SimulationResult:
    """Port of the seed engine loop: one heap, per-record pricing."""
    pricings = {n: pricing_for_sim_machine(m) for n, m in machines.items()}
    carbon = CarbonBasedAccounting()
    clusters = {n: SeedCluster(m) for n, m in machines.items()}
    arrivals = sorted(workload.jobs, key=lambda j: j.submit_s)
    finish_heap: list[tuple[float, int, str, int, float]] = []
    seq = 0
    outcomes: list[JobOutcome] = []

    def outcome(job, machine_name, start_s, end_s):
        energy = job.energy_j[machine_name]
        pricing = pricings[machine_name]
        record = UsageRecord(
            machine=machine_name,
            duration_s=job.runtime_s[machine_name],
            energy_j=energy,
            cores=job.cores,
            start_time_s=start_s,
            job_id=str(job.job_id),
        )
        cost = method.charge(record, pricing)
        intensity = machines[machine_name].intensity.at(start_s)
        operational = operational_carbon_g(energy, intensity)
        attributed = operational + carbon.embodied_charge(record, pricing)
        return JobOutcome(
            job_id=job.job_id,
            user=job.user,
            machine=machine_name,
            cores=job.cores,
            submit_s=job.submit_s,
            start_s=start_s,
            end_s=end_s,
            energy_j=energy,
            cost=cost,
            work_core_hours=job.work_core_hours,
            operational_carbon_g=operational,
            attributed_carbon_g=attributed,
        )

    def try_start(cluster, now):
        nonlocal seq
        for job in cluster.startable(now):
            heapq.heappush(
                finish_heap,
                (cluster.end_time_of(job.job_id), seq, cluster.name, job.job_id, now),
            )
            seq += 1

    ai = 0
    n = len(arrivals)
    while ai < n or finish_heap:
        if finish_heap and (
            ai >= n or finish_heap[0][0] < arrivals[ai].submit_s
        ):
            now, _, mname, jid, start_s = heapq.heappop(finish_heap)
            cluster = clusters[mname]
            job = cluster.finish(jid)
            outcomes.append(outcome(job, mname, start_s, now))
            try_start(cluster, now)
        else:
            job = arrivals[ai]
            ai += 1
            now = job.submit_s
            views = []
            for name in job.eligible_machines:
                if name not in clusters:
                    continue
                runtime = job.runtime_s[name]
                energy = job.energy_j[name]
                record = UsageRecord(
                    machine=name,
                    duration_s=runtime,
                    energy_j=energy,
                    cores=job.cores,
                    start_time_s=now,
                )
                views.append(
                    MachineView(
                        machine=name,
                        runtime_s=runtime,
                        energy_j=energy,
                        queue_wait_s=clusters[name].estimated_wait_s(now),
                        cost=method.charge(record, pricings[name]),
                    )
                )
            if not views:
                continue
            cluster = clusters[policy.select(job, views)]
            cluster.enqueue(job)
            try_start(cluster, now)
    return SimulationResult(
        policy=policy.name,
        method=method.name,
        machines=list(machines),
        outcomes=outcomes,
    )


class _SeedProgress:
    __slots__ = (
        "job", "remaining_fraction", "energy_j", "cost", "operational_g",
        "attributed_g", "first_start_s", "migrations", "segment_start_s",
        "segment_machine", "is_continuation",
    )

    def __init__(self, job):
        self.job = job
        self.remaining_fraction = 1.0
        self.energy_j = 0.0
        self.cost = 0.0
        self.operational_g = 0.0
        self.attributed_g = 0.0
        self.first_start_s = None
        self.migrations = 0
        self.segment_start_s = 0.0
        self.segment_machine = ""
        self.is_continuation = False


def seed_migration_run(
    machines,
    method,
    policy,
    workload,
    reevaluate_every_s=3600.0,
    overhead_s=300.0,
    min_saving=0.2,
) -> SimulationResult:
    """Port of the seed migration loop: every arrival in the heap,
    scalar probe pricing, immediate per-segment charging."""
    pricings = {n: pricing_for_sim_machine(m) for n, m in machines.items()}
    carbon = CarbonBasedAccounting()
    clusters = {n: SeedCluster(m) for n, m in machines.items()}
    progress = {job.job_id: _SeedProgress(job) for job in workload.jobs}
    pending_runtime: dict[int, float] = {}

    def segment_record(job, machine, start_s, fraction, with_overhead):
        runtime = job.runtime_s[machine] * fraction
        energy = job.energy_j[machine] * fraction
        if with_overhead:
            runtime += overhead_s
            energy += (
                machines[machine].idle_watts_per_core * job.cores * overhead_s
            )
        return UsageRecord(
            machine=machine,
            duration_s=runtime,
            energy_j=energy,
            cores=job.cores,
            start_time_s=start_s,
        )

    def charge_segment(state, fraction, with_overhead):
        record = segment_record(
            state.job, state.segment_machine, state.segment_start_s,
            fraction, with_overhead,
        )
        pricing = pricings[state.segment_machine]
        intensity = machines[state.segment_machine].intensity.at(
            state.segment_start_s
        )
        operational = operational_carbon_g(record.energy_j, intensity)
        state.energy_j += record.energy_j
        state.cost += method.charge(record, pricing)
        state.operational_g += operational
        state.attributed_g += operational + carbon.embodied_charge(
            record, pricing
        )

    events: list[tuple[float, int, int, object]] = []
    seq = 0

    def push(time_s, kind, payload):
        nonlocal seq
        heapq.heappush(events, (time_s, kind, seq, payload))
        seq += 1

    for job in workload.jobs:
        push(job.submit_s, _ARRIVAL, job)
    if workload.jobs:
        push(workload.jobs[0].submit_s + reevaluate_every_s, _REEVALUATE, None)

    finish_log: list[tuple[int, float]] = []
    active = len(workload.jobs)

    def try_start(cluster, now):
        for job in cluster.startable(now):
            state = progress[job.job_id]
            if state.first_start_s is None:
                state.first_start_s = now
            state.segment_start_s = now
            state.segment_machine = cluster.name
            state.is_continuation = job.job_id in pending_runtime
            runtime = pending_runtime.get(job.job_id, job.runtime_s[cluster.name])
            end = now + runtime
            cluster.reschedule_end(job.job_id, end)
            push(end, _FINISH, (cluster.name, job.job_id))

    def reevaluate(now):
        moved_any = False
        for cluster in clusters.values():
            for job_id in list(cluster.running):
                state = progress[job_id]
                job = state.job
                end_s = cluster.running[job_id].end_s
                segment_total = end_s - state.segment_start_s
                if segment_total <= 0 or now >= end_s - 1e-9:
                    continue
                done_of_segment = (now - state.segment_start_s) / segment_total
                if done_of_segment <= 0:
                    continue
                frac_done = state.remaining_fraction * done_of_segment
                remaining = state.remaining_fraction - frac_done
                if remaining <= 0.05:
                    continue
                probe = _SeedProgress(job)
                probe.remaining_fraction = remaining
                probe.segment_start_s = now
                probe.segment_machine = cluster.name
                stay = method.charge(
                    segment_record(job, cluster.name, now, remaining, False),
                    pricings[cluster.name],
                )
                best_name, best_cost = None, stay
                for name in job.eligible_machines:
                    if name == cluster.name or name not in clusters:
                        continue
                    cost = method.charge(
                        segment_record(job, name, now, remaining, True),
                        pricings[name],
                    )
                    if cost < best_cost:
                        best_name, best_cost = name, cost
                if best_name is None or best_cost > stay * (1.0 - min_saving):
                    continue
                charge_segment(state, frac_done, state.is_continuation)
                state.remaining_fraction = remaining
                state.migrations += 1
                cluster.finish(job_id)
                pending_runtime[job_id] = (
                    job.runtime_s[best_name] * remaining + overhead_s
                )
                clusters[best_name].enqueue(job)
                moved_any = True
        return moved_any

    while events and active > 0:
        now, kind, _, payload = heapq.heappop(events)
        if kind == _ARRIVAL:
            job = payload
            views = [
                MachineView(
                    machine=name,
                    runtime_s=job.runtime_s[name],
                    energy_j=job.energy_j[name],
                    queue_wait_s=clusters[name].estimated_wait_s(now),
                    cost=method.charge(
                        segment_record(job, name, now, 1.0, False),
                        pricings[name],
                    ),
                )
                for name in job.eligible_machines
                if name in clusters
            ]
            if not views:
                active -= 1
                continue
            choice = policy.select(job, views)
            clusters[choice].enqueue(job)
            try_start(clusters[choice], now)
        elif kind == _FINISH:
            machine_name, job_id = payload
            cluster = clusters[machine_name]
            entry = cluster.running.get(job_id)
            if entry is None or abs(entry.end_s - now) > 1e-6:
                continue
            cluster.finish(job_id)
            state = progress[job_id]
            charge_segment(state, state.remaining_fraction, state.is_continuation)
            state.remaining_fraction = 0.0
            pending_runtime.pop(job_id, None)
            finish_log.append((job_id, now))
            active -= 1
            try_start(cluster, now)
        else:
            if reevaluate(now):
                for cluster in clusters.values():
                    try_start(cluster, now)
            if active > 0:
                push(now + reevaluate_every_s, _REEVALUATE, None)

    outcomes = []
    for job_id, end_s in finish_log:
        state = progress[job_id]
        job = state.job
        outcomes.append(
            JobOutcome(
                job_id=job.job_id,
                user=job.user,
                machine=state.segment_machine,
                cores=job.cores,
                submit_s=job.submit_s,
                start_s=(
                    state.first_start_s
                    if state.first_start_s is not None
                    else end_s
                ),
                end_s=end_s,
                energy_j=state.energy_j,
                cost=state.cost,
                work_core_hours=job.work_core_hours,
                operational_carbon_g=state.operational_g,
                attributed_carbon_g=state.attributed_g,
            )
        )
    result = SimulationResult(
        policy=f"{policy.name}+migrate",
        method=method.name,
        machines=list(machines),
        outcomes=outcomes,
    )
    result.total_migrations = sum(s.migrations for s in progress.values())
    return result


def assert_results_identical(a: SimulationResult, b: SimulationResult) -> None:
    assert a.table.machines == b.table.machines
    assert len(a.table) == len(b.table)
    for field, _ in OUTCOME_FIELDS:
        col_a = getattr(a.table, field)
        col_b = getattr(b.table, field)
        assert np.array_equal(col_a, col_b), f"column {field} differs"


# ---------------------------------------------------------------------------
# Property test: the indexed ready-queue vs the always-scan cluster
# ---------------------------------------------------------------------------
class TestReadyQueueEquivalence:
    @pytest.mark.parametrize("window", [1, 2, 7, 64])
    @pytest.mark.parametrize("seed", [0, 1, 2])
    @pytest.mark.parametrize("cap", [None, 3], ids=["uncapped", "cap3"])
    def test_random_sequences_match_seed_scan(
        self, sim_machines, window, seed, cap
    ):
        machine = dataclasses.replace(
            sim_machines["IC"], max_concurrent_jobs=cap
        )  # 576 cores
        rng = random.Random(97 * seed + window)
        new = ClusterSim(machine, backfill_window=window)
        ref = SeedCluster(machine, backfill_window=window)
        now = 0.0
        next_id = 0
        for _ in range(400):
            now += rng.random() * 400.0
            roll = rng.random()
            if roll < 0.55:
                job = Job(
                    job_id=next_id,
                    user=rng.randrange(5),
                    cores=rng.choice([8, 48, 240, 576]),
                    submit_s=now,
                    runtime_s={"IC": 10.0 + rng.random() * 2000.0},
                    energy_j={"IC": 1e3},
                )
                next_id += 1
                new.enqueue(job)
                ref.enqueue(job)
            elif roll < 0.85 and new.running:
                jid = min(
                    new.running, key=lambda k: (new.running[k].end_s, k)
                )
                assert new.finish(jid).job_id == ref.finish(jid).job_id
            started_new = new.startable(now)
            started_ref = ref.startable(now)
            assert [j.job_id for j in started_new] == [
                j.job_id for j in started_ref
            ]
            assert new.free_cores == ref.free_cores
            assert new.queue_length == len(ref.queue)
            assert new.estimated_wait_s(now) == ref.estimated_wait_s(now)


# ---------------------------------------------------------------------------
# Full-simulator equivalence
# ---------------------------------------------------------------------------
@pytest.fixture(scope="module")
def migration_workload(low_carbon_machines):
    cfg = WorkloadConfig(
        n_base_jobs=120, n_users=30, seed=2, runtime_median_s=4 * 3600.0
    )
    return PatelWorkloadGenerator(low_carbon_machines, cfg).generate()


@pytest.fixture(scope="module", params=["baseline", "tiered"])
def engine_case(request, sim_machines, small_workload, tiered_machines, tiered_workload):
    """(machines, workload) pairs the engine equivalence runs over.

    ``tiered`` covers heterogeneous tiers: skewed core counts, per-tier
    concurrency caps (mirrored by :class:`SeedCluster`), and
    straggler-inflated runtimes.
    """
    if request.param == "baseline":
        return sim_machines, small_workload
    return tiered_machines, tiered_workload


class TestEngineEquivalence:
    @pytest.mark.parametrize("method", all_methods(), ids=lambda m: m.name)
    @pytest.mark.parametrize(
        "policy",
        [GreedyPolicy(), EFTPolicy(), MixedPolicy(), LargestFirstPolicy()],
        ids=lambda p: p.name,
    )
    def test_bit_identical_to_seed_loop(self, engine_case, method, policy):
        machines, wl = engine_case
        reference = seed_engine_run(machines, method, policy, wl)
        batched = MultiClusterSimulator(machines, method, policy).run(wl)
        scalar = MultiClusterSimulator(
            machines, method, policy, batched=False
        ).run(wl)
        assert_results_identical(batched, reference)
        assert_results_identical(scalar, reference)


@pytest.fixture(scope="module", params=["low-carbon", "tiered"])
def migration_case(
    request,
    low_carbon_machines,
    migration_workload,
    tiered_machines,
    tiered_workload,
):
    """Fleets the migration equivalence runs over: the homogeneous
    low-carbon room and the tiered fleet (slot caps, straggler-inflated
    runtimes) — migrations must respect destination caps on both the
    seed port and the simulator."""
    if request.param == "low-carbon":
        return low_carbon_machines, migration_workload
    return tiered_machines, tiered_workload


class TestMigrationEquivalence:
    @pytest.mark.parametrize("method", all_methods(), ids=lambda m: m.name)
    def test_bit_identical_to_seed_loop(self, migration_case, method):
        machines, wl = migration_case
        reference = seed_migration_run(
            machines,
            method,
            GreedyPolicy(),
            wl,
            min_saving=0.15,
        )
        batched = MigratingSimulator(
            machines, method, GreedyPolicy(), min_saving=0.15
        ).run(wl)
        scalar = MigratingSimulator(
            machines,
            method,
            GreedyPolicy(),
            min_saving=0.15,
            batched=False,
        ).run(wl)
        assert_results_identical(batched, reference)
        assert_results_identical(scalar, reference)

    @pytest.mark.parametrize("method", all_methods(), ids=lambda m: m.name)
    @pytest.mark.parametrize(
        "tick_min,probe_min",
        [(0, 0), (0, 10**9)],
        ids=[
            "columnar-collect+columnar-probes+argmin-decisions",
            "columnar-collect+scalar-probes+scalar-decisions",
        ],
    )
    def test_running_table_regimes_bit_identical(
        self, low_carbon_machines, migration_workload, method, tick_min, probe_min
    ):
        """The columnar RunningTable tick, forced on for every
        re-evaluation (the adaptive thresholds would otherwise leave it
        idle at this workload's concurrency), in both regimes: fully
        columnar (charge_many probe matrix + masked-argmin decisions
        with elig_rank tie-breaking) and scalar probes with the
        per-candidate decision walk — all five methods, exact equality
        with the seed loop."""
        reference = seed_migration_run(
            low_carbon_machines,
            method,
            GreedyPolicy(),
            migration_workload,
            min_saving=0.15,
        )
        sim = MigratingSimulator(
            low_carbon_machines, method, GreedyPolicy(), min_saving=0.15
        )
        sim.tick_vector_min = tick_min
        sim.probe_vector_min = probe_min
        assert_results_identical(sim.run(migration_workload), reference)

    @pytest.mark.parametrize("method", all_methods(), ids=lambda m: m.name)
    def test_multi_tick_batches_bit_identical(
        self, low_carbon_machines, migration_workload, method
    ):
        """Batched multi-tick re-evaluation: when the calendar shows no
        arrival/finish between consecutive ticks, the columnar regime
        prices the whole quiet run in one flattened pass.  Forced on
        (thresholds zeroed) it must equal both the same forced-columnar
        simulator with batching disabled (``multi_tick_max=1``) and the
        seed loop exactly, for all five methods — and the batch path
        must actually engage, or this proves nothing."""
        reference = seed_migration_run(
            low_carbon_machines,
            method,
            GreedyPolicy(),
            migration_workload,
            min_saving=0.15,
        )
        multi = MigratingSimulator(
            low_carbon_machines, method, GreedyPolicy(), min_saving=0.15
        )
        multi.tick_vector_min = 0
        multi.probe_vector_min = 0
        single = MigratingSimulator(
            low_carbon_machines, method, GreedyPolicy(), min_saving=0.15
        )
        single.tick_vector_min = 0
        single.probe_vector_min = 0
        single.multi_tick_max = 1
        multi_result = multi.run(migration_workload)
        single_result = single.run(migration_workload)
        assert multi.multi_tick_batches > 0
        assert multi.multi_tick_ticks > multi.multi_tick_batches
        assert single.multi_tick_batches == 0
        assert_results_identical(multi_result, reference)
        assert_results_identical(single_result, reference)

    def test_migrations_actually_happen(
        self, low_carbon_machines, migration_workload
    ):
        """The equivalence above must exercise real migrations, or it
        proves nothing about preempt/requeue/stale-event ordering."""
        result = seed_migration_run(
            low_carbon_machines,
            CarbonBasedAccounting(),
            GreedyPolicy(),
            migration_workload,
            min_saving=0.15,
        )
        assert result.n_jobs == len(migration_workload)
        assert result.total_migrations > 0


class TestShiftingEquivalence:
    @pytest.mark.parametrize("method", all_methods(), ids=lambda m: m.name)
    def test_bit_identical_to_seed_loop(
        self, sim_machines, small_workload, method
    ):
        jobs = small_workload.jobs[:150]
        workload = Workload(
            jobs=jobs,
            config=small_workload.config,
            machines=small_workload.machines,
        )
        planner = TemporalShiftPlanner(sim_machines, method)
        shifted = [
            Job(
                job_id=j.job_id,
                user=j.user,
                cores=j.cores,
                submit_s=j.submit_s + planner.plan(j, j.submit_s).delay_s,
                runtime_s=j.runtime_s,
                energy_j=j.energy_j,
            )
            for j in jobs
        ]
        shifted.sort(key=lambda j: j.submit_s)
        reference = seed_engine_run(
            sim_machines,
            method,
            GreedyPolicy(),
            Workload(
                jobs=shifted,
                config=small_workload.config,
                machines=small_workload.machines,
            ),
        )
        result = ShiftingSimulator(sim_machines, method, GreedyPolicy()).run(
            workload
        )
        assert_results_identical(result, reference)
