"""Paper-vs-measured checks for the hardware-study tables (1-5) and Fig. 4."""

import pytest

from repro.experiments import (
    fig4_apps,
    table1_cpu_costs,
    table2_gpu_specs,
    table3_gpu_costs,
    table4_embodied,
    table5_machines,
)


class TestTable1:
    def test_eba_cba_within_tolerance_of_paper(self):
        table = table1_cpu_costs.run()
        paper = table1_cpu_costs.PAPER_TABLE1
        eba = table.normalized("EBA", "Desktop")
        cba = table.normalized("CBA", "Desktop")
        for machine in table.machines:
            assert eba[machine] == pytest.approx(paper[machine]["EBA"], abs=0.06)
            assert cba[machine] == pytest.approx(paper[machine]["CBA"], abs=0.06)

    def test_peak_column_vs_paper(self):
        table = table1_cpu_costs.run()
        paper = table1_cpu_costs.PAPER_TABLE1
        peak = table.normalized("Peak")
        for machine in table.machines:
            assert peak[machine] == pytest.approx(paper[machine]["Peak"], abs=0.05)

    def test_formatted_output(self):
        text = table1_cpu_costs.format_table()
        assert "Cascade Lake" in text and "EBA" in text


class TestFig4:
    def test_grid_complete(self):
        rows = fig4_apps.run()
        assert len(rows) == 7 * 4

    def test_tradeoffs_exist(self):
        summary = fig4_apps.tradeoff_summary()
        assert any(
            v["fastest"] != v["most_efficient"] for v in summary.values()
        )

    def test_format(self):
        assert "Cholesky" in fig4_apps.format_table()


class TestTable2:
    def test_rows_match_catalog(self):
        rows = table2_gpu_specs.run()
        assert len(rows) == 10
        a100x8 = next(r for r in rows if r.model == "A100" and r.count == 8)
        assert a100x8.carbon_rate_g_per_h == 131.0
        assert a100x8.gflops == 18000.0

    def test_scarif_regenerates_within_factor_two(self):
        for key, ratio in table2_gpu_specs.scarif_check().items():
            assert 0.5 <= ratio <= 2.0, key


class TestTable3:
    def test_perf_column_matches_paper_exactly(self):
        """Perf = duration x aggregate GFLOP/s reproduces the paper to
        the printed precision."""
        table = table3_gpu_costs.run()
        perf = table.normalized("Perf")
        for (model, count), expect in table3_gpu_costs.PAPER_TABLE3.items():
            assert perf[f"{model}x{count}"] == pytest.approx(
                expect["Perf"], abs=0.01
            )

    def test_eba_cba_shapes(self):
        table = table3_gpu_costs.run()
        eba = table.normalized("EBA")
        cba = table.normalized("CBA")
        # P100 x2 is the cheapest under both (the paper's headline).
        assert table.cheapest("EBA") == "P100x2"
        assert table.cheapest("CBA") == "P100x2"
        # A100 x1 is the most expensive under CBA.
        assert max(cba, key=cba.__getitem__) == "A100x1"
        # Eight V100s cost more than four under EBA (no speedup, 2x TDP).
        assert eba["V100x8"] > eba["V100x4"]

    def test_eba_within_rough_factor(self):
        table = table3_gpu_costs.run()
        eba = table.normalized("EBA")
        for (model, count), expect in table3_gpu_costs.PAPER_TABLE3.items():
            assert eba[f"{model}x{count}"] == pytest.approx(
                expect["EBA"], rel=0.25
            )


class TestTable4:
    def test_values_match_paper(self):
        paper = table4_embodied.PAPER_TABLE4
        for row in table4_embodied.run():
            expect = paper[row.machine]
            assert row.age_years == expect["age"]
            assert row.operational_mg == pytest.approx(expect["operational"], abs=0.15)
            assert row.accelerated_mg == pytest.approx(expect["accelerated"], abs=0.15)
            assert row.linear_mg == pytest.approx(expect["linear"], abs=0.25)

    def test_accelerated_cheaper_for_old_machines(self):
        rows = {r.machine: r for r in table4_embodied.run()}
        assert rows["Cascade Lake"].accelerated_mg < rows["Cascade Lake"].linear_mg
        assert rows["Desktop"].accelerated_mg < rows["Desktop"].linear_mg
        assert rows["Zen3"].accelerated_mg > rows["Zen3"].linear_mg


class TestTable5:
    def test_matches_paper(self):
        paper = table5_machines.PAPER_TABLE5
        for row in table5_machines.run():
            expect = paper[row.machine]
            assert row.year_deployed == expect["year"]
            assert row.cores == expect["cores"]
            assert row.idle_power_w == pytest.approx(expect["idle"])
            assert row.carbon_rate_g_per_h == pytest.approx(expect["rate"], rel=0.01)
            assert row.avg_intensity_g_per_kwh == pytest.approx(
                expect["intensity"], rel=0.01
            )
