"""Figs. 5-7 and Table 6 experiment modules at reduced scale.

One policy sweep per (scenario, method) is shared through the
experiments' own memoization; the scale is small so the whole module
runs in well under a minute.
"""

import pytest

from repro.experiments import (
    fig5_eba_simulation,
    fig6_cba_simulation,
    fig7_low_carbon,
    table6_policy_impact,
)

SCALE = 1_500
SEED = 2


class TestFig5:
    @pytest.fixture(scope="class")
    def works(self):
        return fig5_eba_simulation.work_with_fixed_allocation(SCALE, SEED)

    def test_greedy_completes_most_work(self, works):
        multi = {k: works[k] for k in ("Greedy", "Energy", "Mixed", "EFT", "Runtime")}
        assert max(multi, key=multi.__getitem__) in ("Greedy", "Energy")
        assert works["Greedy"] >= 0.98 * max(works.values())

    def test_energy_within_few_percent_of_greedy(self, works):
        assert works["Energy"] / works["Greedy"] > 0.93

    def test_greedy_beats_eft(self, works):
        assert works["Greedy"] / works["EFT"] > 1.05

    def test_single_machine_policies_trail(self, works):
        for fixed in ("Theta", "IC"):
            assert works[fixed] < works["Greedy"]
        assert works["Theta"] == min(works.values())

    def test_jobs_over_time_monotone(self):
        series = fig5_eba_simulation.jobs_over_time(SCALE, SEED, n_points=20)
        for hours, counts in series.values():
            assert list(counts) == sorted(counts)
            assert len(hours) == 20

    def test_machine_distribution_shapes(self):
        dist = fig5_eba_simulation.machine_distribution(SCALE, SEED)
        greedy = dist["Greedy"]
        total = sum(greedy.values())
        assert greedy["Theta"] / total < 0.15  # paper: none
        runtime = dist["Runtime"]
        assert max(runtime, key=runtime.__getitem__) == "IC"

    def test_report_renders(self):
        assert "Fig. 5a" in fig5_eba_simulation.format_report(SCALE, SEED)


class TestTable6:
    @pytest.fixture(scope="class")
    def rows(self):
        return {r.policy: r for r in table6_policy_impact.run(SCALE, SEED)}

    def test_energy_policy_uses_least(self, rows):
        least = min(rows.values(), key=lambda r: r.energy_mwh)
        assert least.policy in ("Energy", "Greedy - EBA")

    def test_eft_and_runtime_use_more_energy(self, rows):
        # The paper reports +51%/+56% at full scale; at this reduced
        # scale queue contention is weaker, so the gap compresses —
        # assert a clear (>=5%/>=3%) ordering rather than a magnitude.
        assert rows["EFT"].energy_mwh > rows["Energy"].energy_mwh * 1.05
        assert rows["Runtime"].energy_mwh > rows["Energy"].energy_mwh * 1.03

    def test_greedy_cba_lowest_attributed(self, rows):
        """Minimizing CBA cost minimizes attributed carbon (§5.5)."""
        assert rows["Greedy - CBA"].attributed_kg == min(
            r.attributed_kg for r in rows.values()
        )

    def test_attributed_exceeds_operational(self, rows):
        for r in rows.values():
            assert r.attributed_kg > r.operational_kg

    def test_energy_policy_largest_embodied_share(self, rows):
        """Energy favours the newest hardware, so its embodied share of
        attributed carbon is the largest (§5.5)."""
        def embodied_share(r):
            return (r.attributed_kg - r.operational_kg) / r.attributed_kg

        assert embodied_share(rows["Energy"]) >= embodied_share(rows["Runtime"])
        assert embodied_share(rows["Energy"]) >= embodied_share(rows["EFT"])


class TestFig6:
    def test_cba_shifts_energy_down_runtime_up(self):
        shifts = fig6_cba_simulation.eba_vs_cba_shift(SCALE, SEED)
        # Paper: Energy completes less under CBA, Runtime more.
        assert shifts["Energy"] < shifts["Greedy"] + 0.02
        assert shifts["Runtime"] > shifts["Energy"] - 0.02
        assert shifts["FASTER"] < 1.0  # FASTER-only pays its embodied rate
        assert shifts["IC"] > 1.0

    def test_greedy_cba_moves_toward_ic(self):
        from repro.experiments._simulation import policy_sweep

        eba = policy_sweep("baseline", "EBA", SCALE, SEED)["Greedy"]
        cba = policy_sweep("baseline", "CBA", SCALE, SEED)["Greedy"]
        ic_share_eba = eba.machine_distribution()["IC"] / eba.n_jobs
        ic_share_cba = cba.machine_distribution()["IC"] / cba.n_jobs
        assert ic_share_cba > ic_share_eba


class TestFig7:
    def test_greedy_dominates_in_low_carbon_world(self):
        works = fig7_low_carbon.work_with_fixed_allocation(SCALE, SEED)
        for other in ("Energy", "Mixed", "EFT", "Runtime"):
            assert works["Greedy"] > works[other] * 1.1

    def test_day_profiles_have_right_regions(self):
        profiles = fig7_low_carbon.day_intensity(seed=SEED)
        regions = " ".join(profiles)
        for region in ("AU-SA", "CA-ON", "NO-NO2", "DK-BHM"):
            assert region in regions

    def test_cheapest_endpoint_shifts_through_day(self):
        """The Fig. 7c crossover: Theta dominates some hours, IC others."""
        shares = fig7_low_carbon.cheapest_endpoint_by_hour(SCALE, SEED)
        theta_max = max(s["Theta"] for s in shares.values())
        ic_max = max(s["IC"] for s in shares.values())
        assert theta_max > 0.5
        assert ic_max > 0.5
        # And they peak at different hours.
        theta_peak = max(shares, key=lambda h: shares[h]["Theta"])
        ic_peak = max(shares, key=lambda h: shares[h]["IC"])
        assert theta_peak != ic_peak

    def test_shares_sum_to_one(self):
        shares = fig7_low_carbon.cheapest_endpoint_by_hour(SCALE, SEED)
        for hour, row in shares.items():
            assert sum(row.values()) == pytest.approx(1.0)
