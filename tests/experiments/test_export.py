"""CSV exporters for every artifact."""

import csv

import pytest

from repro.experiments import export


class TestIndividualExports:
    def test_table1_columns(self, tmp_path):
        path = export.export_table1(tmp_path / "t1.csv")
        with path.open() as fh:
            rows = list(csv.DictReader(fh))
        assert {r["machine"] for r in rows} == {
            "Desktop", "Cascade Lake", "Ice Lake", "Zen3",
        }
        desktop = next(r for r in rows if r["machine"] == "Desktop")
        assert float(desktop["eba"]) == pytest.approx(1.0)

    def test_fig4_has_28_rows(self, tmp_path):
        path = export.export_fig4(tmp_path / "f4.csv")
        with path.open() as fh:
            assert len(list(csv.DictReader(fh))) == 28

    def test_fig10_probabilities_valid(self, tmp_path):
        path = export.export_fig10(tmp_path / "f10.csv", n_users=30, seed=3)
        with path.open() as fh:
            rows = list(csv.DictReader(fh))
        assert rows
        for row in rows:
            assert 0.0 <= float(row["run_probability"]) <= 1.0

    def test_creates_parent_directories(self, tmp_path):
        path = export.export_fig1(tmp_path / "deep" / "nested" / "f1.csv")
        assert path.exists()


class TestExportAll:
    def test_every_artifact_written(self, tmp_path):
        written = export.export_all(tmp_path, scale=300, seed=5)
        names = {p.stem for p in written}
        assert names == {
            "fig1", "fig2", "fig4", "fig5", "fig6", "fig7", "fig9", "fig10",
            "table1", "table2", "table3", "table4", "table5", "table6",
        }
        for path in written:
            assert path.exists() and path.stat().st_size > 0

    def test_csvs_parse(self, tmp_path):
        for path in export.export_all(tmp_path, scale=300, seed=5):
            with path.open() as fh:
                rows = list(csv.reader(fh))
            assert len(rows) >= 2  # header + data
            width = len(rows[0])
            assert all(len(r) == width for r in rows)
