"""Figs. 1, 2, 9, 10 experiment modules."""

import numpy as np
import pytest

from repro.experiments import (
    fig1_survey,
    fig2_survey,
    fig9_user_study,
    fig10_job_probability,
)
from repro.survey.schema import FIG1_COUNTS


class TestFig1:
    def test_counts_match_published(self):
        assert fig1_survey.run() == FIG1_COUNTS

    def test_format(self):
        text = fig1_survey.format_table()
        assert "Green500" in text and "PUE" in text


class TestFig2:
    def test_energy_last(self):
        assert fig2_survey.ranking()[-1] == "Energy"

    def test_format_shows_percentages(self):
        assert "%" in fig2_survey.format_table()


class TestFig9:
    @pytest.fixture(scope="class")
    def data(self):
        return fig9_user_study.run(n_users=60, seed=11)

    def test_v3_energy_reduction_magnitude(self, data):
        """Paper: V3 used ~40% less energy than V1 (1928 vs 3262 kWh).
        Assert a 25-55% reduction."""
        e = data["energy"]
        ratio = np.mean(e[3]) / np.mean(e[1])
        assert 0.45 < ratio < 0.75

    def test_v3_fewer_jobs(self, data):
        j = data["jobs"]
        assert np.mean(j[3]) < np.mean(j[1])

    def test_significance_pattern(self, data):
        t = data["ttests"]
        assert t["v3_vs_v1"] < 0.001 and t["v3_vs_v2"] < 0.001

    def test_format(self):
        text = fig9_user_study.format_report(n_users=60, seed=11)
        assert "V3" in text and "t-tests" in text


class TestFig10:
    def test_no_significant_correlations(self):
        for v, (r, p) in fig10_job_probability.correlations(
            n_users=60, seed=11
        ).items():
            assert p > 0.01 or abs(r) < 0.5

    def test_points_are_probabilities(self):
        points = fig10_job_probability.run(n_users=60, seed=11)
        for pts in points.values():
            assert all(0.0 <= p <= 1.0 for _, p in pts)
            assert all(e > 0 for e, _ in pts)
