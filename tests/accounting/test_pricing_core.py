"""The columnar pricing core: quote tables, outcome tables, and the
deferred-settlement ledgers must be bit-identical to their per-record
reference paths."""

import pickle

import numpy as np
import pytest

from repro.accounting.base import MachinePricing, UsageRecord
from repro.accounting.methods import CarbonBasedAccounting, all_methods
from repro.accounting.pricing import (
    ELIG_RANK_INELIGIBLE,
    OutcomeTable,
    PricingKernel,
    QuoteTable,
    QuoteTableCache,
    QuoteTableKey,
    SegmentLedger,
    SettlementQueue,
)
from repro.carbon.intensity import CarbonIntensityTrace
from repro.sim.job import Job, JobOutcome
from repro.units import operational_carbon_g


def make_pricings(rng, n_machines=3):
    pricings = {}
    for mi in range(n_machines):
        name = f"M{mi}"
        trace = CarbonIntensityTrace(
            f"r{mi}", rng.uniform(20.0, 900.0, size=48)
        )
        pricings[name] = MachinePricing(
            name=name,
            total_cores=int(rng.integers(8, 256)),
            tdp_watts=float(rng.uniform(100, 900)),
            peak_rating=float(rng.uniform(1.0, 4.0)),
            embodied_carbon_g=float(rng.uniform(1e5, 5e6)),
            age_years=int(rng.integers(0, 6)),
            intensity=trace,
        )
    return pricings


def make_jobs(rng, pricings, n=60):
    names = list(pricings)
    jobs = []
    for i in range(n):
        eligible = [m for m in names if rng.random() < 0.8] or [names[0]]
        jobs.append(
            Job(
                job_id=i,
                user=int(rng.integers(0, 10)),
                cores=int(rng.integers(1, 64)),
                submit_s=float(rng.uniform(0, 3e5)),
                runtime_s={m: float(rng.uniform(60, 3e4)) for m in eligible},
                energy_j={m: float(rng.uniform(1e3, 1e8)) for m in eligible},
            )
        )
    return jobs


class TestPricingKernelQuotes:
    @pytest.mark.parametrize("method_index", range(5))
    def test_static_views_match_scalar_charges(self, method_index):
        """Every quoted (job, machine) cost equals a scalar charge()."""
        rng = np.random.default_rng(21 + method_index)
        method = all_methods()[method_index]
        pricings = make_pricings(rng)
        jobs = make_jobs(rng, pricings)
        kernel = PricingKernel(jobs, pricings, method)
        for job in jobs:
            views = kernel.static_views[kernel.row_of[job.job_id]]
            assert [v[0] for v in views] == job.eligible_machines
            for name, runtime, energy, cost in views:
                record = UsageRecord(
                    machine=name,
                    duration_s=runtime,
                    energy_j=energy,
                    cores=job.cores,
                    start_time_s=job.submit_s,
                )
                assert cost == method.charge(record, pricings[name])

    def test_price_outcomes_matches_scalar(self):
        rng = np.random.default_rng(3)
        method = CarbonBasedAccounting()
        carbon = CarbonBasedAccounting()
        pricings = make_pricings(rng)
        jobs = make_jobs(rng, pricings)
        kernel = PricingKernel(jobs, pricings, method)
        finished = []
        for job in jobs:
            machine = job.eligible_machines[0]
            start = job.submit_s + float(rng.uniform(0, 1e4))
            finished.append((job, machine, start, start + job.runtime_s[machine]))
        table = kernel.price_outcomes(finished)
        assert len(table) == len(finished)
        for row, (job, machine, start, end) in zip(table.rows(), finished):
            record = UsageRecord(
                machine=machine,
                duration_s=job.runtime_s[machine],
                energy_j=job.energy_j[machine],
                cores=job.cores,
                start_time_s=start,
            )
            pricing = pricings[machine]
            assert row.job_id == job.job_id
            assert row.machine == machine
            assert row.cost == method.charge(record, pricing)
            operational = operational_carbon_g(
                job.energy_j[machine], pricing.intensity.at(start)
            )
            assert row.operational_carbon_g == operational
            assert row.attributed_carbon_g == operational + carbon.embodied_charge(
                record, pricing
            )


class TestQuoteTableSharing:
    """The workload-determined tables split out of the kernel: prebuilt
    adoption must be exact, incompatible adoption must fail loudly."""

    @pytest.fixture()
    def setup(self):
        rng = np.random.default_rng(17)
        pricings = make_pricings(rng)
        jobs = make_jobs(rng, pricings)
        return jobs, pricings

    @pytest.mark.parametrize("method", all_methods(), ids=lambda m: m.name)
    def test_prebuilt_table_is_bit_identical(self, setup, method):
        jobs, pricings = setup
        fresh = PricingKernel(jobs, pricings, method)
        table = QuoteTable.build(jobs, pricings, method)
        adopted = PricingKernel(jobs, pricings, method, table=table)
        assert adopted.table is table
        assert adopted.static_views == fresh.static_views
        for name in pricings:
            assert np.array_equal(
                adopted.runtime[name], fresh.runtime[name], equal_nan=True
            )
            assert np.array_equal(
                adopted.energy[name], fresh.energy[name], equal_nan=True
            )

    def test_wrong_method_rejected(self, setup):
        jobs, pricings = setup
        methods = all_methods()
        table = QuoteTable.build(jobs, pricings, methods[0])
        with pytest.raises(ValueError, match="quote table does not match"):
            PricingKernel(jobs, pricings, methods[1], table=table)

    def test_wrong_workload_rejected(self, setup):
        jobs, pricings = setup
        method = all_methods()[0]
        table = QuoteTable.build(jobs, pricings, method)
        with pytest.raises(ValueError, match="quote table does not match"):
            PricingKernel(jobs[:-1], pricings, method, table=table)

    def test_same_names_different_pricing_values_rejected(self, setup):
        """Scenarios share machine names; a table built against another
        scenario's traces/rates must not be adoptable."""
        jobs, pricings = setup
        method = all_methods()[0]
        other = make_pricings(np.random.default_rng(99))  # same M0..M2 names
        assert list(other) == list(pricings)
        table = QuoteTable.build(jobs, other, method)
        with pytest.raises(ValueError, match="quote table does not match"):
            PricingKernel(jobs, pricings, method, table=table)

    def test_wrong_machine_set_rejected(self, setup):
        jobs, pricings = setup
        method = all_methods()[0]
        table = QuoteTable.build(jobs, pricings, method)
        fewer = dict(list(pricings.items())[:-1])
        with pytest.raises(ValueError, match="quote table does not match"):
            PricingKernel(jobs, fewer, method, table=table)

    def test_cache_get_or_build_builds_once(self, setup):
        jobs, pricings = setup
        method = all_methods()[0]
        cache = QuoteTableCache()
        key = QuoteTableKey(
            workload=("wl", 60, 0),
            method=method.name,
            machines=tuple(pricings),
        )
        builds = []

        def builder():
            builds.append(1)
            return QuoteTable.build(jobs, pricings, method)

        first = cache.get_or_build(key, builder)
        second = cache.get_or_build(key, builder)
        assert first is second
        assert len(builds) == 1
        assert key in cache and len(cache) == 1
        assert cache.get(key) is first
        cache.clear()
        assert len(cache) == 0 and cache.get(key) is None

    def test_keys_are_hashable_and_value_equal(self):
        a = QuoteTableKey(("wl", 1, 2), "CBA", ("M0", "M1"))
        b = QuoteTableKey(("wl", 1, 2), "CBA", ("M0", "M1"))
        c = QuoteTableKey(("wl", 1, 3), "CBA", ("M0", "M1"))
        assert a == b and hash(a) == hash(b)
        assert a != c
        assert len({a, b, c}) == 2

    def test_elig_rank_replays_eligibility_order(self, setup):
        """``elig_rank`` must be each machine's position in the job's
        own eligibility walk — what the vectorized migration decision
        uses to replay the scalar loop's tie-breaking."""
        jobs, pricings = setup
        table = QuoteTable.build(jobs, pricings, all_methods()[0])
        assert table.elig_rank.shape == (len(jobs), len(pricings))
        name_idx = {name: mi for mi, name in enumerate(pricings)}
        for job in jobs:
            row = table.elig_rank[table.row_of[job.job_id]]
            for rank, name in enumerate(job.eligible_machines):
                assert row[name_idx[name]] == rank
            for name in set(pricings) - set(job.eligible_machines):
                assert row[name_idx[name]] == ELIG_RANK_INELIGIBLE


class TestQuoteTableCacheLRU:
    """The capacity bound: LRU eviction, counters, re-warm exactness."""

    @staticmethod
    def keys(n):
        return [
            QuoteTableKey(("wl", i, 0), "EBA", ("M0",)) for i in range(n)
        ]

    def test_capacity_bound_honored(self):
        cache = QuoteTableCache(capacity=2)
        k = self.keys(3)
        for key in k:
            cache.store(key, QuoteTable())
        assert len(cache) == 2
        assert k[0] not in cache and k[1] in cache and k[2] in cache
        assert cache.stats().evictions == 1

    def test_eviction_order_is_least_recently_used(self):
        cache = QuoteTableCache(capacity=2)
        k = self.keys(3)
        a, b = QuoteTable(), QuoteTable()
        cache.store(k[0], a)
        cache.store(k[1], b)
        assert cache.get(k[0]) is a  # refresh: k[1] is now the LRU
        cache.store(k[2], QuoteTable())
        assert k[0] in cache and k[1] not in cache

    def test_counters_and_stats(self):
        cache = QuoteTableCache(capacity=2)
        k = self.keys(3)
        built = []

        def builder():
            table = QuoteTable()
            built.append(table)
            return table

        assert cache.get(k[0]) is None  # miss
        cache.get_or_build(k[0], builder)  # miss + build
        cache.get_or_build(k[0], builder)  # hit
        cache.get_or_build(k[1], builder)  # miss + build
        cache.get_or_build(k[2], builder)  # miss + build -> evicts k[0]
        stats = cache.stats()
        assert (stats.hits, stats.misses, stats.evictions) == (1, 4, 1)
        assert stats.size == 2 and stats.capacity == 2
        assert len(built) == 3
        cache.clear()
        stats = cache.stats()
        assert (stats.hits, stats.misses, stats.evictions) == (0, 0, 0)
        assert stats.size == 0

    def test_resize_evicts_down_to_new_bound(self):
        cache = QuoteTableCache()
        k = self.keys(4)
        for key in k:
            cache.store(key, QuoteTable())
        assert len(cache) == 4 and cache.stats().capacity is None
        cache.resize(2)
        assert len(cache) == 2
        assert k[0] not in cache and k[1] not in cache
        assert k[2] in cache and k[3] in cache
        assert cache.stats().evictions == 2

    @pytest.mark.parametrize("capacity", [0, -3])
    def test_invalid_capacity_rejected(self, capacity):
        with pytest.raises(ValueError, match="capacity"):
            QuoteTableCache(capacity=capacity)
        with pytest.raises(ValueError, match="capacity"):
            QuoteTableCache().resize(capacity)

    def test_rewarm_after_eviction_is_bit_identical(self):
        """An evicted table rebuilds exactly: a quote table is a pure
        function of its key, so eviction can only ever cost time."""
        rng = np.random.default_rng(31)
        pricings = make_pricings(rng)
        jobs = make_jobs(rng, pricings)
        method = all_methods()[0]
        key = QuoteTableKey(("wl", 60, 0), method.name, tuple(pricings))
        other = QuoteTableKey(("other", 1, 0), method.name, tuple(pricings))
        cache = QuoteTableCache(capacity=1)
        builder = lambda: QuoteTable.build(jobs, pricings, method)  # noqa: E731
        first = cache.get_or_build(key, builder)
        cache.store(other, QuoteTable())  # evicts `key`
        assert key not in cache
        rebuilt = cache.get_or_build(key, builder)
        assert rebuilt is not first
        assert rebuilt.static_views == first.static_views
        assert np.array_equal(rebuilt.elig_rank, first.elig_rank)
        for name in pricings:
            assert np.array_equal(
                rebuilt.runtime[name], first.runtime[name], equal_nan=True
            )
            assert np.array_equal(
                rebuilt.energy[name], first.energy[name], equal_nan=True
            )


class TestQuoteTableShm:
    """The ``to_shm``/``attach`` transport behind spawn-context sweeps:
    attached tables must be value-identical to the packed original, and
    the cache must release attached mappings when it drops them."""

    @pytest.fixture()
    def built(self):
        rng = np.random.default_rng(41)
        pricings = make_pricings(rng)
        jobs = make_jobs(rng, pricings)
        table = QuoteTable.build(jobs, pricings, all_methods()[0])
        return jobs, pricings, table

    def test_round_trip_is_value_identical(self, built):
        jobs, pricings, table = built
        descriptor = table.to_shm()
        try:
            clone = QuoteTable.attach(descriptor)
            try:
                assert clone.from_shm and not table.from_shm
                assert clone.method_name == table.method_name
                assert clone.machine_names == table.machine_names
                assert clone.pricing_fingerprint == table.pricing_fingerprint
                assert clone.row_of == table.row_of
                assert clone.static_views == table.static_views
                assert np.array_equal(clone.elig_rank, table.elig_rank)
                assert np.array_equal(clone.job_id, table.job_id)
                for name in pricings:
                    for col in ("runtime", "energy", "cost"):
                        assert np.array_equal(
                            getattr(clone, col)[name],
                            getattr(table, col)[name],
                            equal_nan=True,
                        )
            finally:
                clone.release()
        finally:
            descriptor.unlink()

    def test_descriptor_pickles_and_views_are_read_only(self, built):
        _, pricings, table = built
        descriptor = pickle.loads(pickle.dumps(table.to_shm()))
        try:
            clone = QuoteTable.attach(descriptor)
            try:
                name = next(iter(pricings))
                with pytest.raises(ValueError):
                    clone.runtime[name][0] = 1.0
                with pytest.raises(ValueError):
                    clone.elig_rank[0, 0] = 0
            finally:
                clone.release()
        finally:
            descriptor.unlink()

    def test_attached_table_is_adoptable_by_a_kernel(self, built):
        """The whole point of the transport: a kernel over an attached
        table quotes exactly what a freshly priced kernel quotes."""
        jobs, pricings, table = built
        method = all_methods()[0]
        descriptor = table.to_shm()
        try:
            clone = QuoteTable.attach(descriptor)
            try:
                adopted = PricingKernel(jobs, pricings, method, table=clone)
                fresh = PricingKernel(jobs, pricings, method)
                assert adopted.static_views == fresh.static_views
                for name in pricings:
                    assert np.array_equal(
                        adopted.runtime[name],
                        fresh.runtime[name],
                        equal_nan=True,
                    )
            finally:
                clone.release()
        finally:
            descriptor.unlink()

    def test_cache_eviction_releases_attached_mapping(self, built):
        _, pricings, table = built
        descriptor = table.to_shm()
        try:
            clone = QuoteTable.attach(descriptor)
            cache = QuoteTableCache(capacity=1)
            key = QuoteTableKey(("wl", 60, 0), table.method_name, tuple(pricings))
            cache.store(key, clone)
            cache.shm_attached += 1
            assert cache.stats().shm_attached == 1
            cache.store(
                QuoteTableKey(("other", 1, 0), "EBA", ("M0",)), QuoteTable()
            )  # evicts the attached table
            assert key not in cache
            assert not clone.from_shm  # mapping handed back, not leaked
            assert clone.static_views == []
            cache.clear()
            assert cache.stats().shm_attached == 0
        finally:
            descriptor.unlink()

    def test_release_is_a_no_op_for_owned_tables(self, built):
        _, _, table = built
        views_before = table.static_views
        table.release()
        assert table.static_views is views_before

    def test_unlink_is_idempotent(self, built):
        _, _, table = built
        descriptor = table.to_shm()
        descriptor.unlink()
        descriptor.unlink()  # the block is gone; second call is a no-op


class TestOutcomeTable:
    def make_rows(self, rng, n=25):
        machines = ["A", "B", "C"]
        return machines, [
            JobOutcome(
                job_id=i,
                user=int(rng.integers(0, 5)),
                machine=machines[int(rng.integers(0, 3))],
                cores=int(rng.integers(1, 64)),
                submit_s=float(rng.uniform(0, 1e5)),
                start_s=float(rng.uniform(1e5, 2e5)),
                end_s=float(rng.uniform(2e5, 3e5)),
                energy_j=float(rng.uniform(1, 1e8)),
                cost=float(rng.uniform(0, 1e4)),
                work_core_hours=float(rng.uniform(0, 1e3)),
                operational_carbon_g=float(rng.uniform(0, 1e3)),
                attributed_carbon_g=float(rng.uniform(0, 2e3)),
            )
            for i in range(n)
        ]

    def test_from_rows_round_trip(self):
        machines, rows = self.make_rows(np.random.default_rng(1))
        table = OutcomeTable.from_rows(rows, machines)
        assert len(table) == len(rows)
        assert table.rows() == rows

    def test_lazy_rows_materialize_once(self):
        machines, rows = self.make_rows(np.random.default_rng(2))
        table = OutcomeTable.from_rows(rows, machines)
        table._rows_cache = None  # drop the construction cache
        first = table.rows()
        assert first == rows
        assert table.rows() is first

    def test_machines_seeded_plus_extras(self):
        machines, rows = self.make_rows(np.random.default_rng(3))
        table = OutcomeTable.from_rows(rows, ["Z", *machines])
        assert table.machines[0] == "Z"
        assert set(table.machines) == {"Z", "A", "B", "C"}

    def test_pickle_drops_row_cache_and_preserves_columns(self):
        machines, rows = self.make_rows(np.random.default_rng(4))
        table = OutcomeTable.from_rows(rows, machines)
        clone = pickle.loads(pickle.dumps(table))
        assert clone._rows_cache is None
        assert clone.rows() == rows
        assert np.array_equal(clone.cost, table.cost)

    def test_empty(self):
        table = OutcomeTable.empty(["A"])
        assert len(table) == 0
        assert table.rows() == []

    def test_rejects_ragged_columns(self):
        machines, rows = self.make_rows(np.random.default_rng(5))
        table = OutcomeTable.from_rows(rows, machines)
        state = table.__getstate__()
        state["cost"] = state["cost"][:-1]
        with pytest.raises(ValueError):
            OutcomeTable(
                machines, **{k: v for k, v in state.items() if k != "machines"}
            )


class TestSegmentLedger:
    @pytest.mark.parametrize("method_index", range(5))
    def test_settle_bit_identical_to_per_segment_charges(self, method_index):
        rng = np.random.default_rng(31 + method_index)
        method = all_methods()[method_index]
        carbon = CarbonBasedAccounting()
        pricings = make_pricings(rng)
        names = list(pricings)
        ledger = SegmentLedger(method, pricings)
        records = []
        for i in range(300):
            name = names[int(rng.integers(0, len(names)))]
            record = UsageRecord(
                machine=name,
                duration_s=float(rng.uniform(1, 6e4)),
                energy_j=float(rng.uniform(1, 1e8)),
                cores=int(rng.integers(1, 64)),
                start_time_s=float(rng.uniform(0, 3e5)),
            )
            records.append(record)
            ledger.add(
                name,
                record.start_time_s,
                record.duration_s,
                record.energy_j,
                record.cores,
            )
        cost, operational, attributed = ledger.settle()
        for i, record in enumerate(records):
            pricing = pricings[record.machine]
            assert cost[i] == method.charge(record, pricing)
            expected_op = operational_carbon_g(
                record.energy_j, pricing.intensity.at(record.start_time_s)
            )
            assert operational[i] == expected_op
            assert attributed[i] == expected_op + carbon.embodied_charge(
                record, pricing
            )


class TestSettlementQueue:
    def make_records(self, rng, pricings, n=200):
        names = list(pricings)
        return [
            UsageRecord(
                machine=names[int(rng.integers(0, len(names)))],
                duration_s=float(rng.uniform(0.1, 6e4)),
                energy_j=float(rng.uniform(0.1, 1e8)),
                cores=int(rng.integers(1, 64)),
                provisioned_cores=(
                    int(rng.integers(1, 64)) if rng.random() < 0.3 else None
                ),
                start_time_s=float(rng.uniform(0, 3e5)),
            )
            for _ in range(n)
        ]

    @pytest.mark.parametrize("method_index", range(5))
    def test_settle_bit_identical_to_immediate_charges(self, method_index):
        rng = np.random.default_rng(41 + method_index)
        method = all_methods()[method_index]
        pricings = make_pricings(rng)
        records = self.make_records(rng, pricings)
        queue = SettlementQueue(method, pricings)
        for record in records:
            queue.add(record)
        charges = queue.settle()
        assert charges == [
            method.charge(r, pricings[r.machine]) for r in records
        ]
        assert len(queue) == 0 and queue.pending_bound == 0.0

    @pytest.mark.parametrize("method_index", range(5))
    def test_pending_bound_is_sound(self, method_index):
        """The queue's bound must never undercount the true pending debt
        — that is what keeps deferred admission control exact."""
        rng = np.random.default_rng(51 + method_index)
        method = all_methods()[method_index]
        pricings = make_pricings(rng)
        records = self.make_records(rng, pricings)
        queue = SettlementQueue(method, pricings)
        actual = 0.0
        for record in records:
            queue.add(record)
            actual += method.charge(record, pricings[record.machine])
            assert queue.pending_bound >= actual - 1e-9 * abs(actual)

    def test_charge_upper_bound_dominates_charge(self):
        rng = np.random.default_rng(61)
        pricings = make_pricings(rng)
        for method in all_methods():
            for record in self.make_records(rng, pricings, n=50):
                pricing = pricings[record.machine]
                assert method.charge_upper_bound(record, pricing) >= method.charge(
                    record, pricing
                )

    def test_rejects_unknown_machine(self):
        rng = np.random.default_rng(71)
        pricings = make_pricings(rng)
        queue = SettlementQueue(all_methods()[0], pricings)
        with pytest.raises(KeyError):
            queue.add(UsageRecord(machine="nope", duration_s=1.0, energy_j=1.0))

    def test_empty_settle(self):
        rng = np.random.default_rng(72)
        queue = SettlementQueue(all_methods()[0], make_pricings(rng))
        assert queue.settle() == []
