"""Exchange rates between allocation currencies."""

import pytest

from repro.accounting.base import pricing_for_node
from repro.accounting.exchange import (
    ExchangeRate,
    exchange_rate,
    reference_basket,
    service_unit_rates,
)
from repro.accounting.methods import (
    CarbonBasedAccounting,
    EnergyAccounting,
    EnergyBasedAccounting,
    RuntimeAccounting,
)
from repro.hardware.catalog import (
    CPU_EXPERIMENT_NODES,
    CPU_EXPERIMENT_YEAR,
    TABLE1_CARBON_INTENSITY,
)


@pytest.fixture(scope="module")
def pricings():
    return {
        node.name: pricing_for_node(
            node, CPU_EXPERIMENT_YEAR, TABLE1_CARBON_INTENSITY[node.name]
        )
        for node in CPU_EXPERIMENT_NODES
    }


class TestBasket:
    def test_basket_covers_all_apps(self):
        assert len(reference_basket("Zen3")) == 7

    def test_unknown_machine_empty(self):
        assert reference_basket("Summit") == []


class TestExchangeRate:
    def test_round_trip(self, pricings):
        forward = exchange_rate(
            RuntimeAccounting(), EnergyBasedAccounting(), pricings["Zen3"]
        )
        back = forward.inverse()
        assert back.convert(forward.convert(100.0)) == pytest.approx(100.0)
        assert back.source == "EBA" and back.target == "Runtime"

    def test_identity_rate_is_one(self, pricings):
        rate = exchange_rate(
            EnergyBasedAccounting(), EnergyBasedAccounting(), pricings["Desktop"]
        )
        assert rate.rate == pytest.approx(1.0)

    def test_basket_purchasing_power_preserved(self, pricings):
        """Converting a balance keeps the basket affordable count fixed."""
        source = RuntimeAccounting()
        target = CarbonBasedAccounting()
        pricing = pricings["Ice Lake"]
        basket = reference_basket("Ice Lake")
        rate = exchange_rate(source, target, pricing)
        source_total = sum(source.charge(r, pricing) for r in basket)
        target_total = sum(target.charge(r, pricing) for r in basket)
        assert rate.convert(source_total) == pytest.approx(target_total)

    def test_rejects_negative_conversion(self):
        with pytest.raises(ValueError):
            ExchangeRate("a", "b", 2.0).convert(-1.0)

    def test_rejects_empty_basket(self, pricings):
        with pytest.raises(ValueError, match="basket"):
            exchange_rate(
                RuntimeAccounting(), EnergyAccounting(), pricings["Zen3"], basket=[]
            )


class TestServiceUnitRates:
    def test_reference_machine_is_unity(self, pricings):
        rates = service_unit_rates(EnergyBasedAccounting(), pricings, "Desktop")
        assert rates["Desktop"] == pytest.approx(1.0)

    def test_eba_discounts_efficient_machines(self, pricings):
        """Under EBA the power-hungry Cascade Lake costs more service
        units than the reference; the efficient Zen3 costs fewer."""
        rates = service_unit_rates(EnergyBasedAccounting(), pricings, "Desktop")
        assert rates["Cascade Lake"] > 1.0
        assert rates["Zen3"] < 1.0

    def test_runtime_rates_ignore_energy(self, pricings):
        rates = service_unit_rates(RuntimeAccounting(), pricings, "Desktop")
        # Runtime charges core-time only, so rates reflect runtimes.
        assert all(0.5 < r < 2.0 for r in rates.values())

    def test_unknown_reference(self, pricings):
        with pytest.raises(KeyError):
            service_unit_rates(EnergyBasedAccounting(), pricings, "Summit")
