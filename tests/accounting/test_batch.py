"""The vectorized batch-pricing API: ``charge_many`` must be
bit-identical to the looped scalar ``charge`` for every method."""

import numpy as np
import pytest

from repro.accounting.base import (
    AccountingMethod,
    MachinePricing,
    UsageBatch,
    UsageRecord,
)
from repro.accounting.methods import CarbonBasedAccounting, all_methods
from repro.carbon.intensity import CarbonIntensityTrace


def random_records(rng, n=200, machine="M", with_provisioned=True):
    records = []
    for _ in range(n):
        provisioned = None
        if with_provisioned and rng.random() < 0.3:
            provisioned = int(rng.integers(1, 256))
        records.append(
            UsageRecord(
                machine=machine,
                duration_s=float(rng.uniform(0.0, 2e5)),
                energy_j=float(rng.uniform(0.0, 1e9)),
                cores=int(rng.integers(1, 256)),
                provisioned_cores=provisioned,
                start_time_s=float(rng.uniform(0.0, 3e6)),
            )
        )
    return records


def machine_variants(rng):
    trace = CarbonIntensityTrace("t", rng.uniform(20.0, 900.0, size=72))
    shared = dict(tdp_watts=750.0, peak_rating=2.3, intensity=trace)
    return [
        MachinePricing(
            name="M", total_cores=128, embodied_carbon_g=2.5e6,
            age_years=2, **shared,
        ),
        MachinePricing(
            name="M", total_cores=8, embodied_carbon_g=9.9e5,
            age_years=0, carbon_rate_override_g_per_h=123.4, **shared,
        ),
        MachinePricing(
            name="M", total_cores=4, embodied_carbon_g=5e5,
            age_years=5, whole_unit=True, **shared,
        ),
    ]


class TestChargeManyEquivalence:
    @pytest.mark.parametrize("method_index", range(5))
    def test_bit_identical_to_loop(self, method_index):
        rng = np.random.default_rng(41 + method_index)
        method = all_methods()[method_index]
        records = random_records(rng)
        batch = UsageBatch.from_records(records)
        for machine in machine_variants(rng):
            looped = np.array([method.charge(r, machine) for r in records])
            vectorized = method.charge_many(batch, machine)
            assert np.array_equal(looped, vectorized)

    def test_cba_average_intensity_variant(self):
        rng = np.random.default_rng(99)
        method = CarbonBasedAccounting(average_intensity_over_run=True)
        records = random_records(rng)
        batch = UsageBatch.from_records(records)
        for machine in machine_variants(rng):
            looped = np.array([method.charge(r, machine) for r in records])
            assert np.array_equal(looped, method.charge_many(batch, machine))

    def test_cba_embodied_charge_many(self):
        rng = np.random.default_rng(7)
        method = CarbonBasedAccounting()
        records = random_records(rng)
        batch = UsageBatch.from_records(records)
        for machine in machine_variants(rng):
            looped = np.array(
                [method.embodied_charge(r, machine) for r in records]
            )
            assert np.array_equal(
                looped, method.embodied_charge_many(batch, machine)
            )

    def test_default_fallback_loops_charge(self):
        class DoublingEnergy(AccountingMethod):
            name = "x2"

            def charge(self, record, machine):
                return 2.0 * record.energy_j

        rng = np.random.default_rng(3)
        records = random_records(rng, n=17)
        batch = UsageBatch.from_records(records)
        machine = machine_variants(rng)[0]
        expected = np.array([2.0 * r.energy_j for r in records])
        assert np.array_equal(
            DoublingEnergy().charge_many(batch, machine), expected
        )


class TestUsageBatch:
    def test_from_records_round_trip(self):
        rng = np.random.default_rng(1)
        # provisioned_cores=None cannot round-trip element-wise (the
        # batch stores the resolved occupancy), so build without it.
        records = random_records(rng, n=25, with_provisioned=False)
        batch = UsageBatch.from_records(records)
        assert len(batch) == 25
        assert [r for r in batch.records()] == records

    def test_from_records_resolves_occupancy(self):
        rng = np.random.default_rng(2)
        records = random_records(rng, n=40, with_provisioned=True)
        batch = UsageBatch.from_records(records)
        assert batch.occupancy.tolist() == [r.occupancy for r in records]

    def test_rejects_mixed_machines(self):
        a = UsageRecord(machine="A", duration_s=1.0, energy_j=1.0)
        b = UsageRecord(machine="B", duration_s=1.0, energy_j=1.0)
        with pytest.raises(ValueError):
            UsageBatch.from_records([a, b])

    def test_rejects_empty_record_list(self):
        with pytest.raises(ValueError):
            UsageBatch.from_records([])

    def test_rejects_mismatched_lengths(self):
        with pytest.raises(ValueError):
            UsageBatch(
                machine="M",
                duration_s=np.array([1.0, 2.0]),
                energy_j=np.array([1.0]),
                cores=np.array([1, 1]),
                start_time_s=np.array([0.0, 0.0]),
            )

    @pytest.mark.parametrize(
        "field,bad",
        [
            ("duration_s", -1.0),
            ("energy_j", -2.0),
            ("cores", 0),
        ],
    )
    def test_rejects_invalid_values(self, field, bad):
        values = dict(
            duration_s=np.array([1.0, 1.0]),
            energy_j=np.array([1.0, 1.0]),
            cores=np.array([1, 2]),
            start_time_s=np.array([0.0, 0.0]),
        )
        values[field] = np.array([values[field][0], bad])
        with pytest.raises(ValueError):
            UsageBatch(machine="M", **values)

    def test_occupancy_prefers_provisioned(self):
        batch = UsageBatch(
            machine="M",
            duration_s=np.array([1.0]),
            energy_j=np.array([1.0]),
            cores=np.array([4]),
            start_time_s=np.array([0.0]),
            provisioned_cores=np.array([9]),
        )
        assert batch.occupancy.tolist() == [9]
        assert batch.record(0).occupancy == 9

    def test_share_many_matches_scalar(self):
        rng = np.random.default_rng(11)
        cores = rng.integers(1, 300, size=100)
        for machine in machine_variants(rng):
            scalar = np.array([machine.share(int(c)) for c in cores])
            assert np.array_equal(machine.share_many(cores), scalar)
