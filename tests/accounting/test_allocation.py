"""Fungible allocations: ledger arithmetic and admission control."""

import pytest
from hypothesis import given, strategies as st

from repro.accounting.allocation import (
    Allocation,
    AllocationExhausted,
    AllocationLedger,
)


class TestAllocation:
    def test_debit_reduces_balance(self):
        a = Allocation(user="u", unit="J", balance=100.0)
        txn = a.debit(30.0, machine="m1", job_id="j1")
        assert a.balance == pytest.approx(70.0)
        assert txn.balance_after == pytest.approx(70.0)
        assert a.spent == pytest.approx(30.0)

    def test_overdraw_refused_atomically(self):
        a = Allocation(user="u", unit="J", balance=10.0)
        with pytest.raises(AllocationExhausted) as err:
            a.debit(11.0)
        assert a.balance == 10.0  # unchanged after refusal
        assert err.value.requested == 11.0

    def test_exact_spend_allowed(self):
        a = Allocation(user="u", unit="J", balance=10.0)
        a.debit(10.0)
        assert a.balance == pytest.approx(0.0)

    def test_grant_extends_budget(self):
        a = Allocation(user="u", unit="J", balance=10.0)
        a.grant(5.0)
        assert a.balance == 15.0
        assert a.granted == 15.0

    def test_negative_amounts_rejected(self):
        a = Allocation(user="u", unit="J", balance=10.0)
        with pytest.raises(ValueError):
            a.debit(-1.0)
        with pytest.raises(ValueError):
            a.grant(-1.0)

    def test_negative_initial_balance_rejected(self):
        with pytest.raises(ValueError):
            Allocation(user="u", unit="J", balance=-1.0)

    def test_transactions_logged_in_order(self):
        a = Allocation(user="u", unit="J", balance=10.0)
        a.debit(1.0, job_id="a")
        a.grant(2.0)
        a.debit(3.0, job_id="b")
        kinds = [t.kind for t in a.transactions]
        assert kinds == ["debit", "credit", "debit"]

    @given(st.lists(st.floats(min_value=0.0, max_value=100.0), max_size=30))
    def test_spent_plus_balance_equals_granted(self, amounts):
        a = Allocation(user="u", unit="J", balance=1000.0)
        for amount in amounts:
            if a.can_afford(amount):
                a.debit(amount)
            else:
                a.grant(amount)
        assert a.spent + a.balance == pytest.approx(a.granted)
        assert a.balance >= -1e-9


class TestLedger:
    def test_open_and_get(self):
        ledger = AllocationLedger(unit="gCO2e")
        ledger.open("alice", 5.0)
        assert ledger.get("alice").unit == "gCO2e"
        assert "alice" in ledger
        assert len(ledger) == 1

    def test_double_open_rejected(self):
        ledger = AllocationLedger()
        ledger.open("alice", 5.0)
        with pytest.raises(ValueError):
            ledger.open("alice", 5.0)

    def test_missing_user(self):
        with pytest.raises(KeyError):
            AllocationLedger().get("nobody")

    def test_total_spent(self):
        ledger = AllocationLedger()
        ledger.open("a", 10.0).debit(4.0)
        ledger.open("b", 10.0).debit(1.0)
        assert ledger.total_spent() == pytest.approx(5.0)

    def test_users_sorted(self):
        ledger = AllocationLedger()
        ledger.open("zoe", 1.0)
        ledger.open("anna", 1.0)
        assert ledger.users == ["anna", "zoe"]
