"""UsageRecord / MachinePricing construction and helpers."""

import pytest

from repro.accounting.base import (
    MachinePricing,
    UsageRecord,
    pricing_for_gpu_config,
    pricing_for_node,
)
from repro.carbon.intensity import constant_trace
from repro.hardware.catalog import A100, ZEN3_NODE
from repro.hardware.node import GPUNodeSpec


class TestUsageRecord:
    def test_occupancy_defaults_to_request(self):
        r = UsageRecord(machine="m", duration_s=1.0, energy_j=1.0, cores=8)
        assert r.occupancy == 8

    def test_occupancy_override(self):
        r = UsageRecord(
            machine="m", duration_s=1.0, energy_j=1.0, cores=8, provisioned_cores=6
        )
        assert r.occupancy == 6

    @pytest.mark.parametrize(
        "kw",
        [
            {"duration_s": -1.0},
            {"energy_j": -1.0},
            {"cores": 0},
            {"provisioned_cores": 0},
        ],
    )
    def test_rejects_invalid(self, kw):
        base = dict(machine="m", duration_s=1.0, energy_j=1.0, cores=1)
        base.update(kw)
        with pytest.raises(ValueError):
            UsageRecord(**base)


class TestMachinePricing:
    def test_share_clips_at_one(self):
        p = MachinePricing(name="m", total_cores=8, tdp_watts=100.0, peak_rating=1.0)
        assert p.share(4) == 0.5
        assert p.share(100) == 1.0

    def test_whole_unit_share_is_one(self):
        p = MachinePricing(
            name="m", total_cores=8, tdp_watts=100.0, peak_rating=1.0,
            whole_unit=True,
        )
        assert p.share(1) == 1.0

    def test_attributed_tdp(self):
        p = MachinePricing(name="m", total_cores=10, tdp_watts=200.0, peak_rating=1.0)
        assert p.attributed_tdp_watts(5) == pytest.approx(100.0)

    def test_intensity_lookup_requires_trace(self):
        p = MachinePricing(name="m", total_cores=1, tdp_watts=1.0, peak_rating=1.0)
        with pytest.raises(ValueError):
            p.intensity_at(0.0)

    def test_with_intensity(self):
        p = MachinePricing(name="m", total_cores=1, tdp_watts=1.0, peak_rating=1.0)
        assert p.with_intensity(321.0).intensity_at(12345.0) == 321.0

    def test_rejects_bad_construction(self):
        with pytest.raises(ValueError):
            MachinePricing(name="m", total_cores=0, tdp_watts=1.0, peak_rating=1.0)
        with pytest.raises(ValueError):
            MachinePricing(name="m", total_cores=1, tdp_watts=0.0, peak_rating=1.0)


class TestConstructors:
    def test_pricing_for_node(self):
        p = pricing_for_node(ZEN3_NODE, current_year=2024, intensity=300.0)
        assert p.name == "Zen3"
        assert p.total_cores == ZEN3_NODE.cores
        assert p.tdp_watts == ZEN3_NODE.tdp_watts
        assert p.age_years == 1
        assert p.intensity_at(0.0) == 300.0

    def test_pricing_for_node_accepts_trace(self):
        trace = constant_trace("t", 55.0)
        p = pricing_for_node(ZEN3_NODE, 2024, trace)
        assert p.intensity_at(1e6) == 55.0

    def test_pricing_for_node_without_intensity(self):
        p = pricing_for_node(ZEN3_NODE, 2024)
        assert p.intensity is None

    def test_pricing_for_gpu_config(self):
        config = GPUNodeSpec(gpu=A100, count=4)
        p = pricing_for_gpu_config(
            config, 2024, intensity=53.0, carbon_rate_g_per_h=106.0
        )
        assert p.whole_unit
        assert p.total_cores == 4
        assert p.tdp_watts == 1600.0
        assert p.carbon_rate_override_g_per_h == 106.0
        assert p.age_years == 3

    def test_estimate_matches_charge(self):
        from repro.accounting.methods import EnergyBasedAccounting

        p = pricing_for_node(ZEN3_NODE, 2024, 300.0)
        eba = EnergyBasedAccounting()
        est = eba.estimate(p, duration_s=10.0, energy_j=100.0, cores=8)
        direct = eba.charge(
            UsageRecord(machine="Zen3", duration_s=10.0, energy_j=100.0, cores=8),
            p,
        )
        assert est == direct
