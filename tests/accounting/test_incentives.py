"""Related-work incentive schemes (Fugaku points, priority scores)."""

import pytest

from repro.accounting.base import MachinePricing, UsageRecord
from repro.accounting.incentives import (
    EfficiencyPriorityScore,
    FugakuPointsAccounting,
)
from repro.carbon.intensity import constant_trace


PRICING = MachinePricing(
    name="m",
    total_cores=64,
    tdp_watts=640.0,  # 10 W/core
    peak_rating=1.0,
    intensity=constant_trace("flat", 400.0),
)


def record(power_w: float, cores: int = 8, hours: float = 1.0) -> UsageRecord:
    duration = hours * 3600.0
    return UsageRecord(
        machine="m",
        duration_s=duration,
        energy_j=power_w * duration,
        cores=cores,
    )


class TestFugakuPoints:
    METHOD = FugakuPointsAccounting(standard_power_fraction=0.7, bonus_fraction=0.1)

    def test_efficient_job_gets_rebate(self):
        # 8 cores -> attributed TDP 80 W; standard 56 W; job draws 40 W.
        charge = self.METHOD.charge(record(power_w=40.0), PRICING)
        assert charge == pytest.approx(8.0 * 0.9)

    def test_hungry_job_pays_full(self):
        charge = self.METHOD.charge(record(power_w=70.0), PRICING)
        assert charge == pytest.approx(8.0)

    def test_boundary_qualifies(self):
        charge = self.METHOD.charge(record(power_w=56.0), PRICING)
        assert charge == pytest.approx(8.0 * 0.9)

    def test_charge_is_time_based_not_energy_based(self):
        """Unlike EBA, two qualifying jobs with different energy pay the
        same — the scheme's known weakness."""
        a = self.METHOD.charge(record(power_w=10.0), PRICING)
        b = self.METHOD.charge(record(power_w=40.0), PRICING)
        assert a == b

    def test_validation(self):
        with pytest.raises(ValueError):
            FugakuPointsAccounting(standard_power_fraction=0.0)
        with pytest.raises(ValueError):
            FugakuPointsAccounting(bonus_fraction=1.0)


class TestPriorityScore:
    SCORER = EfficiencyPriorityScore(standard_power_fraction=0.7, floor=0.25)

    def test_all_efficient_history_scores_one(self):
        history = [(record(power_w=30.0), PRICING)] * 3
        assert self.SCORER.score(history) == pytest.approx(1.0)

    def test_all_hungry_history_scores_zero(self):
        history = [(record(power_w=75.0), PRICING)] * 3
        assert self.SCORER.score(history) == pytest.approx(0.0)

    def test_mixed_history_weighted_by_core_hours(self):
        history = [
            (record(power_w=30.0, cores=8, hours=3.0), PRICING),   # 24 core-h efficient
            (record(power_w=75.0, cores=8, hours=1.0), PRICING),   # 8 core-h hungry
        ]
        assert self.SCORER.score(history) == pytest.approx(24.0 / 32.0)

    def test_empty_history_benefit_of_doubt(self):
        assert self.SCORER.score([]) == 1.0

    def test_multiplier_floor(self):
        history = [(record(power_w=75.0), PRICING)]
        assert self.SCORER.priority_multiplier(history) == pytest.approx(0.25)

    def test_validation(self):
        with pytest.raises(ValueError):
            EfficiencyPriorityScore(floor=1.5)
        with pytest.raises(ValueError):
            EfficiencyPriorityScore(standard_power_fraction=1.5)
