"""Cost-table construction, normalization, and the paper's Table 1."""

import pytest

from repro.accounting.comparison import normalized_cost_table
from repro.accounting.methods import all_methods


@pytest.fixture
def table(table1_inputs):
    records, pricings = table1_inputs
    return normalized_cost_table(records, pricings, all_methods())


class TestStructure:
    def test_machines_and_methods(self, table):
        assert table.machines == ["Desktop", "Cascade Lake", "Ice Lake", "Zen3"]
        assert table.methods == ["Runtime", "Energy", "Peak", "EBA", "CBA"]

    def test_metrics_column(self, table):
        runtime, energy = table.metrics["Zen3"]
        assert runtime == pytest.approx(5.65)
        assert energy == pytest.approx(16.8)

    def test_missing_pricing_rejected(self, table1_inputs):
        records, pricings = table1_inputs
        partial = {k: v for k, v in pricings.items() if k != "Zen3"}
        with pytest.raises(KeyError, match="Zen3"):
            normalized_cost_table(records, partial, all_methods())

    def test_format_renders_all_rows(self, table):
        text = table.format(reference="Desktop")
        for machine in table.machines:
            assert machine in text


class TestNormalization:
    def test_reference_machine_is_one(self, table):
        for method in table.methods:
            assert table.normalized(method, "Desktop")["Desktop"] == 1.0

    def test_min_normalization_floor_is_one(self, table):
        for method in table.methods:
            values = table.normalized(method)
            assert min(values.values()) == pytest.approx(1.0)

    def test_cheapest(self, table):
        assert table.cheapest("EBA") == "Desktop"
        assert table.cheapest("Peak") == "Cascade Lake"


class TestPaperTable1:
    """Measured-vs-paper for the headline experiment (EXPERIMENTS.md)."""

    def test_eba_column(self, table):
        eba = table.normalized("EBA", "Desktop")
        assert eba["Cascade Lake"] == pytest.approx(1.90, abs=0.03)
        assert eba["Ice Lake"] == pytest.approx(1.10, abs=0.03)
        assert 1.0 < eba["Zen3"] < 1.10  # paper: 1.05

    def test_cba_column(self, table):
        cba = table.normalized("CBA", "Desktop")
        assert cba["Cascade Lake"] == pytest.approx(1.20, abs=0.03)
        assert cba["Ice Lake"] == pytest.approx(1.10, abs=0.03)
        assert cba["Zen3"] == pytest.approx(1.15, abs=0.03)

    def test_peak_column_relative_to_cascade_lake(self, table):
        peak = table.normalized("Peak", "Cascade Lake")
        assert peak["Desktop"] == pytest.approx(1.43, abs=0.05)
        assert peak["Ice Lake"] == pytest.approx(1.06, abs=0.05)
        assert peak["Zen3"] == pytest.approx(1.36, abs=0.05)

    def test_headline_claim(self, table):
        """Runtime and Peak make an energy-hungry machine cheapest;
        EBA and CBA make efficient machines cheapest."""
        assert table.cheapest("Peak") == "Cascade Lake"  # most energy!
        assert table.cheapest("EBA") in ("Desktop", "Zen3")
        assert table.cheapest("CBA") == "Desktop"
