"""Scalar probe kernels must equal ``charge()`` bit for bit.

The migration simulator's re-evaluation path prices through
:meth:`AccountingMethod.probe_kernel` closures; every decision it makes
rests on those quotes being exactly what ``charge()`` would return.
"""

import numpy as np
import pytest

from repro.accounting.base import (
    AccountingMethod,
    MachinePricing,
    UsageRecord,
)
from repro.accounting.methods import CarbonBasedAccounting, all_methods
from repro.carbon.intensity import CarbonIntensityTrace


def _trace(seed: int) -> CarbonIntensityTrace:
    rng = np.random.default_rng(seed)
    return CarbonIntensityTrace(
        region=f"T{seed}", hourly_g_per_kwh=rng.uniform(20.0, 600.0, size=72)
    )


def _pricings() -> list[MachinePricing]:
    return [
        MachinePricing(
            name="cpu",
            total_cores=128,
            tdp_watts=560.0,
            peak_rating=2750.0,
            embodied_carbon_g=1.4e9,
            age_years=2,
            intensity=_trace(0),
        ),
        MachinePricing(
            name="gpu",
            total_cores=4,
            tdp_watts=1600.0,
            peak_rating=9.7e3,
            embodied_carbon_g=3.0e9,
            age_years=0,
            intensity=_trace(1),
            carbon_rate_override_g_per_h=150.0,
            whole_unit=True,
        ),
    ]


def _random_probes(n: int, seed: int):
    rng = np.random.default_rng(seed)
    for _ in range(n):
        yield (
            float(rng.uniform(0.5, 48 * 3600.0)),  # duration
            float(rng.uniform(1.0, 5e8)),  # energy
            int(rng.integers(1, 200)),  # cores (may exceed total)
            float(rng.uniform(0.0, 40 * 24 * 3600.0)),  # start time
        )


@pytest.mark.parametrize("method", all_methods(), ids=lambda m: m.name)
@pytest.mark.parametrize("pricing", _pricings(), ids=lambda p: p.name)
def test_probe_kernel_matches_charge_exactly(method, pricing):
    probe = method.probe_kernel(pricing)
    for duration, energy, cores, start in _random_probes(200, seed=7):
        record = UsageRecord(
            machine=pricing.name,
            duration_s=duration,
            energy_j=energy,
            cores=cores,
            start_time_s=start,
        )
        assert probe(duration, energy, cores, start) == method.charge(
            record, pricing
        )


@pytest.mark.parametrize("pricing", _pricings(), ids=lambda p: p.name)
def test_cba_average_intensity_kernel_matches_charge(pricing):
    method = CarbonBasedAccounting(average_intensity_over_run=True)
    probe = method.probe_kernel(pricing)
    for duration, energy, cores, start in _random_probes(100, seed=11):
        record = UsageRecord(
            machine=pricing.name,
            duration_s=duration,
            energy_j=energy,
            cores=cores,
            start_time_s=start,
        )
        assert probe(duration, energy, cores, start) == method.charge(
            record, pricing
        )


def test_cba_kernel_memo_survives_repeated_and_changed_starts():
    """The snapshot memo must never return a stale intensity."""
    pricing = _pricings()[0]
    method = CarbonBasedAccounting()
    probe = method.probe_kernel(pricing)
    starts = [0.0, 0.0, 3600.0, 0.0, 7200.0, 7200.0]
    for start in starts:
        record = UsageRecord(
            machine=pricing.name,
            duration_s=100.0,
            energy_j=1e6,
            cores=8,
            start_time_s=start,
        )
        assert probe(100.0, 1e6, 8, start) == method.charge(record, pricing)


def test_default_probe_kernel_covers_custom_methods():
    """Any subclass is probe-capable via the record-building fallback."""

    class FlatFee(AccountingMethod):
        name = "Flat"

        def charge(self, record, machine):
            return 42.0 + record.cores

    pricing = _pricings()[0]
    probe = FlatFee().probe_kernel(pricing)
    assert probe(10.0, 5.0, 3, 0.0) == 45.0

def test_cba_kernel_requires_trace():
    pricing = MachinePricing(
        name="no-trace", total_cores=8, tdp_watts=100.0, peak_rating=1.0
    )
    with pytest.raises(ValueError, match="carbon-intensity"):
        CarbonBasedAccounting().probe_kernel(pricing)
