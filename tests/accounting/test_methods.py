"""The five accounting methods: formulas, edge cases, and paper numbers."""

import pytest
from hypothesis import given, strategies as st

from repro.accounting.base import MachinePricing, UsageRecord
from repro.accounting.methods import (
    CarbonBasedAccounting,
    EnergyAccounting,
    EnergyBasedAccounting,
    PeakAccounting,
    RuntimeAccounting,
    all_methods,
    method_by_name,
)
from repro.carbon.embodied import LinearDepreciation
from repro.carbon.intensity import constant_trace


def pricing(
    total_cores=64,
    tdp=400.0,
    peak=2.5,
    embodied=1_000_000.0,
    age=0,
    intensity=400.0,
    **kw,
) -> MachinePricing:
    return MachinePricing(
        name="m",
        total_cores=total_cores,
        tdp_watts=tdp,
        peak_rating=peak,
        embodied_carbon_g=embodied,
        age_years=age,
        intensity=constant_trace("flat", intensity),
        **kw,
    )


def record(duration=3600.0, energy=3.6e6, cores=16, provisioned=None) -> UsageRecord:
    return UsageRecord(
        machine="m",
        duration_s=duration,
        energy_j=energy,
        cores=cores,
        provisioned_cores=provisioned,
    )


class TestRuntime:
    def test_core_hours(self):
        assert RuntimeAccounting().charge(record(), pricing()) == pytest.approx(16.0)

    def test_ignores_energy(self):
        a = RuntimeAccounting().charge(record(energy=0.0), pricing())
        b = RuntimeAccounting().charge(record(energy=1e9), pricing())
        assert a == b


class TestEnergy:
    def test_is_just_energy(self):
        assert EnergyAccounting().charge(record(), pricing()) == 3.6e6

    def test_free_when_idle(self):
        assert EnergyAccounting().charge(record(energy=0.0), pricing()) == 0.0


class TestPeak:
    def test_formula(self):
        # cores * seconds * rating
        assert PeakAccounting().charge(record(), pricing()) == pytest.approx(
            16 * 3600.0 * 2.5
        )

    def test_uses_requested_not_provisioned(self):
        a = PeakAccounting().charge(record(provisioned=4), pricing())
        b = PeakAccounting().charge(record(provisioned=32), pricing())
        assert a == b


class TestEBA:
    def test_eq1(self):
        """(e + d * TDP_share) / 2 with share = occupancy / total."""
        p = pricing(total_cores=64, tdp=400.0)
        r = record(duration=3600.0, energy=3.6e6, cores=16)
        expect = (3.6e6 + 3600.0 * 400.0 * 16 / 64) / 2
        assert EnergyBasedAccounting().charge(r, p) == pytest.approx(expect)

    def test_occupancy_overrides_request(self):
        p = pricing(total_cores=64, tdp=400.0)
        r = record(cores=16, provisioned=32)
        expect = (3.6e6 + 3600.0 * 400.0 * 32 / 64) / 2
        assert EnergyBasedAccounting().charge(r, p) == pytest.approx(expect)

    def test_beta_zero_halves_energy(self):
        p = pricing()
        r = record()
        assert EnergyBasedAccounting(beta=0.0).charge(r, p) == pytest.approx(
            r.energy_j / 2
        )

    def test_beta_out_of_range(self):
        with pytest.raises(ValueError):
            EnergyBasedAccounting(beta=1.5)

    def test_whole_unit_charges_full_tdp(self):
        p = pricing(total_cores=8, tdp=2000.0, whole_unit=True)
        r = record(cores=1)
        expect = (r.energy_j + r.duration_s * 2000.0) / 2
        assert EnergyBasedAccounting().charge(r, p) == pytest.approx(expect)

    @given(
        st.floats(min_value=0, max_value=1e9),
        st.floats(min_value=1.0, max_value=1e5),
    )
    def test_charge_at_least_half_energy(self, energy, duration):
        r = record(duration=duration, energy=energy)
        charge = EnergyBasedAccounting().charge(r, pricing())
        assert charge >= energy / 2


class TestCBA:
    def test_eq2(self):
        """e[kWh]*I + d[h]*rate*share."""
        p = pricing(total_cores=64, embodied=876_000.0, age=0, intensity=500.0)
        r = record(duration=3600.0, energy=3.6e6, cores=16)
        operational = 1.0 * 500.0  # 1 kWh * 500
        rate = 0.4 * 876_000.0 / 8760.0  # 40 g/h for the whole node
        embodied = rate * 1.0 * (16 / 64)
        assert CarbonBasedAccounting().charge(r, p) == pytest.approx(
            operational + embodied
        )

    def test_rate_override_wins(self):
        p = pricing(carbon_rate_override_g_per_h=100.0, total_cores=1)
        r = record(cores=1)
        cba = CarbonBasedAccounting()
        assert cba.embodied_charge(r, p) == pytest.approx(100.0)

    def test_linear_schedule_differs(self):
        p = pricing(age=0)
        r = record()
        accel = CarbonBasedAccounting().charge(r, p)
        linear = CarbonBasedAccounting(schedule=LinearDepreciation()).charge(r, p)
        assert accel > linear  # age 0: accelerated charges double

    def test_requires_intensity(self):
        p = MachinePricing(
            name="m", total_cores=4, tdp_watts=100.0, peak_rating=1.0
        )
        with pytest.raises(ValueError, match="intensity"):
            CarbonBasedAccounting().charge(record(cores=4), p)

    def test_average_over_run_uses_trace_mean(self):
        import numpy as np

        from repro.carbon.intensity import CarbonIntensityTrace

        trace = CarbonIntensityTrace(
            "r", np.array([100.0, 300.0] * 12)
        )
        p = pricing().__class__(**{**pricing().__dict__, "intensity": trace})
        r = record(duration=2 * 3600.0, energy=3.6e6)
        snap = CarbonBasedAccounting(average_intensity_over_run=False)
        avg = CarbonBasedAccounting(average_intensity_over_run=True)
        assert snap.operational_charge(r, p) == pytest.approx(100.0)
        assert avg.operational_charge(r, p) == pytest.approx(200.0)

    def test_decomposition_sums_to_charge(self):
        p = pricing()
        r = record()
        cba = CarbonBasedAccounting()
        assert cba.charge(r, p) == pytest.approx(
            cba.operational_charge(r, p) + cba.embodied_charge(r, p)
        )


class TestRegistry:
    def test_all_methods_in_paper_order(self):
        assert [m.name for m in all_methods()] == [
            "Runtime", "Energy", "Peak", "EBA", "CBA",
        ]

    def test_lookup_case_insensitive(self):
        assert method_by_name("eba").name == "EBA"

    def test_unknown_method(self):
        with pytest.raises(KeyError):
            method_by_name("BitcoinAccounting")
