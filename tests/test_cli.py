"""Command-line interface."""

import pytest

from repro.cli import main


class TestTables:
    def test_single_table(self, capsys):
        assert main(["tables", "--only", "table4"]) == 0
        out = capsys.readouterr().out
        assert "Table 4" in out and "Accel." in out

    def test_multiple_tables(self, capsys):
        assert main(["tables", "--only", "table1", "fig2"]) == 0
        out = capsys.readouterr().out
        assert "Table 1" in out and "Fig. 2" in out

    def test_unknown_table_errors(self, capsys):
        assert main(["tables", "--only", "table99"]) == 2
        assert "unknown table" in capsys.readouterr().err


class TestQuote:
    def test_quote_eba(self, capsys):
        assert main(["quote", "Cholesky"]) == 0
        out = capsys.readouterr().out
        assert "EBA" in out and "Zen3" in out

    def test_quote_cba(self, capsys):
        assert main(["quote", "Pagerank", "--method", "cba"]) == 0
        assert "CBA" in capsys.readouterr().out

    def test_unknown_function(self, capsys):
        assert main(["quote", "Mining"]) == 2
        assert "unknown function" in capsys.readouterr().err

    def test_unknown_method(self, capsys):
        assert main(["quote", "Cholesky", "--method", "Vibes"]) == 2


class TestStudyAndSim:
    def test_study_small(self, capsys):
        assert main(["study", "--users", "12", "--seed", "3"]) == 0
        out = capsys.readouterr().out
        assert "Fig. 9" in out and "Fig. 10" in out

    def test_simulate_tiny(self, capsys):
        assert main(["simulate", "--scale", "300", "--seed", "5"]) == 0
        out = capsys.readouterr().out
        assert "Fig. 5a" in out and "Table 6" in out and "Fig. 6" in out

    def test_low_carbon_tiny(self, capsys):
        assert main(["low-carbon", "--scale", "300", "--seed", "5"]) == 0
        assert "Fig. 7a" in capsys.readouterr().out


class TestSweepServe:
    def test_serve_stats_and_shutdown(self, tmp_path, monkeypatch, capsys):
        import io
        import json

        monkeypatch.setattr(
            "sys.stdin", io.StringIO('{"op": "stats"}\n{"op": "shutdown"}\n')
        )
        assert (
            main(["sweep", "serve", "--store", str(tmp_path), "--jobs", "1"])
            == 0
        )
        events = [
            json.loads(line)
            for line in capsys.readouterr().out.splitlines()
        ]
        assert [e["event"] for e in events] == ["ready", "stats", "bye"]
        assert events[0]["workers"] == 1
        assert events[1]["store"]["entries"] == 0

    def test_sweep_requires_subcommand(self):
        with pytest.raises(SystemExit):
            main(["sweep"])


def test_requires_subcommand():
    with pytest.raises(SystemExit):
        main([])
