"""Physical-consistency checks across the calibrated data.

Calibration constants were inverted from the paper's tables; these tests
pin them against physics so a future edit cannot silently produce
impossible hardware (e.g. a job drawing more than TDP, or embodied
carbon rates that don't match any depreciation of the stored totals).
"""

import pytest

from repro.apps.registry import (
    APP_REGISTRY,
    CPU_APP_NAMES,
    GPU_CHOLESKY_PROFILES,
)
from repro.hardware.catalog import (
    CPU_EXPERIMENT_NODES,
    GPU_CARBON_RATE,
    MachineCatalog,
    SIMULATION_MACHINES,
)


class TestCPUProfilesWithinPower:
    @pytest.mark.parametrize("app", CPU_APP_NAMES)
    def test_attributed_power_below_node_tdp(self, app):
        profile = APP_REGISTRY[app]
        nodes = {n.name: n for n in CPU_EXPERIMENT_NODES}
        for machine, run in profile.runs.items():
            assert run.mean_power_w < nodes[machine].tdp_watts

    @pytest.mark.parametrize("app", CPU_APP_NAMES)
    def test_provisioning_within_node(self, app):
        profile = APP_REGISTRY[app]
        nodes = {n.name: n for n in CPU_EXPERIMENT_NODES}
        for machine, run in profile.runs.items():
            assert 1 <= run.provisioned_cores <= nodes[machine].cores
            assert 1 <= run.requested_cores <= nodes[machine].cores


class TestGPUProfilesWithinPower:
    def test_node_power_within_board_plus_host_budget(self):
        """The published energies are node-level (Grid'5000 wattmeters):
        boards + a dual-socket host with idle siblings.  The ceiling is
        therefore count x board TDP plus a ~1.2 kW host budget."""
        HOST_BUDGET_W = 1200.0
        catalog = MachineCatalog()
        for (model, count), run in GPU_CHOLESKY_PROFILES.items():
            config = catalog.gpu_config(model, count)
            mean_power = run.energy_j / run.runtime_s
            assert mean_power < config.tdp_watts + HOST_BUDGET_W, (model, count)
            assert mean_power > 100.0, (model, count)  # node is not idle

    def test_scaling_monotonic_in_runtime(self):
        """More GPUs never slow the job down in the calibrated data,
        except the known V100/A100 8-GPU saturation plateau (±3%)."""
        for model in ("P100", "V100", "A100"):
            runs = [
                (count, run.runtime_s)
                for (m, count), run in sorted(GPU_CHOLESKY_PROFILES.items())
                if m == model
            ]
            for (c1, t1), (c2, t2) in zip(runs, runs[1:]):
                assert t2 <= t1 * 1.03, (model, c1, c2)

    def test_energy_rate_vs_carbon_rate_alignment(self):
        """Newer GPU generations carry both more power and more embodied
        rate — the trade-off Table 3's CBA column prices."""
        p100 = GPU_CARBON_RATE[("P100", 1)]
        v100 = GPU_CARBON_RATE[("V100", 1)]
        a100 = GPU_CARBON_RATE[("A100", 1)]
        assert p100 < v100 < a100


class TestSimulationMachinePhysics:
    def test_idle_below_tdp(self):
        for node in SIMULATION_MACHINES:
            assert node.idle_power_watts < node.tdp_watts

    def test_embodied_totals_plausible(self):
        """Node embodied carbon between 50 kg and 5 t — outside that the
        Table 5 inversion went wrong."""
        for node in SIMULATION_MACHINES:
            assert 5e4 < node.embodied_carbon_g < 5e6, node.name

    def test_cpu_experiment_embodied_plausible(self):
        for node in CPU_EXPERIMENT_NODES:
            assert 5e4 < node.embodied_carbon_g < 1e6, node.name
