"""Unit conversions: exact constants and round-trips."""

import math

import pytest
from hypothesis import given, strategies as st

from repro import units


def test_kwh_round_trip():
    assert units.joules_to_kwh(units.kwh_to_joules(2.5)) == pytest.approx(2.5)


def test_one_kwh_is_3_6_megajoules():
    assert units.kwh_to_joules(1.0) == 3.6e6


def test_one_wh_is_3600_joules():
    assert units.wh_to_joules(1.0) == 3600.0


def test_hours_per_year_matches_paper_divisor():
    assert units.HOURS_PER_YEAR == 24 * 365


def test_core_hours():
    assert units.core_hours(8, 1800) == pytest.approx(4.0)


def test_core_hours_zero_duration():
    assert units.core_hours(16, 0.0) == 0.0


def test_operational_carbon_one_kwh():
    # 1 kWh at 400 g/kWh is 400 g.
    assert units.operational_carbon_g(3.6e6, 400.0) == pytest.approx(400.0)


def test_operational_carbon_zero_intensity():
    assert units.operational_carbon_g(1e6, 0.0) == 0.0


def test_watts_over_seconds():
    assert units.watts_over_seconds_to_joules(100.0, 60.0) == 6000.0


def test_grams_conversions():
    assert units.grams_to_kg(1500.0) == pytest.approx(1.5)
    assert units.grams_to_mg(1.5) == pytest.approx(1500.0)


def test_seconds_hours_round_trip():
    assert units.hours_to_seconds(units.seconds_to_hours(7200.0)) == 7200.0


@given(st.floats(min_value=0, max_value=1e15, allow_nan=False))
def test_joules_kwh_round_trip_property(j):
    assert math.isclose(
        units.kwh_to_joules(units.joules_to_kwh(j)), j, rel_tol=1e-12, abs_tol=1e-9
    )


@given(
    st.floats(min_value=0, max_value=1e6),
    st.floats(min_value=0, max_value=2000),
)
def test_operational_carbon_monotone_in_both_arguments(energy, intensity):
    base = units.operational_carbon_g(energy, intensity)
    assert units.operational_carbon_g(energy * 2, intensity) >= base
    assert units.operational_carbon_g(energy, intensity * 2) >= base
