"""Every aggregate §2.2 reports, as data.

These constants are the paper's released aggregates; the generator in
:mod:`repro.survey.data` produces a respondent-level table whose
marginals match them.  Counts estimated from Fig. 1/2 bar heights (the
paper prints some percentages but not every bar's exact value) are
marked ``# est.``.
"""

from __future__ import annotations

#: Headline aggregates of §2.2.  Percentages are of the 192 respondents
#: who completed >= 90% of the survey unless the paper states otherwise.
PAPER_AGGREGATES: dict[str, float | int] = {
    "n_responses": 316,
    "n_complete": 192,
    # Location counts (sum < 316; the remainder declined).
    "loc_europe": 166,
    "loc_north_america": 104,
    "loc_oceania": 4,
    "loc_china": 4,
    "loc_undisclosed": 38,
    # Career stage.
    "stage_grad_student": 73,
    "stage_early_career": 97,
    "stage_senior": 99,
    # Node-hour awareness & action.
    "aware_node_hours": 148,          # 73%
    "reduced_node_hours": 142,        # 70%
    "concerned_allocation": 166,      # >80% very or mildly concerned
    "frac_concerned_who_reduced": 0.77,
    # Energy awareness & action.
    "aware_energy": 51,               # 27%
    "reduced_energy": 54,             # 30%
    "frac_reducers_unaware_energy": 0.39,
    # Metric familiarity.
    "familiar_green500": 94,          # 51%
    "familiar_carbon_intensity": 55,  # 30%
    "green500_know_own_machine": 36,  # 20% of all respondents
    # Machine choice.
    "frac_access_4plus_machines": 0.70,
    "performance_very_important": 83,  # 46%
    "energy_very_important": 25,       # 12%
}

#: Fig. 1 sustainability metrics, in plot order.
FIG1_METRICS: tuple[str, ...] = (
    "Green500",
    "SPEC SERT",
    "Carbon Intensity",
    "PUE",
)

#: Fig. 1: "Are you aware of how the HPC resources you use perform on the
#: following sustainability metrics?" — yes / no / not-applicable counts.
FIG1_COUNTS: dict[str, dict[str, int]] = {
    "Green500": {"yes": 36, "no": 118, "na": 28},            # yes from text
    "SPEC SERT": {"yes": 9, "no": 128, "na": 45},            # est.
    "Carbon Intensity": {"yes": 18, "no": 132, "na": 32},    # est.
    "PUE": {"yes": 13, "no": 124, "na": 45},                 # est.
}

#: Fig. 2 decision factors, in plot order.
FIG2_FACTORS: tuple[str, ...] = (
    "Hardware",
    "Queue",
    "Performance",
    "Funding",
    "Software",
    "Ease of Use",
    "Experience",
    "Energy",
)

#: Fig. 2: importance of each factor when choosing where to run
#: (1 = not important, 2 = middling, 3 = very important).
FIG2_COUNTS: dict[str, dict[int, int]] = {
    "Hardware": {1: 18, 2: 62, 3: 102},        # est.
    "Queue": {1: 22, 2: 70, 3: 90},            # est.
    "Performance": {1: 19, 2: 80, 3: 83},      # 83 from text (46%)
    "Funding": {1: 40, 2: 62, 3: 80},          # est.
    "Software": {1: 35, 2: 77, 3: 70},         # est.
    "Ease of Use": {1: 30, 2: 86, 3: 66},      # est.
    "Experience": {1: 38, 2: 84, 3: 60},       # est.
    "Energy": {1: 84, 2: 73, 3: 25},           # 25 from text (12%)
}


def fig2_mean_importance(factor: str) -> float:
    """Average importance score of one factor (used for ranking)."""
    counts = FIG2_COUNTS[factor]
    total = sum(counts.values())
    return sum(score * n for score, n in counts.items()) / total
