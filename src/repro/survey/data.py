"""Respondent-level survey table generation.

The paper releases aggregates, not the per-respondent table.  For code
that wants to *analyze* survey data (and to test the analysis pipeline),
this module deterministically constructs 316 synthetic respondents whose
marginals match every aggregate in
:data:`repro.survey.schema.PAPER_AGGREGATES` exactly, including the
cross-tabs the paper calls out:

* 39% of energy *reducers* are *not aware* of their energy consumption;
* 77% of allocation-concerned respondents took node-hour-reducing steps;
* of the 94 Green500-familiar respondents, 36 know their own machine's
  rank (and nobody unfamiliar with the metric does).

Assignment within a category is by seeded shuffle, so the table is
reproducible but not artificially ordered.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.survey.schema import (
    FIG1_COUNTS,
    FIG2_COUNTS,
    FIG2_FACTORS,
    PAPER_AGGREGATES as AGG,
)


@dataclass
class Respondent:
    """One synthetic survey response."""

    rid: int
    location: str
    career_stage: str
    completed: bool
    aware_node_hours: bool
    reduced_node_hours: bool
    concerned_allocation: bool
    aware_energy: bool
    reduced_energy: bool
    familiar_green500: bool
    knows_own_green500: bool
    familiar_carbon_intensity: bool
    fig1: dict[str, str]  # metric -> "yes"/"no"/"na"
    fig2: dict[str, int]  # factor -> 1/2/3


def _spread(
    rng: np.random.Generator, n_total: int, flags: dict[str, int]
) -> dict[str, np.ndarray]:
    """Boolean columns with exact popcounts, randomly placed."""
    out = {}
    for name, count in flags.items():
        col = np.zeros(n_total, dtype=bool)
        col[rng.choice(n_total, size=count, replace=False)] = True
        out[name] = col
    return out


def _categorical(
    rng: np.random.Generator, n_total: int, counts: dict[str, int], fill: str
) -> np.ndarray:
    values = []
    for label, count in counts.items():
        values.extend([label] * count)
    values.extend([fill] * (n_total - len(values)))
    arr = np.array(values, dtype=object)
    rng.shuffle(arr)
    return arr


def generate_respondents(seed: int = 0) -> list[Respondent]:
    """Build the full 316-row table (deterministic for a given seed)."""
    rng = np.random.default_rng(seed)
    n = int(AGG["n_responses"])

    location = _categorical(
        rng,
        n,
        {
            "Europe": int(AGG["loc_europe"]),
            "North America": int(AGG["loc_north_america"]),
            "Oceania": int(AGG["loc_oceania"]),
            "China": int(AGG["loc_china"]),
        },
        fill="Undisclosed",
    )
    career = _categorical(
        rng,
        n,
        {
            "Graduate student": int(AGG["stage_grad_student"]),
            "Early career": int(AGG["stage_early_career"]),
            "Senior": int(AGG["stage_senior"]),
        },
        fill="Other",
    )
    completed = np.zeros(n, dtype=bool)
    completed[rng.choice(n, size=int(AGG["n_complete"]), replace=False)] = True
    complete_idx = np.flatnonzero(completed)

    # Percentage-based answers apply to the 192 completers.
    cols = {
        "aware_node_hours": np.zeros(n, dtype=bool),
        "reduced_node_hours": np.zeros(n, dtype=bool),
        "concerned_allocation": np.zeros(n, dtype=bool),
        "aware_energy": np.zeros(n, dtype=bool),
        "reduced_energy": np.zeros(n, dtype=bool),
        "familiar_green500": np.zeros(n, dtype=bool),
        "knows_own_green500": np.zeros(n, dtype=bool),
        "familiar_carbon_intensity": np.zeros(n, dtype=bool),
    }

    def pick(from_idx: np.ndarray, count: int) -> np.ndarray:
        return rng.choice(from_idx, size=count, replace=False)

    cols["aware_node_hours"][pick(complete_idx, int(AGG["aware_node_hours"]))] = True

    # Allocation concern, then 77% of the concerned also reduced
    # node-hours; remaining reducers come from the unconcerned.
    concerned = pick(complete_idx, int(AGG["concerned_allocation"]))
    cols["concerned_allocation"][concerned] = True
    n_reduced = int(AGG["reduced_node_hours"])
    n_concerned_reduced = round(AGG["frac_concerned_who_reduced"] * len(concerned))
    n_concerned_reduced = min(n_concerned_reduced, n_reduced)
    reduced_idx = list(pick(concerned, n_concerned_reduced))
    others = np.setdiff1d(complete_idx, concerned)
    reduced_idx += list(pick(others, n_reduced - n_concerned_reduced))
    cols["reduced_node_hours"][np.array(reduced_idx)] = True

    # Energy: 39% of reducers are NOT aware of their energy use.
    n_energy_red = int(AGG["reduced_energy"])
    energy_reducers = pick(complete_idx, n_energy_red)
    cols["reduced_energy"][energy_reducers] = True
    n_red_unaware = round(AGG["frac_reducers_unaware_energy"] * n_energy_red)
    aware_from_reducers = rng.choice(
        energy_reducers, size=n_energy_red - n_red_unaware, replace=False
    )
    n_aware = int(AGG["aware_energy"])
    non_reducers = np.setdiff1d(complete_idx, energy_reducers)
    extra_aware = pick(non_reducers, n_aware - len(aware_from_reducers))
    cols["aware_energy"][aware_from_reducers] = True
    cols["aware_energy"][extra_aware] = True

    # Green500: the 36 who know their machine's rank are a subset of the
    # 94 familiar with the list.
    familiar = pick(complete_idx, int(AGG["familiar_green500"]))
    cols["familiar_green500"][familiar] = True
    cols["knows_own_green500"][
        rng.choice(familiar, size=int(AGG["green500_know_own_machine"]), replace=False)
    ] = True
    cols["familiar_carbon_intensity"][
        pick(complete_idx, int(AGG["familiar_carbon_intensity"]))
    ] = True

    # Fig. 1 per-metric awareness: respect the Green500 constraint (the
    # "yes" group for Green500 is exactly the knows_own_green500 set).
    fig1_answers: dict[str, np.ndarray] = {}
    for metric, counts in FIG1_COUNTS.items():
        col = np.array(["(skipped)"] * n, dtype=object)
        if metric == "Green500":
            yes_idx = np.flatnonzero(cols["knows_own_green500"])
        else:
            yes_idx = pick(complete_idx, counts["yes"])
        col[yes_idx] = "yes"
        rest = np.setdiff1d(complete_idx, yes_idx)
        no_idx = rng.choice(rest, size=counts["no"], replace=False)
        col[no_idx] = "no"
        rest = np.setdiff1d(rest, no_idx)
        na_idx = rng.choice(rest, size=min(counts["na"], len(rest)), replace=False)
        col[na_idx] = "na"
        fig1_answers[metric] = col

    # Fig. 2 importance answers with exact counts.
    fig2_answers: dict[str, np.ndarray] = {}
    for factor in FIG2_FACTORS:
        counts = FIG2_COUNTS[factor]
        scores = np.zeros(n, dtype=int)  # 0 = skipped
        order = list(complete_idx)
        rng.shuffle(order)
        pos = 0
        for score in (1, 2, 3):
            for _ in range(counts[score]):
                if pos < len(order):
                    scores[order[pos]] = score
                    pos += 1
        fig2_answers[factor] = scores

    respondents = []
    for i in range(n):
        respondents.append(
            Respondent(
                rid=i,
                location=str(location[i]),
                career_stage=str(career[i]),
                completed=bool(completed[i]),
                aware_node_hours=bool(cols["aware_node_hours"][i]),
                reduced_node_hours=bool(cols["reduced_node_hours"][i]),
                concerned_allocation=bool(cols["concerned_allocation"][i]),
                aware_energy=bool(cols["aware_energy"][i]),
                reduced_energy=bool(cols["reduced_energy"][i]),
                familiar_green500=bool(cols["familiar_green500"][i]),
                knows_own_green500=bool(cols["knows_own_green500"][i]),
                familiar_carbon_intensity=bool(cols["familiar_carbon_intensity"][i]),
                fig1={m: str(fig1_answers[m][i]) for m in FIG1_COUNTS},
                fig2={f: int(fig2_answers[f][i]) for f in FIG2_FACTORS},
            )
        )
    return respondents
