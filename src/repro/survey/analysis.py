"""The §2.2 analysis over respondent-level data.

``analyze`` recomputes every number the paper reports from the
respondent table, so the tests can assert that the synthetic table and
the published aggregates agree — and so real (non-synthetic) data could
be dropped in with the same schema.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.survey.data import Respondent
from repro.survey.schema import FIG1_METRICS, FIG2_FACTORS


@dataclass(frozen=True)
class SurveyAnalysis:
    """Recomputed §2.2 aggregates."""

    n_responses: int
    n_complete: int
    pct_aware_node_hours: float
    pct_reduced_node_hours: float
    pct_aware_energy: float
    pct_reduced_energy: float
    pct_reducers_unaware_energy: float
    pct_familiar_green500: float
    pct_familiar_carbon_intensity: float
    n_know_own_green500: int
    fig1_counts: dict[str, dict[str, int]]
    fig2_counts: dict[str, dict[int, int]]

    def fig2_rank_by_importance(self) -> list[str]:
        """Factors ranked by share of 'very important' answers, the
        ranking behind the §2.2 headline that energy comes last."""
        def share(factor: str) -> float:
            counts = self.fig2_counts[factor]
            total = sum(counts.values())
            return counts.get(3, 0) / total if total else 0.0

        return sorted(FIG2_FACTORS, key=share, reverse=True)


def analyze(respondents: list[Respondent]) -> SurveyAnalysis:
    """Recompute the paper's aggregates from the respondent table."""
    if not respondents:
        raise ValueError("no respondents")
    complete = [r for r in respondents if r.completed]
    nc = len(complete)
    if nc == 0:
        raise ValueError("no complete responses")

    def pct(flag: str) -> float:
        return 100.0 * sum(1 for r in complete if getattr(r, flag)) / nc

    reducers = [r for r in complete if r.reduced_energy]
    reducers_unaware = [r for r in reducers if not r.aware_energy]

    fig1 = {
        metric: {
            answer: sum(1 for r in complete if r.fig1.get(metric) == answer)
            for answer in ("yes", "no", "na")
        }
        for metric in FIG1_METRICS
    }
    fig2 = {
        factor: {
            score: sum(1 for r in complete if r.fig2.get(factor) == score)
            for score in (1, 2, 3)
        }
        for factor in FIG2_FACTORS
    }

    return SurveyAnalysis(
        n_responses=len(respondents),
        n_complete=nc,
        pct_aware_node_hours=pct("aware_node_hours"),
        pct_reduced_node_hours=pct("reduced_node_hours"),
        pct_aware_energy=pct("aware_energy"),
        pct_reduced_energy=pct("reduced_energy"),
        pct_reducers_unaware_energy=(
            100.0 * len(reducers_unaware) / len(reducers) if reducers else 0.0
        ),
        pct_familiar_green500=pct("familiar_green500"),
        pct_familiar_carbon_intensity=pct("familiar_carbon_intensity"),
        n_know_own_green500=sum(1 for r in complete if r.knows_own_green500),
        fig1_counts=fig1,
        fig2_counts=fig2,
    )
