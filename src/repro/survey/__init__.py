"""The HPC-user survey (paper §2).

The paper surveyed 316 HPC users on energy awareness and released the
aggregate data.  This package encodes every aggregate the paper reports
(:mod:`repro.survey.schema`), generates a respondent-level table
consistent with all of those marginals (:mod:`repro.survey.data`), and
reproduces the §2.2 analysis including the Fig. 1 and Fig. 2 counts
(:mod:`repro.survey.analysis`).
"""

from repro.survey.schema import (
    PAPER_AGGREGATES,
    FIG1_METRICS,
    FIG2_FACTORS,
    FIG1_COUNTS,
    FIG2_COUNTS,
)
from repro.survey.data import Respondent, generate_respondents
from repro.survey.analysis import SurveyAnalysis, analyze

__all__ = [
    "PAPER_AGGREGATES",
    "FIG1_METRICS",
    "FIG2_FACTORS",
    "FIG1_COUNTS",
    "FIG2_COUNTS",
    "Respondent",
    "generate_respondents",
    "SurveyAnalysis",
    "analyze",
]
