"""Hardware performance-counter model.

The green-ACCESS monitor (paper §4.1, component 3) collects per-process
hardware performance counters — instructions retired per second and
last-level-cache misses per second — and periodically fits a power model
between counters and measured RAPL energy.  The simulator (§5.2) draws
*realistic* counter values for each job from a Gaussian Mixture Model
trained on data collected on the Institutional Cluster.

This module provides the counter representation plus a generator that
produces counter time series for a running process with a configurable
workload signature.  The signature distinguishes compute-bound jobs
(high IPC, few LLC misses) from memory-bound jobs (low IPC, many LLC
misses), which is what makes the fitted power model non-trivial.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

#: Counter feature names, in the canonical column order used by arrays.
COUNTER_FEATURES: tuple[str, ...] = ("instructions_per_sec", "llc_misses_per_sec")


@dataclass(frozen=True)
class CounterSample:
    """One per-process counter observation.

    Attributes
    ----------
    pid:
        Process id the sample belongs to.
    timestamp:
        Seconds since the epoch of the owning trace.
    instructions_per_sec:
        Instructions retired per second over the sampling window.
    llc_misses_per_sec:
        Last-level-cache misses per second over the sampling window.
    cores:
        Number of cores the process was scheduled on.
    """

    pid: int
    timestamp: float
    instructions_per_sec: float
    llc_misses_per_sec: float
    cores: int = 1

    def as_vector(self) -> np.ndarray:
        """Counter features as a float vector in canonical order."""
        return np.array(
            [self.instructions_per_sec, self.llc_misses_per_sec], dtype=float
        )


@dataclass(frozen=True)
class WorkloadSignature:
    """Mean counter rates (per core) that characterize a workload.

    ``ips`` is instructions per second per core; ``llc_mpki`` is LLC
    misses per kilo-instruction, the standard architecture-independent
    memory-intensity metric.
    """

    ips: float
    llc_mpki: float

    @property
    def llc_misses_per_sec(self) -> float:
        return self.ips * self.llc_mpki / 1000.0


#: Representative signatures used to seed synthetic traces and tests.
COMPUTE_BOUND = WorkloadSignature(ips=2.8e9, llc_mpki=0.4)
MEMORY_BOUND = WorkloadSignature(ips=0.9e9, llc_mpki=18.0)
BALANCED = WorkloadSignature(ips=1.8e9, llc_mpki=5.0)


class CounterTraceGenerator:
    """Generates noisy per-process counter time series.

    Parameters
    ----------
    signature:
        Mean per-core counter rates of the workload.
    cores:
        Cores the process runs on.
    sample_period_s:
        Monitor sampling period (the paper's monitor polls RAPL and
        counters periodically; 1 s is typical).
    noise_cv:
        Coefficient of variation of multiplicative log-normal noise
        applied to each sample, modelling phase behaviour.
    rng:
        NumPy generator; required so traces are reproducible.
    """

    def __init__(
        self,
        signature: WorkloadSignature,
        cores: int = 1,
        sample_period_s: float = 1.0,
        noise_cv: float = 0.15,
        rng: np.random.Generator | None = None,
    ) -> None:
        if cores <= 0:
            raise ValueError("cores must be positive")
        if sample_period_s <= 0:
            raise ValueError("sample_period_s must be positive")
        if noise_cv < 0:
            raise ValueError("noise_cv cannot be negative")
        self.signature = signature
        self.cores = cores
        self.sample_period_s = sample_period_s
        self.noise_cv = noise_cv
        self.rng = rng if rng is not None else np.random.default_rng(0)

    def generate(self, pid: int, duration_s: float) -> list[CounterSample]:
        """Generate samples covering ``duration_s`` seconds of execution."""
        n = max(1, int(round(duration_s / self.sample_period_s)))
        # Log-normal multiplicative noise with unit mean.
        if self.noise_cv > 0:
            sigma = np.sqrt(np.log1p(self.noise_cv**2))
            noise_ips = self.rng.lognormal(-sigma**2 / 2, sigma, size=n)
            noise_llc = self.rng.lognormal(-sigma**2 / 2, sigma, size=n)
        else:
            noise_ips = np.ones(n)
            noise_llc = np.ones(n)
        ips = self.signature.ips * self.cores * noise_ips
        llc = self.signature.llc_misses_per_sec * self.cores * noise_llc
        times = (np.arange(n) + 1) * self.sample_period_s
        return [
            CounterSample(
                pid=pid,
                timestamp=float(t),
                instructions_per_sec=float(i),
                llc_misses_per_sec=float(m),
                cores=self.cores,
            )
            for t, i, m in zip(times, ips, llc)
        ]


def samples_to_matrix(samples: list[CounterSample]) -> np.ndarray:
    """Stack samples into an ``(n, 2)`` feature matrix (canonical order)."""
    if not samples:
        return np.empty((0, len(COUNTER_FEATURES)))
    return np.array([s.as_vector() for s in samples])
