"""Simulated NVML (NVIDIA Management Library) power telemetry.

The paper's GPU measurements come from board-level power sensors ("For
GPUs, we assume that an entire GPU is allocated to each job", §4.1).
NVML exposes *instantaneous* power in milliwatts per board — unlike
RAPL's cumulative energy counters — so energy must be obtained by
sampling and integrating, and the sampling cadence becomes a measurement
error the monitor owns.  This meter reproduces those semantics:

* per-board instantaneous power queries (mW, like
  ``nvmlDeviceGetPowerUsage``);
* power clamped to the board's power limit (boards enforce TDP);
* a sampling integrator with the trapezoid rule, the standard client
  idiom, whose error the tests characterize against analytic truth.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.hardware.node import GPUSpec


@dataclass
class _Board:
    spec: GPUSpec
    power_fn: Callable[[float], float]


class SimulatedNVML:
    """A node's worth of GPU boards with NVML-style power queries.

    Parameters
    ----------
    boards:
        GPU specs, one per installed board.
    idle_watts:
        Board idle draw when no power function is installed (defaults
        to a typical ~12% of TDP).
    """

    def __init__(self, boards: list[GPUSpec], idle_fraction: float = 0.12) -> None:
        if not boards:
            raise ValueError("need at least one board")
        if not 0.0 <= idle_fraction <= 1.0:
            raise ValueError("idle fraction must be in [0, 1]")
        self._boards = [
            _Board(
                spec=spec,
                power_fn=(lambda t, s=spec: idle_fraction * s.tdp_watts),
            )
            for spec in boards
        ]

    # ------------------------------------------------------------------
    @property
    def device_count(self) -> int:
        return len(self._boards)

    def set_load(self, index: int, power_fn: Callable[[float], float]) -> None:
        """Install a workload power curve on one board."""
        self._boards[index].power_fn = power_fn

    def power_usage_mw(self, index: int, t: float) -> int:
        """Instantaneous board power in milliwatts (the NVML unit),
        clamped to the board's enforced power limit."""
        board = self._boards[index]
        watts = board.power_fn(t)
        if watts < 0:
            raise ValueError(f"negative power {watts} on board {index}")
        watts = min(watts, board.spec.tdp_watts)
        return int(round(watts * 1000.0))

    def power_limit_mw(self, index: int) -> int:
        return int(round(self._boards[index].spec.tdp_watts * 1000.0))

    # ------------------------------------------------------------------
    def integrate_energy_j(
        self,
        index: int,
        start_s: float,
        end_s: float,
        sample_period_s: float = 1.0,
    ) -> float:
        """Client-side energy estimate: sample power on a fixed cadence
        and integrate with the trapezoid rule — exactly what real NVML
        consumers must do, with the same aliasing error."""
        if end_s < start_s:
            raise ValueError("end must not precede start")
        if sample_period_s <= 0:
            raise ValueError("sample period must be positive")
        if end_s == start_s:
            return 0.0
        times = np.arange(start_s, end_s, sample_period_s)
        times = np.append(times, end_s)
        watts = np.array(
            [self.power_usage_mw(index, float(t)) / 1000.0 for t in times]
        )
        return float(np.trapezoid(watts, times))

    def node_energy_j(
        self, start_s: float, end_s: float, sample_period_s: float = 1.0
    ) -> float:
        """Summed sampled energy across every board."""
        return sum(
            self.integrate_energy_j(i, start_s, end_s, sample_period_s)
            for i in range(self.device_count)
        )
