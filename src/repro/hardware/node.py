"""Node, CPU, and GPU specification dataclasses.

A :class:`NodeSpec` is the unit the accounting models reason about: it
carries everything Eq. (1) and Eq. (2) of the paper need — TDP, idle
power, peak performance, deployment year, and embodied carbon — plus a
simple utilization→power curve used by the simulated RAPL meter.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.units import SECONDS_PER_HOUR


@dataclass(frozen=True)
class CPUSpec:
    """A CPU model, as found on a spec sheet.

    Attributes
    ----------
    model:
        Marketing name, e.g. ``"Intel Xeon 6248R"``.
    cores:
        Physical cores per socket.
    tdp_watts:
        Thermal Design Power of one socket, in watts.
    base_clock_ghz:
        Base clock, used only for rough peak-performance estimates.
    peak_gflops:
        Peak double-precision GFLOP/s per socket (manufacturer reported,
        or PassMark-derived when the paper cites PassMark [39]).
    year:
        Year the part was released.
    """

    model: str
    cores: int
    tdp_watts: float
    base_clock_ghz: float
    peak_gflops: float
    year: int

    def __post_init__(self) -> None:
        if self.cores <= 0:
            raise ValueError(f"CPU {self.model!r}: cores must be positive")
        if self.tdp_watts <= 0:
            raise ValueError(f"CPU {self.model!r}: TDP must be positive")


@dataclass(frozen=True)
class GPUSpec:
    """A GPU model (Table 2 of the paper).

    Attributes
    ----------
    model:
        e.g. ``"V100"``.
    year:
        Deployment year used for embodied-carbon depreciation.
    peak_gflops:
        Manufacturer-reported single-precision GFLOP/s.
    tdp_watts:
        Board TDP in watts.
    """

    model: str
    year: int
    peak_gflops: float
    tdp_watts: float

    def __post_init__(self) -> None:
        if self.tdp_watts <= 0:
            raise ValueError(f"GPU {self.model!r}: TDP must be positive")


@dataclass(frozen=True)
class NodeSpec:
    """A CPU node: the resource unit priced by the accounting models.

    Attributes
    ----------
    name:
        Short machine name used throughout tables (e.g. ``"Zen3"``).
    cpu:
        The CPU model installed.
    sockets:
        Number of CPU sockets.
    year_deployed:
        Year the node entered service (drives embodied-carbon
        depreciation, Section 3.3).
    idle_power_watts:
        Power drawn by all sockets when running only monitoring code
        (Table 5 "Idle Power").
    embodied_carbon_g:
        Total embodied carbon of the node, in gCO2e (from manufacturer
        datasheets or the SCARIF estimator).
    node_count:
        How many identical nodes the machine has (used by the batch
        simulator's queue model).
    dram_gb:
        Installed DRAM, used by the SCARIF-style embodied estimator.
    """

    name: str
    cpu: CPUSpec
    sockets: int = 1
    year_deployed: int = 2020
    idle_power_watts: float = 0.0
    embodied_carbon_g: float = 0.0
    node_count: int = 1
    dram_gb: int = 64

    def __post_init__(self) -> None:
        if self.sockets <= 0:
            raise ValueError(f"Node {self.name!r}: sockets must be positive")
        if self.node_count <= 0:
            raise ValueError(f"Node {self.name!r}: node_count must be positive")
        if self.idle_power_watts < 0:
            raise ValueError(f"Node {self.name!r}: idle power cannot be negative")

    # ------------------------------------------------------------------
    # Derived quantities
    # ------------------------------------------------------------------
    @property
    def cores(self) -> int:
        """Total physical cores on the node."""
        return self.cpu.cores * self.sockets

    @property
    def tdp_watts(self) -> float:
        """Total CPU TDP of the node (all sockets), in watts.

        This is the ``TDP_R`` of Eq. (1).
        """
        return self.cpu.tdp_watts * self.sockets

    @property
    def peak_gflops(self) -> float:
        """Aggregate peak GFLOP/s across sockets."""
        return self.cpu.peak_gflops * self.sockets

    @property
    def peak_gflops_per_core(self) -> float:
        """Peak GFLOP/s per core — the per-thread peak the ``Peak``
        accounting baseline charges for."""
        return self.peak_gflops / self.cores

    def age_years(self, current_year: int) -> int:
        """Whole years since deployment (floored at zero)."""
        return max(0, current_year - self.year_deployed)

    # ------------------------------------------------------------------
    # Power curve
    # ------------------------------------------------------------------
    def power_at_utilization(self, utilization: float) -> float:
        """Node CPU power (W) at a fractional utilization in ``[0, 1]``.

        A standard affine model: idle power plus a load-proportional
        share of the idle→TDP headroom.  Real processors are mildly
        super-linear near the top of the range; the affine model is what
        RAPL-based software power meters fit in practice [20, 46], and
        it is all the accounting methods require.
        """
        u = min(1.0, max(0.0, utilization))
        return self.idle_power_watts + u * (self.tdp_watts - self.idle_power_watts)

    def energy_at_utilization(self, utilization: float, seconds: float) -> float:
        """Energy (J) for a run at constant ``utilization`` for ``seconds``."""
        return self.power_at_utilization(utilization) * seconds

    def node_hours(self, seconds: float) -> float:
        """Node-hours for a run of ``seconds`` on one node."""
        return seconds / SECONDS_PER_HOUR


@dataclass(frozen=True)
class GPUNodeSpec:
    """A GPU node configuration: ``count`` identical GPUs of one model.

    The paper (Section 4.2.2) allocates whole GPUs to jobs and computes
    an embodied-carbon rate per GPU-count configuration (Table 2), so
    the configuration — not the individual board — is the priced unit.
    """

    gpu: GPUSpec
    count: int
    host_idle_power_watts: float = 0.0
    embodied_carbon_g: float = 0.0

    def __post_init__(self) -> None:
        if self.count <= 0:
            raise ValueError("GPU count must be positive")

    @property
    def name(self) -> str:
        return f"{self.gpu.model}x{self.count}"

    @property
    def tdp_watts(self) -> float:
        """Aggregate board TDP across the configured GPUs."""
        return self.gpu.tdp_watts * self.count

    @property
    def peak_gflops(self) -> float:
        """Aggregate peak single-precision GFLOP/s."""
        return self.gpu.peak_gflops * self.count

    def age_years(self, current_year: int) -> int:
        return max(0, current_year - self.gpu.year)


# Convenience alias: accounting code accepts either node kind.
AnyNode = NodeSpec | GPUNodeSpec
