"""Hardware substrate: node models, the paper's machine catalog, simulated
RAPL energy counters, performance-counter traces, and the linear power
model used to disaggregate node energy into per-process energy.

The paper measures energy on real Intel/AMD CPUs via RAPL and on NVIDIA
GPUs via NVML.  Neither is available here, so this package provides a
parametric substitute: every node carries a utilization-dependent power
curve, and :class:`repro.hardware.rapl.SimulatedRAPL` exposes the same
wrap-around MSR counter semantics client code would see on hardware.
"""

from repro.hardware.node import CPUSpec, GPUSpec, NodeSpec, GPUNodeSpec
from repro.hardware.catalog import (
    MachineCatalog,
    cpu_experiment_nodes,
    gpu_experiment_nodes,
    simulation_machines,
)
from repro.hardware.counters import CounterSample, CounterTraceGenerator
from repro.hardware.rapl import SimulatedRAPL, RAPLDomain
from repro.hardware.nvml import SimulatedNVML
from repro.hardware.power_model import (
    LinearPowerModel,
    PowerModelFitter,
    disaggregate_energy,
)

__all__ = [
    "CPUSpec",
    "GPUSpec",
    "NodeSpec",
    "GPUNodeSpec",
    "MachineCatalog",
    "cpu_experiment_nodes",
    "gpu_experiment_nodes",
    "simulation_machines",
    "CounterSample",
    "CounterTraceGenerator",
    "SimulatedRAPL",
    "RAPLDomain",
    "SimulatedNVML",
    "LinearPowerModel",
    "PowerModelFitter",
    "disaggregate_energy",
]
