"""Simulated RAPL (Running Average Power Limit) energy counters.

The paper's endpoint monitor "polls data from the RAPL interface" (§4.1).
Real RAPL exposes monotonically increasing energy counters per power
domain in a machine-specific energy unit (typically ~61 microjoules on
server parts) stored in a 32-bit register that silently wraps around —
both quirks routinely bite energy-measurement code [29], so the simulated
meter reproduces them and the monitor must handle them.

:class:`SimulatedRAPL` integrates a caller-supplied power function over
time.  The endpoint (:mod:`repro.faas.endpoint`) sets that function from
the node's utilization; tests drive it with analytic shapes.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Callable

#: Default RAPL energy-status unit: 15.3 microjoules... rounded: real
#: Intel parts use 1/2^16 J ~= 15.26 uJ for package domains on clients and
#: ~61 uJ granularity on servers; we use the documented 1/2^16 J default.
DEFAULT_ENERGY_UNIT_J: float = 1.0 / (1 << 16)

#: RAPL counters are 32-bit; they wrap at 2^32 energy units.
COUNTER_WRAP: int = 1 << 32


class RAPLDomain(enum.Enum):
    """RAPL power domains exposed by the simulated meter."""

    PACKAGE = "package"
    DRAM = "dram"


@dataclass
class _DomainState:
    raw_counter: int = 0
    residual_j: float = 0.0  # energy not yet large enough to tick a unit


class SimulatedRAPL:
    """A per-node RAPL meter with wrap-around counter semantics.

    Parameters
    ----------
    package_power:
        Callable ``t -> watts`` giving package power at absolute time
        ``t`` (seconds).
    dram_power:
        Callable for the DRAM domain; defaults to a fixed fraction of
        package power, which is a reasonable stand-in for capacity-
        proportional DRAM energy.
    energy_unit_j:
        Size of one counter increment in joules.
    start_time:
        Absolute time of meter creation.
    """

    def __init__(
        self,
        package_power: Callable[[float], float],
        dram_power: Callable[[float], float] | None = None,
        energy_unit_j: float = DEFAULT_ENERGY_UNIT_J,
        start_time: float = 0.0,
    ) -> None:
        if energy_unit_j <= 0:
            raise ValueError("energy_unit_j must be positive")
        self._package_power = package_power
        self._dram_power = dram_power or (lambda t: 0.12 * package_power(t))
        self.energy_unit_j = energy_unit_j
        self._now = start_time
        self._domains: dict[RAPLDomain, _DomainState] = {
            RAPLDomain.PACKAGE: _DomainState(),
            RAPLDomain.DRAM: _DomainState(),
        }

    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current meter time (seconds)."""
        return self._now

    def advance(self, dt: float, steps: int = 16) -> None:
        """Advance the meter by ``dt`` seconds, integrating power.

        Power is integrated with the midpoint rule over ``steps``
        sub-intervals, which is exact for piecewise-linear power curves
        at modest cost.
        """
        if dt < 0:
            raise ValueError("cannot advance time backwards")
        if dt == 0:
            return
        h = dt / steps
        for domain, power_fn in (
            (RAPLDomain.PACKAGE, self._package_power),
            (RAPLDomain.DRAM, self._dram_power),
        ):
            energy = 0.0
            for k in range(steps):
                t_mid = self._now + (k + 0.5) * h
                p = power_fn(t_mid)
                if p < 0:
                    raise ValueError(f"negative power {p} at t={t_mid}")
                energy += p * h
            self._credit(domain, energy)
        self._now += dt

    def _credit(self, domain: RAPLDomain, energy_j: float) -> None:
        state = self._domains[domain]
        total = state.residual_j + energy_j
        ticks = int(total / self.energy_unit_j)
        state.residual_j = total - ticks * self.energy_unit_j
        state.raw_counter = (state.raw_counter + ticks) % COUNTER_WRAP

    # ------------------------------------------------------------------
    def read_raw(self, domain: RAPLDomain = RAPLDomain.PACKAGE) -> int:
        """Raw counter value (in energy units, wraps at 2^32)."""
        return self._domains[domain].raw_counter

    def read_joules(self, domain: RAPLDomain = RAPLDomain.PACKAGE) -> float:
        """Counter value converted to joules (still wraps)."""
        return self.read_raw(domain) * self.energy_unit_j


def counter_delta_joules(
    before_raw: int, after_raw: int, energy_unit_j: float = DEFAULT_ENERGY_UNIT_J
) -> float:
    """Energy between two raw readings, handling a single wrap-around.

    This is the canonical client-side idiom for RAPL: compute the modular
    difference so a reading that wrapped between polls still yields the
    correct (positive) energy, provided at most one wrap occurred.
    """
    delta = (after_raw - before_raw) % COUNTER_WRAP
    return delta * energy_unit_j


@dataclass
class EnergyReading:
    """A timestamped pair of raw RAPL readings emitted by the endpoint."""

    node: str
    timestamp: float
    package_raw: int
    dram_raw: int
    energy_unit_j: float = DEFAULT_ENERGY_UNIT_J

    window: float = field(default=0.0)

    def package_joules_since(self, earlier: "EnergyReading") -> float:
        """Package energy accumulated since an earlier reading."""
        return counter_delta_joules(
            earlier.package_raw, self.package_raw, self.energy_unit_j
        )
