"""Linear power model and per-process energy disaggregation.

RAPL measures whole-package energy, but green-ACCESS provisions jobs by
core, so the monitor must split node energy between concurrent processes.
The paper's approach (§4.1, component 3, following SmartWatts [20] and
Schmitt et al. [46]) is:

1. collect per-process hardware counters and node-level RAPL energy,
2. periodically fit a power model ``P = b + w . x`` between summed
   counters ``x`` and measured node power,
3. use the fitted model to attribute each interval's *dynamic* energy to
   processes in proportion to their modelled power, and split the idle
   (static) energy by provisioned core share.

The fit is ordinary least squares with non-negativity clipping — power
models with negative counter weights are physically meaningless and make
attribution unstable.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

import numpy as np

from repro.hardware.counters import COUNTER_FEATURES


@dataclass(frozen=True)
class LinearPowerModel:
    """``power = idle_watts + weights . counters`` (watts).

    ``weights`` is ordered like
    :data:`repro.hardware.counters.COUNTER_FEATURES`.
    """

    idle_watts: float
    weights: np.ndarray

    def __post_init__(self) -> None:
        if len(self.weights) != len(COUNTER_FEATURES):
            raise ValueError(
                f"expected {len(COUNTER_FEATURES)} weights, got {len(self.weights)}"
            )

    def predict(self, counters: np.ndarray) -> np.ndarray:
        """Predict power (W) for an ``(n, 2)`` counter matrix."""
        counters = np.atleast_2d(np.asarray(counters, dtype=float))
        return self.idle_watts + counters @ self.weights

    def dynamic_power(self, counters: np.ndarray) -> np.ndarray:
        """Counter-driven (above-idle) component of predicted power."""
        counters = np.atleast_2d(np.asarray(counters, dtype=float))
        return counters @ self.weights


class PowerModelFitter:
    """Incrementally refittable OLS power model.

    The monitor streams ``(counter_vector, measured_watts)`` observations
    into :meth:`observe` and calls :meth:`fit` periodically.  A ridge
    term keeps the fit stable when one counter barely varies (e.g. a
    fleet of near-identical compute-bound jobs).

    The fit is maintained as **running moments** (``n``, ``sum x``,
    ``sum x xT``, ``sum y``, ``sum x y``): each observation is a rank-1
    update, and :meth:`fit` solves the (d+1)-dimensional standardized
    normal equations directly from the moments — O(d^2) per refit
    instead of rebuilding the full n-row design matrix.  This is what
    keeps the monitor's refit-per-interval behaviour cheap once warm
    (the moments describe exactly the retained observation window, so
    the solution matches the batch least-squares fit on that window).
    """

    #: Evictions between full moment rebuilds (bounds subtraction drift).
    _REBUILD_EVERY = 4096

    def __init__(self, ridge: float = 1e-9, max_observations: int = 4096) -> None:
        if max_observations < 8:
            raise ValueError("need at least 8 observations of history")
        self.ridge = ridge
        self.max_observations = max_observations
        #: Deques so window eviction is an O(1) popleft, not a list shift.
        self._x: deque[np.ndarray] = deque()
        self._y: deque[float] = deque()
        d = len(COUNTER_FEATURES)
        self._sum_x = np.zeros(d)
        self._sum_outer = np.zeros((d, d))
        self._sum_y = 0.0
        self._sum_xy = np.zeros(d)
        self._evictions = 0

    def observe(self, counters: np.ndarray, watts: float) -> None:
        """Record one node-level observation (a rank-1 moment update)."""
        vec = np.asarray(counters, dtype=float).ravel()
        if vec.shape != (len(COUNTER_FEATURES),):
            raise ValueError(
                f"counter vector must have shape ({len(COUNTER_FEATURES)},)"
            )
        if watts < 0:
            raise ValueError("measured power cannot be negative")
        self._x.append(vec)
        self._y.append(float(watts))
        self._sum_x += vec
        self._sum_outer += np.outer(vec, vec)
        self._sum_y += watts
        self._sum_xy += vec * watts
        if len(self._x) > self.max_observations:
            # Keep the newest window; power behaviour drifts with workload
            # mix.  Downdate the evicted row and occasionally rebuild the
            # moments from the window to keep cancellation error bounded.
            old_x = self._x.popleft()
            old_y = self._y.popleft()
            self._evictions += 1
            if self._evictions % self._REBUILD_EVERY == 0:
                self._rebuild_moments()
            else:
                self._sum_x -= old_x
                self._sum_outer -= np.outer(old_x, old_x)
                self._sum_y -= old_y
                self._sum_xy -= old_x * old_y

    def _rebuild_moments(self) -> None:
        x = np.array(self._x)
        y = np.array(self._y)
        self._sum_x = x.sum(axis=0)
        self._sum_outer = x.T @ x
        self._sum_y = float(y.sum())
        self._sum_xy = x.T @ y

    @property
    def n_observations(self) -> int:
        return len(self._x)

    def fit(self) -> LinearPowerModel:
        """Fit and return the current model.

        Counters are standardized before the ridge solve so the penalty
        is scale-free; negative counter weights are clipped to zero and
        the intercept floored at zero.  The standardized gram matrix is
        assembled from the running moments (``aT a`` for ``a = [1, x/s]``
        is exactly ``[[n, sum(x)/s], [sum(x)/s, sum(x xT)/(s sT)]]``),
        so no per-observation work happens here.
        """
        n = len(self._x)
        d = len(COUNTER_FEATURES)
        if n < d + 1:
            raise RuntimeError(
                f"need at least {d + 1} observations, have {n}"
            )
        mean = self._sum_x / n
        variance = np.maximum(self._sum_outer.diagonal() / n - mean * mean, 0.0)
        scale = np.sqrt(variance)
        scale[scale == 0] = 1.0
        gram = np.empty((d + 1, d + 1))
        gram[0, 0] = n
        gram[0, 1:] = gram[1:, 0] = self._sum_x / scale
        gram[1:, 1:] = self._sum_outer / np.outer(scale, scale)
        gram += self.ridge * np.eye(d + 1)
        rhs = np.empty(d + 1)
        rhs[0] = self._sum_y
        rhs[1:] = self._sum_xy / scale
        coef = np.linalg.solve(gram, rhs)
        intercept = max(0.0, float(coef[0]))
        weights = np.clip(coef[1:] / scale, 0.0, None)
        return LinearPowerModel(idle_watts=intercept, weights=weights)


def disaggregate_energy(
    model: LinearPowerModel,
    interval_energy_j: float,
    interval_s: float,
    process_counters: dict[int, np.ndarray],
    process_cores: dict[int, int],
    total_cores: int,
    charge_idle: bool = False,
) -> dict[int, float]:
    """Split one interval's node energy across processes.

    Parameters
    ----------
    model:
        The fitted power model.
    interval_energy_j:
        Measured node energy over the interval (from RAPL deltas).
    interval_s:
        Interval length in seconds.
    process_counters:
        Per-pid counter vectors observed during the interval.
    process_cores:
        Per-pid provisioned core counts.
    total_cores:
        Cores on the node.
    charge_idle:
        If true, the idle portion of the interval energy is also charged,
        split by provisioned-core share.  green-ACCESS charges only the
        *measured task* energy here (the potential-use half of Eq. (1)
        handles capacity), so the default is False: idle energy stays
        with the provider.

    Returns
    -------
    dict mapping pid to attributed joules.  Attributions are
    non-negative and sum to at most ``interval_energy_j``.
    """
    if interval_energy_j < 0:
        raise ValueError("interval energy cannot be negative")
    if interval_s <= 0:
        raise ValueError("interval must have positive length")
    if not process_counters:
        return {}

    pids = sorted(process_counters)
    counters = np.array([process_counters[p] for p in pids], dtype=float)
    dyn_power = np.clip(model.dynamic_power(counters), 0.0, None)

    idle_energy = min(interval_energy_j, model.idle_watts * interval_s)
    dynamic_energy = max(0.0, interval_energy_j - idle_energy)

    total_dyn = float(dyn_power.sum())
    if total_dyn > 0:
        dyn_share = dyn_power / total_dyn
    else:
        # No counter activity: split dynamic energy by core share.
        cores = np.array([process_cores.get(p, 1) for p in pids], dtype=float)
        dyn_share = cores / cores.sum()

    attributed = dynamic_energy * dyn_share

    if charge_idle and total_cores > 0:
        cores = np.array([process_cores.get(p, 1) for p in pids], dtype=float)
        attributed = attributed + idle_energy * cores / total_cores

    return {pid: float(e) for pid, e in zip(pids, attributed)}
