"""The paper's machine catalog.

Three machine families appear in the paper:

* **CPU experiment nodes** (§4.2.1, Tables 1 and 4): Desktop (i7-10700),
  Cascade Lake (2x Xeon 6248R), Ice Lake (2x Xeon Platinum 8380) and
  Zen3 (2x EPYC 7763).
* **GPU experiment nodes** (§4.2.2, Tables 2 and 3): P100 / V100 / A100
  configurations of 1-8 GPUs on Grid'5000.
* **Simulation machines** (§5.1, Table 5): TAMU FASTER, Desktop, the
  Institutional Cluster (IC), and ALCF Theta.

Calibration
-----------
The paper reports *derived* quantities (normalized costs, carbon rates,
operational/embodied milligrams).  Where the underlying inputs are not
printed, we invert the published tables to recover them and record the
result here as named constants:

* Node embodied-carbon totals are recovered from Table 4's accelerated-
  depreciation column via ``C = rate * 8760 / (0.4 * 0.6**age)``.
* Per-run grid carbon intensities are recovered from the operational-
  carbon entries (``I = op_carbon / kWh``).  Table 1 and Table 4 were
  evidently measured at different times (their implied intensities
  differ), so each experiment carries its own intensity snapshot.
* GPU configuration carbon rates are taken directly from Table 2 (the
  paper computed them with SCARIF [25]); :mod:`repro.carbon.scarif`
  regenerates them approximately from board specs.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.hardware.node import CPUSpec, GPUSpec, GPUNodeSpec, NodeSpec

#: Calendar year at which the Section 4 hardware experiments were run.
#: Table 4 prints machine ages of 3/4/2/1 years; with deployment years
#: 2021/2020/2022/2023 this puts the experiments in 2024.
CPU_EXPERIMENT_YEAR: int = 2024

#: Calendar year at which the GPU experiments were run (Table 2 lists
#: deployment years 2018/2019/2021 for P100/V100/A100).
GPU_EXPERIMENT_YEAR: int = 2024

#: Simulation start (Section 5.1: "assuming the simulation starts in
#: January 2023").
SIMULATION_YEAR: int = 2023


# ---------------------------------------------------------------------------
# CPU models
# ---------------------------------------------------------------------------
# ``peak_gflops`` holds the PassMark-style per-socket rating the paper's
# ``Peak`` baseline charges with [39]; the per-thread ratios between these
# numbers are what Table 1's Peak column encodes.
I7_10700 = CPUSpec(
    model="Intel Core i7-10700",
    cores=16,  # logical CPUs, as counted in Table 5
    tdp_watts=65.0,
    base_clock_ghz=2.9,
    peak_gflops=16 * 2.880,
    year=2020,
)

XEON_6248R = CPUSpec(
    model="Intel Xeon 6248R",
    cores=24,
    tdp_watts=205.0,
    base_clock_ghz=3.0,
    peak_gflops=24 * 2.268,
    year=2020,
)

XEON_PLATINUM_8380 = CPUSpec(
    model="Intel Xeon Platinum 8380",
    cores=40,
    tdp_watts=270.0,
    base_clock_ghz=2.3,
    peak_gflops=40 * 2.425,
    year=2021,
)

EPYC_7763 = CPUSpec(
    model="AMD EPYC 7763",
    cores=64,
    tdp_watts=280.0,
    base_clock_ghz=2.45,
    peak_gflops=64 * 2.528,
    year=2021,
)

XEON_8352Y = CPUSpec(
    model="Intel Xeon 8352Y",
    cores=32,
    tdp_watts=205.0,
    base_clock_ghz=2.2,
    peak_gflops=32 * 2.20,
    year=2021,
)

KNL_7230 = CPUSpec(
    model="Intel KNL 7230",
    cores=64,
    tdp_watts=215.0,
    base_clock_ghz=1.3,
    peak_gflops=64 * 0.85,
    year=2016,
)


# ---------------------------------------------------------------------------
# CPU experiment nodes (Tables 1 and 4)
# ---------------------------------------------------------------------------
# Embodied-carbon totals recovered from Table 4's accelerated column
# (see module docstring). Values in gCO2e per node.
DESKTOP_NODE = NodeSpec(
    name="Desktop",
    cpu=I7_10700,
    sockets=1,
    year_deployed=2021,
    idle_power_watts=6.51,
    embodied_carbon_g=84_200.0,
    dram_gb=32,
)

CASCADE_LAKE_NODE = NodeSpec(
    name="Cascade Lake",
    cpu=XEON_6248R,
    sockets=2,
    year_deployed=2020,
    idle_power_watts=136.0,
    embodied_carbon_g=234_200.0,
    dram_gb=192,
)

ICE_LAKE_NODE = NodeSpec(
    name="Ice Lake",
    cpu=XEON_PLATINUM_8380,
    sockets=2,
    year_deployed=2022,
    idle_power_watts=155.0,
    embodied_carbon_g=635_100.0,
    dram_gb=256,
)

ZEN3_NODE = NodeSpec(
    name="Zen3",
    cpu=EPYC_7763,
    sockets=2,
    year_deployed=2023,
    idle_power_watts=150.0,
    embodied_carbon_g=680_000.0,
    dram_gb=256,
)

#: The four Section 4.2.1 nodes, in the order Tables 1 and 4 print them.
CPU_EXPERIMENT_NODES: tuple[NodeSpec, ...] = (
    DESKTOP_NODE,
    CASCADE_LAKE_NODE,
    ICE_LAKE_NODE,
    ZEN3_NODE,
)

#: Grid carbon intensity (gCO2e/kWh) at the time of the Table 1 cost-
#: comparison run, recovered from Table 1's CBA column.
TABLE1_CARBON_INTENSITY: dict[str, float] = {
    "Desktop": 413.0,
    "Cascade Lake": 296.0,
    "Ice Lake": 358.0,
    "Zen3": 322.0,
}

#: Grid carbon intensity at the time of the Table 4 embodied-carbon run,
#: recovered from Table 4's operational column.
TABLE4_CARBON_INTENSITY: dict[str, float] = {
    "Desktop": 413.0,
    "Cascade Lake": 282.0,
    "Ice Lake": 164.0,
    "Zen3": 257.0,
}

#: Cores the green-ACCESS runtime provisions for the Cholesky function on
#: each node (the monitor's disaggregation charges the TDP share of these
#: cores in Eq. (1)).  Recovered from Table 1's EBA column.
CHOLESKY_PROVISIONED_CORES: dict[str, int] = {
    "Desktop": 8,
    "Cascade Lake": 8,
    "Ice Lake": 6,
    "Zen3": 7,
}


# ---------------------------------------------------------------------------
# GPU experiment nodes (Tables 2 and 3)
# ---------------------------------------------------------------------------
P100 = GPUSpec(model="P100", year=2018, peak_gflops=6_700.0, tdp_watts=250.0)
V100 = GPUSpec(model="V100", year=2019, peak_gflops=14_000.0, tdp_watts=250.0)
A100 = GPUSpec(model="A100", year=2021, peak_gflops=18_000.0, tdp_watts=400.0)

#: Average grid carbon intensity of the Grid'5000 sites (Table 2 caption).
GPU_CARBON_INTENSITY: float = 53.0

#: Embodied carbon rate (gCO2e per hour) per GPU configuration, directly
#: from Table 2 (computed there with SCARIF).  Keys are (model, count).
GPU_CARBON_RATE: dict[tuple[str, int], float] = {
    ("P100", 1): 8.5,
    ("P100", 2): 9.1,
    ("V100", 1): 19.0,
    ("V100", 2): 20.0,
    ("V100", 4): 23.0,
    ("V100", 8): 28.0,
    ("A100", 1): 87.0,
    ("A100", 2): 93.0,
    ("A100", 4): 106.0,
    ("A100", 8): 131.0,
}


def gpu_experiment_nodes() -> list[GPUNodeSpec]:
    """All GPU configurations of Table 3, in table order."""
    by_model = {"P100": P100, "V100": V100, "A100": A100}
    nodes = []
    for (model, count), _rate in GPU_CARBON_RATE.items():
        nodes.append(GPUNodeSpec(gpu=by_model[model], count=count))
    return nodes


# ---------------------------------------------------------------------------
# Simulation machines (Table 5)
# ---------------------------------------------------------------------------
# Embodied totals recovered from Table 5's carbon-rate column evaluated at
# the 2023 simulation year (ages 0/1/2/6).
FASTER_NODE = NodeSpec(
    name="FASTER",
    cpu=XEON_8352Y,
    sockets=2,
    year_deployed=2023,
    idle_power_watts=205.0,
    embodied_carbon_g=2_303_880.0,
    node_count=16,
    dram_gb=256,
)

SIM_DESKTOP_NODE = NodeSpec(
    name="Desktop",
    cpu=I7_10700,
    sockets=1,
    year_deployed=2022,
    idle_power_watts=6.51,
    embodied_carbon_g=445_300.0,
    node_count=1,
    dram_gb=32,
)

IC_NODE = NodeSpec(
    name="IC",
    cpu=XEON_6248R,
    sockets=2,
    year_deployed=2021,
    idle_power_watts=136.0,
    embodied_carbon_g=1_015_800.0,
    node_count=12,
    dram_gb=192,
)

THETA_NODE = NodeSpec(
    name="Theta",
    cpu=KNL_7230,
    sockets=1,
    year_deployed=2017,
    idle_power_watts=110.0,
    embodied_carbon_g=938_500.0,
    node_count=24,
    dram_gb=208,
)

#: The four Section 5 machines, in the order Table 5 prints them.
SIMULATION_MACHINES: tuple[NodeSpec, ...] = (
    FASTER_NODE,
    SIM_DESKTOP_NODE,
    IC_NODE,
    THETA_NODE,
)

#: Yearly-average grid carbon intensity (gCO2e/kWh) per simulation
#: machine (Table 5, last column).
SIMULATION_CARBON_INTENSITY: dict[str, float] = {
    "FASTER": 389.0,
    "Desktop": 454.0,
    "IC": 454.0,
    "Theta": 502.0,
}

#: Low-carbon scenario (§5.6): each machine is re-homed to a grid region
#: with high temporal variability (Fig. 7b).
LOW_CARBON_REGION: dict[str, str] = {
    "IC": "AU-SA",
    "FASTER": "CA-ON",
    "Desktop": "NO-NO2",
    "Theta": "DK-BHM",
}


# ---------------------------------------------------------------------------
# Catalog facade
# ---------------------------------------------------------------------------
@dataclass
class MachineCatalog:
    """Lookup facade over the paper's machines.

    ``MachineCatalog()`` loads every machine in the paper; experiments
    pull the subset they need by name.  A custom catalog can be built by
    passing explicit node lists, which the tests use to fabricate small
    fleets.
    """

    cpu_nodes: tuple[NodeSpec, ...] = CPU_EXPERIMENT_NODES
    sim_machines: tuple[NodeSpec, ...] = SIMULATION_MACHINES
    gpu_nodes: tuple[GPUNodeSpec, ...] = field(
        default_factory=lambda: tuple(gpu_experiment_nodes())
    )

    def cpu_node(self, name: str) -> NodeSpec:
        """Return the Section 4 CPU node called ``name``."""
        for node in self.cpu_nodes:
            if node.name == name:
                return node
        raise KeyError(f"unknown CPU node {name!r}")

    def sim_machine(self, name: str) -> NodeSpec:
        """Return the Section 5 simulation machine called ``name``."""
        for node in self.sim_machines:
            if node.name == name:
                return node
        raise KeyError(f"unknown simulation machine {name!r}")

    def gpu_config(self, model: str, count: int) -> GPUNodeSpec:
        """Return the GPU configuration ``model`` x ``count``."""
        for node in self.gpu_nodes:
            if node.gpu.model == model and node.count == count:
                return node
        raise KeyError(f"unknown GPU configuration {model!r} x{count}")

    @property
    def cpu_node_names(self) -> list[str]:
        return [n.name for n in self.cpu_nodes]

    @property
    def sim_machine_names(self) -> list[str]:
        return [n.name for n in self.sim_machines]


def cpu_experiment_nodes() -> list[NodeSpec]:
    """The four Section 4.2.1 CPU nodes (Desktop, Cascade Lake, Ice Lake,
    Zen3), in table order."""
    return list(CPU_EXPERIMENT_NODES)


def simulation_machines() -> list[NodeSpec]:
    """The four Section 5 machines (FASTER, Desktop, IC, Theta)."""
    return list(SIMULATION_MACHINES)
