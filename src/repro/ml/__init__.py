"""Small ML substrate: EM Gaussian mixture and a KNN regressor.

The paper's simulation methodology (§5.2) generates realistic hardware
performance counters for each job with a **Gaussian Mixture Model**
trained on Institutional Cluster data, then predicts per-machine runtime
and power with a **KNN** model trained on benchmark applications
(following Pham et al. [43]).  scikit-learn is not available offline, so
both are implemented here from scratch on NumPy.
"""

from repro.ml.gmm import GaussianMixture
from repro.ml.knn import KNNRegressor

__all__ = ["GaussianMixture", "KNNRegressor"]
