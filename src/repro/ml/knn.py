"""K-nearest-neighbour regression (the Pham et al. [43] predictor).

The paper predicts a job's runtime and power on machine B from its
hardware counters measured on machine A, using a KNN trained on
benchmark applications profiled on both machines.  Features are
standardized (counters span orders of magnitude) and predictions are
inverse-distance-weighted means of the neighbours' targets; multi-output
targets are supported so runtime and power predict jointly.
"""

from __future__ import annotations

import numpy as np


class KNNRegressor:
    """Inverse-distance-weighted KNN regressor.

    Parameters
    ----------
    k:
        Neighbours consulted per query (clipped to the training size).
    standardize:
        Whether to z-score features using training statistics.
    """

    def __init__(self, k: int = 3, standardize: bool = True) -> None:
        if k < 1:
            raise ValueError("k must be >= 1")
        self.k = k
        self.standardize = standardize
        self._x: np.ndarray | None = None
        self._y: np.ndarray | None = None
        self._mean: np.ndarray | None = None
        self._scale: np.ndarray | None = None
        self._single_output = False

    def fit(self, x: np.ndarray, y: np.ndarray) -> "KNNRegressor":
        """Store the training set (KNN is lazy)."""
        x = np.atleast_2d(np.asarray(x, dtype=float))
        y = np.asarray(y, dtype=float)
        if y.ndim == 1:
            self._single_output = True
            y = y[:, None]
        if len(x) != len(y):
            raise ValueError("x and y must have the same number of rows")
        if len(x) == 0:
            raise ValueError("training set cannot be empty")
        if self.standardize:
            self._mean = x.mean(axis=0)
            scale = x.std(axis=0)
            scale[scale == 0] = 1.0
            self._scale = scale
            x = (x - self._mean) / self._scale
        self._x = x
        self._y = y
        return self

    def predict(self, x: np.ndarray) -> np.ndarray:
        """Predict targets for rows of ``x``."""
        if self._x is None or self._y is None:
            raise RuntimeError("model is not fitted")
        x = np.atleast_2d(np.asarray(x, dtype=float))
        if self.standardize:
            x = (x - self._mean) / self._scale

        # Full pairwise distances: training sets here are tiny (tens of
        # benchmark runs), so the O(n*q) matrix is the fast path.
        d2 = ((x[:, None, :] - self._x[None, :, :]) ** 2).sum(axis=-1)
        k = min(self.k, len(self._x))
        idx = np.argpartition(d2, k - 1, axis=1)[:, :k]
        rows = np.arange(len(x))[:, None]
        nd2 = d2[rows, idx]

        # Inverse-distance weights; exact matches get full weight.
        with np.errstate(divide="ignore"):
            w = 1.0 / np.sqrt(nd2)
        exact = ~np.isfinite(w)
        w = np.where(exact, 0.0, w)
        any_exact = exact.any(axis=1)
        w[any_exact] = exact[any_exact].astype(float)
        total = w.sum(axis=1, keepdims=True)
        # Standardizing near-constant features can overflow every
        # squared distance to inf, zeroing all the weights; fall back
        # to a uniform mean so the prediction stays a convex
        # combination of the neighbours instead of going NaN.
        degenerate = total == 0.0
        w = np.where(degenerate, 1.0, w)
        total = np.where(degenerate, float(k), total)
        w /= total

        preds = np.einsum("qk,qkt->qt", w, self._y[idx])
        return preds[:, 0] if self._single_output else preds
