"""Gaussian Mixture Model fit by Expectation-Maximization.

Full-covariance components, k-means++-style initialization, log-domain
responsibilities for numerical stability, and covariance regularization.
The API mirrors the scikit-learn estimator surface (``fit`` /
``sample`` / ``score_samples`` / ``predict``) that the paper's
methodology implies.
"""

from __future__ import annotations

import numpy as np


def _log_gaussian(x: np.ndarray, mean: np.ndarray, cov: np.ndarray) -> np.ndarray:
    """Log density of N(mean, cov) at rows of ``x``."""
    d = x.shape[1]
    chol = np.linalg.cholesky(cov)
    diff = x - mean
    # Solve L y = diff^T for the Mahalanobis term.
    y = np.linalg.solve(chol, diff.T)
    maha = (y**2).sum(axis=0)
    log_det = 2.0 * np.log(np.diag(chol)).sum()
    return -0.5 * (d * np.log(2.0 * np.pi) + log_det + maha)


class GaussianMixture:
    """EM-fitted Gaussian mixture.

    Parameters
    ----------
    n_components:
        Number of mixture components.
    max_iter, tol:
        EM stopping criteria (iterations / mean log-likelihood change).
    reg_covar:
        Diagonal regularization added to every covariance, scaled by the
        per-feature variance so the parameter is dimensionless.
    seed:
        Seed for initialization and :meth:`sample`.
    """

    def __init__(
        self,
        n_components: int = 3,
        max_iter: int = 200,
        tol: float = 1e-6,
        reg_covar: float = 1e-6,
        seed: int | None = 0,
    ) -> None:
        if n_components < 1:
            raise ValueError("need at least one component")
        self.n_components = n_components
        self.max_iter = max_iter
        self.tol = tol
        self.reg_covar = reg_covar
        self.seed = seed
        self.weights_: np.ndarray | None = None
        self.means_: np.ndarray | None = None
        self.covariances_: np.ndarray | None = None
        self.converged_: bool = False
        self.n_iter_: int = 0

    # ------------------------------------------------------------------
    def _init_params(self, x: np.ndarray, rng: np.random.Generator) -> None:
        n, d = x.shape
        # k-means++ style seeding: spread initial means out.
        means = [x[rng.integers(n)]]
        for _ in range(1, self.n_components):
            d2 = np.min(
                [np.sum((x - m) ** 2, axis=1) for m in means], axis=0
            )
            total = d2.sum()
            if total <= 0:
                means.append(x[rng.integers(n)])
                continue
            probs = d2 / total
            means.append(x[rng.choice(n, p=probs)])
        self.means_ = np.array(means)
        var = x.var(axis=0) + 1e-12
        self.covariances_ = np.array(
            [np.diag(var) for _ in range(self.n_components)]
        )
        self.weights_ = np.full(self.n_components, 1.0 / self.n_components)

    def _estimate_log_prob(self, x: np.ndarray) -> np.ndarray:
        """(n, k) matrix of log p(x | component) + log weight."""
        assert self.means_ is not None
        out = np.empty((x.shape[0], self.n_components))
        for k in range(self.n_components):
            out[:, k] = _log_gaussian(x, self.means_[k], self.covariances_[k])
        return out + np.log(self.weights_)

    # ------------------------------------------------------------------
    def fit(self, x: np.ndarray) -> "GaussianMixture":
        """Fit the mixture to rows of ``x``."""
        x = np.asarray(x, dtype=float)
        if x.ndim != 2:
            raise ValueError("x must be 2-D (n_samples, n_features)")
        n, d = x.shape
        if n < self.n_components:
            raise ValueError(
                f"need >= {self.n_components} samples, got {n}"
            )
        rng = np.random.default_rng(self.seed)
        self._init_params(x, rng)
        reg = self.reg_covar * (x.var(axis=0) + 1e-12)

        prev_ll = -np.inf
        for it in range(1, self.max_iter + 1):
            # E-step in log domain.
            log_prob = self._estimate_log_prob(x)
            log_norm = np.logaddexp.reduce(log_prob, axis=1)
            resp = np.exp(log_prob - log_norm[:, None])
            ll = log_norm.mean()

            # M-step.
            nk = resp.sum(axis=0) + 1e-12
            self.weights_ = nk / n
            self.means_ = (resp.T @ x) / nk[:, None]
            for k in range(self.n_components):
                diff = x - self.means_[k]
                cov = (resp[:, k][:, None] * diff).T @ diff / nk[k]
                cov[np.diag_indices(d)] += reg
                self.covariances_[k] = cov

            self.n_iter_ = it
            if abs(ll - prev_ll) < self.tol:
                self.converged_ = True
                break
            prev_ll = ll
        return self

    # ------------------------------------------------------------------
    def _check_fitted(self) -> None:
        if self.means_ is None:
            raise RuntimeError("model is not fitted")

    def score_samples(self, x: np.ndarray) -> np.ndarray:
        """Log-likelihood of each row of ``x`` under the mixture."""
        self._check_fitted()
        x = np.atleast_2d(np.asarray(x, dtype=float))
        return np.logaddexp.reduce(self._estimate_log_prob(x), axis=1)

    def predict(self, x: np.ndarray) -> np.ndarray:
        """Most likely component per row."""
        self._check_fitted()
        x = np.atleast_2d(np.asarray(x, dtype=float))
        return np.argmax(self._estimate_log_prob(x), axis=1)

    def sample(self, n: int, rng: np.random.Generator | None = None) -> np.ndarray:
        """Draw ``n`` samples from the fitted mixture."""
        self._check_fitted()
        if n < 1:
            raise ValueError("n must be positive")
        rng = rng if rng is not None else np.random.default_rng(self.seed)
        counts = rng.multinomial(n, self.weights_)
        chunks = []
        for k, c in enumerate(counts):
            if c == 0:
                continue
            chunks.append(
                rng.multivariate_normal(
                    self.means_[k], self.covariances_[k], size=c,
                    method="cholesky",
                )
            )
        out = np.vstack(chunks)
        rng.shuffle(out)
        return out
