"""The eight machine-selection policies of §5.3.

A policy sees, for one job at submission time, a per-machine
:class:`MachineView` (predicted runtime/energy, estimated queue wait,
and the cost the active accounting method would charge) and picks a
machine.  Single-machine policies are instances of
:class:`FixedMachinePolicy`.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass

from repro.sim.job import Job


@dataclass(slots=True)
class MachineView:
    """What a policy knows about one candidate machine for one job.

    A plain slots dataclass (not frozen): the engine builds one view per
    (arrival x eligible machine), so construction cost is a measurable
    part of the simulation hot loop.  Treat instances as immutable.
    """

    machine: str
    runtime_s: float
    energy_j: float
    queue_wait_s: float
    cost: float

    @property
    def completion_s(self) -> float:
        """Expected completion latency: queue wait + runtime."""
        return self.queue_wait_s + self.runtime_s


class Policy(abc.ABC):
    """Machine-selection strategy."""

    name: str = "?"

    @abc.abstractmethod
    def select(self, job: Job, views: list[MachineView]) -> str:
        """Choose one of the candidate machines for ``job``.

        ``views`` is non-empty and contains only machines the job is
        eligible to run on.
        """

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}()"


class GreedyPolicy(Policy):
    """Minimize allocation cost under the active accounting method."""

    name = "Greedy"

    def select(self, job: Job, views: list[MachineView]) -> str:
        return min(views, key=lambda v: v.cost).machine


class EnergyPolicy(Policy):
    """Minimize predicted energy."""

    name = "Energy"

    def select(self, job: Job, views: list[MachineView]) -> str:
        return min(views, key=lambda v: v.energy_j).machine


class MixedPolicy(Policy):
    """Balance cost and completion time.

    "Select machine with the least allocation cost *unless* another
    machine can complete the job in half the time, in which case select
    that machine."  The ``speedup_threshold`` (2x in the paper) is a
    parameter so the ablation benchmark can sweep it.
    """

    name = "Mixed"

    def __init__(self, speedup_threshold: float = 2.0) -> None:
        if speedup_threshold < 1.0:
            raise ValueError("speedup threshold must be >= 1")
        self.speedup_threshold = speedup_threshold

    def select(self, job: Job, views: list[MachineView]) -> str:
        cheapest = min(views, key=lambda v: v.cost)
        fastest = min(views, key=lambda v: v.completion_s)
        if (
            fastest.machine != cheapest.machine
            and fastest.completion_s
            <= cheapest.completion_s / self.speedup_threshold
        ):
            return fastest.machine
        return cheapest.machine


class EFTPolicy(Policy):
    """Earliest finish time: minimize queue wait + runtime."""

    name = "EFT"

    def select(self, job: Job, views: list[MachineView]) -> str:
        return min(views, key=lambda v: v.completion_s).machine


class RuntimePolicy(Policy):
    """Minimize runtime, ignoring queues, energy, and cost."""

    name = "Runtime"

    def select(self, job: Job, views: list[MachineView]) -> str:
        return min(views, key=lambda v: v.runtime_s).machine


class LargestFirstPolicy(Policy):
    """Largest-first greedy assignment for tiered worker fleets.

    The subset-strategy heuristic (ROADMAP item 3): prefer the largest
    (fastest) tier that can take the job *now* — i.e. whose estimated
    queue wait is zero, which is how a free worker slot surfaces in the
    view — and only spill down-tier when the larger tiers are saturated
    (their concurrency caps and core commitments both show up as queue
    wait).  If every tier is busy, queue on the least-backlogged one,
    preferring the larger tier on ties.

    Tier preference defaults to the tiered scenario's Large > Medium >
    Small; unknown machines sort after known tiers, alphabetically, so
    the policy degrades gracefully on non-tiered fleets.
    """

    name = "LargestFirst"

    #: Default preference order, largest tier first (kept in sync with
    #: ``repro.sim.scenarios.TIER_ORDER`` by a scenario test).
    DEFAULT_ORDER = ("Large", "Medium", "Small")

    def __init__(self, order: tuple[str, ...] | None = None) -> None:
        tiers = order if order is not None else self.DEFAULT_ORDER
        self._rank = {tier: i for i, tier in enumerate(tiers)}
        self._unknown = len(tiers)

    def _key(self, view: MachineView) -> tuple[int, str]:
        return (self._rank.get(view.machine, self._unknown), view.machine)

    def select(self, job: Job, views: list[MachineView]) -> str:
        ordered = sorted(views, key=self._key)
        for view in ordered:
            if view.queue_wait_s <= 0.0:
                return view.machine
        # min() keeps the first minimum, i.e. the largest tier on ties.
        return min(ordered, key=lambda v: v.queue_wait_s).machine


class FixedMachinePolicy(Policy):
    """Always submit to one machine (the Theta / IC / FASTER policies).

    Jobs not eligible on the fixed machine fall back to the fastest
    eligible machine (the paper's Desktop policy is absent for the same
    reason: 17% of jobs cannot run there)."""

    def __init__(self, machine: str) -> None:
        self.machine = machine
        self.name = machine

    def select(self, job: Job, views: list[MachineView]) -> str:
        for view in views:
            if view.machine == self.machine:
                return view.machine
        return min(views, key=lambda v: v.runtime_s).machine


def standard_policies(machines: list[str] | None = None) -> list[Policy]:
    """The eight §5.3 policies, in the paper's order.

    ``machines`` supplies the single-machine policy targets (defaults to
    Theta, IC, FASTER as in Fig. 5a).
    """
    fixed = machines if machines is not None else ["Theta", "IC", "FASTER"]
    return [
        GreedyPolicy(),
        EnergyPolicy(),
        MixedPolicy(),
        EFTPolicy(),
        RuntimePolicy(),
        *[FixedMachinePolicy(m) for m in fixed],
    ]
