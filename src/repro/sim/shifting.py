"""Carbon-aware temporal shifting — an extension beyond the paper.

§5.6 shows that CBA makes the *cheapest machine* vary with the hour;
the paper stops at spatial choice ("we do not allow job migration") and
cites temporal-shifting work [53, 58] as the complementary lever.  This
module adds that lever to the simulator: a deferral planner that holds a
job at submission and releases it at the cheapest intensity window
within a bounded delay.

The planner is deliberately simple and analyzable:

* For each candidate machine it scans release hours ``t + k`` for
  ``k = 0 .. max_delay_h`` and prices the job with Eq. (2) at each
  release time.
* It picks the (machine, delay) pair with the lowest cost, breaking
  ties toward earlier release.
* A ``patience`` factor discounts waiting: a delayed start must beat
  the immediate best by at least ``patience`` (relative), otherwise the
  job runs now — without this, tiny nighttime savings would defer the
  whole workload.

:class:`ShiftingSimulator` wraps the standard engine: deferred jobs
simply re-enter the event queue at their release time.  The release
ordering rides on the shared :class:`~repro.sim.events.EventCalendar`
(via the engine): the calendar stable-sorts the rewritten submission
times itself, so the wrapper hands over the shifted job list as-is and
every queueing/tie-break rule is the engine's own.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.accounting.base import AccountingMethod, UsageRecord
from repro.sim.engine import (
    MultiClusterSimulator,
    SimulationResult,
    pricing_for_sim_machine,
)
from repro.sim.job import Job
from repro.sim.policies import Policy
from repro.sim.scenarios import SimMachine
from repro.sim.workload import Workload
from repro.units import SECONDS_PER_HOUR


@dataclass(frozen=True)
class ShiftPlan:
    """The planner's decision for one job."""

    machine: str
    delay_s: float
    cost_now: float
    cost_at_release: float

    @property
    def savings_fraction(self) -> float:
        if self.cost_now <= 0:
            return 0.0
        return 1.0 - self.cost_at_release / self.cost_now


class TemporalShiftPlanner:
    """Chooses (machine, start delay) minimizing carbon cost.

    Parameters
    ----------
    machines:
        The scenario's machines (with their intensity traces).
    method:
        The accounting method that prices jobs (CBA is the interesting
        one; under EBA or Runtime the cost is time-invariant and the
        planner degenerates to "run now on the cheapest machine").
    max_delay_h:
        Longest a job may be held.
    patience:
        Minimum relative saving required to defer at all.
    """

    def __init__(
        self,
        machines: dict[str, SimMachine],
        method: AccountingMethod,
        max_delay_h: int = 12,
        patience: float = 0.05,
    ) -> None:
        if max_delay_h < 0:
            raise ValueError("max delay cannot be negative")
        if not 0.0 <= patience < 1.0:
            raise ValueError("patience must be in [0, 1)")
        self.machines = machines
        self.method = method
        self.max_delay_h = max_delay_h
        self.patience = patience
        self._pricings = {
            name: pricing_for_sim_machine(m) for name, m in machines.items()
        }

    def _cost(self, job: Job, machine: str, start_s: float) -> float:
        record = UsageRecord(
            machine=machine,
            duration_s=job.runtime_s[machine],
            energy_j=job.energy_j[machine],
            cores=job.cores,
            start_time_s=start_s,
        )
        return self.method.charge(record, self._pricings[machine])

    def plan(self, job: Job, now_s: float) -> ShiftPlan:
        """Best (machine, delay) for a job submitted at ``now_s``."""
        candidates = [m for m in job.eligible_machines if m in self.machines]
        if not candidates:
            raise ValueError(f"job {job.job_id} has no eligible machine")

        best_now = min(
            ((self._cost(job, m, now_s), m) for m in candidates),
            key=lambda pair: pair[0],
        )
        best_cost, best_machine, best_delay = best_now[0], best_now[1], 0.0

        for k in range(1, self.max_delay_h + 1):
            release = now_s + k * SECONDS_PER_HOUR
            for machine in candidates:
                cost = self._cost(job, machine, release)
                if cost < best_cost * (1.0 - 1e-12):
                    best_cost, best_machine, best_delay = (
                        cost,
                        machine,
                        k * SECONDS_PER_HOUR,
                    )

        # Apply the patience hurdle: defer only for a real saving.
        if best_delay > 0 and best_cost > best_now[0] * (1.0 - self.patience):
            return ShiftPlan(
                machine=best_now[1],
                delay_s=0.0,
                cost_now=best_now[0],
                cost_at_release=best_now[0],
            )
        return ShiftPlan(
            machine=best_machine,
            delay_s=best_delay,
            cost_now=best_now[0],
            cost_at_release=best_cost,
        )


class ShiftingSimulator:
    """Engine wrapper: defers each job per the planner, then simulates.

    Deferral is applied by rewriting submission times before the normal
    event-driven run, which preserves every queueing/accounting
    behaviour of :class:`MultiClusterSimulator` — a held job simply does
    not exist until its release time.
    """

    def __init__(
        self,
        machines: dict[str, SimMachine],
        method: AccountingMethod,
        policy: Policy,
        max_delay_h: int = 12,
        patience: float = 0.05,
    ) -> None:
        self.machines = machines
        self.method = method
        self.policy = policy
        self.planner = TemporalShiftPlanner(
            machines, method, max_delay_h=max_delay_h, patience=patience
        )

    def run(self, workload: Workload) -> SimulationResult:
        shifted_jobs = []
        for job in workload.jobs:
            plan = self.planner.plan(job, job.submit_s)
            shifted_jobs.append(
                Job(
                    job_id=job.job_id,
                    user=job.user,
                    cores=job.cores,
                    submit_s=job.submit_s + plan.delay_s,
                    runtime_s=job.runtime_s,
                    energy_j=job.energy_j,
                )
            )
        # No sort here: the engine's EventCalendar merges the rewritten
        # arrival stream itself (stable by submit time, so equal-time
        # releases keep submission order exactly as before).
        shifted = Workload(
            jobs=shifted_jobs, config=workload.config, machines=workload.machines
        )
        engine = MultiClusterSimulator(self.machines, self.method, self.policy)
        result = engine.run(shifted)
        return SimulationResult(
            policy=f"{self.policy.name}+shift",
            method=self.method.name,
            machines=result.machines,
            table=result.table,
        )
