"""Standard Workload Format (SWF) import/export.

The Parallel Workloads Archive's SWF is the lingua franca of batch-trace
research; real site logs (including the clusters behind the Patel
dataset) circulate in it.  This module lets the simulator consume real
traces and publish its synthetic ones:

* :func:`write_swf` serializes a :class:`~repro.sim.workload.Workload`
  (one record per job, IC runtime as the reference runtime, energy
  carried in a comment-extension column convention documented below).
* :func:`read_swf` parses SWF into jobs, extrapolating per-machine
  runtime/energy with the same KNN pipeline the generator uses — so a
  real trace drops into every experiment unchanged.

SWF fields used (1-based, per the archive spec): 1 job id, 2 submit
time, 4 run time, 5 allocated processors, 12 user id.  Energy (joules,
on the reference machine) rides in field 14 ("requested memory"), which
the archive leaves site-defined; the header records this convention.
"""

from __future__ import annotations

from pathlib import Path
from typing import Iterable

import numpy as np

from repro.sim.job import Job
from repro.sim.scenarios import SimMachine
from repro.sim.workload import (
    Workload,
    WorkloadConfig,
    build_cross_platform_knn,
    fit_counter_gmm,
)

#: Reference machine whose runtime/energy the SWF carries.
REFERENCE_MACHINE = "IC"

HEADER_TEMPLATE = """\
; SWF export from the repro package (Core Hours and Carbon Credits)
; Convention: field 4 = runtime on {reference} (s); field 14 = energy on
; {reference} (J). Fields not listed in the module docstring are -1.
; MaxJobs: {n_jobs}
; MaxProcs: {max_procs}
"""


def write_swf(workload: Workload, path: str | Path) -> Path:
    """Serialize a workload to SWF; returns the path written."""
    path = Path(path)
    lines = [
        HEADER_TEMPLATE.format(
            reference=REFERENCE_MACHINE,
            n_jobs=len(workload),
            max_procs=max((j.cores for j in workload.jobs), default=0),
        )
    ]
    for job in workload.jobs:
        runtime = job.runtime_s.get(REFERENCE_MACHINE)
        energy = job.energy_j.get(REFERENCE_MACHINE)
        if runtime is None:
            # Fall back to the first machine's numbers, flagged by -1 in
            # the status field (10) so importers can filter.
            machine = job.eligible_machines[0]
            runtime = job.runtime_s[machine]
            energy = job.energy_j[machine]
        fields = [-1] * 18
        fields[0] = job.job_id
        fields[1] = int(round(job.submit_s))
        fields[3] = int(round(runtime))
        fields[4] = job.cores
        fields[11] = job.user
        fields[13] = int(round(energy))
        lines.append(" ".join(str(f) for f in fields))
    path.write_text("\n".join(lines) + "\n")
    return path


def _parse_records(text: str) -> Iterable[tuple[int, float, float, int, int, float]]:
    for raw in text.splitlines():
        line = raw.strip()
        if not line or line.startswith(";"):
            continue
        parts = line.split()
        if len(parts) < 14:
            raise ValueError(f"malformed SWF record: {line[:60]!r}")
        job_id = int(parts[0])
        submit = float(parts[1])
        runtime = float(parts[3])
        cores = int(parts[4])
        user = int(parts[11])
        energy = float(parts[13])
        if runtime <= 0 or cores <= 0:
            continue  # cancelled/failed records, per SWF practice
        yield job_id, submit, runtime, cores, user, energy


def read_swf(
    path: str | Path,
    machines: dict[str, SimMachine],
    seed: int = 0,
) -> Workload:
    """Parse an SWF trace and extrapolate it across ``machines``.

    Counter features per job are drawn from the §5.2 GMM (the trace
    itself carries no counters), then the same cross-platform KNN as the
    generator predicts per-machine runtime scale and dynamic power.
    Records without a positive runtime or core count are skipped.
    """
    path = Path(path)
    gmm = fit_counter_gmm(seed=seed)
    knn = build_cross_platform_knn(machines, seed=seed)
    rng = np.random.default_rng(seed)

    records = list(_parse_records(path.read_text()))
    if not records:
        raise ValueError(f"no usable records in {path}")
    feats = gmm.sample(len(records), rng=rng)
    preds = {name: knn[name].predict(feats) for name in machines}

    ref = REFERENCE_MACHINE if REFERENCE_MACHINE in machines else next(iter(machines))
    jobs: list[Job] = []
    for i, (job_id, submit, runtime, cores, user, energy) in enumerate(records):
        runtimes: dict[str, float] = {}
        energies: dict[str, float] = {}
        ref_scale = float(preds[ref][i][0]) if ref in preds else 1.0
        for name, machine in machines.items():
            if cores > machine.max_job_cores:
                continue
            scale, dyn_w = preds[name][i]
            rel = float(scale) / max(ref_scale, 1e-9)
            runtimes[name] = runtime * rel
            if name == ref:
                runtimes[name] = runtime
                energies[name] = energy
            else:
                # Model power on the target at a nominal 75% utilization;
                # the trace's energy column only covers the reference.
                power = cores * (
                    machine.idle_watts_per_core + 0.75 * float(dyn_w)
                )
                energies[name] = power * runtimes[name]
        if not runtimes:
            continue
        jobs.append(
            Job(
                job_id=job_id,
                user=user,
                cores=cores,
                submit_s=submit,
                runtime_s=runtimes,
                energy_j=energies,
            )
        )
    jobs.sort(key=lambda j: j.submit_s)
    return Workload(
        jobs=jobs,
        config=WorkloadConfig(n_base_jobs=max(1, len(jobs)), repeat=1, seed=seed),
        machines=list(machines),
    )


def roundtrip_consistent(
    workload: Workload,
    machines: dict[str, SimMachine],
    tmp: str | Path,
    seed: int = 0,
) -> bool:
    """Write + read back; check the reference columns survive exactly."""
    path = write_swf(workload, Path(tmp))
    back = read_swf(path, machines, seed=seed)
    originals = {
        j.job_id: j for j in workload.jobs if REFERENCE_MACHINE in j.runtime_s
    }
    for job in back.jobs:
        orig = originals.get(job.job_id)
        if orig is None:
            continue
        if (
            abs(
                job.runtime_s[REFERENCE_MACHINE]
                - round(orig.runtime_s[REFERENCE_MACHINE])
            )
            > 1.0
        ):
            return False
        if (
            abs(
                job.energy_j[REFERENCE_MACHINE]
                - round(orig.energy_j[REFERENCE_MACHINE])
            )
            > 1.0
        ):
            return False
    return True
