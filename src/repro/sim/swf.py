"""Standard Workload Format (SWF) import/export.

The Parallel Workloads Archive's SWF is the lingua franca of batch-trace
research; real site logs (including the clusters behind the Patel
dataset) circulate in it.  This module lets the simulator consume real
traces and publish its synthetic ones:

* :func:`write_swf` serializes a :class:`~repro.sim.workload.Workload`
  (one record per job, IC runtime as the reference runtime, energy
  carried in a comment-extension column convention documented below).
* :func:`read_swf` parses SWF into jobs, extrapolating per-machine
  runtime/energy with the same KNN pipeline the generator uses — so a
  real trace drops into every experiment unchanged.
* :func:`open_swf_stream` is the flat-memory frontend: the same
  parse/extrapolate pipeline delivered as fixed-size job chunks through
  a :class:`~repro.sim.workload.StreamingWorkload`, so a multi-year
  archive trace never has to fit in RAM.

SWF fields used (1-based, per the archive spec): 1 job id, 2 submit
time, 4 run time, 5 allocated processors, 12 user id.  Energy (joules,
on the reference machine) rides in field 14 ("requested memory"), which
the archive leaves site-defined; the header records this convention.

Chunked ingestion and the invariance contract
---------------------------------------------
:func:`iter_swf_job_chunks` stream-parses records into columnar blocks
(one NumPy array per SWF field per chunk) and extrapolates each block
with the vectorized KNN — it never materializes the whole trace.  The
jobs it produces are **chunk-size invariant**: counter features are
drawn through a :class:`_BlockFeatureSampler` that consumes the
generator in fixed :data:`FEATURE_BLOCK`-sized draws regardless of how
ingestion is chunked, and the KNN/extrapolation math is element-wise per
record.  Record *i* therefore gets the same floats whether the trace is
read in one piece or a thousand — the property test in
``tests/sim/test_swf.py`` asserts exact equality.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, Iterator

import numpy as np

from repro.sim.job import Job
from repro.sim.scenarios import SimMachine
from repro.sim.workload import (
    StreamingWorkload,
    Workload,
    WorkloadConfig,
    build_cross_platform_knn,
    fit_counter_gmm,
)

#: Reference machine whose runtime/energy the SWF carries.
REFERENCE_MACHINE = "IC"

#: Jobs per ingestion chunk on the streaming path.  Peak memory of a
#: streaming run is proportional to this, not to the trace length.
DEFAULT_CHUNK_JOBS = 65_536

#: Counter features are drawn from the GMM in fixed blocks of this many
#: rows so the random stream consumed for record ``i`` depends only on
#: ``(seed, i)`` — never on the ingestion chunk size.  (The GMM's
#: ``sample(n)`` consumes rng state as a function of ``n``; drawing
#: per-chunk would make features depend on chunk boundaries.)
FEATURE_BLOCK = 4096

HEADER_TEMPLATE = """\
; SWF export from the repro package (Core Hours and Carbon Credits)
; Convention: field 4 = runtime on {reference} (s); field 14 = energy on
; {reference} (J). Fields not listed in the module docstring are -1.
; MaxJobs: {n_jobs}
; MaxProcs: {max_procs}
"""


def write_swf(workload: Workload, path: str | Path) -> Path:
    """Serialize a workload to SWF; returns the path written.

    Records are streamed through the file handle one line at a time —
    the writer holds O(1) memory regardless of workload size.
    """
    path = Path(path)
    with path.open("w") as fh:
        fh.write(
            HEADER_TEMPLATE.format(
                reference=REFERENCE_MACHINE,
                n_jobs=len(workload),
                max_procs=max((j.cores for j in workload.jobs), default=0),
            )
        )
        for job in workload.jobs:
            runtime = job.runtime_s.get(REFERENCE_MACHINE)
            energy = job.energy_j.get(REFERENCE_MACHINE)
            if runtime is None:
                # Fall back to the first machine's numbers, flagged by -1 in
                # the status field (10) so importers can filter.
                machine = job.eligible_machines[0]
                runtime = job.runtime_s[machine]
                energy = job.energy_j[machine]
            fields = [-1] * 18
            fields[0] = job.job_id
            fields[1] = int(round(job.submit_s))
            fields[3] = int(round(runtime))
            fields[4] = job.cores
            fields[11] = job.user
            fields[13] = int(round(energy))
            fh.write(" ".join(str(f) for f in fields) + "\n")
    return path


def write_synthetic_swf(
    path: str | Path,
    n_jobs: int,
    n_users: int = 997,
    seed: int = 0,
    interarrival_s: float = 1.0,
    flush_every: int = 65_536,
) -> Path:
    """Write a large submit-sorted synthetic SWF trace at O(1) memory.

    The generator is deterministic arithmetic (no RNG): for a given
    ``(n_jobs, n_users, seed)`` the trace is reproducible byte-for-byte,
    and writing streams through the file handle in ``flush_every``-line
    batches.  Runtimes span 60–660 s and core counts stay small so a
    simulated fleet drains the arrival stream — the 1M-job streaming
    benchmark relies on the backlog staying bounded.
    """
    if n_jobs < 1:
        raise ValueError("need at least one job")
    path = Path(path)
    cores_menu = (1, 2, 4, 8)
    with path.open("w") as fh:
        fh.write(
            HEADER_TEMPLATE.format(
                reference=REFERENCE_MACHINE,
                n_jobs=n_jobs,
                max_procs=max(cores_menu),
            )
        )
        lines: list[str] = []
        for i in range(n_jobs):
            submit = int(i * interarrival_s)
            runtime = 60 + (i * 37 + seed) % 600
            cores = cores_menu[(i * 13 + seed) % len(cores_menu)]
            user = i % n_users
            energy = runtime * cores * 25
            lines.append(
                f"{i + 1} {submit} -1 {runtime} {cores} -1 -1 -1 -1 -1 -1 "
                f"{user} -1 {energy} -1 -1 -1 -1\n"
            )
            if len(lines) >= flush_every:
                fh.writelines(lines)
                lines.clear()
        fh.writelines(lines)
    return path


def _parse_records(
    lines: Iterable[str],
) -> Iterator[tuple[int, float, float, int, int, float]]:
    """Lazily parse SWF lines into usable records.

    Accepts any iterable of lines (an open file handle streams with O(1)
    memory); comment and blank lines are skipped, cancelled/failed
    records (non-positive runtime or cores) are dropped per SWF
    practice, and short records raise.
    """
    for raw in lines:
        line = raw.strip()
        if not line or line.startswith(";"):
            continue
        parts = line.split()
        if len(parts) < 14:
            raise ValueError(f"malformed SWF record: {line[:60]!r}")
        job_id = int(parts[0])
        submit = float(parts[1])
        runtime = float(parts[3])
        cores = int(parts[4])
        user = int(parts[11])
        energy = float(parts[13])
        if runtime <= 0 or cores <= 0:
            continue  # cancelled/failed records, per SWF practice
        yield job_id, submit, runtime, cores, user, energy


@dataclass
class RecordBlock:
    """One chunk of parsed SWF records as NumPy columns."""

    job_id: np.ndarray
    submit: np.ndarray
    runtime: np.ndarray
    cores: np.ndarray
    user: np.ndarray
    energy: np.ndarray

    def __len__(self) -> int:
        return len(self.job_id)


def _iter_record_blocks(
    lines: Iterable[str], chunk_records: int
) -> Iterator[RecordBlock]:
    """Group the lazy record stream into columnar blocks."""
    jid: list[int] = []
    submit: list[float] = []
    runtime: list[float] = []
    cores: list[int] = []
    user: list[int] = []
    energy: list[float] = []
    columns = (jid, submit, runtime, cores, user, energy)

    def pack() -> RecordBlock:
        block = RecordBlock(
            job_id=np.array(jid, dtype=np.int64),
            submit=np.array(submit, dtype=float),
            runtime=np.array(runtime, dtype=float),
            cores=np.array(cores, dtype=np.int64),
            user=np.array(user, dtype=np.int64),
            energy=np.array(energy, dtype=float),
        )
        for col in columns:
            col.clear()
        return block

    for record in _parse_records(lines):
        for col, value in zip(columns, record):
            col.append(value)
        if len(jid) >= chunk_records:
            yield pack()
    if jid:
        yield pack()


class _BlockFeatureSampler:
    """Chunk-size-invariant counter-feature stream.

    Draws from the GMM in fixed :data:`FEATURE_BLOCK`-sized batches off
    one sequential generator and hands out rows on demand, so the
    features assigned to record ``i`` are a pure function of
    ``(seed, i)`` no matter how ingestion slices the trace into chunks.
    """

    def __init__(self, gmm, seed: int) -> None:
        self._gmm = gmm
        self._rng = np.random.default_rng(seed)
        self._buf: np.ndarray | None = None
        self._pos = 0

    def take(self, n: int) -> np.ndarray:
        parts: list[np.ndarray] = []
        while n > 0:
            if self._buf is None or self._pos >= len(self._buf):
                self._buf = self._gmm.sample(FEATURE_BLOCK, rng=self._rng)
                self._pos = 0
            grab = min(n, len(self._buf) - self._pos)
            parts.append(self._buf[self._pos : self._pos + grab])
            self._pos += grab
            n -= grab
        if len(parts) == 1:
            return parts[0]
        return np.concatenate(parts, axis=0)


def _jobs_from_block(
    block: RecordBlock,
    feats: np.ndarray,
    machines: dict[str, SimMachine],
    knn: dict,
    ref: str,
) -> list[Job]:
    """Extrapolate one record block across ``machines``.

    Vectorized KNN per machine over the block, then the same per-record
    assembly as the legacy whole-trace path; every float is element-wise
    per record, so the output is independent of block boundaries.
    """
    preds = {name: knn[name].predict(feats) for name in machines}
    jobs: list[Job] = []
    jid = block.job_id
    submit = block.submit
    runtime = block.runtime
    cores = block.cores
    user = block.user
    energy = block.energy
    items = list(machines.items())
    for i in range(len(block)):
        job_cores = int(cores[i])
        job_runtime = float(runtime[i])
        runtimes: dict[str, float] = {}
        energies: dict[str, float] = {}
        ref_scale = float(preds[ref][i][0]) if ref in preds else 1.0
        for name, machine in items:
            if job_cores > machine.max_job_cores:
                continue
            scale, dyn_w = preds[name][i]
            rel = float(scale) / max(ref_scale, 1e-9)
            runtimes[name] = job_runtime * rel
            if name == ref:
                runtimes[name] = job_runtime
                energies[name] = float(energy[i])
            else:
                # Model power on the target at a nominal 75% utilization;
                # the trace's energy column only covers the reference.
                power = job_cores * (
                    machine.idle_watts_per_core + 0.75 * float(dyn_w)
                )
                energies[name] = power * runtimes[name]
        if not runtimes:
            continue
        jobs.append(
            Job(
                job_id=int(jid[i]),
                user=int(user[i]),
                cores=job_cores,
                submit_s=float(submit[i]),
                runtime_s=runtimes,
                energy_j=energies,
            )
        )
    return jobs


def iter_swf_job_chunks(
    path: str | Path,
    machines: dict[str, SimMachine],
    seed: int = 0,
    chunk_jobs: int = DEFAULT_CHUNK_JOBS,
    require_sorted: bool = False,
) -> Iterator[list[Job]]:
    """Stream an SWF trace as chunks of extrapolated jobs.

    Parses at most ``chunk_jobs`` records at a time, extrapolates each
    block with the §5.2 GMM + cross-platform KNN, and yields the
    resulting jobs.  Records whose core count exceeds every machine are
    dropped (no eligible machine).  Raises ``ValueError`` on an empty
    trace, and — with ``require_sorted`` (the streaming engine's
    contract) — on submit times that go backwards across the trace.
    """
    if chunk_jobs < 1:
        raise ValueError("chunk_jobs must be >= 1")
    path = Path(path)
    gmm = fit_counter_gmm(seed=seed)
    knn = build_cross_platform_knn(machines, seed=seed)
    sampler = _BlockFeatureSampler(gmm, seed)
    ref = REFERENCE_MACHINE if REFERENCE_MACHINE in machines else next(iter(machines))

    n_records = 0
    last_submit = -np.inf
    with path.open("r") as fh:
        for block in _iter_record_blocks(fh, chunk_jobs):
            n_records += len(block)
            if require_sorted:
                first = float(block.submit[0])
                if first < last_submit or np.any(np.diff(block.submit) < 0):
                    raise ValueError(
                        "streaming SWF ingestion requires a submit-sorted "
                        f"trace; {path} goes backwards in time"
                    )
                last_submit = float(block.submit[-1])
            feats = sampler.take(len(block))
            jobs = _jobs_from_block(block, feats, machines, knn, ref)
            if jobs:
                yield jobs
    if n_records == 0:
        raise ValueError(f"no usable records in {path}")


def read_swf(
    path: str | Path,
    machines: dict[str, SimMachine],
    seed: int = 0,
    chunk_jobs: int = DEFAULT_CHUNK_JOBS,
) -> Workload:
    """Parse an SWF trace and extrapolate it across ``machines``.

    Counter features per job are drawn from the §5.2 GMM (the trace
    itself carries no counters), then the same cross-platform KNN as the
    generator predicts per-machine runtime scale and dynamic power.
    Records without a positive runtime or core count are skipped.

    Built on :func:`iter_swf_job_chunks`, so the jobs are identical to
    a streaming read of the same trace; the only extra work here is the
    final stable sort, which tolerates unsorted archives (a no-op on
    sorted ones).
    """
    jobs: list[Job] = []
    for chunk in iter_swf_job_chunks(
        path, machines, seed=seed, chunk_jobs=chunk_jobs
    ):
        jobs.extend(chunk)
    jobs.sort(key=lambda j: j.submit_s)
    return Workload(
        jobs=jobs,
        config=WorkloadConfig(n_base_jobs=max(1, len(jobs)), repeat=1, seed=seed),
        machines=list(machines),
    )


def open_swf_stream(
    path: str | Path,
    machines: dict[str, SimMachine],
    seed: int = 0,
    chunk_jobs: int = DEFAULT_CHUNK_JOBS,
) -> StreamingWorkload:
    """Open an SWF trace as a flat-memory :class:`StreamingWorkload`.

    The returned workload re-reads the file on every iteration (streams
    are re-iterable, so one workload can back multiple runs).  The
    engine's streaming loop requires arrivals in submit order, so the
    chunk iterator enforces it — archive traces are sorted by
    convention; unsorted ones must go through :func:`read_swf`.
    """
    path = Path(path)

    def chunk_factory() -> Iterator[list[Job]]:
        return iter_swf_job_chunks(
            path,
            machines,
            seed=seed,
            chunk_jobs=chunk_jobs,
            require_sorted=True,
        )

    return StreamingWorkload(
        chunk_factory=chunk_factory,
        machines=list(machines),
        source=str(path),
    )


def roundtrip_consistent(
    workload: Workload,
    machines: dict[str, SimMachine],
    tmp: str | Path,
    seed: int = 0,
) -> bool:
    """Write + read back; check the reference columns survive exactly."""
    path = write_swf(workload, Path(tmp))
    back = read_swf(path, machines, seed=seed)
    originals = {
        j.job_id: j for j in workload.jobs if REFERENCE_MACHINE in j.runtime_s
    }
    for job in back.jobs:
        orig = originals.get(job.job_id)
        if orig is None:
            continue
        if (
            abs(
                job.runtime_s[REFERENCE_MACHINE]
                - round(orig.runtime_s[REFERENCE_MACHINE])
            )
            > 1.0
        ):
            return False
        if (
            abs(
                job.energy_j[REFERENCE_MACHINE]
                - round(orig.energy_j[REFERENCE_MACHINE])
            )
            > 1.0
        ):
            return False
    return True
