"""Parallel policy-sweep engine.

The paper's headline results (Figs. 5-7, Table 6) replay one workload
through eight scheduling policies under two accounting methods.  Every
cell of that (scenario x policy x method x seed) grid is an independent
deterministic simulation, so the sweep parallelises perfectly: the
:class:`SweepRunner` fans tasks across a ``ProcessPoolExecutor`` and
returns exactly the results a serial loop would produce, in task order.

Workload sharing
----------------
Workload generation is the second-most expensive step, so the runner
*warms* the caller-supplied memoized ``scenario``/``workload`` builders
in the parent process before forking; on fork-capable platforms every
worker then inherits the generated workload copy-on-write instead of
regenerating (or unpickling) it.  On non-fork platforms workers fall
back to regenerating through the same memoized functions.

Worker count resolution order: explicit ``workers=`` argument, the
:func:`set_default_workers` override (the CLI's ``--jobs``), the
``REPRO_SWEEP_WORKERS`` environment variable, then ``os.cpu_count()``.
``workers=1`` runs serially in-process — results are identical either
way (the determinism test asserts bit-equality).
"""

from __future__ import annotations

import multiprocessing
import os
import warnings
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from functools import partial
from itertools import product
from typing import Callable, Iterable, Mapping, Sequence

from repro.accounting.base import AccountingMethod
from repro.accounting.methods import method_by_name
from repro.sim.engine import MultiClusterSimulator, SimulationResult
from repro.sim.policies import FixedMachinePolicy, Policy, standard_policies
from repro.sim.scenarios import SimMachine
from repro.sim.workload import Workload

#: Environment knob capping sweep parallelism (laptops, CI).
WORKERS_ENV = "REPRO_SWEEP_WORKERS"

_workers_override: int | None = None


def set_default_workers(workers: int | None) -> None:
    """Process-wide default worker count (the CLI's ``--jobs N``).

    ``None`` restores env/cpu-count resolution."""
    global _workers_override
    if workers is not None and workers < 1:
        raise ValueError("workers must be >= 1")
    _workers_override = workers


def resolve_workers(explicit: int | None = None) -> int:
    """The worker count a sweep will actually use."""
    if explicit is not None:
        return max(1, int(explicit))
    if _workers_override is not None:
        return _workers_override
    env = os.environ.get(WORKERS_ENV)
    if env:
        try:
            return max(1, int(env))
        except ValueError:
            warnings.warn(
                f"ignoring non-integer {WORKERS_ENV}={env!r}; "
                "falling back to the CPU count",
                RuntimeWarning,
                stacklevel=2,
            )
    return max(1, os.cpu_count() or 1)


def policy_by_name(name: str) -> Policy:
    """Instantiate a §5.3 policy from its table name.

    Unknown names become single-machine policies, matching how the
    paper labels the Theta/IC/FASTER rows by machine.
    """
    for policy in standard_policies():
        if policy.name == name:
            return policy
    return FixedMachinePolicy(name)


@dataclass(frozen=True)
class SweepTask:
    """One cell of the sweep grid."""

    scenario: str
    policy: str
    method: str
    scale: int
    seed: int = 0


def sweep_grid(
    scenarios: Iterable[str],
    policies: Iterable[str],
    methods: Iterable[str],
    scales: Iterable[int],
    seeds: Iterable[int] = (0,),
) -> list[SweepTask]:
    """The full cartesian task grid, in deterministic order."""
    return [
        SweepTask(scenario=sc, policy=p, method=m, scale=n, seed=s)
        for sc, m, n, s, p in product(scenarios, methods, scales, seeds, policies)
    ]


def _execute(runner: "SweepRunner", task: SweepTask) -> SimulationResult:
    return runner.run_task(task)


class SweepRunner:
    """Fans simulation tasks over processes with shared memoized inputs.

    Parameters
    ----------
    scenario_fn:
        ``(scenario_name, seed) -> machines`` (a mapping or an iterable
        of ``(name, SimMachine)`` pairs).  Should be memoized by the
        caller; :mod:`repro.experiments._simulation` supplies one.
    workload_fn:
        ``(scenario_name, scale, seed) -> Workload``; likewise memoized.
    method_fn:
        ``method_name -> AccountingMethod`` (defaults to the §4.2 table
        lookup).
    workers:
        Parallelism cap; see the module docstring for resolution order.
    """

    def __init__(
        self,
        scenario_fn: Callable[..., Mapping[str, SimMachine] | Iterable[tuple[str, SimMachine]]],
        workload_fn: Callable[..., Workload],
        method_fn: Callable[[str], AccountingMethod] = method_by_name,
        workers: int | None = None,
    ) -> None:
        self.scenario_fn = scenario_fn
        self.workload_fn = workload_fn
        self.method_fn = method_fn
        self.workers = resolve_workers(workers)

    # ------------------------------------------------------------------
    def run_task(self, task: SweepTask) -> SimulationResult:
        """Run one grid cell (in this process)."""
        machines = dict(self.scenario_fn(task.scenario, task.seed))
        workload = self.workload_fn(task.scenario, task.scale, task.seed)
        policy = policy_by_name(task.policy)
        if (
            isinstance(policy, FixedMachinePolicy)
            and policy.machine not in machines
        ):
            # A fixed policy for a machine the scenario lacks is almost
            # always a typo'd policy name; failing loudly beats silently
            # reporting fastest-eligible placements under a wrong label.
            raise KeyError(
                f"unknown policy {task.policy!r}: neither a standard policy "
                f"nor a machine of scenario {task.scenario!r} "
                f"(machines: {sorted(machines)})"
            )
        simulator = MultiClusterSimulator(
            machines, self.method_fn(task.method), policy
        )
        return simulator.run(workload)

    def run(self, tasks: Sequence[SweepTask]) -> dict[SweepTask, SimulationResult]:
        """Run every task; returns ``{task: result}`` in task order.

        Deterministic regardless of parallelism: each simulation is
        independent and internally deterministic, so scheduling order
        cannot change any result.
        """
        tasks = list(tasks)
        if not tasks:
            return {}
        self._warm(tasks)
        workers = min(self.workers, len(tasks))
        if workers <= 1:
            return {task: self.run_task(task) for task in tasks}
        context = multiprocessing.get_context(
            "fork"
            if "fork" in multiprocessing.get_all_start_methods()
            else None
        )
        with ProcessPoolExecutor(max_workers=workers, mp_context=context) as pool:
            results = list(pool.map(partial(_execute, self), tasks))
        return dict(zip(tasks, results))

    # ------------------------------------------------------------------
    def _warm(self, tasks: Sequence[SweepTask]) -> None:
        """Build each distinct scenario/workload once in the parent so
        forked workers inherit the memoized objects copy-on-write."""
        seen: set[tuple] = set()
        for task in tasks:
            scenario_key = (task.scenario, task.seed)
            if ("s", *scenario_key) not in seen:
                seen.add(("s", *scenario_key))
                self.scenario_fn(*scenario_key)
            workload_key = (task.scenario, task.scale, task.seed)
            if ("w", *workload_key) not in seen:
                seen.add(("w", *workload_key))
                self.workload_fn(*workload_key)
