"""Parallel policy-sweep engine.

The paper's headline results (Figs. 5-7, Table 6) replay one workload
through eight scheduling policies under two accounting methods.  Every
cell of that (scenario x policy x method x seed) grid is an independent
deterministic simulation, so the sweep parallelises perfectly: the
:class:`SweepRunner` fans tasks across a ``ProcessPoolExecutor`` and
returns exactly the results a serial loop would produce, in task order.

Workload sharing
----------------
Workload generation is the second-most expensive step, so the runner
*warms* the caller-supplied memoized ``scenario``/``workload`` builders
in the parent process before forking; on fork-capable platforms every
worker then inherits the generated workload copy-on-write instead of
regenerating (or unpickling) it.  On non-fork platforms workers fall
back to regenerating through the same memoized functions.

Shared-memory result return
---------------------------
At paper scale (``scale=71_190``) the *results* dominate sweep IPC:
142k outcomes per task used to be pickled row by row through the
executor pipe.  Because a :class:`SimulationResult` is backed by the
columnar :class:`~repro.accounting.pricing.OutcomeTable`, each worker
now copies the raw column buffers into a
:mod:`multiprocessing.shared_memory` block and sends only a tiny
descriptor (name + dtypes + shapes) through the pipe; the parent
reattaches, rebuilds the arrays, and unlinks the block.  No NumPy data
is pickled, and the reconstruction is an exact byte copy, so results
are bit-identical to the in-process path.  Set ``shared_memory=False``
(or ``REPRO_SWEEP_SHM=0``) to fall back to pickled returns; workers
also fall back automatically if a shared block cannot be created.

Quote-table sharing
-------------------
Short engine runs pay a visible fraction of their time just building
the per-run :class:`~repro.accounting.pricing.PricingKernel` quote
tables, and every task of a sweep over the same (workload, method,
machine set) builds the *same* tables.  The runner therefore warms one
:class:`~repro.accounting.pricing.QuoteTable` per distinct
``(scenario, scale, seed, method)`` in the parent process before
forking; workers inherit the built tables copy-on-write and each run
adopts them instead of re-pricing the workload.  A quote table is a
pure function of its key, so results are bit-identical with the cache
on or off.  Set ``kernel_cache=False`` (or
``REPRO_SWEEP_KERNEL_CACHE=0``) to rebuild per task.

The cache is **bounded**: an LRU policy (default
:data:`DEFAULT_KERNEL_CACHE_SIZE` tables, ``REPRO_SWEEP_KERNEL_CACHE_SIZE``
to change it, ``0`` for unbounded) keeps a long-lived process that
sweeps thousands of distinct (scenario, scale, seed, method)
configurations at flat memory.  Eviction never changes results — an
evicted table rebuilds bit-identically on the next request — and
hit/miss/eviction counters are surfaced through
:func:`quote_table_cache_stats` / :meth:`SweepRunner.cache_stats`.

Worker count resolution order: explicit ``workers=`` argument, the
:func:`set_default_workers` override (the CLI's ``--jobs``), the
``REPRO_SWEEP_WORKERS`` environment variable, then ``os.cpu_count()``.
``workers=1`` runs serially in-process — results are identical either
way (the determinism test asserts bit-equality).
"""

from __future__ import annotations

import multiprocessing
import os
import warnings
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from functools import partial
from itertools import product
from multiprocessing import shared_memory
from typing import Callable, Iterable, Mapping, Sequence

import numpy as np

from repro.accounting.base import AccountingMethod
from repro.accounting.methods import method_by_name
from repro.accounting.pricing import (
    OUTCOME_FIELDS,
    OutcomeTable,
    QuoteTable,
    QuoteTableCache,
    QuoteTableCacheStats,
    QuoteTableKey,
)
from repro.sim.engine import (
    MultiClusterSimulator,
    SimulationResult,
    pricing_for_sim_machine,
)
from repro.sim.policies import FixedMachinePolicy, Policy, standard_policies
from repro.sim.scenarios import SimMachine
from repro.sim.workload import Workload

#: Environment knob capping sweep parallelism (laptops, CI).
WORKERS_ENV = "REPRO_SWEEP_WORKERS"

#: Environment knob disabling shared-memory result return ("0"/"false").
SHM_ENV = "REPRO_SWEEP_SHM"

#: Environment knob disabling the cross-run quote-table cache
#: ("0"/"false"): every task then rebuilds its pricing kernel from
#: scratch, the pre-cache behaviour.
KERNEL_CACHE_ENV = "REPRO_SWEEP_KERNEL_CACHE"

#: Environment knob bounding the quote-table cache (read once at
#: import): the maximum number of distinct (workload, method, machine
#: set) tables held at once.  ``0`` or a negative value removes the
#: bound; use :func:`set_quote_table_capacity` to change it at runtime.
KERNEL_CACHE_SIZE_ENV = "REPRO_SWEEP_KERNEL_CACHE_SIZE"

#: Default LRU bound on the quote-table cache.  Sized to the workload
#: memoization lifecycle it rides on: the experiment driver memoizes at
#: most 4 live workloads (``repro.experiments._simulation.workload``,
#: ``lru_cache(maxsize=4)``) times two §5 methods, so 16 keeps every
#: table a live workload can request resident with headroom, while a
#: long-lived process sweeping thousands of distinct (scenario, scale,
#: seed, method) configurations stays at flat memory.
DEFAULT_KERNEL_CACHE_SIZE = 16


def _resolve_cache_capacity() -> int | None:
    """The quote-table LRU bound from the environment (None=unbounded)."""
    raw = os.environ.get(KERNEL_CACHE_SIZE_ENV)
    if raw is None or raw.strip() == "":
        return DEFAULT_KERNEL_CACHE_SIZE
    try:
        value = int(raw)
    except ValueError:
        warnings.warn(
            f"ignoring non-integer {KERNEL_CACHE_SIZE_ENV}={raw!r}; "
            f"using the default bound of {DEFAULT_KERNEL_CACHE_SIZE}",
            RuntimeWarning,
            stacklevel=2,
        )
        return DEFAULT_KERNEL_CACHE_SIZE
    return None if value <= 0 else value


#: Process-wide quote-table cache.  Deliberately module-level: the
#: parent populates it in :meth:`SweepRunner._warm` *before* the pool
#: forks, so workers inherit every built table copy-on-write instead of
#: receiving (or rebuilding) them per task.  Tables are immutable once
#: built and the LRU bound only frees memory — an evicted key rebuilds
#: a bit-identical table; see
#: :class:`~repro.accounting.pricing.QuoteTableCache`.
_QUOTE_TABLES = QuoteTableCache(capacity=_resolve_cache_capacity())


def clear_quote_tables() -> None:
    """Drop every cached quote table and reset its counters (tests;
    long-lived processes that want the memory back immediately)."""
    _QUOTE_TABLES.clear()


def set_quote_table_capacity(capacity: int | None) -> None:
    """Re-bound the process-wide quote-table cache at runtime.

    ``None`` removes the bound; shrinking below the current size evicts
    least-recently-used tables immediately.  The environment knob
    ``REPRO_SWEEP_KERNEL_CACHE_SIZE`` is read once at import, so
    processes that change it later should call this instead.
    """
    _QUOTE_TABLES.resize(capacity)


def quote_table_cache_stats() -> QuoteTableCacheStats:
    """Size, bound, and hit/miss/eviction counters of the process-wide
    quote-table cache (what :meth:`SweepRunner.cache_stats` returns).

    Counters reflect *this* process: the parent's warm-phase builds and
    any serial (``workers=1``) lookups.  Forked workers operate on a
    copy-on-write snapshot, so their hits are not aggregated here.
    """
    return _QUOTE_TABLES.stats()


_workers_override: int | None = None


def set_default_workers(workers: int | None) -> None:
    """Process-wide default worker count (the CLI's ``--jobs N``).

    ``None`` restores env/cpu-count resolution."""
    global _workers_override
    if workers is not None and workers < 1:
        raise ValueError("workers must be >= 1")
    _workers_override = workers


def resolve_workers(explicit: int | None = None) -> int:
    """The worker count a sweep will actually use."""
    if explicit is not None:
        return max(1, int(explicit))
    if _workers_override is not None:
        return _workers_override
    env = os.environ.get(WORKERS_ENV)
    if env:
        try:
            return max(1, int(env))
        except ValueError:
            warnings.warn(
                f"ignoring non-integer {WORKERS_ENV}={env!r}; "
                "falling back to the CPU count",
                RuntimeWarning,
                stacklevel=2,
            )
    return max(1, os.cpu_count() or 1)


def policy_by_name(name: str) -> Policy:
    """Instantiate a §5.3 policy from its table name.

    Unknown names become single-machine policies, matching how the
    paper labels the Theta/IC/FASTER rows by machine.
    """
    for policy in standard_policies():
        if policy.name == name:
            return policy
    return FixedMachinePolicy(name)


@dataclass(frozen=True)
class SweepTask:
    """One cell of the sweep grid."""

    scenario: str
    policy: str
    method: str
    scale: int
    seed: int = 0


def sweep_grid(
    scenarios: Iterable[str],
    policies: Iterable[str],
    methods: Iterable[str],
    scales: Iterable[int],
    seeds: Iterable[int] = (0,),
) -> list[SweepTask]:
    """The full cartesian task grid, in deterministic order."""
    return [
        SweepTask(scenario=sc, policy=p, method=m, scale=n, seed=s)
        for sc, m, n, s, p in product(scenarios, methods, scales, seeds, policies)
    ]


def _execute(runner: "SweepRunner", task: SweepTask) -> SimulationResult:
    return runner.run_task(task)


# ---------------------------------------------------------------------------
# Pickle-free result transport
# ---------------------------------------------------------------------------
def _unregister_shm(shm: shared_memory.SharedMemory) -> None:
    """Hand cleanup responsibility to the parent process.

    The creating worker must not let its resource tracker unlink the
    block at interpreter exit — the parent unlinks after copying out.
    Best-effort: on platforms without the tracker this is a no-op.
    """
    try:  # pragma: no cover - depends on interpreter internals
        from multiprocessing import resource_tracker

        resource_tracker.unregister(
            shm._name, "shared_memory"
        )  # type: ignore[attr-defined]
    except Exception:
        pass


def _result_to_shm(result: SimulationResult) -> dict:
    """Copy a result's column buffers into one shared-memory block and
    return the picklable descriptor the parent rebuilds it from.

    A :class:`~repro.sim.engine.StreamingSimulationResult` is
    materialized here (``result.table`` concatenates its spilled
    blocks): spill segments live in the worker's filesystem/tempdir and
    must not outlive the worker, so the parent always receives a plain
    in-memory result.  Sweep tasks are mid-size by construction; a
    trace too large to materialize should not go through a fan-out
    sweep in the first place."""
    table = result.table
    arrays = [np.ascontiguousarray(getattr(table, name)) for name, _ in OUTCOME_FIELDS]
    total = sum(a.nbytes for a in arrays)
    shm = shared_memory.SharedMemory(create=True, size=max(1, total))
    layout = []
    offset = 0
    for (name, _), array in zip(OUTCOME_FIELDS, arrays):
        view = np.ndarray(array.shape, array.dtype, buffer=shm.buf, offset=offset)
        view[...] = array
        layout.append((name, array.dtype.str, len(array), offset))
        offset += array.nbytes
    descriptor = {
        "shm": shm.name,
        "layout": layout,
        "policy": result.policy,
        "method": result.method,
        "machines": result.machines,
        "table_machines": table.machines,
    }
    shm.close()
    _unregister_shm(shm)
    return descriptor


def _result_from_shm(descriptor: dict) -> SimulationResult:
    """Rebuild a :class:`SimulationResult` from a worker's descriptor,
    copying the columns out and unlinking the shared block."""
    shm = shared_memory.SharedMemory(name=descriptor["shm"])
    try:
        columns = {
            name: np.ndarray(
                (length,), np.dtype(dtype), buffer=shm.buf, offset=offset
            ).copy()
            for name, dtype, length, offset in descriptor["layout"]
        }
    finally:
        shm.close()
        shm.unlink()
    table = OutcomeTable(descriptor["table_machines"], **columns)
    return SimulationResult(
        policy=descriptor["policy"],
        method=descriptor["method"],
        machines=descriptor["machines"],
        table=table,
    )


def _execute_shm(runner: "SweepRunner", task: SweepTask):
    """Worker entry point for shared-memory returns.

    Falls back to returning the (picklable) result itself when a shared
    block cannot be created — the parent handles both shapes.
    """
    result = runner.run_task(task)
    try:
        return _result_to_shm(result)
    except OSError:
        return result


class SweepRunner:
    """Fans simulation tasks over processes with shared memoized inputs.

    Parameters
    ----------
    scenario_fn:
        ``(scenario_name, seed) -> machines`` (a mapping or an iterable
        of ``(name, SimMachine)`` pairs).  Should be memoized by the
        caller; :mod:`repro.experiments._simulation` supplies one.
    workload_fn:
        ``(scenario_name, scale, seed) -> Workload``; likewise memoized.
    method_fn:
        ``method_name -> AccountingMethod`` (defaults to the §4.2 table
        lookup).
    workers:
        Parallelism cap; see the module docstring for resolution order.
    shared_memory:
        Return worker results through :mod:`multiprocessing.shared_memory`
        instead of pickling them (default; see the module docstring).
        ``None`` resolves from ``REPRO_SWEEP_SHM``.
    kernel_cache:
        Share one prebuilt
        :class:`~repro.accounting.pricing.QuoteTable` per distinct
        ``(workload, method, machine set)`` across the sweep's runs
        (default; ``None`` resolves from ``REPRO_SWEEP_KERNEL_CACHE``).
        :meth:`_warm` builds each distinct table once in the parent so
        forked workers inherit it copy-on-write; short engine runs then
        stop paying the kernel construction per task.  Results are
        bit-identical either way — a quote table is a pure function of
        its key.
    """

    def __init__(
        self,
        scenario_fn: Callable[
            ..., Mapping[str, SimMachine] | Iterable[tuple[str, SimMachine]]
        ],
        workload_fn: Callable[..., Workload],
        method_fn: Callable[[str], AccountingMethod] = method_by_name,
        workers: int | None = None,
        shared_memory: bool | None = None,
        kernel_cache: bool | None = None,
    ) -> None:
        self.scenario_fn = scenario_fn
        self.workload_fn = workload_fn
        self.method_fn = method_fn
        self.workers = resolve_workers(workers)
        if shared_memory is None:
            shared_memory = os.environ.get(SHM_ENV, "1").lower() not in (
                "0", "false", "no",
            )
        self.shared_memory = shared_memory
        if kernel_cache is None:
            kernel_cache = os.environ.get(KERNEL_CACHE_ENV, "1").lower() not in (
                "0", "false", "no",
            )
        self.kernel_cache = kernel_cache
        #: Quote-table cache traffic of the most recent :meth:`run`
        #: (counter deltas), or ``None`` before any run completed.
        self.last_cache_stats: QuoteTableCacheStats | None = None

    # ------------------------------------------------------------------
    def _quote_table_key(
        self, task: SweepTask, machines: Mapping[str, SimMachine]
    ) -> QuoteTableKey:
        """Cache identity of a task's quote table.

        The workload token is the ``workload_fn`` memoization key
        ``(scenario, scale, seed)`` — the caller's contract is that
        those three determine the job list — plus the method name and
        the ordered machine set the table is priced against.
        """
        return QuoteTableKey(
            workload=(task.scenario, task.scale, task.seed),
            method=task.method,
            machines=tuple(machines),
        )

    def _quote_table_for(
        self,
        task: SweepTask,
        machines: Mapping[str, SimMachine],
        workload: Workload,
        method: AccountingMethod,
    ) -> QuoteTable:
        """The task's shared quote table, built on first use.

        ``get_or_build`` hits for every task after the first of a
        distinct (workload, method, machine set) — in the parent because
        :meth:`_warm` pre-built it, in forked workers because they
        inherited the warmed cache.  Non-fork workers start empty and
        rebuild once per (worker, key): still correct, merely slower.
        """
        pricings = {
            name: pricing_for_sim_machine(m) for name, m in machines.items()
        }
        return _QUOTE_TABLES.get_or_build(
            self._quote_table_key(task, machines),
            lambda: QuoteTable.build(workload.jobs, pricings, method),
        )

    def run_task(self, task: SweepTask) -> SimulationResult:
        """Run one grid cell (in this process)."""
        machines = dict(self.scenario_fn(task.scenario, task.seed))
        workload = self.workload_fn(task.scenario, task.scale, task.seed)
        policy = policy_by_name(task.policy)
        if (
            isinstance(policy, FixedMachinePolicy)
            and policy.machine not in machines
        ):
            # A fixed policy for a machine the scenario lacks is almost
            # always a typo'd policy name; failing loudly beats silently
            # reporting fastest-eligible placements under a wrong label.
            raise KeyError(
                f"unknown policy {task.policy!r}: neither a standard policy "
                f"nor a machine of scenario {task.scenario!r} "
                f"(machines: {sorted(machines)})"
            )
        method = self.method_fn(task.method)
        quote_table = (
            self._quote_table_for(task, machines, workload, method)
            if self.kernel_cache
            else None
        )
        simulator = MultiClusterSimulator(
            machines, method, policy, quote_table=quote_table
        )
        return simulator.run(workload)

    def run(self, tasks: Sequence[SweepTask]) -> dict[SweepTask, SimulationResult]:
        """Run every task; returns ``{task: result}`` in task order.

        Deterministic regardless of parallelism: each simulation is
        independent and internally deterministic, so scheduling order
        cannot change any result.
        """
        tasks = list(tasks)
        if not tasks:
            return {}
        stats_before = _QUOTE_TABLES.stats()
        self._warm(tasks)
        workers = min(self.workers, len(tasks))
        if workers <= 1:
            out = {task: self.run_task(task) for task in tasks}
            self._record_cache_stats(stats_before)
            return out
        context = multiprocessing.get_context(
            "fork"
            if "fork" in multiprocessing.get_all_start_methods()
            else None
        )
        worker = _execute_shm if self.shared_memory else _execute
        raw: list = []
        try:
            with ProcessPoolExecutor(
                max_workers=workers, mp_context=context
            ) as pool:
                for item in pool.map(partial(worker, self), tasks):
                    raw.append(item)
            results = [
                _result_from_shm(r) if isinstance(r, dict) else r for r in raw
            ]
        except BaseException:
            # A failed task aborts the sweep mid-stream; unlink every
            # shared block whose descriptor already reached us so the
            # columns don't outlive the run (workers handed cleanup
            # responsibility to this process).
            for item in raw:
                if isinstance(item, dict):
                    try:
                        block = shared_memory.SharedMemory(name=item["shm"])
                        block.close()
                        block.unlink()
                    except OSError:
                        pass
            raise
        self._record_cache_stats(stats_before)
        return dict(zip(tasks, results))

    def _record_cache_stats(self, before: QuoteTableCacheStats) -> None:
        """Publish this run's quote-table traffic as ``last_cache_stats``
        (counter deltas against the sweep's start; size and capacity are
        the live values)."""
        after = _QUOTE_TABLES.stats()
        self.last_cache_stats = QuoteTableCacheStats(
            size=after.size,
            capacity=after.capacity,
            hits=after.hits - before.hits,
            misses=after.misses - before.misses,
            evictions=after.evictions - before.evictions,
        )

    def cache_stats(self) -> QuoteTableCacheStats:
        """Live counters of the process-wide quote-table cache (see
        :func:`quote_table_cache_stats` for scope caveats)."""
        return _QUOTE_TABLES.stats()

    # ------------------------------------------------------------------
    def _warm(self, tasks: Sequence[SweepTask]) -> None:
        """Build each distinct scenario/workload — and, when the kernel
        cache is on, each distinct quote table — once in the parent so
        forked workers inherit the memoized objects copy-on-write.

        The quote-table cache's LRU bound is deliberately *not* grown
        to fit a wide sweep — flat memory is the bound's whole point —
        so a sweep whose distinct-table working set exceeds the bound
        only prewarms the first ``capacity`` distinct tables (warming
        more would build tables just to evict them before any task ran)
        and later configurations build on demand, staying resident for
        their own contiguous task block.  That costs time, never
        correctness; warn so the operator can raise
        ``REPRO_SWEEP_KERNEL_CACHE_SIZE`` (or call
        :func:`set_quote_table_capacity`) instead of paying the
        rebuilds silently.
        """
        capacity = _QUOTE_TABLES.capacity
        kernel_warm_budget = None
        if self.kernel_cache and capacity is not None:
            distinct = {
                (task.scenario, task.scale, task.seed, task.method)
                for task in tasks
            }
            if len(distinct) > capacity:
                kernel_warm_budget = capacity
                warnings.warn(
                    f"sweep needs {len(distinct)} distinct quote tables "
                    f"but the cache is bounded at {capacity}; only the "
                    f"first {capacity} are prewarmed and later "
                    "configurations rebuild on demand (raise "
                    f"{KERNEL_CACHE_SIZE_ENV} or call "
                    "set_quote_table_capacity to avoid the rebuilds)",
                    RuntimeWarning,
                    stacklevel=3,
                )
        kernel_keys_warmed = 0
        seen: set[tuple] = set()
        for task in tasks:
            scenario_key = (task.scenario, task.seed)
            if ("s", *scenario_key) not in seen:
                seen.add(("s", *scenario_key))
                self.scenario_fn(*scenario_key)
            workload_key = (task.scenario, task.scale, task.seed)
            if ("w", *workload_key) not in seen:
                seen.add(("w", *workload_key))
                self.workload_fn(*workload_key)
            if not self.kernel_cache:
                continue
            kernel_key = (*workload_key, task.method)
            if ("k", *kernel_key) not in seen:
                seen.add(("k", *kernel_key))
                if (
                    kernel_warm_budget is not None
                    and kernel_keys_warmed >= kernel_warm_budget
                ):
                    continue
                kernel_keys_warmed += 1
                machines = dict(self.scenario_fn(*scenario_key))
                self._quote_table_for(
                    task,
                    machines,
                    self.workload_fn(*workload_key),
                    self.method_fn(task.method),
                )
