"""Parallel policy-sweep engine.

The paper's headline results (Figs. 5-7, Table 6) replay one workload
through eight scheduling policies under two accounting methods.  Every
cell of that (scenario x policy x method x seed) grid is an independent
deterministic simulation, so the sweep parallelises perfectly: the
:class:`SweepRunner` fans tasks across a ``ProcessPoolExecutor`` and
returns exactly the results a serial loop would produce, in task order.

Workload sharing
----------------
Workload generation is the second-most expensive step, so the runner
*warms* the caller-supplied memoized ``scenario``/``workload`` builders
in the parent process before forking; on fork-capable platforms every
worker then inherits the generated workload copy-on-write instead of
regenerating (or unpickling) it.  Non-fork pools (``mp_context=
"spawn"``/``"forkserver"``, or platforms without fork) cannot inherit,
so with the kernel cache on the runner *ships* each warmed quote table
to workers as a :mod:`multiprocessing.shared_memory` block: a worker
attaches zero-copy column views (one attach per (worker, table),
counted in the ``shm_attached`` cache statistic) and reconstructs the
workload's job list bit-identically from the table's own columns —
no workload regeneration, no re-pricing.  Only with the kernel cache
*off* do non-fork workers fall back to regenerating through the
memoized functions.

Shared-memory result return
---------------------------
At paper scale (``scale=71_190``) the *results* dominate sweep IPC:
142k outcomes per task used to be pickled row by row through the
executor pipe.  Because a :class:`SimulationResult` is backed by the
columnar :class:`~repro.accounting.pricing.OutcomeTable`, each worker
now copies the raw column buffers into a
:mod:`multiprocessing.shared_memory` block and sends only a tiny
descriptor (name + dtypes + shapes) through the pipe; the parent
reattaches, rebuilds the arrays, and unlinks the block.  No NumPy data
is pickled, and the reconstruction is an exact byte copy, so results
are bit-identical to the in-process path.  Set ``shared_memory=False``
(or ``REPRO_SWEEP_SHM=0``) to fall back to pickled returns; workers
also fall back automatically if a shared block cannot be created.

Quote-table sharing
-------------------
Short engine runs pay a visible fraction of their time just building
the per-run :class:`~repro.accounting.pricing.PricingKernel` quote
tables, and every task of a sweep over the same (workload, method,
machine set) builds the *same* tables.  The runner therefore warms one
:class:`~repro.accounting.pricing.QuoteTable` per distinct
``(scenario, scale, seed, method)`` in the parent process before
forking; workers inherit the built tables copy-on-write and each run
adopts them instead of re-pricing the workload.  A quote table is a
pure function of its key, so results are bit-identical with the cache
on or off.  Set ``kernel_cache=False`` (or
``REPRO_SWEEP_KERNEL_CACHE=0``) to rebuild per task.

The cache is **bounded**: an LRU policy (default
:data:`DEFAULT_KERNEL_CACHE_SIZE` tables, ``REPRO_SWEEP_KERNEL_CACHE_SIZE``
to change it, ``0`` for unbounded) keeps a long-lived process that
sweeps thousands of distinct (scenario, scale, seed, method)
configurations at flat memory.  Eviction never changes results — an
evicted table rebuilds bit-identically on the next request — and
hit/miss/eviction counters are surfaced through
:func:`quote_table_cache_stats` / :meth:`SweepRunner.cache_stats`.

Worker count resolution order: explicit ``workers=`` argument, the
:func:`set_default_workers` override (the CLI's ``--jobs``), the
``REPRO_SWEEP_WORKERS`` environment variable, then ``os.cpu_count()``.
``workers=1`` runs serially in-process — results are identical either
way (the determinism test asserts bit-equality).
"""

from __future__ import annotations

import multiprocessing
import os
import warnings
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from functools import partial
from itertools import product
from typing import Callable, Iterable, Mapping, Sequence

from repro.accounting.base import AccountingMethod
from repro.accounting.methods import method_by_name
from repro.accounting.pricing import (
    ELIG_RANK_INELIGIBLE,
    OutcomeTable,
    OutcomeTableShm,
    QuoteTable,
    QuoteTableCache,
    QuoteTableCacheStats,
    QuoteTableKey,
    QuoteTableShm,
)
from repro.sim.engine import (
    MultiClusterSimulator,
    SimulationResult,
    StreamingSimulationResult,
    pricing_for_sim_machine,
)
from repro.sim.job import Job
from repro.sim.policies import (
    FixedMachinePolicy,
    LargestFirstPolicy,
    Policy,
    standard_policies,
)
from repro.sim.scenarios import SimMachine
from repro.sim.workload import Workload, WorkloadConfig

#: Environment knob capping sweep parallelism (laptops, CI).
WORKERS_ENV = "REPRO_SWEEP_WORKERS"

#: Environment knob forcing the pool's multiprocessing start method
#: ("fork", "spawn", "forkserver"); empty/unset keeps the platform
#: default (fork where available).  Speed/transport only — results are
#: bit-identical under every context — but spawn-context pools change
#: *how* warm state reaches workers: quote tables are shipped through
#: shared memory instead of inherited copy-on-write.
MP_CONTEXT_ENV = "REPRO_SWEEP_MP_CONTEXT"

#: Environment knob disabling shared-memory result return ("0"/"false").
SHM_ENV = "REPRO_SWEEP_SHM"

#: Environment knob disabling the cross-run quote-table cache
#: ("0"/"false"): every task then rebuilds its pricing kernel from
#: scratch, the pre-cache behaviour.
KERNEL_CACHE_ENV = "REPRO_SWEEP_KERNEL_CACHE"

#: Environment knob bounding the quote-table cache (read once at
#: import): the maximum number of distinct (workload, method, machine
#: set) tables held at once.  ``0`` or a negative value removes the
#: bound; use :func:`set_quote_table_capacity` to change it at runtime.
KERNEL_CACHE_SIZE_ENV = "REPRO_SWEEP_KERNEL_CACHE_SIZE"

#: Default LRU bound on the quote-table cache.  Sized to the workload
#: memoization lifecycle it rides on: the experiment driver memoizes at
#: most 4 live workloads (``repro.experiments._simulation.workload``,
#: ``lru_cache(maxsize=4)``) times two §5 methods, so 16 keeps every
#: table a live workload can request resident with headroom, while a
#: long-lived process sweeping thousands of distinct (scenario, scale,
#: seed, method) configurations stays at flat memory.
DEFAULT_KERNEL_CACHE_SIZE = 16


def _resolve_cache_capacity() -> int | None:
    """The quote-table LRU bound from the environment (None=unbounded)."""
    raw = os.environ.get(KERNEL_CACHE_SIZE_ENV)
    if raw is None or raw.strip() == "":
        return DEFAULT_KERNEL_CACHE_SIZE
    try:
        value = int(raw)
    except ValueError:
        warnings.warn(
            f"ignoring non-integer {KERNEL_CACHE_SIZE_ENV}={raw!r}; "
            f"using the default bound of {DEFAULT_KERNEL_CACHE_SIZE}",
            RuntimeWarning,
            stacklevel=2,
        )
        return DEFAULT_KERNEL_CACHE_SIZE
    return None if value <= 0 else value


#: Process-wide quote-table cache.  Deliberately module-level: the
#: parent populates it in :meth:`SweepRunner._warm` *before* the pool
#: forks, so workers inherit every built table copy-on-write instead of
#: receiving (or rebuilding) them per task.  Tables are immutable once
#: built and the LRU bound only frees memory — an evicted key rebuilds
#: a bit-identical table; see
#: :class:`~repro.accounting.pricing.QuoteTableCache`.
_QUOTE_TABLES = QuoteTableCache(capacity=_resolve_cache_capacity())

#: Workloads reconstructed from attached quote tables, keyed like the
#: table cache.  Spawn-context workers fill this on first attach so the
#: remaining tasks of a sweep reuse the rebuilt job list instead of
#: looping over the columns again — the spawn-side analogue of the
#: fork path's memoized ``workload_fn``.  Never populated under fork.
_ATTACHED_WORKLOADS: dict[QuoteTableKey, Workload] = {}


def clear_quote_tables() -> None:
    """Drop every cached quote table and reset its counters (tests;
    long-lived processes that want the memory back immediately)."""
    _QUOTE_TABLES.clear()
    _ATTACHED_WORKLOADS.clear()


def set_quote_table_capacity(capacity: int | None) -> None:
    """Re-bound the process-wide quote-table cache at runtime.

    ``None`` removes the bound; shrinking below the current size evicts
    least-recently-used tables immediately.  The environment knob
    ``REPRO_SWEEP_KERNEL_CACHE_SIZE`` is read once at import, so
    processes that change it later should call this instead.
    """
    _QUOTE_TABLES.resize(capacity)


def quote_table_cache_stats() -> QuoteTableCacheStats:
    """Size, bound, and hit/miss/eviction counters of the process-wide
    quote-table cache (what :meth:`SweepRunner.cache_stats` returns).

    Counters reflect *this* process: the parent's warm-phase builds and
    any serial (``workers=1``) lookups.  Forked workers operate on a
    copy-on-write snapshot, so their hits are not aggregated here.
    """
    return _QUOTE_TABLES.stats()


_workers_override: int | None = None


def set_default_workers(workers: int | None) -> None:
    """Process-wide default worker count (the CLI's ``--jobs N``).

    ``None`` restores env/cpu-count resolution."""
    global _workers_override
    if workers is not None and workers < 1:
        raise ValueError("workers must be >= 1")
    _workers_override = workers


def resolve_workers(explicit: int | None = None) -> int:
    """The worker count a sweep will actually use."""
    if explicit is not None:
        return max(1, int(explicit))
    if _workers_override is not None:
        return _workers_override
    env = os.environ.get(WORKERS_ENV)
    if env:
        try:
            return max(1, int(env))
        except ValueError:
            warnings.warn(
                f"ignoring non-integer {WORKERS_ENV}={env!r}; "
                "falling back to the CPU count",
                RuntimeWarning,
                stacklevel=2,
            )
    return max(1, os.cpu_count() or 1)


def policy_by_name(name: str) -> Policy:
    """Instantiate a policy from its table name.

    Resolves the eight §5.3 policies plus the tiered fleets'
    ``LargestFirst`` (kept out of :func:`standard_policies` so the
    paper's 8-policy grids stay exactly the paper's); any other name
    becomes a single-machine policy, matching how the paper labels the
    Theta/IC/FASTER rows by machine.
    """
    for policy in standard_policies():
        if policy.name == name:
            return policy
    if name == LargestFirstPolicy.name:
        return LargestFirstPolicy()
    return FixedMachinePolicy(name)


@dataclass(frozen=True)
class SweepTask:
    """One cell of the sweep grid."""

    scenario: str
    policy: str
    method: str
    scale: int
    seed: int = 0


def sweep_grid(
    scenarios: Iterable[str],
    policies: Iterable[str],
    methods: Iterable[str],
    scales: Iterable[int],
    seeds: Iterable[int] = (0,),
) -> list[SweepTask]:
    """The full cartesian task grid, in deterministic order."""
    return [
        SweepTask(scenario=sc, policy=p, method=m, scale=n, seed=s)
        for sc, m, n, s, p in product(scenarios, methods, scales, seeds, policies)
    ]


def _workload_from_quote_table(table: QuoteTable) -> Workload:
    """Rebuild the job list of a workload from its quote-table columns.

    A spawn-context worker that attached a shipped table has everything
    the simulation needs already in the columns: per-job ids, users,
    cores, submit times, the machine-neutral work metric, and the
    per-machine runtime/energy values in eligibility-rank order.
    Reconstructing jobs from them skips the whole generator pipeline —
    the exact stored doubles come back out, and ``elig_rank`` replays
    each job's original ``runtime_s`` iteration order, so a simulation
    over the rebuilt workload is bit-identical to one over the
    generator's output.  (Only machines the table was priced against
    are restored, which is every machine a sweep scenario exposes.)
    """
    names = table.machine_names
    n_machines = len(names)
    runtime_cols = [table.runtime[name].tolist() for name in names]
    energy_cols = [table.energy[name].tolist() for name in names]
    job_ids = table.job_id.tolist()
    users = table.user.tolist()
    cores = table.cores.tolist()
    submits = table.submit.tolist()
    works = table.work.tolist()
    rank = table.elig_rank
    jobs: list[Job] = []
    append = jobs.append
    for i in range(len(job_ids)):
        row = rank[i]
        by_rank = sorted(
            (int(row[mi]), mi)
            for mi in range(n_machines)
            if row[mi] != ELIG_RANK_INELIGIBLE
        )
        runtime_s = {}
        energy_j = {}
        for _, mi in by_rank:
            name = names[mi]
            runtime_s[name] = runtime_cols[mi][i]
            energy_j[name] = energy_cols[mi][i]
        job = Job(
            job_id=job_ids[i],
            user=users[i],
            cores=cores[i],
            submit_s=submits[i],
            runtime_s=runtime_s,
            energy_j=energy_j,
        )
        # Pin the stored work metric rather than letting the lazy
        # property re-derive it: the stored double IS the original.
        job._work_core_hours = works[i]
        append(job)
    return Workload(
        jobs=jobs,
        config=WorkloadConfig(n_base_jobs=max(1, len(jobs))),
        machines=list(names),
    )


def _stats_delta(before: QuoteTableCacheStats) -> QuoteTableCacheStats:
    """Quote-table cache counter deltas since ``before`` (size and
    capacity are the live values)."""
    after = _QUOTE_TABLES.stats()
    return QuoteTableCacheStats(
        size=after.size,
        capacity=after.capacity,
        hits=after.hits - before.hits,
        misses=after.misses - before.misses,
        evictions=after.evictions - before.evictions,
        shm_attached=after.shm_attached - before.shm_attached,
    )


def _execute(runner: "SweepRunner", task: SweepTask):
    """Worker entry point for pickled returns: ``(result, stats)``
    where ``stats`` is this task's cache-counter delta *in the worker
    process* (the parent aggregates them per sweep)."""
    before = _QUOTE_TABLES.stats()
    result = runner.run_task(task)
    return result, _stats_delta(before)


# ---------------------------------------------------------------------------
# Pickle-free result transport
# ---------------------------------------------------------------------------
@dataclass(frozen=True, slots=True)
class _ResultShm:
    """Picklable envelope a worker ships instead of a pickled result:
    the :class:`~repro.accounting.pricing.OutcomeTableShm` block
    descriptor plus the scalar result identity."""

    table: OutcomeTableShm
    policy: str
    method: str
    machines: Sequence[str]


def _result_to_shm(result: SimulationResult) -> _ResultShm:
    """Copy a result's column buffers into one shared-memory block and
    return the picklable envelope the parent rebuilds it from.

    A :class:`~repro.sim.engine.StreamingSimulationResult` is packed
    block-by-block straight off its spill store
    (:meth:`OutcomeTable.stream_to_shm`), never materialized: spill
    segments live in the worker's filesystem/tempdir and must not
    outlive the worker, yet only one block of rows is resident here
    while the parent receives the full concatenated columns."""
    if isinstance(result, StreamingSimulationResult):
        descriptor = OutcomeTable.stream_to_shm(
            result.iter_tables(),
            result.n_jobs,
            result.store.machines,
            hand_off=True,
        )
    else:
        # repro-lint: disable=RPL003 (hand_off=True: the parent unlinks after _result_from_shm copies out, or via run()'s abort-path sweep)
        descriptor = result.table.to_shm(hand_off=True)
    return _ResultShm(
        table=descriptor,
        policy=result.policy,
        method=result.method,
        machines=result.machines,
    )


def _result_from_shm(payload: _ResultShm) -> SimulationResult:
    """Rebuild a :class:`SimulationResult` from a worker's envelope,
    copying the columns out and unlinking the shared block."""
    try:
        table = OutcomeTable.attach(payload.table)
    finally:
        payload.table.unlink()
    return SimulationResult(
        policy=payload.policy,
        method=payload.method,
        machines=list(payload.machines),
        table=table,
    )


def _execute_shm(runner: "SweepRunner", task: SweepTask):
    """Worker entry point for shared-memory returns: ``(payload, stats)``
    where ``payload`` is the block descriptor — or, when a shared block
    cannot be created, the (picklable) result itself; the parent handles
    both shapes.
    """
    before = _QUOTE_TABLES.stats()
    result = runner.run_task(task)
    try:
        payload = _result_to_shm(result)
    except OSError:
        payload = result
    return payload, _stats_delta(before)


class SweepRunner:
    """Fans simulation tasks over processes with shared memoized inputs.

    Parameters
    ----------
    scenario_fn:
        ``(scenario_name, seed) -> machines`` (a mapping or an iterable
        of ``(name, SimMachine)`` pairs).  Should be memoized by the
        caller; :mod:`repro.experiments._simulation` supplies one.
    workload_fn:
        ``(scenario_name, scale, seed) -> Workload``; likewise memoized.
    method_fn:
        ``method_name -> AccountingMethod`` (defaults to the §4.2 table
        lookup).
    workers:
        Parallelism cap; see the module docstring for resolution order.
    shared_memory:
        Return worker results through :mod:`multiprocessing.shared_memory`
        instead of pickling them (default; see the module docstring).
        ``None`` resolves from ``REPRO_SWEEP_SHM``.
    kernel_cache:
        Share one prebuilt
        :class:`~repro.accounting.pricing.QuoteTable` per distinct
        ``(workload, method, machine set)`` across the sweep's runs
        (default; ``None`` resolves from ``REPRO_SWEEP_KERNEL_CACHE``).
        :meth:`_warm` builds each distinct table once in the parent so
        forked workers inherit it copy-on-write; non-fork pools receive
        the same tables through shared memory instead (see
        ``mp_context``).  Short engine runs then stop paying the kernel
        construction per task.  Results are bit-identical either way —
        a quote table is a pure function of its key.
    mp_context:
        Multiprocessing start method for the worker pool ("fork",
        "spawn", "forkserver").  ``None`` resolves from
        ``REPRO_SWEEP_MP_CONTEXT``, then falls back to fork where
        available (the platform default elsewhere).  Transport only —
        results are bit-identical under every context — but non-fork
        pools cannot inherit the warmed caches, so the runner ships
        each warmed quote table to workers as a
        :mod:`multiprocessing.shared_memory` block: workers attach
        zero-copy views (counted in
        :attr:`~repro.accounting.pricing.QuoteTableCacheStats.shm_attached`)
        and reconstruct the workload's job list from the table columns
        instead of regenerating it.
    """

    def __init__(
        self,
        scenario_fn: Callable[
            ..., Mapping[str, SimMachine] | Iterable[tuple[str, SimMachine]]
        ],
        workload_fn: Callable[..., Workload],
        method_fn: Callable[[str], AccountingMethod] = method_by_name,
        workers: int | None = None,
        shared_memory: bool | None = None,
        kernel_cache: bool | None = None,
        mp_context: str | None = None,
    ) -> None:
        self.scenario_fn = scenario_fn
        self.workload_fn = workload_fn
        self.method_fn = method_fn
        self.workers = resolve_workers(workers)
        if mp_context is None:
            mp_context = os.environ.get(MP_CONTEXT_ENV, "").strip() or None
        if mp_context is not None:
            available = multiprocessing.get_all_start_methods()
            if mp_context not in available:
                raise ValueError(
                    f"unknown multiprocessing start method {mp_context!r}; "
                    f"this platform supports {available}"
                )
        self.mp_context = mp_context
        if shared_memory is None:
            shared_memory = os.environ.get(SHM_ENV, "1").lower() not in (
                "0", "false", "no",
            )
        self.shared_memory = shared_memory
        if kernel_cache is None:
            kernel_cache = os.environ.get(KERNEL_CACHE_ENV, "1").lower() not in (
                "0", "false", "no",
            )
        self.kernel_cache = kernel_cache
        #: Quote-table cache traffic of the most recent :meth:`run`
        #: (counter deltas), or ``None`` before any run completed.
        self.last_cache_stats: QuoteTableCacheStats | None = None
        #: Aggregated *worker-side* cache traffic of the most recent
        #: parallel :meth:`run` (summed per-task deltas reported back
        #: through the result pipe), or ``None`` before any parallel
        #: run completed.  Under fork this shows pure hits (workers
        #: inherit the warmed cache); under spawn it shows one
        #: miss + ``shm_attached`` per (worker, table) pair and hits
        #: for every other task — and, with the kernel cache off, pure
        #: misses (per-task rebuilds).
        self.last_worker_cache_stats: QuoteTableCacheStats | None = None
        #: Shared-memory descriptors of the tables shipped to the
        #: current non-fork pool, keyed like the cache.  Populated by
        #: :meth:`_ship_tables` just before the pool starts (so it is
        #: pickled into every worker task) and emptied — with the
        #: blocks unlinked — when the pool finishes.
        self._shipped: dict[QuoteTableKey, QuoteTableShm] = {}

    # ------------------------------------------------------------------
    def _quote_table_key(
        self, task: SweepTask, machines: Mapping[str, SimMachine]
    ) -> QuoteTableKey:
        """Cache identity of a task's quote table.

        The workload token is the ``workload_fn`` memoization key
        ``(scenario, scale, seed)`` — the caller's contract is that
        those three determine the job list — plus the method name and
        the ordered machine set the table is priced against.
        """
        return QuoteTableKey(
            workload=(task.scenario, task.scale, task.seed),
            method=task.method,
            machines=tuple(machines),
        )

    def _quote_table_for(
        self,
        task: SweepTask,
        machines: Mapping[str, SimMachine],
        workload: Workload,
        method: AccountingMethod,
    ) -> QuoteTable:
        """The task's shared quote table, built on first use.

        ``get_or_build`` hits for every task after the first of a
        distinct (workload, method, machine set) — in the parent because
        :meth:`_warm` pre-built it, in forked workers because they
        inherited the warmed cache.  Non-fork workers start empty and
        rebuild once per (worker, key): still correct, merely slower.
        """
        pricings = {
            name: pricing_for_sim_machine(m) for name, m in machines.items()
        }
        return _QUOTE_TABLES.get_or_build(
            self._quote_table_key(task, machines),
            lambda: QuoteTable.build(workload.jobs, pricings, method),
        )

    def run_task(self, task: SweepTask) -> SimulationResult:
        """Run one grid cell (in this process).

        With the kernel cache on, the task's quote table is resolved
        with exactly one cache lookup: a hit adopts the shared table; a
        miss is satisfied — in preference order — by attaching a
        shipped shared-memory block (non-fork workers; counted in
        ``shm_attached``) or by building from the generated workload.
        A worker holding an attached table also skips workload
        generation entirely: the job list is reconstructed once per
        (worker, table) from the table's own columns, bit-identically.
        """
        machines = dict(self.scenario_fn(task.scenario, task.seed))
        policy = policy_by_name(task.policy)
        if (
            isinstance(policy, FixedMachinePolicy)
            and policy.machine not in machines
        ):
            # A fixed policy for a machine the scenario lacks is almost
            # always a typo'd policy name; failing loudly beats silently
            # reporting fastest-eligible placements under a wrong label.
            raise KeyError(
                f"unknown policy {task.policy!r}: neither a standard policy "
                f"nor a machine of scenario {task.scenario!r} "
                f"(machines: {sorted(machines)})"
            )
        method = self.method_fn(task.method)
        workload: Workload | None = None
        quote_table: QuoteTable | None = None
        if self.kernel_cache:
            key = self._quote_table_key(task, machines)
            quote_table = _QUOTE_TABLES.get(key)
            if quote_table is None:
                descriptor = self._shipped.get(key)
                if descriptor is not None:
                    # repro-lint: disable=RPL003 (ownership transfers to the process-wide _QUOTE_TABLES cache, which release()s on eviction/clear; the parent unlinks the named block after the sweep)
                    quote_table = QuoteTable.attach(descriptor)
                    # Pre-3.13 attach re-registers the block with the
                    # resource tracker the pool shares with the parent.
                    # Leave that registration alone: the tracker's cache
                    # is a set (duplicate registers collapse), and the
                    # parent's post-sweep unlink unregisters the name
                    # once.  An explicit unregister here would race a
                    # sibling worker attaching the same block and crash
                    # the shared tracker on the second removal.
                    _QUOTE_TABLES.store(key, quote_table)
                    _QUOTE_TABLES.shm_attached += 1
                else:
                    workload = self.workload_fn(
                        task.scenario, task.scale, task.seed
                    )
                    pricings = {
                        name: pricing_for_sim_machine(m)
                        for name, m in machines.items()
                    }
                    quote_table = QuoteTable.build(
                        workload.jobs, pricings, method
                    )
                    _QUOTE_TABLES.store(key, quote_table)
            if workload is None and quote_table.from_shm:
                workload = _ATTACHED_WORKLOADS.get(key)
                if workload is None:
                    workload = _workload_from_quote_table(quote_table)
                    _ATTACHED_WORKLOADS[key] = workload
        if workload is None:
            workload = self.workload_fn(task.scenario, task.scale, task.seed)
        simulator = MultiClusterSimulator(
            machines, method, policy, quote_table=quote_table
        )
        return simulator.run(workload)

    def run(self, tasks: Sequence[SweepTask]) -> dict[SweepTask, SimulationResult]:
        """Run every task; returns ``{task: result}`` in task order.

        Deterministic regardless of parallelism: each simulation is
        independent and internally deterministic, so scheduling order
        cannot change any result.
        """
        tasks = list(tasks)
        if not tasks:
            return {}
        stats_before = _QUOTE_TABLES.stats()
        self._warm(tasks)
        workers = min(self.workers, len(tasks))
        if workers <= 1:
            out = {task: self.run_task(task) for task in tasks}
            self._record_cache_stats(stats_before)
            self.last_worker_cache_stats = None
            return out
        if self.mp_context is not None:
            start_method = self.mp_context
        elif "fork" in multiprocessing.get_all_start_methods():
            start_method = "fork"
        else:
            start_method = multiprocessing.get_start_method()
        context = multiprocessing.get_context(start_method)
        if self.kernel_cache and start_method != "fork":
            # Non-fork workers start with empty caches; ship the warmed
            # tables through shared memory so they attach instead of
            # regenerating workload + kernel per worker.
            self._ship_tables(tasks)
        worker = _execute_shm if self.shared_memory else _execute
        raw: list = []
        try:
            with ProcessPoolExecutor(
                max_workers=workers, mp_context=context
            ) as pool:
                for item in pool.map(partial(worker, self), tasks):
                    raw.append(item)
            results = [
                _result_from_shm(r) if isinstance(r, _ResultShm) else r
                for r, _ in raw
            ]
        except BaseException:
            # A failed task aborts the sweep mid-stream; unlink every
            # shared block whose descriptor already reached us so the
            # columns don't outlive the run (workers handed cleanup
            # responsibility to this process).
            for item in raw:
                payload = item[0] if isinstance(item, tuple) else item
                if isinstance(payload, _ResultShm):
                    try:
                        payload.table.unlink()
                    except OSError:
                        pass
            raise
        finally:
            self._release_shipped()
        self._record_cache_stats(stats_before)
        self.last_worker_cache_stats = QuoteTableCacheStats(
            size=0,
            capacity=_QUOTE_TABLES.capacity,
            hits=sum(s.hits for _, s in raw),
            misses=sum(s.misses for _, s in raw),
            evictions=sum(s.evictions for _, s in raw),
            shm_attached=sum(s.shm_attached for _, s in raw),
        )
        return dict(zip(tasks, results))

    def _ship_tables(self, tasks: Sequence[SweepTask]) -> None:
        """Serialize each warmed quote table a non-fork pool will need
        into a shared-memory block (descriptors land in ``_shipped``,
        which is pickled into every worker task).

        Only tables actually resident after :meth:`_warm` are shipped —
        a table the warm budget skipped rebuilds worker-side on demand,
        exactly as before.  Reads bypass the cache counters: shipping
        is transport, not a lookup.
        """
        shipped: dict[QuoteTableKey, QuoteTableShm] = {}
        for task in tasks:
            machines = dict(self.scenario_fn(task.scenario, task.seed))
            key = self._quote_table_key(task, machines)
            if key in shipped:
                continue
            table = _QUOTE_TABLES._tables.get(key)
            if table is not None:
                # repro-lint: disable=RPL003 (descriptors land in self._shipped; run() unlinks them all via _release_shipped() in its finally)
                shipped[key] = table.to_shm()
        self._shipped = shipped

    def _release_shipped(self) -> None:
        """Unlink every block shipped to the finished pool (workers
        only hold attach views; the parent owns the blocks)."""
        shipped, self._shipped = self._shipped, {}
        for descriptor in shipped.values():
            descriptor.unlink()

    def _record_cache_stats(self, before: QuoteTableCacheStats) -> None:
        """Publish this run's quote-table traffic as ``last_cache_stats``
        (counter deltas against the sweep's start; size and capacity are
        the live values)."""
        after = _QUOTE_TABLES.stats()
        self.last_cache_stats = QuoteTableCacheStats(
            size=after.size,
            capacity=after.capacity,
            hits=after.hits - before.hits,
            misses=after.misses - before.misses,
            evictions=after.evictions - before.evictions,
            shm_attached=after.shm_attached - before.shm_attached,
        )

    def cache_stats(self) -> QuoteTableCacheStats:
        """Live counters of the process-wide quote-table cache (see
        :func:`quote_table_cache_stats` for scope caveats)."""
        return _QUOTE_TABLES.stats()

    # ------------------------------------------------------------------
    def _warm(self, tasks: Sequence[SweepTask]) -> None:
        """Build each distinct scenario/workload — and, when the kernel
        cache is on, each distinct quote table — once in the parent so
        forked workers inherit the memoized objects copy-on-write.

        The quote-table cache's LRU bound is deliberately *not* grown
        to fit a wide sweep — flat memory is the bound's whole point —
        so a sweep whose distinct-table working set exceeds the bound
        only prewarms the first ``capacity`` distinct tables (warming
        more would build tables just to evict them before any task ran)
        and later configurations build on demand, staying resident for
        their own contiguous task block.  That costs time, never
        correctness; warn so the operator can raise
        ``REPRO_SWEEP_KERNEL_CACHE_SIZE`` (or call
        :func:`set_quote_table_capacity`) instead of paying the
        rebuilds silently.
        """
        capacity = _QUOTE_TABLES.capacity
        kernel_warm_budget = None
        if self.kernel_cache and capacity is not None:
            distinct = {
                (task.scenario, task.scale, task.seed, task.method)
                for task in tasks
            }
            if len(distinct) > capacity:
                kernel_warm_budget = capacity
                warnings.warn(
                    f"sweep needs {len(distinct)} distinct quote tables "
                    f"but the cache is bounded at {capacity}; only the "
                    f"first {capacity} are prewarmed and later "
                    "configurations rebuild on demand (raise "
                    f"{KERNEL_CACHE_SIZE_ENV} or call "
                    "set_quote_table_capacity to avoid the rebuilds)",
                    RuntimeWarning,
                    stacklevel=3,
                )
        kernel_keys_warmed = 0
        seen: set[tuple] = set()
        for task in tasks:
            scenario_key = (task.scenario, task.seed)
            if ("s", *scenario_key) not in seen:
                seen.add(("s", *scenario_key))
                self.scenario_fn(*scenario_key)
            workload_key = (task.scenario, task.scale, task.seed)
            if ("w", *workload_key) not in seen:
                seen.add(("w", *workload_key))
                self.workload_fn(*workload_key)
            if not self.kernel_cache:
                continue
            kernel_key = (*workload_key, task.method)
            if ("k", *kernel_key) not in seen:
                seen.add(("k", *kernel_key))
                if (
                    kernel_warm_budget is not None
                    and kernel_keys_warmed >= kernel_warm_budget
                ):
                    continue
                kernel_keys_warmed += 1
                machines = dict(self.scenario_fn(*scenario_key))
                self._quote_table_for(
                    task,
                    machines,
                    self.workload_fn(*workload_key),
                    self.method_fn(task.method),
                )
