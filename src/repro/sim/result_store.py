"""Content-addressed on-disk store for sweep results.

The sweep service (:mod:`repro.sim.sweep_service`) is incremental
because of this module: every grid point's result is written under a
key derived from the *values* that determine it, so resubmitting an
identical sweep costs zero simulations and a superset sweep computes
only the delta (the policy-search loop behind the paper's Table 6 and
Fig. 7 resubmits heavily overlapping grids).

Keying — the fingerprint contract
---------------------------------
:func:`task_store_key` folds together, via
:func:`repro.accounting.pricing.fingerprint_digest`:

* :data:`STORE_FORMAT` — the store's payload format version, so a
  layout change invalidates every old entry instead of misreading it;
* the :class:`~repro.sim.sweep.SweepTask` identity fields
  ``(scenario, policy, method, scale, seed)`` — the grid coordinates;
* a :data:`~repro.accounting.pricing.PricingFingerprint` — the value
  identity of the scenario's pricing catalogue
  (:meth:`QuoteTable.fingerprint <repro.accounting.pricing.QuoteTable.fingerprint>`:
  method scalars, machine constants, carbon-trace digest).

The simulator is deterministic given those inputs, so equal keys imply
bit-identical results *within one code version*; the store directory is
a cache, never a source of truth, and deleting it is always safe.

Durability contract
-------------------
Writes are atomic (tempfile in the store root + ``os.replace``), reads
treat *any* undecodable entry — truncated, corrupt, wrong format
version — as a miss: the entry is deleted, a counter ticks, and the
caller recomputes.  A crash can therefore never poison the store, only
shrink it.  Entries are plain ``.npz`` files (one array per
:data:`~repro.accounting.pricing.OUTCOME_FIELDS` column plus a JSON
metadata blob) loaded with ``allow_pickle=False``.

Bounding
--------
``max_bytes`` puts an LRU byte budget on the directory: every hit bumps
the entry's mtime, and after each write the oldest entries are evicted
until the total fits (the most recently touched entry always survives).
Stats (hits/misses/evictions/corrupt/bytes) surface through
:meth:`ResultStore.stats` the same way ``QuoteTableCache`` stats do.
"""

from __future__ import annotations

import io
import json
import os
import tempfile
import threading
from dataclasses import dataclass
from pathlib import Path
from typing import TYPE_CHECKING, Any

import numpy as np

from repro.accounting.pricing import (
    OUTCOME_FIELDS,
    OutcomeTable,
    PricingFingerprint,
    fingerprint_digest,
)
from repro.sim.engine import SimulationResult

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids an import cycle
    from repro.sim.sweep import SweepTask

#: Payload format version, folded into every key: bump it whenever the
#: on-disk layout changes and old entries become unreadable misses
#: instead of decode errors.
STORE_FORMAT = "repro-result-store-v1"


def task_store_key(
    task: SweepTask, pricing_fingerprint: PricingFingerprint
) -> str:
    """The content address of one grid point's result.

    Everything that determines the simulation output is folded in; see
    the module docstring for the contract.
    """
    return fingerprint_digest(
        STORE_FORMAT,
        task.scenario,
        task.policy,
        task.method,
        task.scale,
        task.seed,
        pricing_fingerprint,
    )


@dataclass(frozen=True, slots=True)
class ResultStoreStats:
    """Point-in-time store counters (mirrors ``QuoteTableCacheStats``)."""

    entries: int
    bytes: int
    max_bytes: int | None
    hits: int
    misses: int
    evictions: int
    corrupt: int

    def as_dict(self) -> dict[str, int | None]:
        return {
            "entries": self.entries,
            "bytes": self.bytes,
            "max_bytes": self.max_bytes,
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "corrupt": self.corrupt,
        }


class ResultStore:
    """Content-addressed, byte-bounded result cache on disk.

    Parameters
    ----------
    root:
        Store directory (created if missing).  Entries are sharded as
        ``root/<key[:2]>/<key>.npz``.
    max_bytes:
        LRU byte budget; ``None`` (default) leaves the store unbounded.

    Thread safety: one process-wide lock serializes get/put/evict, so a
    service dispatcher and a stats poller can share an instance.
    """

    def __init__(
        self, root: str | os.PathLike[str], max_bytes: int | None = None
    ) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        if max_bytes is not None and max_bytes <= 0:
            raise ValueError("max_bytes must be positive (or None)")
        self.max_bytes = max_bytes
        self._lock = threading.Lock()
        self._hits = 0
        self._misses = 0
        self._evictions = 0
        self._corrupt = 0

    # ------------------------------------------------------------------
    def _path(self, key: str) -> Path:
        return self.root / key[:2] / f"{key}.npz"

    def _entry_files(self) -> list[Path]:
        """Every committed entry file (in-flight ``.tmp`` files are
        invisible by construction: they never carry the ``.npz``
        suffix)."""
        if not self.root.is_dir():
            return []
        files: list[Path] = []
        for shard in self.root.iterdir():
            if shard.is_dir() and len(shard.name) == 2:
                files.extend(shard.glob("*.npz"))
        return files

    # ------------------------------------------------------------------
    def get(self, key: str) -> SimulationResult | None:
        """The stored result for ``key``, or ``None`` on a miss.

        Any undecodable entry is deleted and reported as a miss (plus a
        ``corrupt`` tick) — the recompute path is always available, so
        the store never raises for bad bytes.
        """
        path = self._path(key)
        with self._lock:
            try:
                result = self._load(path)
            except FileNotFoundError:
                self._misses += 1
                return None
            except Exception:
                # Truncated write, flipped bits, stale format — all the
                # same outcome: drop the entry, recompute.
                self._corrupt += 1
                self._misses += 1
                try:
                    path.unlink()
                except OSError:
                    pass
                return None
            try:
                os.utime(path)  # LRU bump: hits keep an entry young
            except OSError:
                pass
            self._hits += 1
            return result

    def put(self, key: str, result: SimulationResult) -> None:
        """Store ``result`` under ``key`` (idempotent; atomic commit).

        The payload is written to a tempfile in the store root and
        ``os.replace``d into place, so readers only ever see complete
        entries; a concurrent duplicate put is a harmless overwrite
        with identical bytes.
        """
        path = self._path(key)
        payload = self._encode(result)
        with self._lock:
            path.parent.mkdir(parents=True, exist_ok=True)
            fd, tmp_name = tempfile.mkstemp(
                dir=self.root, prefix="put-", suffix=".tmp"
            )
            try:
                with os.fdopen(fd, "wb") as fh:
                    fh.write(payload)
                os.replace(tmp_name, path)
            except BaseException:
                try:
                    os.unlink(tmp_name)
                except OSError:
                    pass
                raise
            self._evict_locked(keep=path)

    # ------------------------------------------------------------------
    def _encode(self, result: SimulationResult) -> bytes:
        """The ``.npz`` payload bytes for one result."""
        table = result.table
        meta = {
            "format": STORE_FORMAT,
            "policy": result.policy,
            "method": result.method,
            "machines": list(result.machines),
            "table_machines": list(table.machines),
        }
        columns: dict[str, Any] = {
            name: getattr(table, name) for name, _ in OUTCOME_FIELDS
        }
        columns["__meta__"] = np.frombuffer(
            json.dumps(meta, sort_keys=True).encode("utf-8"), dtype=np.uint8
        )
        buffer = io.BytesIO()
        np.savez(buffer, **columns)
        return buffer.getvalue()

    def _load(self, path: Path) -> SimulationResult:
        """Decode one entry; raises on anything malformed."""
        with open(path, "rb") as fh:
            raw = fh.read()
        with np.load(io.BytesIO(raw), allow_pickle=False) as data:
            meta = json.loads(bytes(data["__meta__"].tobytes()).decode("utf-8"))
            if not isinstance(meta, dict) or meta.get("format") != STORE_FORMAT:
                raise ValueError("unknown result-store entry format")
            columns = {name: data[name] for name, _ in OUTCOME_FIELDS}
        table = OutcomeTable(
            [str(m) for m in meta["table_machines"]], **columns
        )
        return SimulationResult(
            policy=str(meta["policy"]),
            method=str(meta["method"]),
            machines=[str(m) for m in meta["machines"]],
            table=table,
        )

    # ------------------------------------------------------------------
    def _evict_locked(self, keep: Path) -> None:
        """Drop oldest-touched entries until the byte budget fits.

        ``keep`` (the entry just written or hit) is never evicted, so a
        budget smaller than one entry degrades to caching exactly the
        most recent result instead of thrashing to empty.
        """
        if self.max_bytes is None:
            return
        entries: list[tuple[float, int, Path]] = []
        total = 0
        for file in self._entry_files():
            try:
                stat = file.stat()
            except OSError:
                continue
            entries.append((stat.st_mtime, stat.st_size, file))
            total += stat.st_size
        entries.sort(key=lambda item: (item[0], item[2].name))
        for mtime, size, file in entries:
            if total <= self.max_bytes:
                break
            if file == keep:
                continue
            try:
                file.unlink()
            except OSError:
                continue
            total -= size
            self._evictions += 1

    # ------------------------------------------------------------------
    def stats(self) -> ResultStoreStats:
        """Current counters plus a fresh entry/byte scan."""
        with self._lock:
            entries = self._entry_files()
            total = 0
            for file in entries:
                try:
                    total += file.stat().st_size
                except OSError:
                    pass
            return ResultStoreStats(
                entries=len(entries),
                bytes=total,
                max_bytes=self.max_bytes,
                hits=self._hits,
                misses=self._misses,
                evictions=self._evictions,
                corrupt=self._corrupt,
            )

    def clear(self) -> None:
        """Delete every committed entry (counters are preserved)."""
        with self._lock:
            for file in self._entry_files():
                try:
                    file.unlink()
                except OSError:
                    pass


__all__ = [
    "STORE_FORMAT",
    "ResultStore",
    "ResultStoreStats",
    "task_store_key",
]
