"""Long-lived sweep service: persistent workers + incremental store.

:class:`~repro.sim.sweep.SweepRunner` is a batch engine: one call fans
a grid over a fresh pool and returns everything at once.  The
policy-search loops behind the paper's Table 6 and Fig. 7 instead issue
*streams* of heavily overlapping grids, so this module keeps the
expensive state alive between submissions:

* a **persistent worker pool** on ``SweepRunner``'s transport (fork /
  spawn / forkserver processes, shared-memory result return, worker-
  local quote-table caches that stay warm across tasks);
* an **async submission queue**: :meth:`SweepService.submit` returns a
  :class:`SweepSubmission` immediately and results stream through it
  as they land, store hits first;
* the **content-addressed result store**
  (:class:`~repro.sim.result_store.ResultStore`): every computed grid
  point is persisted under its config fingerprint, so a resubmitted
  grid costs zero simulations and a superset grid computes only the
  delta.

Robustness contract
-------------------
A worker that *crashes* mid-task (kill -9, OOM) is detected by
liveness polling, replaced, and its task retried with bounded
exponential backoff (``max_retries``); results are delivered exactly
once even when a crash races the result message.  A worker that
*raises* is deterministic — the same inputs would raise again — so the
error is surfaced through the submission without retrying.  A corrupt
or truncated store entry is a miss (the store recomputes, never
crashes — see :mod:`repro.sim.result_store`).

Service stats (queue depth, in-flight count, retries, restarts, store
hit/miss/eviction counters) surface through :meth:`SweepService.stats`
the same way ``QuoteTableCache`` stats already do, and stream over the
``repro sweep serve`` JSON-lines protocol (:func:`serve_stdio`) for
operators and the CI gate.
"""

from __future__ import annotations

import json
import multiprocessing
import os
import queue
import threading
from collections import deque
from dataclasses import dataclass
from typing import IO, Any, Callable, Iterator, Mapping, Sequence

from repro.accounting.base import AccountingMethod
from repro.accounting.methods import all_methods, method_by_name
from repro.accounting.pricing import PricingFingerprint, QuoteTable
from repro.sim.engine import SimulationResult, pricing_for_sim_machine
from repro.sim.policies import standard_policies
from repro.sim.result_store import ResultStore, ResultStoreStats, task_store_key
from repro.sim.sweep import (
    MP_CONTEXT_ENV,
    SHM_ENV,
    SweepRunner,
    SweepTask,
    _ResultShm,
    _result_from_shm,
    _result_to_shm,
    resolve_workers,
    sweep_grid,
)

#: ``(scenario_name, seed) -> machines`` — the memoized scenario builder
#: (:func:`repro.experiments._simulation.scenario` is the stock one).
ScenarioFn = Callable[[str, int], Any]
#: ``(scenario_name, scale, seed) -> Workload`` — likewise memoized.
WorkloadFn = Callable[[str, int, int], Any]
#: ``method_name -> AccountingMethod`` (all five §4.2 methods).
MethodFn = Callable[[str], AccountingMethod]

#: Dispatcher poll period: how often worker liveness is checked while
#: the result queue is idle.  Latency floor for crash detection only —
#: results themselves wake the dispatcher immediately.
POLL_INTERVAL_S = 0.05


class SweepTaskError(RuntimeError):
    """A grid point failed permanently (deterministic worker exception,
    retry budget exhausted, or the service closed underneath it)."""

    def __init__(self, task: SweepTask, message: str) -> None:
        super().__init__(f"sweep task {task} failed: {message}")
        self.task = task
        self.message = message


@dataclass(frozen=True, slots=True)
class SweepServiceStats:
    """Point-in-time service counters (plus the store's own)."""

    submitted: int
    completed: int
    from_store: int
    computed: int
    failed: int
    retries: int
    worker_restarts: int
    queue_depth: int
    in_flight: int
    workers: int
    store: ResultStoreStats

    def as_dict(self) -> dict[str, object]:
        return {
            "submitted": self.submitted,
            "completed": self.completed,
            "from_store": self.from_store,
            "computed": self.computed,
            "failed": self.failed,
            "retries": self.retries,
            "worker_restarts": self.worker_restarts,
            "queue_depth": self.queue_depth,
            "in_flight": self.in_flight,
            "workers": self.workers,
            "store": self.store.as_dict(),
        }


class SweepSubmission:
    """Streaming handle for one submitted grid.

    Results arrive in completion order — store hits first (delivered
    synchronously at submit time), computed points as workers finish.
    :meth:`results` is one-shot: it consumes the stream.
    """

    def __init__(self, tasks: Sequence[SweepTask]) -> None:
        self.tasks = list(tasks)
        self._queue: queue.Queue[
            tuple[SweepTask, SimulationResult | None, str | None]
        ] = queue.Queue()
        self._count_lock = threading.Lock()
        #: Tasks served from the result store without computing.
        self.from_store = 0
        #: Tasks computed by the worker pool for this submission.
        self.computed = 0
        #: Tasks that failed permanently.
        self.failed = 0

    # -- service side --------------------------------------------------
    def _deliver(
        self, task: SweepTask, result: SimulationResult, from_store: bool
    ) -> None:
        with self._count_lock:
            if from_store:
                self.from_store += 1
            else:
                self.computed += 1
        self._queue.put((task, result, None))

    def _fail(self, task: SweepTask, message: str) -> None:
        with self._count_lock:
            self.failed += 1
        self._queue.put((task, None, message))

    # -- client side ---------------------------------------------------
    def results(
        self, timeout: float | None = None
    ) -> Iterator[tuple[SweepTask, SimulationResult]]:
        """Yield ``(task, result)`` pairs as they land.

        Raises :class:`SweepTaskError` for a permanently failed task
        and ``queue.Empty`` if ``timeout`` (per result) expires.
        """
        for _ in range(len(self.tasks)):
            task, result, error = self._queue.get(timeout=timeout)
            if error is not None or result is None:
                raise SweepTaskError(task, error or "no result")
            yield task, result

    def wait(
        self, timeout: float | None = None
    ) -> dict[SweepTask, SimulationResult]:
        """Block until every task resolved; results keyed by task."""
        return dict(self.results(timeout=timeout))


class _Job:
    """One in-flight grid point (shared by all submissions wanting it)."""

    __slots__ = ("job_id", "task", "key", "waiters", "attempts", "resolved")

    def __init__(self, job_id: int, task: SweepTask, key: str) -> None:
        self.job_id = job_id
        self.task = task
        self.key = key
        self.waiters: list[tuple[SweepSubmission, SweepTask]] = []
        self.attempts = 0
        self.resolved = False


class _Worker:
    """A pool member: its process, dedicated inbox, and current job."""

    __slots__ = ("name", "process", "inbox", "job")

    def __init__(self, name: str, process: Any, inbox: Any) -> None:
        self.name = name
        self.process = process
        self.inbox = inbox
        self.job: _Job | None = None


def _service_worker(
    name: str,
    inbox: Any,
    results: Any,
    scenario_fn: ScenarioFn,
    workload_fn: WorkloadFn,
    method_fn: MethodFn,
    use_shm: bool,
) -> None:
    """Worker main loop: pull ``(job_id, task)``, push a result message.

    Reuses :meth:`SweepRunner.run_task` so the worker-local quote-table
    cache stays warm across every task this worker ever runs (the point
    of a persistent pool).  Deterministic exceptions are reported as
    ``error`` messages — the worker itself never dies on a bad task.
    """
    runner = SweepRunner(
        scenario_fn, workload_fn, method_fn, workers=1, shared_memory=use_shm
    )
    while True:
        item = inbox.get()
        if item is None:
            break
        job_id, task = item
        try:
            result = runner.run_task(task)
            payload: object = result
            if use_shm:
                try:
                    payload = _result_to_shm(result)
                except OSError:
                    payload = result
        except Exception as exc:
            results.put(("error", job_id, name, f"{type(exc).__name__}: {exc}"))
        else:
            results.put(("ok", job_id, name, payload))


class SweepService:
    """The long-lived sweep service (see the module docstring).

    Parameters
    ----------
    scenario_fn / workload_fn / method_fn:
        Same contract as :class:`~repro.sim.sweep.SweepRunner`; must be
        picklable module-level callables under non-fork contexts.
        ``method_fn`` defaults to
        :func:`repro.accounting.methods.method_by_name` (all five
        methods).
    store:
        The :class:`~repro.sim.result_store.ResultStore` backing
        incremental resubmission.
    workers:
        Pool size (``None``: ``REPRO_SWEEP_WORKERS`` or the CPU count).
    mp_context:
        ``"fork"`` / ``"spawn"`` / ``"forkserver"`` (``None``:
        ``REPRO_SWEEP_MP_CONTEXT`` or the platform default).
    shared_memory:
        Ship computed results as shared-memory blocks (``None``:
        ``REPRO_SWEEP_SHM``, default on).
    max_retries:
        Crash-retry budget per task; attempt ``n`` backs off
        ``retry_backoff_s * 2**(n-1)`` seconds before requeueing.
    """

    def __init__(
        self,
        scenario_fn: ScenarioFn,
        workload_fn: WorkloadFn,
        method_fn: MethodFn | None = None,
        *,
        store: ResultStore,
        workers: int | None = None,
        mp_context: str | None = None,
        shared_memory: bool | None = None,
        max_retries: int = 2,
        retry_backoff_s: float = 0.05,
    ) -> None:
        self.scenario_fn = scenario_fn
        self.workload_fn = workload_fn
        self.method_fn: MethodFn = method_fn or method_by_name
        self.store = store
        self.workers = resolve_workers(workers)
        if mp_context is None:
            mp_context = os.environ.get(MP_CONTEXT_ENV) or None
        self._ctx = multiprocessing.get_context(mp_context)
        if shared_memory is None:
            shared_memory = os.environ.get(SHM_ENV, "1").lower() not in (
                "0",
                "false",
            )
        self.shared_memory = shared_memory
        if max_retries < 0:
            raise ValueError("max_retries must be >= 0")
        self.max_retries = max_retries
        self.retry_backoff_s = retry_backoff_s

        self._lock = threading.Lock()
        self._results_q: Any = self._ctx.Queue()
        self._workers: dict[str, _Worker] = {}
        self._idle: deque[str] = deque()
        self._backlog: deque[_Job] = deque()
        self._jobs: dict[int, _Job] = {}
        self._jobs_by_key: dict[str, _Job] = {}
        self._job_counter = 0
        self._worker_counter = 0
        self._fingerprints: dict[tuple[str, int], PricingFingerprint] = {}
        self._timers: set[threading.Timer] = set()
        self._stop = threading.Event()
        self._dispatcher: threading.Thread | None = None
        self._closed = False
        self._submitted = 0
        self._from_store = 0
        self._computed = 0
        self._failed = 0
        self._retries = 0
        self._restarts = 0

    # -- lifecycle -----------------------------------------------------
    def start(self) -> None:
        """Boot the pool and dispatcher (idempotent; lazy via submit)."""
        with self._lock:
            if self._closed:
                raise RuntimeError("SweepService is closed")
            if self._dispatcher is not None:
                return
            for _ in range(self.workers):
                self._spawn_worker_locked()
            dispatcher = threading.Thread(
                target=self._dispatch_loop,
                name="repro-sweep-dispatcher",
                daemon=True,
            )
            self._dispatcher = dispatcher
        dispatcher.start()

    def _spawn_worker_locked(self) -> _Worker:
        name = f"w{self._worker_counter}"
        self._worker_counter += 1
        inbox: Any = self._ctx.Queue()
        process = self._ctx.Process(
            target=_service_worker,
            args=(
                name,
                inbox,
                self._results_q,
                self.scenario_fn,
                self.workload_fn,
                self.method_fn,
                self.shared_memory,
            ),
            name=f"repro-sweep-{name}",
            daemon=True,
        )
        process.start()
        worker = _Worker(name, process, inbox)
        self._workers[name] = worker
        self._idle.append(name)
        return worker

    def warm(self, tasks: Sequence[SweepTask]) -> None:
        """Pre-build the grid's workloads and quote tables in-process.

        Useful before :meth:`start` under the fork context: workers
        then inherit every warmed table copy-on-write.  Harmless (just
        not shared) once workers exist or under spawn.
        """
        runner = SweepRunner(
            self.scenario_fn, self.workload_fn, self.method_fn, workers=1
        )
        runner._warm(tasks)

    def close(self, timeout: float = 10.0) -> None:
        """Stop workers and the dispatcher; fail outstanding jobs.

        Idempotent.  Queued shared-memory result blocks that never got
        delivered are unlinked here so nothing outlives the service.
        """
        with self._lock:
            if self._closed:
                return
            self._closed = True
        self._stop.set()
        for timer in list(self._timers):
            timer.cancel()
        self._timers.clear()
        with self._lock:
            jobs = list(self._jobs.values())
        for job in jobs:
            self._resolve(job, error="service closed")
        with self._lock:
            workers = list(self._workers.values())
        for worker in workers:
            try:
                worker.inbox.put(None)
            except (OSError, ValueError):
                pass
        if self._dispatcher is not None:
            self._dispatcher.join(timeout=timeout)
        for worker in workers:
            worker.process.join(timeout=timeout)
            if worker.process.is_alive():
                worker.process.terminate()
                worker.process.join(timeout=1.0)
        self._drain_result_queue()

    def __enter__(self) -> SweepService:
        self.start()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def _drain_result_queue(self) -> None:
        """Unlink any undelivered shared-memory payloads at shutdown."""
        while True:
            try:
                message = self._results_q.get_nowait()
            except (queue.Empty, OSError, ValueError):
                return
            payload = message[3]
            if isinstance(payload, _ResultShm):
                try:
                    payload.table.unlink()
                except OSError:
                    pass

    # -- keying --------------------------------------------------------
    def _pricing_fingerprint(
        self, scenario: str, seed: int
    ) -> PricingFingerprint:
        memo_key = (scenario, seed)
        fingerprint = self._fingerprints.get(memo_key)
        if fingerprint is None:
            machines = dict(self.scenario_fn(scenario, seed))
            pricings = {
                name: pricing_for_sim_machine(machine)
                for name, machine in machines.items()
            }
            fingerprint = QuoteTable.fingerprint(pricings)
            self._fingerprints[memo_key] = fingerprint
        return fingerprint

    def store_key(self, task: SweepTask) -> str:
        """The content address of ``task``'s result (see
        :func:`repro.sim.result_store.task_store_key`)."""
        return task_store_key(
            task, self._pricing_fingerprint(task.scenario, task.seed)
        )

    # -- submission ----------------------------------------------------
    def submit(self, tasks: Sequence[SweepTask]) -> SweepSubmission:
        """Queue a grid; returns the streaming handle immediately.

        Store hits are delivered synchronously before this returns;
        misses are queued (deduplicated against identical in-flight
        grid points, so overlapping submissions share one computation).
        """
        self.start()
        submission = SweepSubmission(tasks)
        for task in submission.tasks:
            key = self.store_key(task)
            cached = self.store.get(key)
            if cached is not None:
                with self._lock:
                    self._submitted += 1
                    self._from_store += 1
                submission._deliver(task, cached, from_store=True)
                continue
            with self._lock:
                self._submitted += 1
                job = self._jobs_by_key.get(key)
                if job is None:
                    job = _Job(self._job_counter, task, key)
                    self._job_counter += 1
                    self._jobs[job.job_id] = job
                    self._jobs_by_key[key] = job
                    self._backlog.append(job)
                job.waiters.append((submission, task))
        return submission

    def run(
        self, tasks: Sequence[SweepTask]
    ) -> dict[SweepTask, SimulationResult]:
        """Submit and block: the drop-in synchronous entry point."""
        return self.submit(tasks).wait()

    # -- dispatcher ----------------------------------------------------
    def _dispatch_loop(self) -> None:
        while not self._stop.is_set():
            self._assign_ready()
            try:
                message = self._results_q.get(timeout=POLL_INTERVAL_S)
            except queue.Empty:
                self._reap_dead_workers()
                continue
            except (OSError, ValueError):  # queue closed under us
                return
            self._handle_message(message)

    def _assign_ready(self) -> None:
        while True:
            with self._lock:
                if not self._backlog or not self._idle:
                    return
                name = self._idle.popleft()
                worker = self._workers.get(name)
                if worker is None:
                    continue
                job = self._backlog.popleft()
                if job.resolved:
                    self._idle.appendleft(name)
                    continue
                worker.job = job
            try:
                worker.inbox.put((job.job_id, job.task))
            except (OSError, ValueError):
                # Worker torn down between pick and put; requeue.
                with self._lock:
                    worker.job = None
                    self._backlog.appendleft(job)

    def _handle_message(self, message: tuple[str, int, str, object]) -> None:
        kind, job_id, worker_name, payload = message
        with self._lock:
            worker = self._workers.get(worker_name)
            if (
                worker is not None
                and worker.job is not None
                and worker.job.job_id == job_id
            ):
                worker.job = None
                self._idle.append(worker_name)
            job = self._jobs.get(job_id)
        if job is None or job.resolved:
            # A crash-retry raced the original result message: the job
            # already resolved, so just free the duplicate's block.
            if isinstance(payload, _ResultShm):
                try:
                    payload.table.unlink()
                except OSError:
                    pass
            return
        if kind == "ok":
            if isinstance(payload, _ResultShm):
                result = _result_from_shm(payload)
            else:
                assert isinstance(payload, SimulationResult)
                result = payload
            try:
                self.store.put(job.key, result)
            except OSError:
                pass  # a full/read-only store must not fail the sweep
            self._resolve(job, result=result)
        else:
            # Deterministic worker exception: the same inputs would
            # raise again, so retrying is waste — surface it.
            self._resolve(job, error=str(payload))

    def _reap_dead_workers(self) -> None:
        """Crash detection: replace dead workers, retry their tasks."""
        orphans: list[_Job] = []
        with self._lock:
            dead = [
                worker
                for worker in self._workers.values()
                if not worker.process.is_alive()
            ]
            for worker in dead:
                del self._workers[worker.name]
                try:
                    self._idle.remove(worker.name)
                except ValueError:
                    pass
                if worker.job is not None:
                    orphans.append(worker.job)
                    worker.job = None
                self._restarts += 1
                self._spawn_worker_locked()
        for job in orphans:
            if job.resolved:
                continue
            job.attempts += 1
            if job.attempts > self.max_retries:
                self._resolve(
                    job,
                    error=(
                        f"worker died {job.attempts} time(s) running this "
                        "task; retry budget exhausted"
                    ),
                )
                continue
            with self._lock:
                self._retries += 1
            delay = self.retry_backoff_s * (2 ** (job.attempts - 1))
            self._schedule_retry(job, delay)

    def _schedule_retry(self, job: _Job, delay: float) -> None:
        timer: threading.Timer

        def fire() -> None:
            self._timers.discard(timer)
            with self._lock:
                if job.resolved or self._stop.is_set():
                    return
                self._backlog.append(job)

        timer = threading.Timer(delay, fire)
        timer.daemon = True
        self._timers.add(timer)
        timer.start()

    def _resolve(
        self,
        job: _Job,
        result: SimulationResult | None = None,
        error: str | None = None,
    ) -> None:
        """Deliver a job's outcome to every waiter, exactly once."""
        with self._lock:
            if job.resolved:
                return
            job.resolved = True
            self._jobs.pop(job.job_id, None)
            if self._jobs_by_key.get(job.key) is job:
                del self._jobs_by_key[job.key]
            waiters, job.waiters = job.waiters, []
            if error is None:
                self._computed += 1
            else:
                self._failed += 1
        for submission, task in waiters:
            if error is None and result is not None:
                submission._deliver(task, result, from_store=False)
            else:
                submission._fail(task, error or "no result")

    # -- introspection -------------------------------------------------
    def stats(self) -> SweepServiceStats:
        """Current counters; ``store`` nests the store's own stats."""
        with self._lock:
            in_flight = sum(
                1 for w in self._workers.values() if w.job is not None
            )
            snapshot = SweepServiceStats(
                submitted=self._submitted,
                completed=self._from_store + self._computed,
                from_store=self._from_store,
                computed=self._computed,
                failed=self._failed,
                retries=self._retries,
                worker_restarts=self._restarts,
                queue_depth=len(self._backlog),
                in_flight=in_flight,
                workers=len(self._workers),
                store=self.store.stats(),
            )
        return snapshot


# ---------------------------------------------------------------------------
# JSON-lines protocol (`repro sweep serve`)
# ---------------------------------------------------------------------------
def _result_summary(task: SweepTask, result: SimulationResult) -> dict[str, object]:
    """The scalar identity of one result, full float precision.

    ``json.dumps`` emits shortest-roundtrip reprs, so two runs agree on
    these lines iff the underlying floats are bit-identical — the CI
    gate compares them textually.
    """
    return {
        "scenario": task.scenario,
        "policy": task.policy,
        "method": task.method,
        "scale": task.scale,
        "seed": task.seed,
        "n_jobs": result.n_jobs,
        "makespan_s": result.makespan_s,
        "total_cost": result.total_cost(),
        "total_energy_j": result.total_energy_j(),
        "total_attributed_carbon_g": result.total_attributed_carbon_g(),
        "mean_queue_wait_s": result.mean_queue_wait_s(),
    }


def serve_stdio(
    service: SweepService,
    in_stream: IO[str],
    out_stream: IO[str],
) -> int:
    """The ``repro sweep serve`` control loop: JSON lines in and out.

    Requests (one JSON object per line): ``{"op": "sweep", "scenarios":
    [...], "policies": [...], "methods": [...], "scales": [...],
    "seeds": [...]}`` streams one ``result`` event per grid point
    (store hits first) then a ``sweep-done`` event with the
    submission's from-store/computed split and full service stats;
    ``{"op": "stats"}`` emits a ``stats`` event; ``{"op": "shutdown"}``
    stops the service.  Malformed input produces an ``error`` event,
    never a crash.
    """

    def emit(event: Mapping[str, object]) -> None:
        out_stream.write(json.dumps(event, sort_keys=True) + "\n")
        out_stream.flush()

    emit(
        {
            "event": "ready",
            "workers": service.workers,
            "store": str(service.store.root),
        }
    )
    try:
        for line in in_stream:
            text = line.strip()
            if not text:
                continue
            try:
                request = json.loads(text)
                if not isinstance(request, dict):
                    raise ValueError("request must be a JSON object")
            except ValueError as exc:
                emit({"event": "error", "message": f"bad request: {exc}"})
                continue
            op = request.get("op")
            if op == "shutdown":
                emit({"event": "bye"})
                break
            if op == "stats":
                emit({"event": "stats", **service.stats().as_dict()})
                continue
            if op != "sweep":
                emit({"event": "error", "message": f"unknown op {op!r}"})
                continue
            tasks = sweep_grid(
                scenarios=request.get("scenarios", ["baseline"]),
                policies=request.get("policies")
                or [p.name for p in standard_policies()],
                methods=request.get("methods")
                or [m.name for m in all_methods()],
                scales=request.get("scales", [250]),
                seeds=request.get("seeds", [0]),
            )
            submission = service.submit(tasks)
            try:
                for task, result in submission.results():
                    emit({"event": "result", **_result_summary(task, result)})
            except SweepTaskError as exc:
                emit({"event": "error", "message": str(exc)})
                continue
            emit(
                {
                    "event": "sweep-done",
                    "tasks": len(tasks),
                    "from_store": submission.from_store,
                    "computed": submission.computed,
                    "stats": service.stats().as_dict(),
                }
            )
    finally:
        service.close()
    return 0


__all__ = [
    "POLL_INTERVAL_S",
    "SweepService",
    "SweepServiceStats",
    "SweepSubmission",
    "SweepTaskError",
    "serve_stdio",
]
