"""Simulation scenarios: the Table 5 baseline and the §5.6 low-carbon grids.

A :class:`SimMachine` augments the hardware spec with everything the
simulator needs per machine: capacity (node count), the carbon-intensity
trace of its grid, its embodied-carbon rate (Table 5's "Carbon Rate"),
and the performance-extrapolation parameters the KNN trains against.

Calibration
-----------
The per-machine performance curves (runtime scale vs. the Institutional
Cluster as a function of memory intensity, and dynamic power per core)
encode the qualitative hardware facts §5 relies on:

* **FASTER** (2023 Ice-Lake-generation Xeons): the most energy-efficient,
  slightly slower per core than IC's high-clock 6248R for memory-light
  work, faster for wide memory-heavy work.
* **IC** (2021 Cascade Lake, 3.0 GHz): the fastest for most jobs —
  which is why the Runtime policy favours it — but power-hungry per
  core.
* **Desktop** (i7-10700): low absolute power and quite efficient, but
  only one 16-core node, so it helps only small jobs.
* **Theta** (2017 KNL): slow cores (2-4x IC runtimes) with modest power,
  making it *inefficient in energy per unit of work* — the paper's
  example of a machine EBA prices out.

Beyond the paper, :func:`tiered_fleet_scenario` models a three-tier
data-migration worker fleet (ROADMAP item 3): many slow Small nodes, a
mid-size Medium pool, and a handful of fast Large nodes with a per-tier
concurrency cap — a workload class the source paper never ran, used to
test whether the five accounting methods stay fair under tier skew.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.carbon.embodied import DoubleDecliningBalance, carbon_rate_per_hour
from repro.carbon.grids import trace_for_region
from repro.carbon.intensity import CarbonIntensityTrace
from repro.hardware.catalog import (
    I7_10700,
    LOW_CARBON_REGION,
    SIMULATION_CARBON_INTENSITY,
    SIMULATION_MACHINES,
    SIMULATION_YEAR,
    XEON_6248R,
    XEON_PLATINUM_8380,
)
from repro.hardware.node import NodeSpec


@dataclass(frozen=True)
class PerfCurve:
    """Runtime/power extrapolation parameters relative to IC.

    ``runtime_scale(m) = base + slope * m`` where ``m`` in [0, 1] is the
    job's memory intensity; ``dyn_watts_per_core`` is the dynamic power
    of one fully busy core.
    """

    base: float
    slope: float
    dyn_watts_per_core: float

    def runtime_scale(self, memory_intensity: float) -> float:
        m = min(1.0, max(0.0, memory_intensity))
        return self.base + self.slope * m


#: Cross-platform calibration (see module docstring).  Dynamic power per
#: core is bounded so a fully loaded node sits at its CPU TDP
#: (idle + cores * dyn <= TDP), consistent with Table 5.
PERF_CURVES: dict[str, PerfCurve] = {
    # Efficient but lower-clocked: beats IC only on memory-heavy work.
    "FASTER": PerfCurve(base=1.25, slope=-0.20, dyn_watts_per_core=3.2),
    # High clocks: the fastest machine for most jobs, power-hungry.
    "IC": PerfCurve(base=1.0, slope=0.0, dyn_watts_per_core=5.7),
    # Client silicon: low absolute power, but slow enough per unit of
    # work that it wins mainly on memory-light small jobs.
    "Desktop": PerfCurve(base=1.8, slope=0.6, dyn_watts_per_core=3.65),
    # KNL: slow cores make it the least efficient per unit of work.
    "Theta": PerfCurve(base=2.6, slope=1.8, dyn_watts_per_core=1.64),
}


@dataclass(frozen=True)
class SimMachine:
    """Everything the simulator knows about one machine."""

    node: NodeSpec
    intensity: CarbonIntensityTrace
    carbon_rate_g_per_h: float  # per node, Table 5 column
    perf: PerfCurve
    #: Cluster-wide cap on concurrently running jobs (``None`` = no cap,
    #: the paper's machines).  Tiered fleets use it to model per-tier
    #: worker-slot limits independent of core capacity.
    max_concurrent_jobs: int | None = None

    @property
    def name(self) -> str:
        return self.node.name

    @property
    def cores_per_node(self) -> int:
        return self.node.cores

    @property
    def total_cores(self) -> int:
        return self.node.cores * self.node.node_count

    @property
    def idle_watts_per_core(self) -> float:
        return self.node.idle_power_watts / self.node.cores

    @property
    def tdp_watts_per_core(self) -> float:
        return self.node.tdp_watts / self.node.cores

    @property
    def max_job_cores(self) -> int:
        """Largest job this machine accepts (single-machine jobs may span
        nodes, so the bound is total capacity)."""
        return self.total_cores

    def embodied_rate_per_core_hour(self) -> float:
        """Embodied gCO2e per core-hour (node rate / cores per node)."""
        return self.carbon_rate_g_per_h / self.cores_per_node


def _machine(
    node: NodeSpec,
    intensity: CarbonIntensityTrace,
) -> SimMachine:
    rate = carbon_rate_per_hour(
        node.embodied_carbon_g,
        node.age_years(SIMULATION_YEAR),
        DoubleDecliningBalance(),
    )
    return SimMachine(
        node=node,
        intensity=intensity,
        carbon_rate_g_per_h=rate,
        perf=PERF_CURVES[node.name],
    )


def baseline_scenario(days: int = 365, seed: int = 0) -> dict[str, SimMachine]:
    """The Table 5 configuration.

    Grid traces are synthetic hourly series whose yearly means equal
    Table 5's "Avg. Carbon Intensity" column (FASTER on the Texas grid,
    Desktop/IC on the Illinois grid, Theta on its higher-carbon feed).
    """
    regions = {
        "FASTER": "US-TEX",
        "Desktop": "US-MIDW",
        "IC": "US-MIDW",
        "Theta": "US-ALCF",
    }
    machines = {}
    for node in SIMULATION_MACHINES:
        trace = trace_for_region(regions[node.name], days=days, seed=seed)
        # Re-pin the trace mean to the exact Table 5 average.
        target = SIMULATION_CARBON_INTENSITY[node.name]
        values = trace.hourly_g_per_kwh * (target / trace.mean)
        trace = CarbonIntensityTrace(region=trace.region, hourly_g_per_kwh=values)
        machines[node.name] = _machine(node, trace)
    return machines


def low_carbon_scenario(days: int = 365, seed: int = 0) -> dict[str, SimMachine]:
    """The §5.6 low-carbon configuration: each machine re-homed to a
    high-variability grid (IC->AU-SA, FASTER->CA-ON, Desktop->NO-NO2,
    Theta->DK-BHM); embodied rates unchanged, as in the paper."""
    machines = {}
    for node in SIMULATION_MACHINES:
        region = LOW_CARBON_REGION[node.name]
        trace = trace_for_region(region, days=days, seed=seed)
        machines[node.name] = _machine(node, trace)
    return machines


# ---------------------------------------------------------------------------
# Tiered data-migration fleet (ROADMAP item 3)
# ---------------------------------------------------------------------------

#: Tier names from largest (fastest, scarcest) to smallest — the
#: preference order of the largest-first policy.
TIER_ORDER: tuple[str, ...] = ("Large", "Medium", "Small")

#: Default straggler knobs baked into the bare ``"tiered"`` scenario
#: name; variants encode overrides in the name itself (see
#: :func:`tiered_scenario_name`) so sweep/store keys change with them.
DEFAULT_STRAGGLER_FRAC = 0.08
DEFAULT_STRAGGLER_SIGMA = 1.0

TIERED_SCENARIO = "tiered"

#: Many cheap desktop-class workers: slow per core, no slot cap.
SMALL_TIER_NODE = NodeSpec(
    name="Small",
    cpu=I7_10700,
    sockets=1,
    year_deployed=2022,
    idle_power_watts=6.51,
    embodied_carbon_g=445_300.0,
    node_count=24,
    dram_gb=32,
)

#: A mid-size server pool, IC-grade silicon.
MEDIUM_TIER_NODE = NodeSpec(
    name="Medium",
    cpu=XEON_6248R,
    sockets=2,
    year_deployed=2021,
    idle_power_watts=136.0,
    embodied_carbon_g=1_015_800.0,
    node_count=6,
    dram_gb=192,
)

#: A handful of wide, fast nodes — the scarce tier the largest-first
#: policy drains first.
LARGE_TIER_NODE = NodeSpec(
    name="Large",
    cpu=XEON_PLATINUM_8380,
    sockets=2,
    year_deployed=2022,
    idle_power_watts=210.0,
    embodied_carbon_g=2_867_400.0,
    node_count=3,
    dram_gb=512,
)

#: Per-tier extrapolation curves.  Large is the fastest tier (below-IC
#: runtimes, moderate dynamic power thanks to wide low-clock dies);
#: Small reuses desktop-class behaviour with a milder memory penalty.
#: Dynamic power per core keeps idle + cores * dyn <= node TDP.
TIER_PERF_CURVES: dict[str, PerfCurve] = {
    "Large": PerfCurve(base=0.85, slope=-0.10, dyn_watts_per_core=4.0),
    "Medium": PerfCurve(base=1.0, slope=0.0, dyn_watts_per_core=5.7),
    "Small": PerfCurve(base=1.6, slope=0.5, dyn_watts_per_core=3.65),
}

#: Worker-slot caps per tier (``None`` = uncapped).  The Large tier is
#: deliberately slot-starved relative to its core count so the cap —
#: not core capacity — is its bottleneck under largest-first pressure.
TIER_CONCURRENCY_LIMITS: dict[str, int | None] = {
    "Large": 6,
    "Medium": 16,
    "Small": None,
}

#: One fleet, one grid: all tiers share a region so the accounting
#: differences under test come from hardware skew, not carbon skew.
TIERED_FLEET_REGION = "US-MIDW"

_TIER_NODES: dict[str, NodeSpec] = {
    "Large": LARGE_TIER_NODE,
    "Medium": MEDIUM_TIER_NODE,
    "Small": SMALL_TIER_NODE,
}


def tiered_fleet_scenario(days: int = 365, seed: int = 0) -> dict[str, SimMachine]:
    """The three-tier worker fleet, largest tier first.

    Core capacity is skewed small-heavy (384 Small cores vs. 288 Medium
    vs. 240 Large) while speed is skewed the other way, and the Large
    tier carries a concurrency cap well below what its cores admit —
    the configuration that separates "fair" from "merely conserved"
    charging under straggler inflation.
    """
    trace = trace_for_region(TIERED_FLEET_REGION, days=days, seed=seed)
    machines = {}
    for tier in TIER_ORDER:
        node = _TIER_NODES[tier]
        rate = carbon_rate_per_hour(
            node.embodied_carbon_g,
            node.age_years(SIMULATION_YEAR),
            DoubleDecliningBalance(),
        )
        machines[tier] = SimMachine(
            node=node,
            intensity=trace,
            carbon_rate_g_per_h=rate,
            perf=TIER_PERF_CURVES[tier],
            max_concurrent_jobs=TIER_CONCURRENCY_LIMITS[tier],
        )
    return machines


def tiered_scenario_name(
    straggler_frac: float = DEFAULT_STRAGGLER_FRAC,
    straggler_sigma: float = DEFAULT_STRAGGLER_SIGMA,
) -> str:
    """Scenario name encoding the straggler knobs.

    The bare name ``"tiered"`` means the defaults; any override is
    spelled out (``"tiered:frac=0.2,sigma=1.5"``).  Because sweep tasks
    and result-store keys fingerprint the scenario *name*, distinct
    knob settings can never alias to a stale stored result.
    """
    if (
        straggler_frac == DEFAULT_STRAGGLER_FRAC
        and straggler_sigma == DEFAULT_STRAGGLER_SIGMA
    ):
        return TIERED_SCENARIO
    return (
        f"{TIERED_SCENARIO}:frac={float(straggler_frac)!r}"
        f",sigma={float(straggler_sigma)!r}"
    )


def is_tiered_scenario(name: str) -> bool:
    return name == TIERED_SCENARIO or name.startswith(TIERED_SCENARIO + ":")


def parse_tiered_scenario(name: str) -> tuple[float, float]:
    """``(straggler_frac, straggler_sigma)`` for a tiered scenario name.

    Raises ``KeyError`` for non-tiered names or unknown knobs, matching
    the unknown-scenario contract in ``experiments._simulation``.
    """
    if name == TIERED_SCENARIO:
        return DEFAULT_STRAGGLER_FRAC, DEFAULT_STRAGGLER_SIGMA
    prefix = TIERED_SCENARIO + ":"
    if not name.startswith(prefix):
        raise KeyError(f"not a tiered scenario name {name!r}")
    frac, sigma = DEFAULT_STRAGGLER_FRAC, DEFAULT_STRAGGLER_SIGMA
    for part in name[len(prefix) :].split(","):
        key, sep, value = part.partition("=")
        if not sep:
            raise KeyError(f"malformed tiered knob {part!r} in {name!r}")
        if key == "frac":
            frac = float(value)
        elif key == "sigma":
            sigma = float(value)
        else:
            raise KeyError(f"unknown tiered knob {key!r} in {name!r}")
    return frac, sigma
