"""Simulation scenarios: the Table 5 baseline and the §5.6 low-carbon grids.

A :class:`SimMachine` augments the hardware spec with everything the
simulator needs per machine: capacity (node count), the carbon-intensity
trace of its grid, its embodied-carbon rate (Table 5's "Carbon Rate"),
and the performance-extrapolation parameters the KNN trains against.

Calibration
-----------
The per-machine performance curves (runtime scale vs. the Institutional
Cluster as a function of memory intensity, and dynamic power per core)
encode the qualitative hardware facts §5 relies on:

* **FASTER** (2023 Ice-Lake-generation Xeons): the most energy-efficient,
  slightly slower per core than IC's high-clock 6248R for memory-light
  work, faster for wide memory-heavy work.
* **IC** (2021 Cascade Lake, 3.0 GHz): the fastest for most jobs —
  which is why the Runtime policy favours it — but power-hungry per
  core.
* **Desktop** (i7-10700): low absolute power and quite efficient, but
  only one 16-core node, so it helps only small jobs.
* **Theta** (2017 KNL): slow cores (2-4x IC runtimes) with modest power,
  making it *inefficient in energy per unit of work* — the paper's
  example of a machine EBA prices out.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.carbon.embodied import DoubleDecliningBalance, carbon_rate_per_hour
from repro.carbon.grids import trace_for_region
from repro.carbon.intensity import CarbonIntensityTrace
from repro.hardware.catalog import (
    LOW_CARBON_REGION,
    SIMULATION_CARBON_INTENSITY,
    SIMULATION_MACHINES,
    SIMULATION_YEAR,
)
from repro.hardware.node import NodeSpec


@dataclass(frozen=True)
class PerfCurve:
    """Runtime/power extrapolation parameters relative to IC.

    ``runtime_scale(m) = base + slope * m`` where ``m`` in [0, 1] is the
    job's memory intensity; ``dyn_watts_per_core`` is the dynamic power
    of one fully busy core.
    """

    base: float
    slope: float
    dyn_watts_per_core: float

    def runtime_scale(self, memory_intensity: float) -> float:
        m = min(1.0, max(0.0, memory_intensity))
        return self.base + self.slope * m


#: Cross-platform calibration (see module docstring).  Dynamic power per
#: core is bounded so a fully loaded node sits at its CPU TDP
#: (idle + cores * dyn <= TDP), consistent with Table 5.
PERF_CURVES: dict[str, PerfCurve] = {
    # Efficient but lower-clocked: beats IC only on memory-heavy work.
    "FASTER": PerfCurve(base=1.25, slope=-0.20, dyn_watts_per_core=3.2),
    # High clocks: the fastest machine for most jobs, power-hungry.
    "IC": PerfCurve(base=1.0, slope=0.0, dyn_watts_per_core=5.7),
    # Client silicon: low absolute power, but slow enough per unit of
    # work that it wins mainly on memory-light small jobs.
    "Desktop": PerfCurve(base=1.8, slope=0.6, dyn_watts_per_core=3.65),
    # KNL: slow cores make it the least efficient per unit of work.
    "Theta": PerfCurve(base=2.6, slope=1.8, dyn_watts_per_core=1.64),
}


@dataclass(frozen=True)
class SimMachine:
    """Everything the simulator knows about one machine."""

    node: NodeSpec
    intensity: CarbonIntensityTrace
    carbon_rate_g_per_h: float  # per node, Table 5 column
    perf: PerfCurve

    @property
    def name(self) -> str:
        return self.node.name

    @property
    def cores_per_node(self) -> int:
        return self.node.cores

    @property
    def total_cores(self) -> int:
        return self.node.cores * self.node.node_count

    @property
    def idle_watts_per_core(self) -> float:
        return self.node.idle_power_watts / self.node.cores

    @property
    def tdp_watts_per_core(self) -> float:
        return self.node.tdp_watts / self.node.cores

    @property
    def max_job_cores(self) -> int:
        """Largest job this machine accepts (single-machine jobs may span
        nodes, so the bound is total capacity)."""
        return self.total_cores

    def embodied_rate_per_core_hour(self) -> float:
        """Embodied gCO2e per core-hour (node rate / cores per node)."""
        return self.carbon_rate_g_per_h / self.cores_per_node


def _machine(
    node: NodeSpec,
    intensity: CarbonIntensityTrace,
) -> SimMachine:
    rate = carbon_rate_per_hour(
        node.embodied_carbon_g,
        node.age_years(SIMULATION_YEAR),
        DoubleDecliningBalance(),
    )
    return SimMachine(
        node=node,
        intensity=intensity,
        carbon_rate_g_per_h=rate,
        perf=PERF_CURVES[node.name],
    )


def baseline_scenario(days: int = 365, seed: int = 0) -> dict[str, SimMachine]:
    """The Table 5 configuration.

    Grid traces are synthetic hourly series whose yearly means equal
    Table 5's "Avg. Carbon Intensity" column (FASTER on the Texas grid,
    Desktop/IC on the Illinois grid, Theta on its higher-carbon feed).
    """
    regions = {
        "FASTER": "US-TEX",
        "Desktop": "US-MIDW",
        "IC": "US-MIDW",
        "Theta": "US-ALCF",
    }
    machines = {}
    for node in SIMULATION_MACHINES:
        trace = trace_for_region(regions[node.name], days=days, seed=seed)
        # Re-pin the trace mean to the exact Table 5 average.
        target = SIMULATION_CARBON_INTENSITY[node.name]
        values = trace.hourly_g_per_kwh * (target / trace.mean)
        trace = CarbonIntensityTrace(region=trace.region, hourly_g_per_kwh=values)
        machines[node.name] = _machine(node, trace)
    return machines


def low_carbon_scenario(days: int = 365, seed: int = 0) -> dict[str, SimMachine]:
    """The §5.6 low-carbon configuration: each machine re-homed to a
    high-variability grid (IC->AU-SA, FASTER->CA-ON, Desktop->NO-NO2,
    Theta->DK-BHM); embodied rates unchanged, as in the paper."""
    machines = {}
    for node in SIMULATION_MACHINES:
        region = LOW_CARBON_REGION[node.name]
        trace = trace_for_region(region, days=days, seed=seed)
        machines[node.name] = _machine(node, trace)
    return machines
