"""The event-driven multi-cluster simulation loop.

Replays a workload against a set of machines under one selection policy
and one accounting method.  The engine reuses the *same* accounting
implementations as the FaaS platform (``repro.accounting``): each
machine gets a :class:`~repro.accounting.base.MachinePricing` spanning
its whole fleet, so Eq. (1)/(2) shares scale correctly for multi-node
jobs.

Event order is deterministic: (time, sequence) keys, arrivals before
finishes at equal times, so a seeded workload yields identical results
across runs.

Batched pricing architecture
----------------------------
Pricing is the hot path: a paper-scale run prices every (job x eligible
machine) pair at arrival and every finished job again at completion.
Instead of allocating a :class:`~repro.accounting.base.UsageRecord` per
pair inside the event loop, the engine

1. **precomputes** all arrival-time (submission-quote) charges once at
   workload load with one vectorized
   :meth:`~repro.accounting.base.AccountingMethod.charge_many` call per
   machine (arrival time *is* the submit time, which is known up front
   — EBA charges are time-invariant and CBA varies only with the hour
   bucket of the cyclic trace), and
2. **defers** outcome pricing to a vectorized post-pass over the finish
   log, again one ``charge_many`` + ``at_many`` call per machine.

Both paths produce bit-identical costs to the per-record loop (the
vectorized methods use the same IEEE operation order); pass
``batched=False`` to run the reference scalar path, which the test
suite uses to assert exact equivalence.
"""

from __future__ import annotations

import bisect
import heapq
from dataclasses import dataclass

import numpy as np

from repro.accounting.base import (
    AccountingMethod,
    MachinePricing,
    UsageBatch,
    UsageRecord,
)
from repro.accounting.methods import CarbonBasedAccounting
from repro.sim.cluster import ClusterSim
from repro.sim.job import Job, JobOutcome
from repro.sim.policies import MachineView, Policy
from repro.sim.scenarios import SimMachine
from repro.sim.workload import Workload
from repro.units import operational_carbon_g

def pricing_for_sim_machine(machine: SimMachine) -> MachinePricing:
    """Fleet-wide pricing view for one simulation machine.

    ``total_cores`` spans every node, and the embodied rate override is
    the Table 5 per-node rate scaled to the fleet, so a job's share
    ``cores / total_cores`` charges exactly
    ``node_rate * cores / cores_per_node`` — linear in cores, correct
    across node boundaries.
    """
    node = machine.node
    return MachinePricing(
        name=machine.name,
        total_cores=machine.total_cores,
        tdp_watts=node.tdp_watts * node.node_count,
        peak_rating=node.peak_gflops_per_core,
        embodied_carbon_g=node.embodied_carbon_g * node.node_count,
        age_years=0,  # unused: the rate override below wins
        intensity=machine.intensity,
        carbon_rate_override_g_per_h=machine.carbon_rate_g_per_h
        * node.node_count,
    )


@dataclass
class SimulationResult:
    """All job outcomes of one (policy, method) simulation run."""

    policy: str
    method: str
    outcomes: list[JobOutcome]
    machines: list[str]

    # ------------------------------------------------------------------
    @property
    def n_jobs(self) -> int:
        return len(self.outcomes)

    @property
    def makespan_s(self) -> float:
        return max((o.end_s for o in self.outcomes), default=0.0)

    def total_cost(self) -> float:
        return sum(o.cost for o in self.outcomes)

    def total_energy_j(self) -> float:
        return sum(o.energy_j for o in self.outcomes)

    def total_work_core_hours(self) -> float:
        return sum(o.work_core_hours for o in self.outcomes)

    def total_operational_carbon_g(self) -> float:
        return sum(o.operational_carbon_g for o in self.outcomes)

    def total_attributed_carbon_g(self) -> float:
        return sum(o.attributed_carbon_g for o in self.outcomes)

    # ------------------------------------------------------------------
    def _sorted_by_end(self) -> list[JobOutcome]:
        """Outcomes in completion order, sorted once and cached.

        Budget queries and the Fig. 5b series all consume this order;
        outcomes are treated as immutable once the run has finished.
        """
        cached = self.__dict__.get("_end_sorted")
        if cached is None:
            cached = sorted(self.outcomes, key=lambda o: o.end_s)
            self._end_sorted = cached
        return cached

    def _sorted_end_times(self) -> list[float]:
        cached = self.__dict__.get("_end_times")
        if cached is None:
            cached = [o.end_s for o in self._sorted_by_end()]
            self._end_times = cached
        return cached

    def work_with_budget(self, budget: float) -> float:
        """Core-hours of work completed before a fixed allocation runs out.

        Jobs are consumed in completion order; once cumulative cost
        exceeds ``budget`` the remaining jobs are outside the allocation
        (Fig. 5a / Fig. 6 semantics)."""
        if budget < 0:
            raise ValueError("budget cannot be negative")
        spent = 0.0
        work = 0.0
        for outcome in self._sorted_by_end():
            if spent + outcome.cost > budget:
                break
            spent += outcome.cost
            work += outcome.work_core_hours
        return work

    def jobs_with_budget(self, budget: float) -> int:
        """Jobs completed before a fixed allocation runs out."""
        spent = 0.0
        count = 0
        for outcome in self._sorted_by_end():
            if spent + outcome.cost > budget:
                break
            spent += outcome.cost
            count += 1
        return count

    def jobs_finished_by(self, times_s: list[float]) -> list[int]:
        """Cumulative jobs finished at each query time (Fig. 5b)."""
        ends = self._sorted_end_times()
        out = []
        for t in times_s:
            out.append(bisect.bisect_right(ends, t))
        return out

    def machine_distribution(self) -> dict[str, int]:
        """Jobs per machine (Fig. 5c)."""
        dist = {m: 0 for m in self.machines}
        for outcome in self.outcomes:
            dist[outcome.machine] = dist.get(outcome.machine, 0) + 1
        return dist

    def mean_queue_wait_s(self) -> float:
        if not self.outcomes:
            return 0.0
        return sum(o.queue_wait_s for o in self.outcomes) / len(self.outcomes)


class _PricingTable:
    """Struct-of-arrays precompute of per-(job, machine) static charges.

    Built once per run: arrival-time quotes are fully determined at
    workload load (arrival time == submit time), so every
    :class:`MachineView` cost the policies will ever see is one row
    lookup, and the outcome post-pass reuses the same arrays.
    """

    __slots__ = ("row_of", "cores", "runtime", "energy", "static_views")

    def __init__(
        self,
        workload: Workload,
        pricings: dict[str, MachinePricing],
        method: AccountingMethod,
    ) -> None:
        jobs = workload.jobs
        n = len(jobs)
        names = list(pricings)
        name_idx = {name: mi for mi, name in enumerate(names)}
        nan = float("nan")
        self.row_of: dict[int, int] = {}
        row_of = self.row_of
        cores_l = [0] * n
        submit_l = [0.0] * n
        # Accumulate into Python lists (scalar ndarray stores are an
        # order of magnitude slower), then convert once per machine.
        rt_rows = [[nan] * n for _ in names]
        en_rows = [[nan] * n for _ in names]
        for i, job in enumerate(jobs):
            row_of[job.job_id] = i
            cores_l[i] = job.cores
            submit_l[i] = job.submit_s
            energy = job.energy_j
            for name, rt in job.runtime_s.items():
                mi = name_idx.get(name)
                if mi is not None:
                    rt_rows[mi][i] = rt
                    en_rows[mi][i] = energy[name]
        cores = np.array(cores_l, dtype=np.int64)
        submit = np.array(submit_l)
        self.cores = cores
        self.runtime: dict[str, np.ndarray] = {}
        self.energy: dict[str, np.ndarray] = {}
        cost_rows: list[list[float]] = []
        for mi, name in enumerate(names):
            rt = np.array(rt_rows[mi])
            en = np.array(en_rows[mi])
            cost = np.full(n, np.nan)
            eligible = ~np.isnan(rt)
            if eligible.any():
                batch = UsageBatch(
                    machine=name,
                    duration_s=rt[eligible],
                    energy_j=en[eligible],
                    cores=cores[eligible],
                    start_time_s=submit[eligible],
                )
                cost[eligible] = method.charge_many(batch, pricings[name])
            self.runtime[name] = rt
            self.energy[name] = en
            cost_rows.append(cost.tolist())
        # Per-job (machine, runtime, energy, quoted cost) tuples in the
        # job's own eligibility order — what the seed `_views` iterated.
        static_views: list[list[tuple[str, float, float, float]]] = []
        append_views = static_views.append
        for i, job in enumerate(jobs):
            entries = []
            energy = job.energy_j
            for name, rt in job.runtime_s.items():
                mi = name_idx.get(name)
                if mi is not None:
                    entries.append((name, rt, energy[name], cost_rows[mi][i]))
            append_views(entries)
        self.static_views = static_views


class MultiClusterSimulator:
    """Simulates one policy over one workload.

    Parameters
    ----------
    machines:
        The scenario's machines (name -> :class:`SimMachine`).
    method:
        Accounting method that prices jobs (and that Greedy/Mixed see).
    policy:
        The machine-selection policy under study.
    batched:
        Use the vectorized pricing paths (default).  ``False`` runs the
        reference per-record implementation; outcomes are bit-identical
        either way.
    """

    def __init__(
        self,
        machines: dict[str, SimMachine],
        method: AccountingMethod,
        policy: Policy,
        batched: bool = True,
    ) -> None:
        if not machines:
            raise ValueError("need at least one machine")
        self.machines = machines
        self.method = method
        self.policy = policy
        self.batched = batched
        self.pricings = {
            name: pricing_for_sim_machine(m) for name, m in machines.items()
        }
        self._carbon = CarbonBasedAccounting()

    # ------------------------------------------------------------------
    def _views(self, job: Job, clusters: dict[str, ClusterSim], now: float) -> list[MachineView]:
        """Reference (per-record) view builder — the ``batched=False`` path."""
        views = []
        for name in job.eligible_machines:
            if name not in clusters:
                continue
            runtime = job.runtime_s[name]
            energy = job.energy_j[name]
            record = UsageRecord(
                machine=name,
                duration_s=runtime,
                energy_j=energy,
                cores=job.cores,
                start_time_s=now,
            )
            views.append(
                MachineView(
                    machine=name,
                    runtime_s=runtime,
                    energy_j=energy,
                    queue_wait_s=clusters[name].estimated_wait_s(),
                    cost=self.method.charge(record, self.pricings[name]),
                )
            )
        return views

    def run(self, workload: Workload) -> SimulationResult:
        """Run the full workload to completion and collect outcomes.

        Event order is identical to the seed implementation (one heap of
        ``(time, kind, seq)`` keys): arrivals are consumed from the
        submit-sorted job list and only *finishes* live in the heap —
        at equal times arrivals still precede finishes, and ties within
        a kind keep submission/push order.
        """
        clusters = {name: ClusterSim(m) for name, m in self.machines.items()}
        table = (
            _PricingTable(workload, self.pricings, self.method)
            if self.batched
            else None
        )
        jobs = workload.jobs
        in_order = all(
            a.submit_s <= b.submit_s for a, b in zip(jobs, jobs[1:])
        )
        arrivals = jobs if in_order else sorted(jobs, key=lambda j: j.submit_s)

        #: Finish events: (end_time, seq, machine, job_id, start_time).
        finish_heap: list[tuple[float, int, str, int, float]] = []
        seq = 0
        outcomes: list[JobOutcome] = []
        finished: list[tuple[Job, str, float, float]] = []

        heappush = heapq.heappush
        heappop = heapq.heappop
        select = self.policy.select
        static_views = table.static_views if table is not None else None
        row_of = table.row_of if table is not None else None

        def try_start(cluster: ClusterSim, now: float) -> None:
            nonlocal seq
            if not cluster.queue or cluster.free_cores <= 0:
                return
            for job in cluster.startable(now):
                end = cluster.end_time_of(job.job_id)
                heappush(finish_heap, (end, seq, cluster.name, job.job_id, now))
                seq += 1

        ai = 0
        n_arrivals = len(arrivals)
        while ai < n_arrivals or finish_heap:
            if finish_heap and (
                ai >= n_arrivals or finish_heap[0][0] < arrivals[ai].submit_s
            ):
                now, _, machine_name, job_id, start_s = heappop(finish_heap)
                cluster = clusters[machine_name]
                job = cluster.finish(job_id)
                if table is not None:
                    finished.append((job, machine_name, start_s, now))
                else:
                    outcomes.append(self._outcome(job, machine_name, start_s, now))
                try_start(cluster, now)
            else:
                job = arrivals[ai]
                ai += 1
                now = job.submit_s
                if static_views is not None:
                    views = [
                        MachineView(
                            name, rt, en, clusters[name].estimated_wait_s(), cost
                        )
                        for name, rt, en, cost in static_views[row_of[job.job_id]]
                    ]
                else:
                    views = self._views(job, clusters, now)
                if not views:
                    continue
                cluster = clusters[select(job, views)]
                cluster.enqueue(job)
                try_start(cluster, now)

        if table is not None:
            outcomes = self._price_outcomes(finished, table)

        return SimulationResult(
            policy=self.policy.name,
            method=self.method.name,
            outcomes=outcomes,
            machines=list(self.machines),
        )

    # ------------------------------------------------------------------
    def _price_outcomes(
        self,
        finished: list[tuple[Job, str, float, float]],
        table: _PricingTable,
    ) -> list[JobOutcome]:
        """Vectorized post-pass: price every finished job in one
        ``charge_many`` + ``at_many`` sweep per machine."""
        n = len(finished)
        cost = np.empty(n)
        operational = np.empty(n)
        attributed = np.empty(n)
        by_machine: dict[str, list[int]] = {}
        for i, (_, name, _, _) in enumerate(finished):
            by_machine.setdefault(name, []).append(i)
        for name, idxs in by_machine.items():
            idx = np.asarray(idxs, dtype=np.intp)
            rows = np.fromiter(
                (table.row_of[finished[i][0].job_id] for i in idxs),
                dtype=np.intp,
                count=len(idxs),
            )
            starts = np.fromiter(
                (finished[i][2] for i in idxs), dtype=float, count=len(idxs)
            )
            energy = table.energy[name][rows]
            batch = UsageBatch(
                machine=name,
                duration_s=table.runtime[name][rows],
                energy_j=energy,
                cores=table.cores[rows],
                start_time_s=starts,
            )
            pricing = self.pricings[name]
            cost[idx] = self.method.charge_many(batch, pricing)
            intensity = self.machines[name].intensity.at_many(starts)
            op = operational_carbon_g(energy, intensity)
            operational[idx] = op
            attributed[idx] = op + self._carbon.embodied_charge_many(batch, pricing)
        cost_l = cost.tolist()
        oper_l = operational.tolist()
        attr_l = attributed.tolist()
        return [
            JobOutcome(
                job_id=job.job_id,
                user=job.user,
                machine=name,
                cores=job.cores,
                submit_s=job.submit_s,
                start_s=start_s,
                end_s=end_s,
                energy_j=job.energy_j[name],
                cost=cost_l[i],
                work_core_hours=job.work_core_hours,
                operational_carbon_g=oper_l[i],
                attributed_carbon_g=attr_l[i],
            )
            for i, (job, name, start_s, end_s) in enumerate(finished)
        ]

    def _outcome(
        self, job: Job, machine_name: str, start_s: float, end_s: float
    ) -> JobOutcome:
        """Reference (per-record) outcome pricing — the ``batched=False``
        path."""
        energy = job.energy_j[machine_name]
        pricing = self.pricings[machine_name]
        record = UsageRecord(
            machine=machine_name,
            duration_s=job.runtime_s[machine_name],
            energy_j=energy,
            cores=job.cores,
            start_time_s=start_s,
            job_id=str(job.job_id),
        )
        cost = self.method.charge(record, pricing)
        intensity = self.machines[machine_name].intensity.at(start_s)
        operational = operational_carbon_g(energy, intensity)
        attributed = operational + self._carbon.embodied_charge(record, pricing)
        return JobOutcome(
            job_id=job.job_id,
            user=job.user,
            machine=machine_name,
            cores=job.cores,
            submit_s=job.submit_s,
            start_s=start_s,
            end_s=end_s,
            energy_j=energy,
            cost=cost,
            work_core_hours=job.work_core_hours,
            operational_carbon_g=operational,
            attributed_carbon_g=attributed,
        )
