"""The event-driven multi-cluster simulation loop.

Replays a workload against a set of machines under one selection policy
and one accounting method.  The engine reuses the *same* accounting
implementations as the FaaS platform (``repro.accounting``): each
machine gets a :class:`~repro.accounting.base.MachinePricing` spanning
its whole fleet, so Eq. (1)/(2) shares scale correctly for multi-node
jobs.

Event order is deterministic: (time, sequence) keys, arrivals before
finishes at equal times, so a seeded workload yields identical results
across runs.
"""

from __future__ import annotations

import bisect
import heapq
from dataclasses import dataclass

from repro.accounting.base import AccountingMethod, MachinePricing, UsageRecord
from repro.accounting.methods import CarbonBasedAccounting
from repro.sim.cluster import ClusterSim
from repro.sim.job import Job, JobOutcome
from repro.sim.policies import MachineView, Policy
from repro.sim.scenarios import SimMachine
from repro.sim.workload import Workload
from repro.units import operational_carbon_g

_ARRIVAL = 0
_FINISH = 1


def pricing_for_sim_machine(machine: SimMachine) -> MachinePricing:
    """Fleet-wide pricing view for one simulation machine.

    ``total_cores`` spans every node, and the embodied rate override is
    the Table 5 per-node rate scaled to the fleet, so a job's share
    ``cores / total_cores`` charges exactly
    ``node_rate * cores / cores_per_node`` — linear in cores, correct
    across node boundaries.
    """
    node = machine.node
    return MachinePricing(
        name=machine.name,
        total_cores=machine.total_cores,
        tdp_watts=node.tdp_watts * node.node_count,
        peak_rating=node.peak_gflops_per_core,
        embodied_carbon_g=node.embodied_carbon_g * node.node_count,
        age_years=0,  # unused: the rate override below wins
        intensity=machine.intensity,
        carbon_rate_override_g_per_h=machine.carbon_rate_g_per_h
        * node.node_count,
    )


@dataclass
class SimulationResult:
    """All job outcomes of one (policy, method) simulation run."""

    policy: str
    method: str
    outcomes: list[JobOutcome]
    machines: list[str]

    # ------------------------------------------------------------------
    @property
    def n_jobs(self) -> int:
        return len(self.outcomes)

    @property
    def makespan_s(self) -> float:
        return max((o.end_s for o in self.outcomes), default=0.0)

    def total_cost(self) -> float:
        return sum(o.cost for o in self.outcomes)

    def total_energy_j(self) -> float:
        return sum(o.energy_j for o in self.outcomes)

    def total_work_core_hours(self) -> float:
        return sum(o.work_core_hours for o in self.outcomes)

    def total_operational_carbon_g(self) -> float:
        return sum(o.operational_carbon_g for o in self.outcomes)

    def total_attributed_carbon_g(self) -> float:
        return sum(o.attributed_carbon_g for o in self.outcomes)

    # ------------------------------------------------------------------
    def work_with_budget(self, budget: float) -> float:
        """Core-hours of work completed before a fixed allocation runs out.

        Jobs are consumed in completion order; once cumulative cost
        exceeds ``budget`` the remaining jobs are outside the allocation
        (Fig. 5a / Fig. 6 semantics)."""
        if budget < 0:
            raise ValueError("budget cannot be negative")
        spent = 0.0
        work = 0.0
        for outcome in sorted(self.outcomes, key=lambda o: o.end_s):
            if spent + outcome.cost > budget:
                break
            spent += outcome.cost
            work += outcome.work_core_hours
        return work

    def jobs_with_budget(self, budget: float) -> int:
        """Jobs completed before a fixed allocation runs out."""
        spent = 0.0
        count = 0
        for outcome in sorted(self.outcomes, key=lambda o: o.end_s):
            if spent + outcome.cost > budget:
                break
            spent += outcome.cost
            count += 1
        return count

    def jobs_finished_by(self, times_s: list[float]) -> list[int]:
        """Cumulative jobs finished at each query time (Fig. 5b)."""
        ends = sorted(o.end_s for o in self.outcomes)
        out = []
        for t in times_s:
            out.append(bisect.bisect_right(ends, t))
        return out

    def machine_distribution(self) -> dict[str, int]:
        """Jobs per machine (Fig. 5c)."""
        dist = {m: 0 for m in self.machines}
        for outcome in self.outcomes:
            dist[outcome.machine] = dist.get(outcome.machine, 0) + 1
        return dist

    def mean_queue_wait_s(self) -> float:
        if not self.outcomes:
            return 0.0
        return sum(o.queue_wait_s for o in self.outcomes) / len(self.outcomes)


class MultiClusterSimulator:
    """Simulates one policy over one workload.

    Parameters
    ----------
    machines:
        The scenario's machines (name -> :class:`SimMachine`).
    method:
        Accounting method that prices jobs (and that Greedy/Mixed see).
    policy:
        The machine-selection policy under study.
    """

    def __init__(
        self,
        machines: dict[str, SimMachine],
        method: AccountingMethod,
        policy: Policy,
    ) -> None:
        if not machines:
            raise ValueError("need at least one machine")
        self.machines = machines
        self.method = method
        self.policy = policy
        self.pricings = {
            name: pricing_for_sim_machine(m) for name, m in machines.items()
        }
        self._carbon = CarbonBasedAccounting()

    # ------------------------------------------------------------------
    def _views(self, job: Job, clusters: dict[str, ClusterSim], now: float) -> list[MachineView]:
        views = []
        for name in job.eligible_machines:
            if name not in clusters:
                continue
            runtime = job.runtime_s[name]
            energy = job.energy_j[name]
            record = UsageRecord(
                machine=name,
                duration_s=runtime,
                energy_j=energy,
                cores=job.cores,
                start_time_s=now,
            )
            views.append(
                MachineView(
                    machine=name,
                    runtime_s=runtime,
                    energy_j=energy,
                    queue_wait_s=clusters[name].estimated_wait_s(),
                    cost=self.method.charge(record, self.pricings[name]),
                )
            )
        return views

    def run(self, workload: Workload) -> SimulationResult:
        """Run the full workload to completion and collect outcomes."""
        clusters = {name: ClusterSim(m) for name, m in self.machines.items()}
        events: list[tuple[float, int, int, object]] = []
        seq = 0
        for job in workload.jobs:
            heapq.heappush(events, (job.submit_s, _ARRIVAL, seq, job))
            seq += 1

        started_at: dict[int, tuple[float, str]] = {}
        outcomes: list[JobOutcome] = []

        def try_start(cluster: ClusterSim, now: float) -> None:
            nonlocal seq
            for job in cluster.startable(now):
                started_at[job.job_id] = (now, cluster.name)
                end = cluster.end_time_of(job.job_id)
                heapq.heappush(events, (end, _FINISH, seq, (cluster.name, job.job_id)))
                seq += 1

        while events:
            now, kind, _, payload = heapq.heappop(events)
            if kind == _ARRIVAL:
                job = payload  # type: ignore[assignment]
                views = self._views(job, clusters, now)
                if not views:
                    continue
                choice = self.policy.select(job, views)
                cluster = clusters[choice]
                cluster.enqueue(job)
                try_start(cluster, now)
            else:
                machine_name, job_id = payload  # type: ignore[misc]
                cluster = clusters[machine_name]
                job = cluster.finish(job_id)
                start_s, _ = started_at.pop(job_id)
                outcomes.append(self._outcome(job, machine_name, start_s, now))
                try_start(cluster, now)

        return SimulationResult(
            policy=self.policy.name,
            method=self.method.name,
            outcomes=outcomes,
            machines=list(self.machines),
        )

    # ------------------------------------------------------------------
    def _outcome(
        self, job: Job, machine_name: str, start_s: float, end_s: float
    ) -> JobOutcome:
        energy = job.energy_j[machine_name]
        pricing = self.pricings[machine_name]
        record = UsageRecord(
            machine=machine_name,
            duration_s=job.runtime_s[machine_name],
            energy_j=energy,
            cores=job.cores,
            start_time_s=start_s,
            job_id=str(job.job_id),
        )
        cost = self.method.charge(record, pricing)
        intensity = self.machines[machine_name].intensity.at(start_s)
        operational = operational_carbon_g(energy, intensity)
        attributed = operational + self._carbon.embodied_charge(record, pricing)
        return JobOutcome(
            job_id=job.job_id,
            user=job.user,
            machine=machine_name,
            cores=job.cores,
            submit_s=job.submit_s,
            start_s=start_s,
            end_s=end_s,
            energy_j=energy,
            cost=cost,
            work_core_hours=job.work_core_hours,
            operational_carbon_g=operational,
            attributed_carbon_g=attributed,
        )

