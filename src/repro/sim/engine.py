"""The event-driven multi-cluster simulation loop.

Replays a workload against a set of machines under one selection policy
and one accounting method.  The engine reuses the *same* accounting
implementations as the FaaS platform (``repro.accounting``): each
machine gets a :class:`~repro.accounting.base.MachinePricing` spanning
its whole fleet, so Eq. (1)/(2) shares scale correctly for multi-node
jobs.

Event order is deterministic: (time, sequence) keys, arrivals before
finishes at equal times, so a seeded workload yields identical results
across runs.

Batched pricing architecture
----------------------------
Pricing is the hot path: a paper-scale run prices every (job x eligible
machine) pair at arrival and every finished job again at completion.
The engine follows the quote-table / settle contract of
:mod:`repro.accounting.pricing`:

1. a :class:`~repro.accounting.pricing.PricingKernel` **precomputes**
   all arrival-time (submission-quote) charges once at workload load
   with one vectorized
   :meth:`~repro.accounting.base.AccountingMethod.charge_many` call per
   machine (arrival time *is* the submit time, which is known up front
   — EBA charges are time-invariant and CBA varies only with the hour
   bucket of the cyclic trace), and
2. outcome pricing is **settled** in a vectorized post-pass over the
   finish log (:meth:`~repro.accounting.pricing.PricingKernel.price_outcomes`),
   producing the columnar :class:`~repro.accounting.pricing.OutcomeTable`
   that backs :class:`SimulationResult`.

Both paths produce bit-identical costs to the per-record loop (the
vectorized methods use the same IEEE operation order); pass
``batched=False`` to run the reference scalar path, which the test
suite uses to assert exact equivalence.
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

from repro.accounting.base import (
    AccountingMethod,
    MachinePricing,
    UsageRecord,
)
from repro.accounting.methods import CarbonBasedAccounting
from repro.accounting.pricing import (
    OutcomeTable,
    PricingKernel,
    QuoteTable,
    ShardedPricingKernel,
)
from repro.accounting.spill import OutcomeSpillStore
from repro.sim.cluster import ClusterSim
from repro.sim.events import ARRIVAL, EventCalendar
from repro.sim.job import Job, JobOutcome
from repro.sim.policies import MachineView, Policy
from repro.sim.scenarios import SimMachine
from repro.sim.workload import StreamingWorkload, Workload
from repro.units import operational_carbon_g

#: Finished jobs settled (and spilled) per block on the streaming path.
DEFAULT_SPILL_BLOCK_JOBS = 32_768

def _seq_sum(column: np.ndarray) -> float:
    """Left-to-right sum of a column.

    ``np.cumsum`` accumulates sequentially, so this reproduces the exact
    floats of the reference ``sum(o.field for o in outcomes)`` loops —
    which matters because budget queries compare a *running* spend
    against totals and must not disagree by an ulp (``np.sum`` pairwise
    summation would).
    """
    return float(np.cumsum(column)[-1]) if len(column) else 0.0


def pricing_for_sim_machine(machine: SimMachine) -> MachinePricing:
    """Fleet-wide pricing view for one simulation machine.

    ``total_cores`` spans every node, and the embodied rate override is
    the Table 5 per-node rate scaled to the fleet, so a job's share
    ``cores / total_cores`` charges exactly
    ``node_rate * cores / cores_per_node`` — linear in cores, correct
    across node boundaries.
    """
    node = machine.node
    return MachinePricing(
        name=machine.name,
        total_cores=machine.total_cores,
        tdp_watts=node.tdp_watts * node.node_count,
        peak_rating=node.peak_gflops_per_core,
        embodied_carbon_g=node.embodied_carbon_g * node.node_count,
        age_years=0,  # unused: the rate override below wins
        intensity=machine.intensity,
        carbon_rate_override_g_per_h=machine.carbon_rate_g_per_h
        * node.node_count,
    )


# repro-lint: disable=RPL007 (one object per run, not per row; the lazy row/order caches live in __dict__ so pickling across sweep workers stays layout-stable)
class SimulationResult:
    """All job outcomes of one (policy, method) simulation run.

    Array-backed: the canonical storage is a columnar
    :class:`~repro.accounting.pricing.OutcomeTable` (``result.table``);
    every aggregate below is an array expression over its columns.
    ``result.outcomes`` remains available as a *lazy row view* — the
    :class:`~repro.sim.job.JobOutcome` objects are materialized on first
    access and cached — so row-oriented consumers keep working
    unchanged.  Construct with either ``table=`` (the batched paths) or
    ``outcomes=`` (per-record reference paths and wrappers).
    """

    def __init__(
        self,
        policy: str,
        method: str,
        machines: list[str],
        outcomes: list[JobOutcome] | None = None,
        table: OutcomeTable | None = None,
    ) -> None:
        if (table is None) == (outcomes is None):
            raise ValueError("pass exactly one of outcomes= or table=")
        if table is None:
            table = OutcomeTable.from_rows(outcomes, machines)
        self.policy = policy
        self.method = method
        self.machines = list(machines)
        self.table = table

    # ------------------------------------------------------------------
    @property
    def outcomes(self) -> list[JobOutcome]:
        """Lazy row view over :attr:`table` (built once, then cached)."""
        return self.table.rows()

    @property
    def n_jobs(self) -> int:
        return len(self.table)

    @property
    def makespan_s(self) -> float:
        table = self.table
        return float(table.end_s.max()) if len(table) else 0.0

    def total_cost(self) -> float:
        return _seq_sum(self.table.cost)

    def total_energy_j(self) -> float:
        return _seq_sum(self.table.energy_j)

    def total_work_core_hours(self) -> float:
        return _seq_sum(self.table.work_core_hours)

    def total_operational_carbon_g(self) -> float:
        return _seq_sum(self.table.operational_carbon_g)

    def total_attributed_carbon_g(self) -> float:
        return _seq_sum(self.table.attributed_carbon_g)

    # ------------------------------------------------------------------
    def _end_order(self) -> np.ndarray:
        """Completion-order permutation, computed once and cached.

        Budget queries and the Fig. 5b series all consume this order;
        outcomes are treated as immutable once the run has finished.
        """
        cached = self.__dict__.get("_end_order_cache")
        if cached is None:
            cached = np.argsort(self.table.end_s, kind="stable")
            self.__dict__["_end_order_cache"] = cached
        return cached

    def _budget_cutoff(self, budget: float) -> tuple[int, np.ndarray]:
        """(number of jobs inside ``budget``, completion-order permutation).

        ``np.cumsum`` accumulates sequentially, so the running spend is
        bit-identical to the reference loop's ``spent += cost``.
        """
        if budget < 0:
            raise ValueError("budget cannot be negative")
        order = self._end_order()
        spent = np.cumsum(self.table.cost[order])
        count = int(np.searchsorted(spent > budget, True))
        return count, order

    def work_with_budget(self, budget: float) -> float:
        """Core-hours of work completed before a fixed allocation runs out.

        Jobs are consumed in completion order; once cumulative cost
        exceeds ``budget`` the remaining jobs are outside the allocation
        (Fig. 5a / Fig. 6 semantics)."""
        count, order = self._budget_cutoff(budget)
        if count == 0:
            return 0.0
        work = np.cumsum(self.table.work_core_hours[order[:count]])
        return float(work[-1])

    def jobs_with_budget(self, budget: float) -> int:
        """Jobs completed before a fixed allocation runs out."""
        count, _ = self._budget_cutoff(budget)
        return count

    def jobs_finished_by(self, times_s: list[float]) -> list[int]:
        """Cumulative jobs finished at each query time (Fig. 5b)."""
        ends = self.table.end_s[self._end_order()]
        return np.searchsorted(ends, np.asarray(times_s), side="right").tolist()

    def machine_distribution(self) -> dict[str, int]:
        """Jobs per machine (Fig. 5c)."""
        table = self.table
        counts = np.bincount(table.machine_code, minlength=len(table.machines))
        dist = {m: 0 for m in self.machines}
        for name, count in zip(table.machines, counts.tolist()):
            if count or name in dist:
                dist[name] = dist.get(name, 0) + count
        return dist

    def mean_queue_wait_s(self) -> float:
        table = self.table
        if not len(table):
            return 0.0
        return _seq_sum(table.start_s - table.submit_s) / len(table)

    # ------------------------------------------------------------------
    def iter_tables(self) -> Iterator[OutcomeTable]:
        """The result as a sequence of completion-ordered column blocks.

        In-memory results are a single block; streamed results yield
        their spilled blocks one at a time.  Consumers that aggregate
        with carried accumulators (e.g. :func:`repro.reporting.fleet_report`)
        work on both without materializing streamed rows.
        """
        yield self.table

    def user_balances(self) -> dict[int, float]:
        """Settled cost per user — the credit-ledger view of a run.

        ``np.add.at`` is unbuffered and applies repeated indices in row
        order, so each user's balance is the same left-to-right float
        accumulation as the reference ``balance[user] += cost`` loop.
        """
        table = self.table
        if not len(table):
            return {}
        users = np.unique(table.user)
        acc = np.zeros(len(users))
        np.add.at(acc, np.searchsorted(users, table.user), table.cost)
        return {int(u): float(v) for u, v in zip(users, acc)}

    # ------------------------------------------------------------------
    def __getstate__(self):
        state = dict(self.__dict__)
        state.pop("_end_order_cache", None)
        return state

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"SimulationResult(policy={self.policy!r}, method={self.method!r}, "
            f"n_jobs={self.n_jobs})"
        )


# repro-lint: disable=RPL007 (one object per run; inherits SimulationResult's __dict__-based lazy caches — see the waiver there)
class StreamingSimulationResult(SimulationResult):
    """A simulation result whose rows live in an outcome spill store.

    Drop-in compatible with :class:`SimulationResult`: every aggregate
    returns the identical floats, computed by streaming the spilled
    blocks with carried accumulators instead of holding all rows.  The
    exactness rests on two facts — the blocks are consecutive slices of
    the completion-ordered finish log (so ``end_s`` is globally
    non-decreasing and the reference completion-order permutation is the
    identity), and ``np.cumsum`` / ``np.add.at`` accumulate
    sequentially, so carrying a partial sum into the next block replays
    the whole-column left-to-right accumulation bit for bit.

    Accessing :attr:`table` (or :attr:`outcomes`) still works — it
    materializes and caches the concatenated table — but defeats the
    flat-memory point; aggregate through the methods instead.
    """

    def __init__(
        self,
        policy: str,
        method: str,
        machines: list[str],
        store: OutcomeSpillStore,
        shard_stats: dict | None = None,
    ) -> None:
        self.policy = policy
        self.method = method
        self.machines = list(machines)
        self.store = store
        #: Shard lifecycle counters from the pricing kernel
        #: (built/retired/peak live), for diagnostics and tests.
        self.shard_stats = dict(shard_stats or {})

    # ------------------------------------------------------------------
    @property
    def table(self) -> OutcomeTable:
        cached = self.__dict__.get("_table_cache")
        if cached is None:
            cached = self.store.materialize()
            self.__dict__["_table_cache"] = cached
        return cached

    def iter_tables(self) -> Iterator[OutcomeTable]:
        yield from self.store.blocks()

    # ------------------------------------------------------------------
    @property
    def n_jobs(self) -> int:
        return len(self.store)

    @property
    def makespan_s(self) -> float:
        latest = 0.0
        empty = True
        for block in self.iter_tables():
            empty = False
            latest = max(latest, float(block.end_s.max()))
        return 0.0 if empty else latest

    def _stream_seq_sum(self, column: str) -> float:
        """Whole-column :func:`_seq_sum` replayed block-wise.

        The first block seeds the accumulator with its own cumsum (so
        the first addition is ``c0 + c1``, exactly as in the reference);
        later blocks prepend the carry, which continues the identical
        left-to-right addition chain.
        """
        acc: float | None = None
        for block in self.iter_tables():
            col = getattr(block, column)
            if not len(col):
                continue
            if acc is None:
                acc = float(np.cumsum(col)[-1])
            else:
                acc = float(np.cumsum(np.concatenate(([acc], col)))[-1])
        return 0.0 if acc is None else acc

    def total_cost(self) -> float:
        return self._stream_seq_sum("cost")

    def total_energy_j(self) -> float:
        return self._stream_seq_sum("energy_j")

    def total_work_core_hours(self) -> float:
        return self._stream_seq_sum("work_core_hours")

    def total_operational_carbon_g(self) -> float:
        return self._stream_seq_sum("operational_carbon_g")

    def total_attributed_carbon_g(self) -> float:
        return self._stream_seq_sum("attributed_carbon_g")

    def mean_queue_wait_s(self) -> float:
        if not len(self.store):
            return 0.0
        acc: float | None = None
        for block in self.iter_tables():
            col = block.start_s - block.submit_s
            if not len(col):
                continue
            if acc is None:
                acc = float(np.cumsum(col)[-1])
            else:
                acc = float(np.cumsum(np.concatenate(([acc], col)))[-1])
        return (acc or 0.0) / len(self.store)

    # ------------------------------------------------------------------
    def _streamed_cutoff(self, budget: float) -> int:
        """Jobs affordable within ``budget``, streamed in block order.

        Blocks are already in completion order, so the reference
        permutation is the identity; the running spend carries across
        blocks through the same cumsum trick as the totals.
        """
        if budget < 0:
            raise ValueError("budget cannot be negative")
        count = 0
        acc: float | None = None
        for block in self.iter_tables():
            cost = block.cost
            if not len(cost):
                continue
            if acc is None:
                spent = np.cumsum(cost)
            else:
                spent = np.cumsum(np.concatenate(([acc], cost)))[1:]
            cut = int(np.searchsorted(spent > budget, True))
            count += cut
            if cut < len(cost):
                return count
            acc = float(spent[-1])
        return count

    def jobs_with_budget(self, budget: float) -> int:
        return self._streamed_cutoff(budget)

    def work_with_budget(self, budget: float) -> float:
        count = self._streamed_cutoff(budget)
        if count == 0:
            return 0.0
        remaining = count
        acc: float | None = None
        for block in self.iter_tables():
            col = block.work_core_hours[:remaining]
            if len(col):
                if acc is None:
                    acc = float(np.cumsum(col)[-1])
                else:
                    acc = float(np.cumsum(np.concatenate(([acc], col)))[-1])
            remaining -= len(col)
            if remaining <= 0:
                break
        return acc or 0.0

    def jobs_finished_by(self, times_s: list[float]) -> list[int]:
        times = np.asarray(times_s)
        counts = np.zeros(len(times), dtype=np.int64)
        for block in self.iter_tables():
            counts += np.searchsorted(block.end_s, times, side="right")
        return counts.tolist()

    def machine_distribution(self) -> dict[str, int]:
        names = self.store.machines
        counts = np.zeros(len(names), dtype=np.int64)
        for block in self.iter_tables():
            counts += np.bincount(block.machine_code, minlength=len(names))
        dist = {m: 0 for m in self.machines}
        for name, count in zip(names, counts.tolist()):
            if count or name in dist:
                dist[name] = dist.get(name, 0) + count
        return dist

    def user_balances(self) -> dict[int, float]:
        blocks_users = [np.unique(b.user) for b in self.iter_tables()]
        if not blocks_users:
            return {}
        users = np.unique(np.concatenate(blocks_users))
        acc = np.zeros(len(users))
        for block in self.iter_tables():
            np.add.at(acc, np.searchsorted(users, block.user), block.cost)
        return {int(u): float(v) for u, v in zip(users, acc)}

    # ------------------------------------------------------------------
    def __getstate__(self):
        state = dict(self.__dict__)
        state.pop("_table_cache", None)
        state.pop("_end_order_cache", None)
        return state

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"StreamingSimulationResult(policy={self.policy!r}, "
            f"method={self.method!r}, n_jobs={self.n_jobs}, "
            f"blocks={self.store.n_blocks})"
        )


class MultiClusterSimulator:
    """Simulates one policy over one workload.

    Parameters
    ----------
    machines:
        The scenario's machines (name -> :class:`SimMachine`).
    method:
        Accounting method that prices jobs (and that Greedy/Mixed see).
    policy:
        The machine-selection policy under study.
    batched:
        Use the vectorized pricing paths (default).  ``False`` runs the
        reference per-record implementation; outcomes are bit-identical
        either way.
    quote_table:
        Optional prebuilt
        :class:`~repro.accounting.pricing.QuoteTable` for the workload
        this simulator will run (e.g. from a sweep's shared
        :class:`~repro.accounting.pricing.QuoteTableCache`); skips the
        per-run quote-table build, which dominates short runs.
        Validated against the workload at ``run()``; ignored when
        ``batched=False``.
    spill_dir:
        Streaming runs only: directory for the outcome spill store's
        ``.npz`` segments.  ``None`` (the default) keeps settled blocks
        in memory — still chunked, but not flat; pass a directory for
        archive-scale traces.
    spill_block_jobs:
        Streaming runs only: finished jobs settled (and spilled) per
        block.  Any value yields bit-identical results; it only trades
        settlement batch efficiency against peak memory.
    """

    __slots__ = (
        "machines",
        "method",
        "policy",
        "batched",
        "quote_table",
        "spill_dir",
        "spill_block_jobs",
        "pricings",
        "_carbon",
    )

    def __init__(
        self,
        machines: dict[str, SimMachine],
        method: AccountingMethod,
        policy: Policy,
        batched: bool = True,
        quote_table: QuoteTable | None = None,
        spill_dir: str | None = None,
        spill_block_jobs: int = DEFAULT_SPILL_BLOCK_JOBS,
    ) -> None:
        if not machines:
            raise ValueError("need at least one machine")
        if spill_block_jobs < 1:
            raise ValueError("spill_block_jobs must be >= 1")
        self.machines = machines
        self.method = method
        self.policy = policy
        self.batched = batched
        self.quote_table = quote_table
        self.spill_dir = spill_dir
        self.spill_block_jobs = spill_block_jobs
        self.pricings = {
            name: pricing_for_sim_machine(m) for name, m in machines.items()
        }
        self._carbon = CarbonBasedAccounting()

    # ------------------------------------------------------------------
    def _views(
        self, job: Job, clusters: dict[str, ClusterSim], now: float
    ) -> list[MachineView]:
        """Reference (per-record) view builder — the ``batched=False`` path."""
        views = []
        for name in job.eligible_machines:
            if name not in clusters:
                continue
            runtime = job.runtime_s[name]
            energy = job.energy_j[name]
            record = UsageRecord(
                machine=name,
                duration_s=runtime,
                energy_j=energy,
                cores=job.cores,
                start_time_s=now,
            )
            views.append(
                MachineView(
                    machine=name,
                    runtime_s=runtime,
                    energy_j=energy,
                    queue_wait_s=clusters[name].estimated_wait_s(now),
                    # repro-lint: disable=RPL004 (batched=False reference path; the equivalence tests compare the kernels against exactly this loop)
                    cost=self.method.charge(record, self.pricings[name]),
                )
            )
        return views

    def run(
        self, workload: Workload | StreamingWorkload
    ) -> SimulationResult:
        """Run the full workload to completion and collect outcomes.

        Events come from the shared :class:`~repro.sim.events.EventCalendar`
        (one ``(time, kind, seq)`` discipline): arrivals are consumed
        from the submit-sorted job list and only *finishes* live in the
        heap — at equal times arrivals still precede finishes, and ties
        within a kind keep submission/push order, exactly as the seed
        loop ordered them.

        A :class:`~repro.sim.workload.StreamingWorkload` takes the
        flat-memory path (:meth:`_run_streaming`): same event
        discipline, same pricing math, chunked ingestion and spilled
        settlement — results are bit-identical to running the
        materialized workload through this method.
        """
        if isinstance(workload, StreamingWorkload):
            return self._run_streaming(workload)
        clusters = {name: ClusterSim(m) for name, m in self.machines.items()}
        kernel = (
            PricingKernel(
                workload.jobs, self.pricings, self.method,
                table=self.quote_table,
            )
            if self.batched
            else None
        )
        calendar = EventCalendar(workload.jobs)

        outcomes: list[JobOutcome] = []
        finished: list[tuple[Job, str, float, float]] = []

        schedule_finish = calendar.schedule_finish
        select = self.policy.select
        static_views = kernel.static_views if kernel is not None else None
        row_of = kernel.row_of if kernel is not None else None

        def try_start(cluster: ClusterSim, now: float) -> None:
            if not cluster.queue or cluster.free_cores <= 0:
                return
            for job in cluster.startable(now):
                end = cluster.end_time_of(job.job_id)
                #: Finish payload: (machine, job_id, start_time).
                schedule_finish(end, (cluster.name, job.job_id, now))

        while True:
            event = calendar.pop()
            if event is None:
                break
            now, kind, payload = event
            if kind == ARRIVAL:
                job = payload
                if static_views is not None:
                    views = [
                        MachineView(
                            name, rt, en, clusters[name].estimated_wait_s(now), cost
                        )
                        for name, rt, en, cost in static_views[row_of[job.job_id]]
                    ]
                else:
                    views = self._views(job, clusters, now)
                if not views:
                    continue
                cluster = clusters[select(job, views)]
                cluster.enqueue(job)
                try_start(cluster, now)
            else:
                machine_name, job_id, start_s = payload
                cluster = clusters[machine_name]
                job = cluster.finish(job_id)
                if kernel is not None:
                    finished.append((job, machine_name, start_s, now))
                else:
                    outcomes.append(self._outcome(job, machine_name, start_s, now))
                try_start(cluster, now)

        if kernel is not None:
            return SimulationResult(
                policy=self.policy.name,
                method=self.method.name,
                machines=list(self.machines),
                table=kernel.price_outcomes(finished),
            )

        return SimulationResult(
            policy=self.policy.name,
            method=self.method.name,
            machines=list(self.machines),
            outcomes=outcomes,
        )

    # ------------------------------------------------------------------
    def _run_streaming(
        self, stream: StreamingWorkload
    ) -> StreamingSimulationResult:
        """Flat-memory run: chunked arrivals, sharded quotes, spilled
        settlement.

        The event loop is the same as :meth:`run`'s; what changes is
        where state lives.  Arrivals refill the calendar one chunk at a
        time — always *before* the next pop, so the globally next
        arrival is visible whenever the calendar merges it against the
        finish heap and the event order matches the in-memory run
        exactly.  Quotes come from a per-chunk
        :class:`~repro.accounting.pricing.QuoteTableShard` that retires
        when its last job settles, and finished jobs settle in
        ``spill_block_jobs``-sized blocks flushed to the spill store.
        Peak memory is O(chunk + in-flight jobs), never O(trace).
        """
        if not self.batched:
            raise ValueError("streaming ingestion requires batched=True")
        if self.quote_table is not None:
            raise ValueError(
                "a prebuilt quote table cannot back a streaming run; "
                "shards are built per chunk"
            )
        clusters = {name: ClusterSim(m) for name, m in self.machines.items()}
        kernel = ShardedPricingKernel(
            self.pricings, self.method, workload_token=stream.source
        )
        calendar = EventCalendar(())
        store = OutcomeSpillStore(kernel.machine_names, directory=self.spill_dir)
        chunks = stream.chunks()
        pending: list[tuple[Job, str, float, float]] = []
        block_jobs = self.spill_block_jobs

        schedule_finish = calendar.schedule_finish
        select = self.policy.select
        views_of = kernel.static_views_of

        def try_start(cluster: ClusterSim, now: float) -> None:
            if not cluster.queue or cluster.free_cores <= 0:
                return
            for job in cluster.startable(now):
                end = cluster.end_time_of(job.job_id)
                schedule_finish(end, (cluster.name, job.job_id, now))

        exhausted = False
        try:
            while True:
                if not exhausted and not calendar.arrivals_pending:
                    chunk = next(chunks, None)
                    while chunk is not None and not chunk:
                        chunk = next(chunks, None)
                    if chunk is None:
                        exhausted = True
                    else:
                        kernel.load_chunk(chunk)
                        calendar.refill(chunk)
                event = calendar.pop()
                if event is None:
                    if exhausted:
                        break
                    continue
                now, kind, payload = event
                if kind == ARRIVAL:
                    job = payload
                    views = [
                        MachineView(
                            name, rt, en, clusters[name].estimated_wait_s(now), cost
                        )
                        for name, rt, en, cost in views_of(job.job_id)
                    ]
                    if not views:
                        kernel.discard(job.job_id)
                        continue
                    cluster = clusters[select(job, views)]
                    cluster.enqueue(job)
                    try_start(cluster, now)
                else:
                    machine_name, job_id, start_s = payload
                    cluster = clusters[machine_name]
                    job = cluster.finish(job_id)
                    pending.append((job, machine_name, start_s, now))
                    if len(pending) >= block_jobs:
                        store.append(kernel.price_block(pending))
                        pending.clear()
                    try_start(cluster, now)
            if pending:
                store.append(kernel.price_block(pending))
                pending.clear()
        except BaseException:
            # A mid-flight failure (bad chunk, raising policy, pricing
            # error) must not strand spilled ``block-*.npz`` segments on
            # disk: on success the store's lifetime transfers to the
            # returned result, but on the error path nobody else holds
            # it, so unlink the segments before propagating.
            store.close()
            raise
        return StreamingSimulationResult(
            policy=self.policy.name,
            method=self.method.name,
            machines=list(self.machines),
            store=store,
            shard_stats={
                "built": kernel.shards_built,
                "retired": kernel.shards_retired,
                "peak_live": kernel.peak_live_shards,
            },
        )

    # ------------------------------------------------------------------
    def _outcome(
        self, job: Job, machine_name: str, start_s: float, end_s: float
    ) -> JobOutcome:
        """Reference (per-record) outcome pricing — the ``batched=False``
        path."""
        energy = job.energy_j[machine_name]
        pricing = self.pricings[machine_name]
        record = UsageRecord(
            machine=machine_name,
            duration_s=job.runtime_s[machine_name],
            energy_j=energy,
            cores=job.cores,
            start_time_s=start_s,
            job_id=str(job.job_id),
        )
        cost = self.method.charge(record, pricing)
        intensity = self.machines[machine_name].intensity.at(start_s)
        operational = operational_carbon_g(energy, intensity)
        attributed = operational + self._carbon.embodied_charge(record, pricing)
        return JobOutcome(
            job_id=job.job_id,
            user=job.user,
            machine=machine_name,
            cores=job.cores,
            submit_s=job.submit_s,
            start_s=start_s,
            end_s=end_s,
            energy_j=energy,
            cost=cost,
            work_core_hours=job.work_core_hours,
            operational_carbon_g=operational,
            attributed_carbon_g=attributed,
        )
