"""The event-driven multi-cluster simulation loop.

Replays a workload against a set of machines under one selection policy
and one accounting method.  The engine reuses the *same* accounting
implementations as the FaaS platform (``repro.accounting``): each
machine gets a :class:`~repro.accounting.base.MachinePricing` spanning
its whole fleet, so Eq. (1)/(2) shares scale correctly for multi-node
jobs.

Event order is deterministic: (time, sequence) keys, arrivals before
finishes at equal times, so a seeded workload yields identical results
across runs.

Batched pricing architecture
----------------------------
Pricing is the hot path: a paper-scale run prices every (job x eligible
machine) pair at arrival and every finished job again at completion.
The engine follows the quote-table / settle contract of
:mod:`repro.accounting.pricing`:

1. a :class:`~repro.accounting.pricing.PricingKernel` **precomputes**
   all arrival-time (submission-quote) charges once at workload load
   with one vectorized
   :meth:`~repro.accounting.base.AccountingMethod.charge_many` call per
   machine (arrival time *is* the submit time, which is known up front
   — EBA charges are time-invariant and CBA varies only with the hour
   bucket of the cyclic trace), and
2. outcome pricing is **settled** in a vectorized post-pass over the
   finish log (:meth:`~repro.accounting.pricing.PricingKernel.price_outcomes`),
   producing the columnar :class:`~repro.accounting.pricing.OutcomeTable`
   that backs :class:`SimulationResult`.

Both paths produce bit-identical costs to the per-record loop (the
vectorized methods use the same IEEE operation order); pass
``batched=False`` to run the reference scalar path, which the test
suite uses to assert exact equivalence.
"""

from __future__ import annotations

import numpy as np

from repro.accounting.base import (
    AccountingMethod,
    MachinePricing,
    UsageRecord,
)
from repro.accounting.methods import CarbonBasedAccounting
from repro.accounting.pricing import OutcomeTable, PricingKernel, QuoteTable
from repro.sim.cluster import ClusterSim
from repro.sim.events import ARRIVAL, EventCalendar
from repro.sim.job import Job, JobOutcome
from repro.sim.policies import MachineView, Policy
from repro.sim.scenarios import SimMachine
from repro.sim.workload import Workload
from repro.units import operational_carbon_g

def _seq_sum(column: np.ndarray) -> float:
    """Left-to-right sum of a column.

    ``np.cumsum`` accumulates sequentially, so this reproduces the exact
    floats of the reference ``sum(o.field for o in outcomes)`` loops —
    which matters because budget queries compare a *running* spend
    against totals and must not disagree by an ulp (``np.sum`` pairwise
    summation would).
    """
    return float(np.cumsum(column)[-1]) if len(column) else 0.0


def pricing_for_sim_machine(machine: SimMachine) -> MachinePricing:
    """Fleet-wide pricing view for one simulation machine.

    ``total_cores`` spans every node, and the embodied rate override is
    the Table 5 per-node rate scaled to the fleet, so a job's share
    ``cores / total_cores`` charges exactly
    ``node_rate * cores / cores_per_node`` — linear in cores, correct
    across node boundaries.
    """
    node = machine.node
    return MachinePricing(
        name=machine.name,
        total_cores=machine.total_cores,
        tdp_watts=node.tdp_watts * node.node_count,
        peak_rating=node.peak_gflops_per_core,
        embodied_carbon_g=node.embodied_carbon_g * node.node_count,
        age_years=0,  # unused: the rate override below wins
        intensity=machine.intensity,
        carbon_rate_override_g_per_h=machine.carbon_rate_g_per_h
        * node.node_count,
    )


class SimulationResult:
    """All job outcomes of one (policy, method) simulation run.

    Array-backed: the canonical storage is a columnar
    :class:`~repro.accounting.pricing.OutcomeTable` (``result.table``);
    every aggregate below is an array expression over its columns.
    ``result.outcomes`` remains available as a *lazy row view* — the
    :class:`~repro.sim.job.JobOutcome` objects are materialized on first
    access and cached — so row-oriented consumers keep working
    unchanged.  Construct with either ``table=`` (the batched paths) or
    ``outcomes=`` (per-record reference paths and wrappers).
    """

    def __init__(
        self,
        policy: str,
        method: str,
        machines: list[str],
        outcomes: list[JobOutcome] | None = None,
        table: OutcomeTable | None = None,
    ) -> None:
        if (table is None) == (outcomes is None):
            raise ValueError("pass exactly one of outcomes= or table=")
        if table is None:
            table = OutcomeTable.from_rows(outcomes, machines)
        self.policy = policy
        self.method = method
        self.machines = list(machines)
        self.table = table

    # ------------------------------------------------------------------
    @property
    def outcomes(self) -> list[JobOutcome]:
        """Lazy row view over :attr:`table` (built once, then cached)."""
        return self.table.rows()

    @property
    def n_jobs(self) -> int:
        return len(self.table)

    @property
    def makespan_s(self) -> float:
        table = self.table
        return float(table.end_s.max()) if len(table) else 0.0

    def total_cost(self) -> float:
        return _seq_sum(self.table.cost)

    def total_energy_j(self) -> float:
        return _seq_sum(self.table.energy_j)

    def total_work_core_hours(self) -> float:
        return _seq_sum(self.table.work_core_hours)

    def total_operational_carbon_g(self) -> float:
        return _seq_sum(self.table.operational_carbon_g)

    def total_attributed_carbon_g(self) -> float:
        return _seq_sum(self.table.attributed_carbon_g)

    # ------------------------------------------------------------------
    def _end_order(self) -> np.ndarray:
        """Completion-order permutation, computed once and cached.

        Budget queries and the Fig. 5b series all consume this order;
        outcomes are treated as immutable once the run has finished.
        """
        cached = self.__dict__.get("_end_order_cache")
        if cached is None:
            cached = np.argsort(self.table.end_s, kind="stable")
            self.__dict__["_end_order_cache"] = cached
        return cached

    def _budget_cutoff(self, budget: float) -> tuple[int, np.ndarray]:
        """(number of jobs inside ``budget``, completion-order permutation).

        ``np.cumsum`` accumulates sequentially, so the running spend is
        bit-identical to the reference loop's ``spent += cost``.
        """
        if budget < 0:
            raise ValueError("budget cannot be negative")
        order = self._end_order()
        spent = np.cumsum(self.table.cost[order])
        count = int(np.searchsorted(spent > budget, True))
        return count, order

    def work_with_budget(self, budget: float) -> float:
        """Core-hours of work completed before a fixed allocation runs out.

        Jobs are consumed in completion order; once cumulative cost
        exceeds ``budget`` the remaining jobs are outside the allocation
        (Fig. 5a / Fig. 6 semantics)."""
        count, order = self._budget_cutoff(budget)
        if count == 0:
            return 0.0
        work = np.cumsum(self.table.work_core_hours[order[:count]])
        return float(work[-1])

    def jobs_with_budget(self, budget: float) -> int:
        """Jobs completed before a fixed allocation runs out."""
        count, _ = self._budget_cutoff(budget)
        return count

    def jobs_finished_by(self, times_s: list[float]) -> list[int]:
        """Cumulative jobs finished at each query time (Fig. 5b)."""
        ends = self.table.end_s[self._end_order()]
        return np.searchsorted(ends, np.asarray(times_s), side="right").tolist()

    def machine_distribution(self) -> dict[str, int]:
        """Jobs per machine (Fig. 5c)."""
        table = self.table
        counts = np.bincount(table.machine_code, minlength=len(table.machines))
        dist = {m: 0 for m in self.machines}
        for name, count in zip(table.machines, counts.tolist()):
            if count or name in dist:
                dist[name] = dist.get(name, 0) + count
        return dist

    def mean_queue_wait_s(self) -> float:
        table = self.table
        if not len(table):
            return 0.0
        return _seq_sum(table.start_s - table.submit_s) / len(table)

    # ------------------------------------------------------------------
    def __getstate__(self):
        state = dict(self.__dict__)
        state.pop("_end_order_cache", None)
        return state

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"SimulationResult(policy={self.policy!r}, method={self.method!r}, "
            f"n_jobs={self.n_jobs})"
        )


class MultiClusterSimulator:
    """Simulates one policy over one workload.

    Parameters
    ----------
    machines:
        The scenario's machines (name -> :class:`SimMachine`).
    method:
        Accounting method that prices jobs (and that Greedy/Mixed see).
    policy:
        The machine-selection policy under study.
    batched:
        Use the vectorized pricing paths (default).  ``False`` runs the
        reference per-record implementation; outcomes are bit-identical
        either way.
    quote_table:
        Optional prebuilt
        :class:`~repro.accounting.pricing.QuoteTable` for the workload
        this simulator will run (e.g. from a sweep's shared
        :class:`~repro.accounting.pricing.QuoteTableCache`); skips the
        per-run quote-table build, which dominates short runs.
        Validated against the workload at ``run()``; ignored when
        ``batched=False``.
    """

    def __init__(
        self,
        machines: dict[str, SimMachine],
        method: AccountingMethod,
        policy: Policy,
        batched: bool = True,
        quote_table: QuoteTable | None = None,
    ) -> None:
        if not machines:
            raise ValueError("need at least one machine")
        self.machines = machines
        self.method = method
        self.policy = policy
        self.batched = batched
        self.quote_table = quote_table
        self.pricings = {
            name: pricing_for_sim_machine(m) for name, m in machines.items()
        }
        self._carbon = CarbonBasedAccounting()

    # ------------------------------------------------------------------
    def _views(
        self, job: Job, clusters: dict[str, ClusterSim], now: float
    ) -> list[MachineView]:
        """Reference (per-record) view builder — the ``batched=False`` path."""
        views = []
        for name in job.eligible_machines:
            if name not in clusters:
                continue
            runtime = job.runtime_s[name]
            energy = job.energy_j[name]
            record = UsageRecord(
                machine=name,
                duration_s=runtime,
                energy_j=energy,
                cores=job.cores,
                start_time_s=now,
            )
            views.append(
                MachineView(
                    machine=name,
                    runtime_s=runtime,
                    energy_j=energy,
                    queue_wait_s=clusters[name].estimated_wait_s(now),
                    cost=self.method.charge(record, self.pricings[name]),
                )
            )
        return views

    def run(self, workload: Workload) -> SimulationResult:
        """Run the full workload to completion and collect outcomes.

        Events come from the shared :class:`~repro.sim.events.EventCalendar`
        (one ``(time, kind, seq)`` discipline): arrivals are consumed
        from the submit-sorted job list and only *finishes* live in the
        heap — at equal times arrivals still precede finishes, and ties
        within a kind keep submission/push order, exactly as the seed
        loop ordered them.
        """
        clusters = {name: ClusterSim(m) for name, m in self.machines.items()}
        kernel = (
            PricingKernel(
                workload.jobs, self.pricings, self.method,
                table=self.quote_table,
            )
            if self.batched
            else None
        )
        calendar = EventCalendar(workload.jobs)

        outcomes: list[JobOutcome] = []
        finished: list[tuple[Job, str, float, float]] = []

        schedule_finish = calendar.schedule_finish
        select = self.policy.select
        static_views = kernel.static_views if kernel is not None else None
        row_of = kernel.row_of if kernel is not None else None

        def try_start(cluster: ClusterSim, now: float) -> None:
            if not cluster.queue or cluster.free_cores <= 0:
                return
            for job in cluster.startable(now):
                end = cluster.end_time_of(job.job_id)
                #: Finish payload: (machine, job_id, start_time).
                schedule_finish(end, (cluster.name, job.job_id, now))

        while True:
            event = calendar.pop()
            if event is None:
                break
            now, kind, payload = event
            if kind == ARRIVAL:
                job = payload
                if static_views is not None:
                    views = [
                        MachineView(
                            name, rt, en, clusters[name].estimated_wait_s(now), cost
                        )
                        for name, rt, en, cost in static_views[row_of[job.job_id]]
                    ]
                else:
                    views = self._views(job, clusters, now)
                if not views:
                    continue
                cluster = clusters[select(job, views)]
                cluster.enqueue(job)
                try_start(cluster, now)
            else:
                machine_name, job_id, start_s = payload
                cluster = clusters[machine_name]
                job = cluster.finish(job_id)
                if kernel is not None:
                    finished.append((job, machine_name, start_s, now))
                else:
                    outcomes.append(self._outcome(job, machine_name, start_s, now))
                try_start(cluster, now)

        if kernel is not None:
            return SimulationResult(
                policy=self.policy.name,
                method=self.method.name,
                machines=list(self.machines),
                table=kernel.price_outcomes(finished),
            )

        return SimulationResult(
            policy=self.policy.name,
            method=self.method.name,
            machines=list(self.machines),
            outcomes=outcomes,
        )

    # ------------------------------------------------------------------
    def _outcome(
        self, job: Job, machine_name: str, start_s: float, end_s: float
    ) -> JobOutcome:
        """Reference (per-record) outcome pricing — the ``batched=False``
        path."""
        energy = job.energy_j[machine_name]
        pricing = self.pricings[machine_name]
        record = UsageRecord(
            machine=machine_name,
            duration_s=job.runtime_s[machine_name],
            energy_j=energy,
            cores=job.cores,
            start_time_s=start_s,
            job_id=str(job.job_id),
        )
        cost = self.method.charge(record, pricing)
        intensity = self.machines[machine_name].intensity.at(start_s)
        operational = operational_carbon_g(energy, intensity)
        attributed = operational + self._carbon.embodied_charge(record, pricing)
        return JobOutcome(
            job_id=job.job_id,
            user=job.user,
            machine=machine_name,
            cores=job.cores,
            submit_s=job.submit_s,
            start_s=start_s,
            end_s=end_s,
            energy_j=energy,
            cost=cost,
            work_core_hours=job.work_core_hours,
            operational_carbon_g=operational,
            attributed_carbon_g=attributed,
        )
