"""The shared event-scheduling core under every simulator.

PR 1/2 made pricing columnar, which left the event-loop machinery as the
bottleneck: each simulator hand-rolled its own heap discipline, and
:class:`~repro.sim.cluster.ClusterSim` rescanned the backfill window on
every event even when nothing could possibly start.  This module holds
the two pieces they now share:

* :class:`EventCalendar` — one ``(time, kind, seq)`` event discipline
  for the engine, the migration simulator, and (through the engine) the
  shifting simulator.  Arrivals are consumed from the submit-sorted job
  list instead of living in the heap, so the heap only ever holds
  finish events and pushes/pops stay shallow; the single periodic
  re-evaluation tick is a scalar, not a heap entry.  The pop order is
  identical to the seed loops: at equal times arrivals precede
  finishes, finishes precede ticks, and ties within a kind keep
  submission/push order.

* :class:`ReadyQueue` — the indexed ready-queue behind
  :meth:`ClusterSim.startable <repro.sim.cluster.ClusterSim.startable>`.
  Semantics are exactly the seed's bounded FCFS + backfill scan (the
  first ``window`` queued jobs, in order, starting every one that
  fits), but the queue keeps per-cluster blocked buckets keyed by
  (min free cores needed, blocking user) so a finish or enqueue that
  provably cannot change any job's state is answered in O(1) instead of
  O(window) deque churn.  The scan itself is only run — and the buckets
  rebuilt — when the index says some job may actually start, so results
  are bit-identical to the always-scan implementation by construction.
"""

from __future__ import annotations

import heapq
from collections import deque
from itertools import islice
from typing import TYPE_CHECKING, Sequence

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim.job import Job

#: Event kinds, in tie-break priority order at equal times.
ARRIVAL = 0
FINISH = 1
TICK = 2


class EventCalendar:
    """Merged event streams under one ``(time, kind, seq)`` discipline.

    Three streams feed a simulation:

    * **arrivals** — known up front; kept as a submit-sorted list plus a
      cursor (a stable sort, skipped when the list is already ordered,
      so equal-time arrivals keep submission order exactly like the seed
      loops' ``(time, kind, seq)`` heaps did);
    * **finishes** — scheduled as jobs start; a heap of
      ``(time, seq, payload)`` where ``seq`` preserves push order among
      equal times;
    * an optional **tick** — the single outstanding periodic
      re-evaluation boundary (at most one exists at a time, so it is a
      scalar rather than a heap entry).

    :meth:`pop` returns the globally next ``(now, kind, payload)``:
    minimum time, with ``ARRIVAL < FINISH < TICK`` breaking ties —
    the exact order of the seed engine (arrivals before finishes at
    equal times) and the seed migration heap (``_ARRIVAL=0 < _FINISH=1 <
    _REEVALUATE=2``).
    """

    __slots__ = (
        "arrivals",
        "_ai",
        "_n",
        "_finishes",
        "_seq",
        "_next_tick",
        "_last_arrival",
    )

    def __init__(self, jobs: Sequence["Job"] = ()) -> None:
        in_order = all(
            a.submit_s <= b.submit_s for a, b in zip(jobs, jobs[1:])
        )
        self.arrivals: Sequence["Job"] = (
            jobs if in_order else sorted(jobs, key=lambda j: j.submit_s)
        )
        self._ai = 0
        self._n = len(jobs)
        #: Finish heap entries: (time_s, seq, payload).
        self._finishes: list[tuple[float, int, object]] = []
        self._seq = 0
        self._next_tick: float | None = None
        self._last_arrival = (
            self.arrivals[-1].submit_s if self._n else float("-inf")
        )

    # ------------------------------------------------------------------
    @property
    def arrivals_pending(self) -> bool:
        """True while unconsumed arrivals remain in the current list."""
        return self._ai < self._n

    def refill(self, jobs: Sequence["Job"]) -> None:
        """Replace the exhausted arrival list with the next chunk.

        The streaming engine feeds arrivals chunk by chunk; a refill is
        only legal once the previous chunk is fully consumed (otherwise
        pending arrivals would be dropped), and the new chunk must
        continue the global submit order — within itself and against
        the last arrival already handed out — because the pop discipline
        merges arrivals against the finish heap by comparing only the
        *next* arrival's time.
        """
        if self._ai < self._n:
            raise RuntimeError("refill with arrivals still pending")
        last = self._last_arrival
        for job in jobs:
            if job.submit_s < last:
                raise ValueError(
                    "refill chunk breaks submit order: streaming arrivals "
                    "must be non-decreasing across chunks"
                )
            last = job.submit_s
        self.arrivals = jobs
        self._ai = 0
        self._n = len(jobs)
        if self._n:
            self._last_arrival = last

    def next_disturbance(self) -> float:
        """Earliest pending arrival or finish time (``+inf`` if neither).

        A periodic tick scheduled *strictly before* this time pops with
        no intervening arrival or finish (events tied with a tick pop
        first, so a tick *at* the disturbance already sees changed
        state).  Simulators use this to batch runs of quiet
        re-evaluation ticks into one vectorized pass.  Only sound for
        calendars holding their full arrival list: a later
        :meth:`refill` may splice in arrivals before a previously
        reported horizon.
        """
        horizon = float("inf")
        if self._ai < self._n:
            horizon = self.arrivals[self._ai].submit_s
        if self._finishes and self._finishes[0][0] < horizon:
            horizon = self._finishes[0][0]
        return horizon

    # ------------------------------------------------------------------
    def schedule_finish(self, time_s: float, payload: object) -> None:
        """Add a finish event (ties pop in push order)."""
        heapq.heappush(self._finishes, (time_s, self._seq, payload))
        self._seq += 1

    def schedule_tick(self, time_s: float) -> None:
        """Set the single outstanding periodic tick."""
        self._next_tick = time_s

    # ------------------------------------------------------------------
    def __bool__(self) -> bool:
        return (
            self._ai < self._n
            or bool(self._finishes)
            or self._next_tick is not None
        )

    def pop(self) -> tuple[float, int, object] | None:
        """The next event as ``(now, kind, payload)``, or None when empty.

        Arrival payloads are the :class:`~repro.sim.job.Job`; finish
        payloads are whatever :meth:`schedule_finish` stored; tick
        payloads are ``None``.
        """
        ai = self._ai
        finishes = self._finishes
        tick = self._next_tick
        if ai < self._n:
            job = self.arrivals[ai]
            t_arr = job.submit_s
            if (not finishes or t_arr <= finishes[0][0]) and (
                tick is None or t_arr <= tick
            ):
                self._ai = ai + 1
                return t_arr, ARRIVAL, job
        if finishes and (tick is None or finishes[0][0] <= tick):
            time_s, _, payload = heapq.heappop(finishes)
            return time_s, FINISH, payload
        if tick is not None:
            self._next_tick = None
            return tick, TICK, None
        return None


class ReadyQueue:
    """Bounded FCFS + backfill queue with O(1) blocked-state buckets.

    The queue itself is the seed's deque; the index answers "can the
    next scan possibly start anything?" without touching it.  Between
    scans every job inside the backfill window sits in one of two
    blocked buckets, classified under the state the last scan ended
    with:

    * **cores-blocked** — the job's user was idle but the job needs more
      cores than were free; summarised as the *minimum* such need
      (``min_blocked_cores``), because free cores only grow outside
      scans and nothing can start until they reach that minimum;
    * **user-blocked** — the job's user already runs here; summarised as
      the set of blocking users, because such a job can only change
      state when its user drains.

    ``synced`` is True when the buckets are trustworthy, i.e. the last
    scan proved every window job blocked and no unindexed change
    happened since.  The owning cluster calls :meth:`push` on enqueue
    and :meth:`note_release` on finish; both either keep the buckets
    exact in O(1) or clear ``synced`` to force the next scan.  Jobs
    beyond the window never need indexing — they cannot start until
    earlier jobs leave, which only happens inside a scan.
    """

    __slots__ = ("jobs", "window", "min_blocked_cores", "blocked_users", "synced")

    def __init__(self, window: int) -> None:
        if window < 1:
            raise ValueError("backfill window must be >= 1")
        self.jobs: deque["Job"] = deque()
        self.window = window
        self.min_blocked_cores: float = float("inf")
        self.blocked_users: set[int] = set()
        self.synced = False

    def __len__(self) -> int:
        return len(self.jobs)

    def __bool__(self) -> bool:
        return bool(self.jobs)

    # ------------------------------------------------------------------
    def push(self, job: "Job", free_cores: int, busy_users: set[int]) -> None:
        """Append ``job`` and classify it against the current state.

        Enqueueing changes nothing for jobs already queued, so a synced
        index stays synced: the new job either lands beyond the window
        (unreachable until a scan shrinks the queue), joins a blocked
        bucket, or — if it could start right now — clears ``synced`` so
        the next :meth:`scan_needed` triggers a real scan.
        """
        position = len(self.jobs)
        self.jobs.append(job)
        if not self.synced or position >= self.window:
            return
        if job.user in busy_users:
            self.blocked_users.add(job.user)
        elif job.cores > free_cores:
            if job.cores < self.min_blocked_cores:
                self.min_blocked_cores = job.cores
        else:
            self.synced = False

    def note_release(self, user: int, free_cores: int) -> None:
        """Record a finish: ``user`` drained and cores were freed.

        Clears ``synced`` only when the release can actually unblock a
        window job — the freed capacity reaches the smallest
        cores-blocked need, or the drained user blocks someone.
        """
        if self.synced and (
            free_cores >= self.min_blocked_cores or user in self.blocked_users
        ):
            self.synced = False

    def scan_needed(self) -> bool:
        """False when the index proves a scan would start nothing."""
        return not self.synced

    def reindex(self, free_cores: int, busy_users: set[int]) -> None:
        """Rebuild the blocked buckets after a scan, under post-scan state.

        Jobs the scan left behind are blocked by construction (free
        cores only shrank and the busy set only grew while it ran); jobs
        that shifted into the window when earlier ones started were
        never examined, so if one of them could start the index stays
        unsynced and the next event rescans — exactly when the seed's
        always-scan loop would have started it.
        """
        self.blocked_users.clear()
        self.min_blocked_cores = float("inf")
        for job in islice(self.jobs, self.window):
            if job.user in busy_users:
                self.blocked_users.add(job.user)
            elif job.cores > free_cores:
                if job.cores < self.min_blocked_cores:
                    self.min_blocked_cores = job.cores
            else:
                self.synced = False
                return
        self.synced = True
