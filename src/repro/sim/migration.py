"""Job migration between machines — the paper's §7 limitation, lifted.

"In the simulation (as well as above), we do not allow job migration:
once a job has been started on a machine, it cannot move even as the
carbon intensities change."  This module implements the missing
mechanism so the claim can be tested rather than assumed: a simulator in
which running jobs are periodically re-evaluated and may checkpoint, pay
a migration overhead, and resume on a machine that has become cheaper
(under CBA this happens when grid intensities cross, Fig. 7b).

Model
-----
* Jobs execute in **segments**.  At every re-evaluation boundary the
  simulator compares the cost of finishing on the current machine with
  the cost of finishing elsewhere (remaining-fraction scaled, plus a
  checkpoint/restart overhead added to the remaining runtime).
* A job migrates when the relative saving exceeds ``min_saving``; the
  continuation re-enters the target's queue under the same user, so all
  §5.3 queue rules still apply.
* Every segment is charged at its own start-time intensity; a migrated
  job's cost, energy, and carbon are the sums over its segments —
  exactly what a provider metering per interval would bill.

Batched pricing architecture
----------------------------
The default path follows the quote-table / settle contract of
:mod:`repro.accounting.pricing`, so the migration simulator no longer
prices inside its event loop:

* arrival views come from a precomputed
  :class:`~repro.accounting.pricing.PricingKernel` quote table (arrival
  time *is* the submit time, as in the plain engine);
* the running set is mirrored in a columnar :class:`RunningTable`
  (struct-of-arrays: kernel job row, machine index, segment start,
  scheduled end, remaining fraction) maintained incrementally on every
  segment start / finish / migrate, so a re-evaluation tick computes
  every candidate's remaining-fraction math in one vectorized pass
  instead of walking the per-cluster ``running`` dicts in Python;
* candidate stay/move probes are priced adaptively: large candidate
  sets go through one
  :meth:`~repro.accounting.base.AccountingMethod.charge_many` per
  machine over the table's columns, while small sets use the
  per-machine
  :meth:`~repro.accounting.base.AccountingMethod.probe_kernel` scalar
  closures — hoisted per-machine constants, no record construction —
  which beat fixed-overhead NumPy batches below a few dozen probes.
  Both replay ``charge()``'s exact IEEE operations, so the crossover
  threshold can never change a decision;
* above the same crossover the stay/move *decision* is vectorized too:
  winners come from a masked argmin over the probe-cost matrix whose
  tie-breaking replays the scalar walk's eligibility order through the
  quote table's ``elig_rank`` column, and only the movers are applied
  (in the reference candidate order), so a re-evaluation tick does no
  per-candidate Python work at all on the hot path;
* finished or preempted segments are appended to a
  :class:`~repro.accounting.pricing.SegmentLedger` and settled in one
  vectorized pass after the run, with per-job sums replayed in append
  order.

All three substitutions use the same IEEE operation order as the scalar
path, so results are **bit-identical** to ``batched=False`` (the test
suite asserts exact equality for all five accounting methods).

Events come from the shared :class:`~repro.sim.events.EventCalendar`:
arrivals are consumed from the submit-sorted job list, only finishes
live in the heap, and the single outstanding re-evaluation boundary is
a scalar tick — the same ``(time, kind, seq)`` order as the seed's
all-in-one heap, without pushing every arrival through it.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.accounting.base import AccountingMethod, UsageBatch, UsageRecord
from repro.accounting.methods import CarbonBasedAccounting
from repro.accounting.pricing import (
    ELIG_RANK_INELIGIBLE,
    PricingKernel,
    QuoteTable,
    SegmentLedger,
)
from repro.sim.cluster import ClusterSim
from repro.sim.engine import SimulationResult, pricing_for_sim_machine
from repro.sim.events import ARRIVAL, FINISH, EventCalendar
from repro.sim.job import Job, JobOutcome
from repro.sim.policies import MachineView, Policy
from repro.sim.scenarios import SimMachine
from repro.sim.workload import Workload
from repro.units import operational_carbon_g


@dataclass(slots=True)
class _Progress:
    """Per-job execution state across segments."""

    job: Job
    remaining_fraction: float = 1.0
    energy_j: float = 0.0
    cost: float = 0.0
    operational_g: float = 0.0
    attributed_g: float = 0.0
    first_start_s: float | None = None
    migrations: int = 0
    segment_start_s: float = 0.0
    segment_machine: str = ""
    is_continuation: bool = False


#: Live running-row count at or above which a re-evaluation tick
#: collects its candidates through the columnar :class:`RunningTable`
#: pass instead of the per-cluster dict walk.  Below it, NumPy's fixed
#: per-expression cost exceeds the walk over a handful of rows
#: (measured crossover ~50 rows on the low-carbon scenario).
TICK_VECTOR_MIN = 48

#: Candidate count at or above which a re-evaluation tick prices its
#: stay/move probes with one ``charge_many`` per machine instead of the
#: scalar probe kernels (measured crossover ~50-64 candidates; the
#: vectorized path is ~2x at 512).  All paths replay ``charge()``'s
#: exact IEEE operations, so these crossovers affect speed only, never
#: decisions (the equivalence suite pins every regime to the seed loop).
PROBE_VECTOR_MIN = 48

#: Most re-evaluation ticks one batched multi-tick pass will price at
#: once when the calendar shows no arrival/finish before them (bounds
#: the ``(ticks × rows × machines)`` probe matrix).  ``1`` disables
#: batching.  Speed-only, like the crossover knobs: the batch replays
#: the per-tick IEEE expressions exactly.
MULTI_TICK_MAX = 64


#: Slot-array capacity :class:`RunningTable` never shrinks below (small
#: arrays are cheap to keep), and the initial allocation size.
COMPACT_MIN_CAPACITY = 64

#: Columns of :class:`RunningTable` (the ``states`` object list rides
#: along separately).
_RUNNING_COLUMNS = ("machine", "start", "end", "rem", "job_row", "seq", "job_id")


class RunningTable:
    """Columnar mirror of every running job across all clusters.

    Struct-of-arrays — per live row: the machine index, the kernel job
    row, the segment start time, the scheduled end, and the remaining
    fraction at segment start — maintained incrementally on segment
    start / finish / migrate events.  A re-evaluation tick then computes
    the remaining-fraction candidate math for the whole running set as
    array expressions (:meth:`candidates`) instead of walking the
    per-cluster ``running`` dicts in Python.

    The layout is a **dense live-row index**: rows ``[0, len(table))``
    are all live, and :meth:`remove` fills the hole it leaves by
    swapping the last live row down.  There are no dead slots to skip,
    so :meth:`candidates` does zero work proportional to anything but
    the live count — churn-heavy workloads no longer pay for their
    high-water mark on every tick (the old free-list layout needed a
    periodic compaction heuristic to merely bound that waste).

    Every insertion stamps a monotone sequence number and candidates
    come back sorted by (machine index, sequence) — the *reference*
    iteration order: clusters in machine-index order, then running-dict
    insertion order within a cluster.  The sort makes the swap
    shuffling invisible downstream, so decision application (and thus
    requeue order on the target clusters) stays bit-identical to the
    dict-walking path.

    Because :meth:`remove` renumbers the last row, callers must not
    hold row indices across removes — resolve rows to their ``states``
    objects first.  Capacity doubles on demand and shrinks back to
    ``2 × live`` when live rows fall to a quarter of it (never below
    :data:`COMPACT_MIN_CAPACITY`); the shrink is purely an allocator
    detail, invisible to the scan.
    """

    __slots__ = (
        "machine",
        "start",
        "end",
        "rem",
        "job_row",
        "seq",
        "job_id",
        "states",
        "shrinks",
        "last_scan_rows",
        "_slot_of",
        "_next_seq",
    )

    def __init__(self, capacity: int = COMPACT_MIN_CAPACITY) -> None:
        capacity = max(1, capacity)
        self.machine = np.full(capacity, -1, dtype=np.int64)
        self.start = np.zeros(capacity)
        self.end = np.zeros(capacity)
        self.rem = np.zeros(capacity)
        self.job_row = np.zeros(capacity, dtype=np.intp)
        self.seq = np.zeros(capacity, dtype=np.int64)
        self.job_id = np.full(capacity, -1, dtype=np.int64)
        #: Per-row owning :class:`_Progress` (``None`` past the live end).
        self.states: list[_Progress | None] = [None] * capacity
        #: Capacity shrinks performed so far (diagnostics and tests).
        self.shrinks = 0
        #: Rows the most recent :meth:`candidates` call touched — always
        #: exactly the live count (diagnostics and tests).
        self.last_scan_rows = 0
        self._slot_of: dict[int, int] = {}
        self._next_seq = 0

    def __len__(self) -> int:
        return len(self._slot_of)

    def _resize(self, capacity: int) -> None:
        n = len(self._slot_of)
        for name in _RUNNING_COLUMNS:
            col = getattr(self, name)
            resized = np.empty(capacity, dtype=col.dtype)
            resized[:n] = col[:n]
            setattr(self, name, resized)
        self.states = self.states[:n] + [None] * (capacity - n)

    def add(
        self,
        job_id: int,
        job_row: int,
        machine_idx: int,
        start_s: float,
        end_s: float,
        remaining_fraction: float,
        state: _Progress,
    ) -> None:
        """Mirror one started segment (job_id must not be running)."""
        row = len(self._slot_of)
        if row == len(self.machine):
            self._resize(2 * row)
        self.machine[row] = machine_idx
        self.start[row] = start_s
        self.end[row] = end_s
        self.rem[row] = remaining_fraction
        self.job_row[row] = job_row
        self.seq[row] = self._next_seq
        self.job_id[row] = job_id
        self._next_seq += 1
        self.states[row] = state
        self._slot_of[job_id] = row

    def remove(self, job_id: int) -> None:
        """Drop a row when its segment finishes or migrates away.

        The last live row swaps into the hole, keeping the live prefix
        dense — any row index held from before this call is invalid
        afterwards.
        """
        row = self._slot_of.pop(job_id)
        last = len(self._slot_of)
        if row != last:
            self.machine[row] = self.machine[last]
            self.start[row] = self.start[last]
            self.end[row] = self.end[last]
            self.rem[row] = self.rem[last]
            self.job_row[row] = self.job_row[last]
            self.seq[row] = self.seq[last]
            moved_id = int(self.job_id[last])
            self.job_id[row] = moved_id
            self.states[row] = self.states[last]
            self._slot_of[moved_id] = row
        self.states[last] = None
        capacity = len(self.machine)
        if capacity > COMPACT_MIN_CAPACITY and last * 4 <= capacity:
            self._resize(max(COMPACT_MIN_CAPACITY, 2 * last))
            self.shrinks += 1

    def candidates(
        self, now: float
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """``(rows, remaining, frac_done)`` of every migration candidate.

        One vectorized pass over the live rows — and *only* the live
        rows: the dense layout means dead capacity is never touched —
        replays the reference filters element-wise: positive segment
        length, not within 1e-9 s of the scheduled end, positive
        progress, more than 5% of the job left, with the exact float
        expressions of the scalar loop, so the surviving set (and each
        survivor's remaining fraction) is bit-identical.  Rows come back
        sorted by (machine, insertion sequence): the reference dict-walk
        order.
        """
        n = len(self._slot_of)
        self.last_scan_rows = n
        machine = self.machine[:n]
        start = self.start[:n]
        end = self.end[:n]
        rem = self.rem[:n]
        seg_total = end - start
        # Degenerate (zero-length) segments divide by zero here; their
        # rows are masked out below, so silence the transients.
        with np.errstate(divide="ignore", invalid="ignore", over="ignore"):
            done = (now - start) / seg_total
            frac_done = rem * done
            remaining = rem - frac_done
        keep = (
            (seg_total > 0)
            & (now < end - 1e-9)
            & (done > 0)
            & (remaining > 0.05)
        )
        rows = np.flatnonzero(keep)
        if len(rows) > 1:
            rows = rows[np.lexsort((self.seq[rows], machine[rows]))]
        return rows, remaining[rows], frac_done[rows]


class MigratingSimulator:
    """Event-driven simulation with periodic migration re-evaluation.

    Parameters
    ----------
    machines, method, policy:
        As for :class:`~repro.sim.engine.MultiClusterSimulator`.
    reevaluate_every_s:
        How often running jobs are reconsidered (hourly by default, the
        carbon-intensity resolution).
    overhead_s:
        Checkpoint + restart cost added to the remaining runtime on the
        target machine (charged at the target's idle power).
    min_saving:
        Minimum relative saving on the remaining cost required to move
        (hysteresis against flapping between machines).
    batched:
        Use the vectorized pricing paths (default).  ``False`` runs the
        reference per-record implementation; outcomes are bit-identical
        either way.
    quote_table:
        Optional prebuilt
        :class:`~repro.accounting.pricing.QuoteTable` for the workload
        this simulator will run (e.g. from a sweep's shared
        :class:`~repro.accounting.pricing.QuoteTableCache`); skips the
        per-run quote-table build.  Validated against the workload at
        ``run()``; ignored when ``batched=False``.
    """

    __slots__ = (
        "machines",
        "method",
        "policy",
        "reevaluate_every_s",
        "overhead_s",
        "min_saving",
        "batched",
        "quote_table",
        "pricings",
        "_carbon",
        "_name_idx",
        "_idle_w",
        "tick_vector_min",
        "probe_vector_min",
        "multi_tick_max",
        "multi_tick_batches",
        "multi_tick_ticks",
        "_ledger",
        "_owners",
        "_quoters",
        "_running",
        "_kernel",
    )

    def __init__(
        self,
        machines: dict[str, SimMachine],
        method: AccountingMethod,
        policy: Policy,
        reevaluate_every_s: float = 3600.0,
        overhead_s: float = 300.0,
        min_saving: float = 0.2,
        batched: bool = True,
        quote_table: QuoteTable | None = None,
    ) -> None:
        if reevaluate_every_s <= 0:
            raise ValueError("re-evaluation period must be positive")
        if overhead_s < 0:
            raise ValueError("overhead cannot be negative")
        if not 0.0 <= min_saving < 1.0:
            raise ValueError("min_saving must be in [0, 1)")
        self.machines = machines
        self.method = method
        self.policy = policy
        self.reevaluate_every_s = reevaluate_every_s
        self.overhead_s = overhead_s
        self.min_saving = min_saving
        self.batched = batched
        self.quote_table = quote_table
        self.pricings = {
            name: pricing_for_sim_machine(m) for name, m in machines.items()
        }
        self._carbon = CarbonBasedAccounting()
        self._name_idx = {name: mi for mi, name in enumerate(self.pricings)}
        #: Idle watts per core, hoisted off the property chain (the probe
        #: path reads it once per move probe).
        self._idle_w = {
            name: m.idle_watts_per_core for name, m in machines.items()
        }
        #: Deferred-settlement state, rebuilt per run (batched mode only).
        self._ledger: SegmentLedger | None = None
        self._owners: list[_Progress] = []
        self._kernel: PricingKernel | None = None
        #: Per-machine scalar probe quoters, rebuilt per run (batched
        #: mode only; closures hold per-run memo state).
        self._quoters: dict[str, object] | None = None
        #: Columnar running-set mirror, rebuilt per run (batched only).
        self._running: RunningTable | None = None
        #: Speed-only crossover knobs (see the module constants); tests
        #: pin them to 0 / huge to force one regime.
        self.tick_vector_min = TICK_VECTOR_MIN
        self.probe_vector_min = PROBE_VECTOR_MIN
        #: Cap on ticks priced per batched multi-tick pass (1 disables).
        self.multi_tick_max = MULTI_TICK_MAX
        #: Multi-tick passes taken / ticks they covered (diagnostics and
        #: tests; cumulative across runs).
        self.multi_tick_batches = 0
        self.multi_tick_ticks = 0

    # ------------------------------------------------------------------
    # Segment economics
    # ------------------------------------------------------------------
    def _segment_scalars(
        self,
        job: Job,
        machine: str,
        fraction: float,
        with_overhead: bool,
    ) -> tuple[float, float]:
        """(runtime, energy) of one segment — the single definition both
        the scalar and the batched paths price, so they cannot drift."""
        runtime = job.runtime_s[machine] * fraction
        energy = job.energy_j[machine] * fraction
        if with_overhead:
            runtime += self.overhead_s
            energy += (
                self.machines[machine].idle_watts_per_core
                * job.cores
                * self.overhead_s
            )
        return runtime, energy

    def _segment_record(
        self,
        job: Job,
        machine: str,
        start_s: float,
        fraction: float,
        with_overhead: bool,
    ) -> UsageRecord:
        runtime, energy = self._segment_scalars(
            job, machine, fraction, with_overhead
        )
        return UsageRecord(
            machine=machine,
            duration_s=runtime,
            energy_j=energy,
            cores=job.cores,
            start_time_s=start_s,
        )

    def _charge_segment(
        self,
        state: _Progress,
        fraction: float,
        with_overhead: bool,
    ) -> None:
        """Bill one segment: append it to the deferred ledger (batched)
        or accumulate its cost/energy/carbon immediately (reference)."""
        if self._ledger is not None:
            job = state.job
            machine = state.segment_machine
            runtime, energy = self._segment_scalars(
                job, machine, fraction, with_overhead
            )
            self._ledger.add(
                machine, state.segment_start_s, runtime, energy, job.cores
            )
            self._owners.append(state)
            return
        record = self._segment_record(
            state.job,
            state.segment_machine,
            state.segment_start_s,
            fraction,
            with_overhead,
        )
        pricing = self.pricings[state.segment_machine]
        intensity = self.machines[state.segment_machine].intensity.at(
            state.segment_start_s
        )
        operational = operational_carbon_g(record.energy_j, intensity)
        state.energy_j += record.energy_j
        state.cost += self.method.charge(record, pricing)
        state.operational_g += operational
        state.attributed_g += operational + self._carbon.embodied_charge(
            record, pricing
        )

    def _settle_segments(self) -> None:
        """Price the whole segment ledger and replay the per-job sums.

        ``settle`` returns per-segment values in append order — the same
        chronological order the reference path charges in — so the
        ``+=`` replay below performs the identical sequence of additions
        per job and the accumulated floats match bit for bit.
        """
        ledger = self._ledger
        if ledger is None or not len(ledger):
            return
        cost, operational, attributed = ledger.settle()
        energy = ledger.energy
        cost_l = cost.tolist()
        oper_l = operational.tolist()
        attr_l = attributed.tolist()
        for idx, state in enumerate(self._owners):
            state.energy_j += energy[idx]
            state.cost += cost_l[idx]
            state.operational_g += oper_l[idx]
            state.attributed_g += attr_l[idx]

    def _remaining_cost(
        self, state: _Progress, machine: str, at_s: float, migrating: bool
    ) -> float:
        record = self._segment_record(
            state.job, machine, at_s, state.remaining_fraction, migrating
        )
        return self.method.charge(record, self.pricings[machine])

    # ------------------------------------------------------------------
    # Main loop
    # ------------------------------------------------------------------
    def run(self, workload: Workload) -> SimulationResult:
        clusters = {name: ClusterSim(m) for name, m in self.machines.items()}
        progress = {job.job_id: _Progress(job=job) for job in workload.jobs}
        #: job_id -> runtime its queued continuation needs on its target.
        pending_runtime: dict[int, float] = {}

        kernel: PricingKernel | None = None
        if self.batched:
            kernel = PricingKernel(
                workload.jobs, self.pricings, self.method,
                table=self.quote_table,
            )
            self._ledger = SegmentLedger(self.method, self.pricings)
            self._owners = []
            self._quoters = {
                name: self.method.probe_kernel(pricing)
                for name, pricing in self.pricings.items()
            }
            self._running = RunningTable()
        else:
            self._ledger = None
            self._owners = []
            self._quoters = None
            self._running = None
        self._kernel = kernel
        running_table = self._running
        name_idx = self._name_idx
        static_views = kernel.static_views if kernel is not None else None
        row_of = kernel.row_of if kernel is not None else None

        calendar = EventCalendar(workload.jobs)
        if workload.jobs:
            calendar.schedule_tick(
                workload.jobs[0].submit_s + self.reevaluate_every_s
            )

        #: Finish log: (job_id, end time), in completion order.
        finish_log: list[tuple[int, float]] = []
        active = len(workload.jobs)

        def try_start(cluster: ClusterSim, now: float) -> None:
            for job in cluster.startable(now):
                state = progress[job.job_id]
                if state.first_start_s is None:
                    state.first_start_s = now
                state.segment_start_s = now
                state.segment_machine = cluster.name
                state.is_continuation = job.job_id in pending_runtime
                runtime = pending_runtime.get(
                    job.job_id, job.runtime_s[cluster.name]
                )
                end = now + runtime
                # ClusterSim scheduled the full runtime; continuations
                # carry only their remainder.
                cluster.reschedule_end(job.job_id, end)
                calendar.schedule_finish(end, (cluster.name, job.job_id))
                if running_table is not None:
                    running_table.add(
                        job.job_id,
                        row_of[job.job_id],
                        name_idx[cluster.name],
                        now,
                        end,
                        state.remaining_fraction,
                        state,
                    )

        while calendar and active > 0:
            now, kind, payload = calendar.pop()

            if kind == ARRIVAL:
                job = payload  # type: ignore[assignment]
                if static_views is not None:
                    views = [
                        MachineView(
                            name, rt, en, clusters[name].estimated_wait_s(now), cost
                        )
                        for name, rt, en, cost in static_views[row_of[job.job_id]]
                    ]
                else:
                    views = [
                        MachineView(
                            machine=name,
                            runtime_s=job.runtime_s[name],
                            energy_j=job.energy_j[name],
                            queue_wait_s=clusters[name].estimated_wait_s(now),
                            # repro-lint: disable=RPL004 (batched=False reference path; segment quotes here are the oracle the quote-table path is tested against)
                            cost=self.method.charge(
                                self._segment_record(job, name, now, 1.0, False),
                                self.pricings[name],
                            ),
                        )
                        for name in job.eligible_machines
                        if name in clusters
                    ]
                if not views:
                    active -= 1
                    continue
                choice = self.policy.select(job, views)
                clusters[choice].enqueue(job)
                try_start(clusters[choice], now)

            elif kind == FINISH:
                machine_name, job_id = payload  # type: ignore[misc]
                cluster = clusters[machine_name]
                entry = cluster.running.get(job_id)
                if entry is None or abs(entry.end_s - now) > 1e-6:
                    continue  # stale event from a migrated segment
                cluster.finish(job_id)
                if running_table is not None:
                    running_table.remove(job_id)
                state = progress[job_id]
                self._charge_segment(
                    state, state.remaining_fraction, state.is_continuation
                )
                state.remaining_fraction = 0.0
                pending_runtime.pop(job_id, None)
                finish_log.append((job_id, now))
                active -= 1
                try_start(cluster, now)

            else:  # TICK: periodic migration re-evaluation
                # A run of ticks with no arrival/finish before them all
                # sees the same running set, so the columnar regime can
                # price the whole run in one pass.  ``now`` advances to
                # the last tick actually consumed (the first tick that
                # moves anything ends the run: movers change state).
                tick_run = [now]
                if (
                    running_table is not None
                    and self.multi_tick_max > 1
                    and len(running_table) >= self.tick_vector_min
                    and len(running_table) >= self.probe_vector_min
                ):
                    horizon = calendar.next_disturbance()
                    t = now + self.reevaluate_every_s
                    while len(tick_run) < self.multi_tick_max and t < horizon:
                        tick_run.append(t)
                        t += self.reevaluate_every_s
                if len(tick_run) > 1:
                    moved, now = self._reevaluate_multi(
                        clusters, pending_runtime, tick_run
                    )
                else:
                    moved = self._reevaluate(
                        clusters, progress, pending_runtime, now
                    )
                if moved:
                    for cluster in clusters.values():
                        try_start(cluster, now)
                if active > 0:
                    calendar.schedule_tick(now + self.reevaluate_every_s)

        self._settle_segments()
        self._ledger = None
        self._owners = []
        self._kernel = None
        self._quoters = None
        self._running = None
        outcomes = [
            self._outcome(progress[job_id], end_s)
            for job_id, end_s in finish_log
        ]
        return SimulationResult(
            policy=f"{self.policy.name}+migrate",
            method=self.method.name,
            machines=list(self.machines),
            outcomes=outcomes,
        )

    # ------------------------------------------------------------------
    def _reevaluate(
        self,
        clusters: dict[str, ClusterSim],
        progress: dict[int, _Progress],
        pending_runtime: dict[int, float],
        now: float,
    ) -> bool:
        """Preempt-and-requeue any running job with a big enough saving.

        Probes are pure functions of (job, remaining fraction, now).
        The batched path reads its candidates straight out of the
        columnar :class:`RunningTable` — one vectorized pass over the
        live rows — and, for large candidate sets, also *decides*
        vectorized: stay/move probe costs become columns, winners come
        from a masked argmin whose tie-breaking replays the scalar
        loop's eligibility-walk order through the quote table's
        ``elig_rank`` (see :meth:`_decide_and_apply_columnar`), and only
        the movers are applied in a final pass.  Small candidate sets
        keep the scalar probe kernels and the per-candidate decision
        loop; the reference path walks the per-cluster running dicts.
        """
        running_table = self._running
        candidates: list[tuple[ClusterSim, int, _Progress, Job, float, float]]
        if (
            running_table is not None
            and len(running_table) >= self.tick_vector_min
        ):
            slots, rem_arr, done_arr = running_table.candidates(now)
            if not len(slots):
                return False
            if len(slots) >= self.probe_vector_min:
                return self._decide_and_apply_columnar(
                    clusters, pending_runtime, now, slots, rem_arr, done_arr
                )
            names = self._kernel.machine_names
            states = running_table.states
            cluster_of = [clusters[name] for name in names]
            cur_machines = running_table.machine[slots].tolist()
            candidates = []
            append = candidates.append
            for slot, mi, remaining, frac_done in zip(
                slots.tolist(),
                cur_machines,
                rem_arr.tolist(),
                done_arr.tolist(),
            ):
                state = states[slot]
                job = state.job
                append(
                    (cluster_of[mi], job.job_id, state, job, remaining, frac_done)
                )
            probe_costs, name_idx = self._probe_costs_indexed(
                clusters, candidates, now
            )
        else:
            candidates = []
            for cluster in clusters.values():
                for job_id, entry in cluster.running.items():
                    state = progress[job_id]
                    job = state.job
                    end_s = entry.end_s
                    segment_total = end_s - state.segment_start_s
                    if segment_total <= 0 or now >= end_s - 1e-9:
                        continue
                    done_of_segment = (
                        now - state.segment_start_s
                    ) / segment_total
                    if done_of_segment <= 0:
                        continue
                    frac_done = state.remaining_fraction * done_of_segment
                    remaining = state.remaining_fraction - frac_done
                    if remaining <= 0.05:
                        continue  # nearly finished; never worth moving
                    candidates.append(
                        (cluster, job_id, state, job, remaining, frac_done)
                    )
            if not candidates:
                return False
            if self.batched:
                probe_costs, name_idx = self._probe_costs_indexed(
                    clusters, candidates, now
                )
            else:
                probe_costs, name_idx = self._probe_costs_scalar(
                    clusters, candidates, now
                )

        moved_any = False
        for k, (cluster, job_id, state, job, remaining, frac_done) in enumerate(
            candidates
        ):
            costs = probe_costs[k]
            stay = costs[name_idx[cluster.name]]
            best_name, best_cost = None, stay
            for name in job.eligible_machines:
                if name == cluster.name or name not in clusters:
                    continue
                cost = costs[name_idx[name]]
                if cost < best_cost:
                    best_name, best_cost = name, cost
            if best_name is None or best_cost > stay * (1.0 - self.min_saving):
                continue

            # Bill the partial segment, release, and requeue.
            self._charge_segment(state, frac_done, state.is_continuation)
            state.remaining_fraction = remaining
            state.migrations += 1
            cluster.finish(job_id)
            if self._running is not None:
                self._running.remove(job_id)
            pending_runtime[job_id] = (
                job.runtime_s[best_name] * remaining + self.overhead_s
            )
            clusters[best_name].enqueue(job)
            moved_any = True
        return moved_any

    def _reevaluate_multi(
        self,
        clusters: dict[str, ClusterSim],
        pending_runtime: dict[int, float],
        tick_times: list[float],
    ) -> tuple[bool, float]:
        """Price a run of quiet re-evaluation ticks in one batched pass.

        ``tick_times`` are consecutive tick boundaries with no arrival
        or finish before any of them (see
        :meth:`~repro.sim.events.EventCalendar.next_disturbance`), so
        every tick sees the identical running set — until the first
        tick that moves something, which changes state and ends the
        run.  The batch therefore:

        * computes the candidate filters and remaining-fraction math
          for all ``(tick, row)`` pairs with one broadcast of the
          per-tick expressions (identical IEEE operations per element);
        * prices every eligible ``(tick, row)`` stay/move probe with
          **one** ``charge_many`` per machine over the flattened pairs
          — the batch kernels are elementwise, so each element equals
          the per-tick batch bit for bit;
        * runs the masked stay/move decision over all pairs at once and
          finds the first tick with any mover.

        Ticks before that first mover tick are consumed with no state
        change — exactly what the per-tick loop would have done — and
        the mover tick itself is applied through
        :meth:`_decide_and_apply_columnar` in reference candidate
        order.  Returns ``(moved, now)`` where ``now`` is the last tick
        actually consumed; the caller resumes per-tick scheduling from
        there.
        """
        kernel = self._kernel
        name_idx = self._name_idx
        idle_w = self._idle_w
        overhead = self.overhead_s
        method = self.method
        table = self._running
        K = len(tick_times)
        n = len(table)
        table.last_scan_rows = n
        self.multi_tick_batches += 1
        if n == 0:
            self.multi_tick_ticks += K
            return False, tick_times[-1]
        machine = table.machine[:n]
        start = table.start[:n]
        end = table.end[:n]
        rem = table.rem[:n]
        job_rows = table.job_row[:n]
        ts = np.asarray(tick_times)
        seg_total = end - start
        # Same transient div-by-zero note as RunningTable.candidates.
        with np.errstate(divide="ignore", invalid="ignore", over="ignore"):
            done = (ts[:, None] - start) / seg_total
            frac_done = rem * done
            remaining = rem - frac_done
        keep = (
            (seg_total > 0)
            & (ts[:, None] < end - 1e-9)
            & (done > 0)
            & (remaining > 0.05)
        )
        if not keep.any():
            self.multi_tick_ticks += K
            return False, tick_times[-1]

        # One charge_many per machine over the flattened (tick, row)
        # pairs — position k*n + i is tick k, table row i.
        cores = kernel.cores[job_rows]
        keep_flat = keep.ravel()
        starts_flat = np.repeat(ts, n)
        rem_flat = remaining.ravel()
        costs = np.full((K * n, len(name_idx)), np.nan)
        for name, mi in name_idx.items():
            rt = kernel.runtime[name][job_rows]
            sel = np.flatnonzero(keep_flat & np.tile(~np.isnan(rt), K))
            if not len(sel):
                continue
            rows_sel = sel % n
            rem_sel = rem_flat[sel]
            runtime = rt[rows_sel] * rem_sel
            energy = kernel.energy[name][job_rows[rows_sel]] * rem_sel
            cores_sel = cores[rows_sel]
            move = machine[rows_sel] != mi
            if move.any():
                runtime[move] += overhead
                energy[move] += idle_w[name] * cores_sel[move] * overhead
            batch = UsageBatch.unchecked(
                machine=name,
                duration_s=runtime,
                energy_j=energy,
                cores=cores_sel,
                start_time_s=starts_flat[sel],
            )
            costs[sel, mi] = method.charge_many(batch, self.pricings[name])

        # The stay/move decision over all pairs at once: non-candidate
        # pairs carry NaN stay costs, and NaN comparisons are False, so
        # they can never be movers — matching the per-tick candidate
        # filter exactly.
        flat_rows = np.arange(K * n)
        cur_flat = np.tile(machine, K)
        stay = costs[flat_rows, cur_flat]
        move_costs = np.where(np.isnan(costs), np.inf, costs)
        move_costs[flat_rows, cur_flat] = np.inf
        best_cost = move_costs.min(axis=1)
        with np.errstate(invalid="ignore"):
            movers = (best_cost < stay) & (
                best_cost <= stay * (1.0 - self.min_saving)
            )
        mover_ticks = np.flatnonzero(movers.reshape(K, n).any(axis=1))
        if not len(mover_ticks):
            self.multi_tick_ticks += K
            return False, tick_times[-1]

        # Apply the first mover tick in reference candidate order; the
        # later ticks in the run are discarded (their running set just
        # changed) and per-tick scheduling resumes from here.
        j = int(mover_ticks[0])
        self.multi_tick_ticks += j + 1
        order = np.lexsort((table.seq[:n], machine))
        cand = order[keep[j][order]]
        moved = self._decide_and_apply_columnar(
            clusters,
            pending_runtime,
            tick_times[j],
            cand,
            remaining[j, cand],
            frac_done[j, cand],
            costs=costs[j * n + cand],
        )
        return moved, tick_times[j]

    def _decide_and_apply_columnar(
        self,
        clusters: dict[str, ClusterSim],
        pending_runtime: dict[int, float],
        now: float,
        slots: np.ndarray,
        remaining: np.ndarray,
        frac_done: np.ndarray,
        costs: np.ndarray | None = None,
    ) -> bool:
        """One vectorized stay/move decision pass over all candidates.

        Probe costs come back from :meth:`_probe_costs_columnar` as a
        ``(candidate, machine)`` matrix (the multi-tick batch passes the
        matrix it already priced); the decision is then three array
        expressions instead of a Python walk per candidate:

        * ``stay`` is each candidate's cost on its current machine;
        * the cheapest move is a row minimum over the move columns
          (current machine and ineligible machines masked to ``inf``);
        * a candidate moves exactly when the scalar loop would —
          ``best < stay`` (the walk only replaces on a strict
          improvement) **and** ``best <= stay * (1 - min_saving)``
          (the hysteresis gate, with the identical IEEE expression).

        The winning machine replays the scalar walk's tie-breaking
        through the quote table's ``elig_rank``: the walk keeps the
        *first* machine, in the job's own eligibility order, that
        reaches the row minimum, so among the columns equal to that
        minimum the smallest eligibility rank is the identical winner.
        Only the movers are then applied, in candidate order — the same
        (machine index, insertion seq) order the scalar loop iterates —
        so preempt/requeue order on the target clusters is unchanged.
        """
        running_table = self._running
        kernel = self._kernel
        if costs is None:
            costs, _ = self._probe_costs_columnar(
                running_table, slots, remaining, now
            )
        n = len(slots)
        rows = np.arange(n)
        cur = running_table.machine[slots]
        stay = costs[rows, cur]
        move = np.where(np.isnan(costs), np.inf, costs)
        move[rows, cur] = np.inf
        best_cost = move.min(axis=1)
        movers = (best_cost < stay) & (
            best_cost <= stay * (1.0 - self.min_saving)
        )
        if not movers.any():
            return False
        mk = np.flatnonzero(movers)
        ranks = kernel.elig_rank[running_table.job_row[slots[mk]]]
        tied = move[mk] == best_cost[mk, None]
        best_mi = np.where(tied, ranks, ELIG_RANK_INELIGIBLE).argmin(axis=1)
        names = kernel.machine_names
        states = running_table.states
        overhead = self.overhead_s
        # Swap-with-last removal renumbers rows, so resolve every
        # mover's state before the first remove invalidates the indices.
        mover_states = [states[row] for row in slots[mk].tolist()]
        for state, mi_cur, mi_best, rem, fdone in zip(
            mover_states,
            cur[mk].tolist(),
            best_mi.tolist(),
            remaining[mk].tolist(),
            frac_done[mk].tolist(),
        ):
            job = state.job
            best_name = names[mi_best]
            self._charge_segment(state, fdone, state.is_continuation)
            state.remaining_fraction = rem
            state.migrations += 1
            clusters[names[mi_cur]].finish(job.job_id)
            running_table.remove(job.job_id)
            pending_runtime[job.job_id] = (
                job.runtime_s[best_name] * rem + overhead
            )
            clusters[best_name].enqueue(job)
        return True

    def _probe_costs_scalar(
        self,
        clusters: dict[str, ClusterSim],
        candidates: list[tuple[ClusterSim, int, _Progress, Job, float, float]],
        now: float,
    ) -> tuple[np.ndarray, dict[str, int]]:
        """Reference probe pricing: one ``charge()`` per (job, machine)."""
        name_idx = self._name_idx
        out = np.full((len(candidates), len(name_idx)), np.nan)
        for k, (cluster, _job_id, _state, job, remaining, _frac_done) in enumerate(
            candidates
        ):
            probe = _Progress(
                job=job,
                remaining_fraction=remaining,
                segment_start_s=now,
                segment_machine=cluster.name,
            )
            out[k, name_idx[cluster.name]] = self._remaining_cost(
                probe, cluster.name, now, migrating=False
            )
            for name in job.eligible_machines:
                if name == cluster.name or name not in clusters:
                    continue
                out[k, name_idx[name]] = self._remaining_cost(
                    probe, name, now, migrating=True
                )
        return out, name_idx

    def _probe_costs_columnar(
        self,
        running_table: RunningTable,
        slots: np.ndarray,
        remaining: np.ndarray,
        now: float,
    ) -> tuple[np.ndarray, dict[str, int]]:
        """Stay/move probe pricing as one ``charge_many`` per machine.

        The candidate columns come straight from the
        :class:`RunningTable` and the kernel's per-machine runtime and
        energy tables, so composing a probe batch is pure array
        arithmetic: scale by the remaining fraction, add the
        checkpoint/restart overhead on the move rows.  Every expression
        uses :meth:`_segment_scalars`' exact association order and
        ``charge_many`` replays ``charge()``'s IEEE operations, so probe
        costs — and therefore migration decisions — are bit-identical to
        the reference path.
        """
        kernel = self._kernel
        name_idx = self._name_idx
        idle_w = self._idle_w
        overhead = self.overhead_s
        method = self.method
        job_rows = running_table.job_row[slots]
        cur_machine = running_table.machine[slots]
        cores = kernel.cores[job_rows]
        out = np.full((len(slots), len(name_idx)), np.nan)
        for name, mi in name_idx.items():
            rt = kernel.runtime[name][job_rows]
            sub = np.flatnonzero(~np.isnan(rt))
            if not len(sub):
                continue
            rem_sub = remaining[sub]
            runtime = rt[sub] * rem_sub
            energy = kernel.energy[name][job_rows[sub]] * rem_sub
            cores_sub = cores[sub]
            move = cur_machine[sub] != mi
            if move.any():
                runtime[move] += overhead
                energy[move] += idle_w[name] * cores_sub[move] * overhead
            batch = UsageBatch.unchecked(
                machine=name,
                duration_s=runtime,
                energy_j=energy,
                cores=cores_sub,
                start_time_s=np.full(len(sub), now),
            )
            out[sub, mi] = method.charge_many(batch, self.pricings[name])
        return out, name_idx

    def _probe_costs_indexed(
        self,
        clusters: dict[str, ClusterSim],
        candidates: list[tuple[ClusterSim, int, _Progress, Job, float, float]],
        now: float,
    ) -> tuple[list[list[float]], dict[str, int]]:
        """Probe pricing through the per-machine scalar probe kernels.

        Candidate sets per tick are tiny (the running jobs of a few
        clusters), so fixed-overhead NumPy batches lose to plain float
        arithmetic; the probe kernels hoist every per-machine constant
        and memoize the single trace lookup a tick needs.  Segment
        scalars are composed with :meth:`_segment_scalars`' exact
        association order and the kernels replay ``charge()``'s IEEE
        operations, so probe costs (and therefore migration decisions)
        are bit-identical to the reference path.
        """
        quoters = self._quoters
        name_idx = self._name_idx
        idle_w = self._idle_w
        overhead = self.overhead_s
        nan = float("nan")
        n_machines = len(name_idx)
        out: list[list[float]] = []
        for cluster, _job_id, _state, job, remaining, _frac in candidates:
            row = [nan] * n_machines
            current = cluster.name
            cores = job.cores
            runtimes = job.runtime_s
            energies = job.energy_j
            for name, rt in runtimes.items():
                mi = name_idx.get(name)
                if mi is None or name not in clusters:
                    continue
                runtime = rt * remaining
                energy = energies[name] * remaining
                if name != current:
                    runtime += overhead
                    energy += idle_w[name] * cores * overhead
                row[mi] = quoters[name](runtime, energy, cores, now)
            out.append(row)
        return out, name_idx

    def _outcome(self, state: _Progress, end_s: float) -> JobOutcome:
        job = state.job
        return JobOutcome(
            job_id=job.job_id,
            user=job.user,
            machine=state.segment_machine,
            cores=job.cores,
            submit_s=job.submit_s,
            start_s=(
                state.first_start_s if state.first_start_s is not None else end_s
            ),
            end_s=end_s,
            energy_j=state.energy_j,
            cost=state.cost,
            work_core_hours=job.work_core_hours,
            operational_carbon_g=state.operational_g,
            attributed_carbon_g=state.attributed_g,
        )
