"""Job migration between machines — the paper's §7 limitation, lifted.

"In the simulation (as well as above), we do not allow job migration:
once a job has been started on a machine, it cannot move even as the
carbon intensities change."  This module implements the missing
mechanism so the claim can be tested rather than assumed: a simulator in
which running jobs are periodically re-evaluated and may checkpoint, pay
a migration overhead, and resume on a machine that has become cheaper
(under CBA this happens when grid intensities cross, Fig. 7b).

Model
-----
* Jobs execute in **segments**.  At every re-evaluation boundary the
  simulator compares the cost of finishing on the current machine with
  the cost of finishing elsewhere (remaining-fraction scaled, plus a
  checkpoint/restart overhead added to the remaining runtime).
* A job migrates when the relative saving exceeds ``min_saving``; the
  continuation re-enters the target's queue under the same user, so all
  §5.3 queue rules still apply.
* Every segment is charged at its own start-time intensity; a migrated
  job's cost, energy, and carbon are the sums over its segments —
  exactly what a provider metering per interval would bill.

Batched pricing architecture
----------------------------
The default path follows the quote-table / settle contract of
:mod:`repro.accounting.pricing`, so the migration simulator no longer
prices inside its event loop:

* arrival views come from a precomputed
  :class:`~repro.accounting.pricing.PricingKernel` quote table (arrival
  time *is* the submit time, as in the plain engine);
* the running set is mirrored in a columnar :class:`RunningTable`
  (struct-of-arrays: kernel job row, machine index, segment start,
  scheduled end, remaining fraction) maintained incrementally on every
  segment start / finish / migrate, so a re-evaluation tick computes
  every candidate's remaining-fraction math in one vectorized pass
  instead of walking the per-cluster ``running`` dicts in Python;
* candidate stay/move probes are priced adaptively: large candidate
  sets go through one
  :meth:`~repro.accounting.base.AccountingMethod.charge_many` per
  machine over the table's columns, while small sets use the
  per-machine
  :meth:`~repro.accounting.base.AccountingMethod.probe_kernel` scalar
  closures — hoisted per-machine constants, no record construction —
  which beat fixed-overhead NumPy batches below a few dozen probes.
  Both replay ``charge()``'s exact IEEE operations, so the crossover
  threshold can never change a decision;
* above the same crossover the stay/move *decision* is vectorized too:
  winners come from a masked argmin over the probe-cost matrix whose
  tie-breaking replays the scalar walk's eligibility order through the
  quote table's ``elig_rank`` column, and only the movers are applied
  (in the reference candidate order), so a re-evaluation tick does no
  per-candidate Python work at all on the hot path;
* finished or preempted segments are appended to a
  :class:`~repro.accounting.pricing.SegmentLedger` and settled in one
  vectorized pass after the run, with per-job sums replayed in append
  order.

All three substitutions use the same IEEE operation order as the scalar
path, so results are **bit-identical** to ``batched=False`` (the test
suite asserts exact equality for all five accounting methods).

Events come from the shared :class:`~repro.sim.events.EventCalendar`:
arrivals are consumed from the submit-sorted job list, only finishes
live in the heap, and the single outstanding re-evaluation boundary is
a scalar tick — the same ``(time, kind, seq)`` order as the seed's
all-in-one heap, without pushing every arrival through it.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.accounting.base import AccountingMethod, UsageBatch, UsageRecord
from repro.accounting.methods import CarbonBasedAccounting
from repro.accounting.pricing import (
    ELIG_RANK_INELIGIBLE,
    PricingKernel,
    QuoteTable,
    SegmentLedger,
)
from repro.sim.cluster import ClusterSim
from repro.sim.engine import SimulationResult, pricing_for_sim_machine
from repro.sim.events import ARRIVAL, FINISH, EventCalendar
from repro.sim.job import Job, JobOutcome
from repro.sim.policies import MachineView, Policy
from repro.sim.scenarios import SimMachine
from repro.sim.workload import Workload
from repro.units import operational_carbon_g


@dataclass
class _Progress:
    """Per-job execution state across segments."""

    job: Job
    remaining_fraction: float = 1.0
    energy_j: float = 0.0
    cost: float = 0.0
    operational_g: float = 0.0
    attributed_g: float = 0.0
    first_start_s: float | None = None
    migrations: int = 0
    segment_start_s: float = 0.0
    segment_machine: str = ""
    is_continuation: bool = False


#: Live running-row count at or above which a re-evaluation tick
#: collects its candidates through the columnar :class:`RunningTable`
#: pass instead of the per-cluster dict walk.  Below it, NumPy's fixed
#: per-expression cost exceeds the walk over a handful of rows
#: (measured crossover ~50 rows on the low-carbon scenario).
TICK_VECTOR_MIN = 48

#: Candidate count at or above which a re-evaluation tick prices its
#: stay/move probes with one ``charge_many`` per machine instead of the
#: scalar probe kernels (measured crossover ~50-64 candidates; the
#: vectorized path is ~2x at 512).  All paths replay ``charge()``'s
#: exact IEEE operations, so these crossovers affect speed only, never
#: decisions (the equivalence suite pins every regime to the seed loop).
PROBE_VECTOR_MIN = 48


#: Slot-array capacity below which :class:`RunningTable` never compacts
#: (small tables scan fast anyway), and the floor compaction shrinks to.
COMPACT_MIN_CAPACITY = 64


class RunningTable:
    """Columnar mirror of every running job across all clusters.

    Struct-of-arrays — per live row: the machine index, the kernel job
    row, the segment start time, the scheduled end, and the remaining
    fraction at segment start — maintained incrementally on segment
    start / finish / migrate events.  A re-evaluation tick then computes
    the remaining-fraction candidate math for the whole running set as
    array expressions (:meth:`candidates`) instead of walking the
    per-cluster ``running`` dicts in Python.

    Rows live in slots recycled through a free list; ``machine == -1``
    marks a dead slot.  Every insertion stamps a monotone sequence
    number so candidates can be returned in the *reference* iteration
    order — clusters in machine-index order, then running-dict insertion
    order within a cluster — which keeps decision application (and thus
    requeue order on the target clusters) bit-identical to the
    dict-walking path.

    Churn-heavy workloads grow the slot arrays to their high-water mark
    and then leave most slots dead, so every tick would keep scanning
    capacity, not liveness.  :meth:`candidates` therefore compacts the
    table when live rows fall to a quarter of capacity (see
    :data:`COMPACT_MIN_CAPACITY`): live rows are repacked densely into
    right-sized arrays, preserving sequence numbers — and therefore the
    candidate order and every float the tick computes.  Compaction runs
    only at the top of :meth:`candidates`, never inside :meth:`remove`,
    because decision application holds slot indices across removes.
    """

    __slots__ = (
        "machine",
        "start",
        "end",
        "rem",
        "job_row",
        "seq",
        "states",
        "compactions",
        "_slot_of",
        "_free",
        "_next_seq",
    )

    def __init__(self, capacity: int = 64) -> None:
        capacity = max(1, capacity)
        self.machine = np.full(capacity, -1, dtype=np.int64)
        self.start = np.zeros(capacity)
        self.end = np.zeros(capacity)
        self.rem = np.zeros(capacity)
        self.job_row = np.zeros(capacity, dtype=np.intp)
        self.seq = np.zeros(capacity, dtype=np.int64)
        #: Per-slot owning :class:`_Progress` (``None`` when dead).
        self.states: list[_Progress | None] = [None] * capacity
        #: Compaction passes run so far (diagnostics and tests).
        self.compactions = 0
        self._slot_of: dict[int, int] = {}
        self._free: list[int] = list(range(capacity - 1, -1, -1))
        self._next_seq = 0

    def __len__(self) -> int:
        return len(self._slot_of)

    def _grow(self) -> None:
        old = len(self.machine)
        new = old * 2
        for name in ("machine", "start", "end", "rem", "job_row", "seq"):
            col = getattr(self, name)
            grown = np.empty(new, dtype=col.dtype)
            grown[:old] = col
            setattr(self, name, grown)
        self.machine[old:] = -1
        self.states.extend([None] * old)
        self._free.extend(range(new - 1, old - 1, -1))

    def add(
        self,
        job_id: int,
        job_row: int,
        machine_idx: int,
        start_s: float,
        end_s: float,
        remaining_fraction: float,
        state: _Progress,
    ) -> None:
        """Mirror one started segment (job_id must not be running)."""
        if not self._free:
            self._grow()
        slot = self._free.pop()
        self.machine[slot] = machine_idx
        self.start[slot] = start_s
        self.end[slot] = end_s
        self.rem[slot] = remaining_fraction
        self.job_row[slot] = job_row
        self.seq[slot] = self._next_seq
        self._next_seq += 1
        self.states[slot] = state
        self._slot_of[job_id] = slot

    def remove(self, job_id: int) -> None:
        """Drop a row when its segment finishes or migrates away."""
        slot = self._slot_of.pop(job_id)
        self.machine[slot] = -1
        self.states[slot] = None
        self._free.append(slot)

    def _compact(self) -> None:
        """Repack live rows densely into right-sized slot arrays.

        Live rows keep their relative slot order and every per-row value
        (including ``seq``), so the (machine, seq) candidate sort — and
        therefore every downstream decision — is unchanged; only the
        dead capacity scanned per tick shrinks.  Must not run while any
        caller holds slot indices, which is why the only call site is
        the top of :meth:`candidates`.
        """
        live = np.flatnonzero(self.machine >= 0)
        n_live = len(live)
        capacity = max(COMPACT_MIN_CAPACITY, 2 * n_live)
        for name in ("machine", "start", "end", "rem", "job_row", "seq"):
            col = getattr(self, name)
            packed = np.empty(capacity, dtype=col.dtype)
            packed[:n_live] = col[live]
            setattr(self, name, packed)
        self.machine[n_live:] = -1
        old_states = self.states
        self.states = [old_states[slot] for slot in live.tolist()] + [None] * (
            capacity - n_live
        )
        new_slot = {old: new for new, old in enumerate(live.tolist())}
        self._slot_of = {
            job_id: new_slot[slot] for job_id, slot in self._slot_of.items()
        }
        self._free = list(range(capacity - 1, n_live - 1, -1))
        self.compactions += 1

    def candidates(
        self, now: float
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """``(slots, remaining, frac_done)`` of every migration candidate.

        One vectorized pass over the live rows replays the reference
        filters element-wise — positive segment length, not within 1e-9 s
        of the scheduled end, positive progress, more than 5% of the job
        left — with the exact float expressions of the scalar loop, so
        the surviving set (and each survivor's remaining fraction) is
        bit-identical.  Slots come back sorted by (machine, insertion
        sequence): the reference dict-walk order.

        When dead slots dominate (live rows at or below a quarter of
        capacity), the table compacts first — a safe point, since no
        slot indices from earlier ticks are live here.
        """
        capacity = len(self.machine)
        if capacity > COMPACT_MIN_CAPACITY and len(self._slot_of) * 4 <= capacity:
            self._compact()
        machine = self.machine
        start = self.start
        end = self.end
        rem = self.rem
        seg_total = end - start
        # Dead and degenerate slots divide by zero / multiply inf here;
        # their rows are masked out below, so silence the transients.
        with np.errstate(divide="ignore", invalid="ignore", over="ignore"):
            done = (now - start) / seg_total
            frac_done = rem * done
            remaining = rem - frac_done
        keep = (
            (machine >= 0)
            & (seg_total > 0)
            & (now < end - 1e-9)
            & (done > 0)
            & (remaining > 0.05)
        )
        slots = np.flatnonzero(keep)
        if len(slots) > 1:
            slots = slots[np.lexsort((self.seq[slots], machine[slots]))]
        return slots, remaining[slots], frac_done[slots]


class MigratingSimulator:
    """Event-driven simulation with periodic migration re-evaluation.

    Parameters
    ----------
    machines, method, policy:
        As for :class:`~repro.sim.engine.MultiClusterSimulator`.
    reevaluate_every_s:
        How often running jobs are reconsidered (hourly by default, the
        carbon-intensity resolution).
    overhead_s:
        Checkpoint + restart cost added to the remaining runtime on the
        target machine (charged at the target's idle power).
    min_saving:
        Minimum relative saving on the remaining cost required to move
        (hysteresis against flapping between machines).
    batched:
        Use the vectorized pricing paths (default).  ``False`` runs the
        reference per-record implementation; outcomes are bit-identical
        either way.
    quote_table:
        Optional prebuilt
        :class:`~repro.accounting.pricing.QuoteTable` for the workload
        this simulator will run (e.g. from a sweep's shared
        :class:`~repro.accounting.pricing.QuoteTableCache`); skips the
        per-run quote-table build.  Validated against the workload at
        ``run()``; ignored when ``batched=False``.
    """

    def __init__(
        self,
        machines: dict[str, SimMachine],
        method: AccountingMethod,
        policy: Policy,
        reevaluate_every_s: float = 3600.0,
        overhead_s: float = 300.0,
        min_saving: float = 0.2,
        batched: bool = True,
        quote_table: QuoteTable | None = None,
    ) -> None:
        if reevaluate_every_s <= 0:
            raise ValueError("re-evaluation period must be positive")
        if overhead_s < 0:
            raise ValueError("overhead cannot be negative")
        if not 0.0 <= min_saving < 1.0:
            raise ValueError("min_saving must be in [0, 1)")
        self.machines = machines
        self.method = method
        self.policy = policy
        self.reevaluate_every_s = reevaluate_every_s
        self.overhead_s = overhead_s
        self.min_saving = min_saving
        self.batched = batched
        self.quote_table = quote_table
        self.pricings = {
            name: pricing_for_sim_machine(m) for name, m in machines.items()
        }
        self._carbon = CarbonBasedAccounting()
        self._name_idx = {name: mi for mi, name in enumerate(self.pricings)}
        #: Idle watts per core, hoisted off the property chain (the probe
        #: path reads it once per move probe).
        self._idle_w = {
            name: m.idle_watts_per_core for name, m in machines.items()
        }
        #: Deferred-settlement state, rebuilt per run (batched mode only).
        self._ledger: SegmentLedger | None = None
        self._owners: list[_Progress] = []
        self._kernel: PricingKernel | None = None
        #: Per-machine scalar probe quoters, rebuilt per run (batched
        #: mode only; closures hold per-run memo state).
        self._quoters: dict[str, object] | None = None
        #: Columnar running-set mirror, rebuilt per run (batched only).
        self._running: RunningTable | None = None
        #: Speed-only crossover knobs (see the module constants); tests
        #: pin them to 0 / huge to force one regime.
        self.tick_vector_min = TICK_VECTOR_MIN
        self.probe_vector_min = PROBE_VECTOR_MIN

    # ------------------------------------------------------------------
    # Segment economics
    # ------------------------------------------------------------------
    def _segment_scalars(
        self,
        job: Job,
        machine: str,
        fraction: float,
        with_overhead: bool,
    ) -> tuple[float, float]:
        """(runtime, energy) of one segment — the single definition both
        the scalar and the batched paths price, so they cannot drift."""
        runtime = job.runtime_s[machine] * fraction
        energy = job.energy_j[machine] * fraction
        if with_overhead:
            runtime += self.overhead_s
            energy += (
                self.machines[machine].idle_watts_per_core
                * job.cores
                * self.overhead_s
            )
        return runtime, energy

    def _segment_record(
        self,
        job: Job,
        machine: str,
        start_s: float,
        fraction: float,
        with_overhead: bool,
    ) -> UsageRecord:
        runtime, energy = self._segment_scalars(
            job, machine, fraction, with_overhead
        )
        return UsageRecord(
            machine=machine,
            duration_s=runtime,
            energy_j=energy,
            cores=job.cores,
            start_time_s=start_s,
        )

    def _charge_segment(
        self,
        state: _Progress,
        fraction: float,
        with_overhead: bool,
    ) -> None:
        """Bill one segment: append it to the deferred ledger (batched)
        or accumulate its cost/energy/carbon immediately (reference)."""
        if self._ledger is not None:
            job = state.job
            machine = state.segment_machine
            runtime, energy = self._segment_scalars(
                job, machine, fraction, with_overhead
            )
            self._ledger.add(
                machine, state.segment_start_s, runtime, energy, job.cores
            )
            self._owners.append(state)
            return
        record = self._segment_record(
            state.job,
            state.segment_machine,
            state.segment_start_s,
            fraction,
            with_overhead,
        )
        pricing = self.pricings[state.segment_machine]
        intensity = self.machines[state.segment_machine].intensity.at(
            state.segment_start_s
        )
        operational = operational_carbon_g(record.energy_j, intensity)
        state.energy_j += record.energy_j
        state.cost += self.method.charge(record, pricing)
        state.operational_g += operational
        state.attributed_g += operational + self._carbon.embodied_charge(
            record, pricing
        )

    def _settle_segments(self) -> None:
        """Price the whole segment ledger and replay the per-job sums.

        ``settle`` returns per-segment values in append order — the same
        chronological order the reference path charges in — so the
        ``+=`` replay below performs the identical sequence of additions
        per job and the accumulated floats match bit for bit.
        """
        ledger = self._ledger
        if ledger is None or not len(ledger):
            return
        cost, operational, attributed = ledger.settle()
        energy = ledger.energy
        cost_l = cost.tolist()
        oper_l = operational.tolist()
        attr_l = attributed.tolist()
        for idx, state in enumerate(self._owners):
            state.energy_j += energy[idx]
            state.cost += cost_l[idx]
            state.operational_g += oper_l[idx]
            state.attributed_g += attr_l[idx]

    def _remaining_cost(
        self, state: _Progress, machine: str, at_s: float, migrating: bool
    ) -> float:
        record = self._segment_record(
            state.job, machine, at_s, state.remaining_fraction, migrating
        )
        return self.method.charge(record, self.pricings[machine])

    # ------------------------------------------------------------------
    # Main loop
    # ------------------------------------------------------------------
    def run(self, workload: Workload) -> SimulationResult:
        clusters = {name: ClusterSim(m) for name, m in self.machines.items()}
        progress = {job.job_id: _Progress(job=job) for job in workload.jobs}
        #: job_id -> runtime its queued continuation needs on its target.
        pending_runtime: dict[int, float] = {}

        kernel: PricingKernel | None = None
        if self.batched:
            kernel = PricingKernel(
                workload.jobs, self.pricings, self.method,
                table=self.quote_table,
            )
            self._ledger = SegmentLedger(self.method, self.pricings)
            self._owners = []
            self._quoters = {
                name: self.method.probe_kernel(pricing)
                for name, pricing in self.pricings.items()
            }
            self._running = RunningTable()
        else:
            self._ledger = None
            self._owners = []
            self._quoters = None
            self._running = None
        self._kernel = kernel
        running_table = self._running
        name_idx = self._name_idx
        static_views = kernel.static_views if kernel is not None else None
        row_of = kernel.row_of if kernel is not None else None

        calendar = EventCalendar(workload.jobs)
        if workload.jobs:
            calendar.schedule_tick(
                workload.jobs[0].submit_s + self.reevaluate_every_s
            )

        #: Finish log: (job_id, end time), in completion order.
        finish_log: list[tuple[int, float]] = []
        active = len(workload.jobs)

        def try_start(cluster: ClusterSim, now: float) -> None:
            for job in cluster.startable(now):
                state = progress[job.job_id]
                if state.first_start_s is None:
                    state.first_start_s = now
                state.segment_start_s = now
                state.segment_machine = cluster.name
                state.is_continuation = job.job_id in pending_runtime
                runtime = pending_runtime.get(
                    job.job_id, job.runtime_s[cluster.name]
                )
                end = now + runtime
                # ClusterSim scheduled the full runtime; continuations
                # carry only their remainder.
                cluster.reschedule_end(job.job_id, end)
                calendar.schedule_finish(end, (cluster.name, job.job_id))
                if running_table is not None:
                    running_table.add(
                        job.job_id,
                        row_of[job.job_id],
                        name_idx[cluster.name],
                        now,
                        end,
                        state.remaining_fraction,
                        state,
                    )

        while calendar and active > 0:
            now, kind, payload = calendar.pop()

            if kind == ARRIVAL:
                job = payload  # type: ignore[assignment]
                if static_views is not None:
                    views = [
                        MachineView(
                            name, rt, en, clusters[name].estimated_wait_s(now), cost
                        )
                        for name, rt, en, cost in static_views[row_of[job.job_id]]
                    ]
                else:
                    views = [
                        MachineView(
                            machine=name,
                            runtime_s=job.runtime_s[name],
                            energy_j=job.energy_j[name],
                            queue_wait_s=clusters[name].estimated_wait_s(now),
                            cost=self.method.charge(
                                self._segment_record(job, name, now, 1.0, False),
                                self.pricings[name],
                            ),
                        )
                        for name in job.eligible_machines
                        if name in clusters
                    ]
                if not views:
                    active -= 1
                    continue
                choice = self.policy.select(job, views)
                clusters[choice].enqueue(job)
                try_start(clusters[choice], now)

            elif kind == FINISH:
                machine_name, job_id = payload  # type: ignore[misc]
                cluster = clusters[machine_name]
                entry = cluster.running.get(job_id)
                if entry is None or abs(entry.end_s - now) > 1e-6:
                    continue  # stale event from a migrated segment
                cluster.finish(job_id)
                if running_table is not None:
                    running_table.remove(job_id)
                state = progress[job_id]
                self._charge_segment(
                    state, state.remaining_fraction, state.is_continuation
                )
                state.remaining_fraction = 0.0
                pending_runtime.pop(job_id, None)
                finish_log.append((job_id, now))
                active -= 1
                try_start(cluster, now)

            else:  # TICK: periodic migration re-evaluation
                moved = self._reevaluate(clusters, progress, pending_runtime, now)
                if moved:
                    for cluster in clusters.values():
                        try_start(cluster, now)
                if active > 0:
                    calendar.schedule_tick(now + self.reevaluate_every_s)

        self._settle_segments()
        self._ledger = None
        self._owners = []
        self._kernel = None
        self._quoters = None
        self._running = None
        outcomes = [
            self._outcome(progress[job_id], end_s)
            for job_id, end_s in finish_log
        ]
        return SimulationResult(
            policy=f"{self.policy.name}+migrate",
            method=self.method.name,
            machines=list(self.machines),
            outcomes=outcomes,
        )

    # ------------------------------------------------------------------
    def _reevaluate(
        self,
        clusters: dict[str, ClusterSim],
        progress: dict[int, _Progress],
        pending_runtime: dict[int, float],
        now: float,
    ) -> bool:
        """Preempt-and-requeue any running job with a big enough saving.

        Probes are pure functions of (job, remaining fraction, now).
        The batched path reads its candidates straight out of the
        columnar :class:`RunningTable` — one vectorized pass over the
        live rows — and, for large candidate sets, also *decides*
        vectorized: stay/move probe costs become columns, winners come
        from a masked argmin whose tie-breaking replays the scalar
        loop's eligibility-walk order through the quote table's
        ``elig_rank`` (see :meth:`_decide_and_apply_columnar`), and only
        the movers are applied in a final pass.  Small candidate sets
        keep the scalar probe kernels and the per-candidate decision
        loop; the reference path walks the per-cluster running dicts.
        """
        running_table = self._running
        candidates: list[tuple[ClusterSim, int, _Progress, Job, float, float]]
        if (
            running_table is not None
            and len(running_table) >= self.tick_vector_min
        ):
            slots, rem_arr, done_arr = running_table.candidates(now)
            if not len(slots):
                return False
            if len(slots) >= self.probe_vector_min:
                return self._decide_and_apply_columnar(
                    clusters, pending_runtime, now, slots, rem_arr, done_arr
                )
            names = self._kernel.machine_names
            states = running_table.states
            cluster_of = [clusters[name] for name in names]
            cur_machines = running_table.machine[slots].tolist()
            candidates = []
            append = candidates.append
            for slot, mi, remaining, frac_done in zip(
                slots.tolist(),
                cur_machines,
                rem_arr.tolist(),
                done_arr.tolist(),
            ):
                state = states[slot]
                job = state.job
                append(
                    (cluster_of[mi], job.job_id, state, job, remaining, frac_done)
                )
            probe_costs, name_idx = self._probe_costs_indexed(
                clusters, candidates, now
            )
        else:
            candidates = []
            for cluster in clusters.values():
                for job_id, entry in cluster.running.items():
                    state = progress[job_id]
                    job = state.job
                    end_s = entry.end_s
                    segment_total = end_s - state.segment_start_s
                    if segment_total <= 0 or now >= end_s - 1e-9:
                        continue
                    done_of_segment = (
                        now - state.segment_start_s
                    ) / segment_total
                    if done_of_segment <= 0:
                        continue
                    frac_done = state.remaining_fraction * done_of_segment
                    remaining = state.remaining_fraction - frac_done
                    if remaining <= 0.05:
                        continue  # nearly finished; never worth moving
                    candidates.append(
                        (cluster, job_id, state, job, remaining, frac_done)
                    )
            if not candidates:
                return False
            if self.batched:
                probe_costs, name_idx = self._probe_costs_indexed(
                    clusters, candidates, now
                )
            else:
                probe_costs, name_idx = self._probe_costs_scalar(
                    clusters, candidates, now
                )

        moved_any = False
        for k, (cluster, job_id, state, job, remaining, frac_done) in enumerate(
            candidates
        ):
            costs = probe_costs[k]
            stay = costs[name_idx[cluster.name]]
            best_name, best_cost = None, stay
            for name in job.eligible_machines:
                if name == cluster.name or name not in clusters:
                    continue
                cost = costs[name_idx[name]]
                if cost < best_cost:
                    best_name, best_cost = name, cost
            if best_name is None or best_cost > stay * (1.0 - self.min_saving):
                continue

            # Bill the partial segment, release, and requeue.
            self._charge_segment(state, frac_done, state.is_continuation)
            state.remaining_fraction = remaining
            state.migrations += 1
            cluster.finish(job_id)
            if self._running is not None:
                self._running.remove(job_id)
            pending_runtime[job_id] = (
                job.runtime_s[best_name] * remaining + self.overhead_s
            )
            clusters[best_name].enqueue(job)
            moved_any = True
        return moved_any

    def _decide_and_apply_columnar(
        self,
        clusters: dict[str, ClusterSim],
        pending_runtime: dict[int, float],
        now: float,
        slots: np.ndarray,
        remaining: np.ndarray,
        frac_done: np.ndarray,
    ) -> bool:
        """One vectorized stay/move decision pass over all candidates.

        Probe costs come back from :meth:`_probe_costs_columnar` as a
        ``(candidate, machine)`` matrix; the decision is then three
        array expressions instead of a Python walk per candidate:

        * ``stay`` is each candidate's cost on its current machine;
        * the cheapest move is a row minimum over the move columns
          (current machine and ineligible machines masked to ``inf``);
        * a candidate moves exactly when the scalar loop would —
          ``best < stay`` (the walk only replaces on a strict
          improvement) **and** ``best <= stay * (1 - min_saving)``
          (the hysteresis gate, with the identical IEEE expression).

        The winning machine replays the scalar walk's tie-breaking
        through the quote table's ``elig_rank``: the walk keeps the
        *first* machine, in the job's own eligibility order, that
        reaches the row minimum, so among the columns equal to that
        minimum the smallest eligibility rank is the identical winner.
        Only the movers are then applied, in candidate order — the same
        (machine index, insertion seq) order the scalar loop iterates —
        so preempt/requeue order on the target clusters is unchanged.
        """
        running_table = self._running
        kernel = self._kernel
        costs, _ = self._probe_costs_columnar(
            running_table, slots, remaining, now
        )
        n = len(slots)
        rows = np.arange(n)
        cur = running_table.machine[slots]
        stay = costs[rows, cur]
        move = np.where(np.isnan(costs), np.inf, costs)
        move[rows, cur] = np.inf
        best_cost = move.min(axis=1)
        movers = (best_cost < stay) & (
            best_cost <= stay * (1.0 - self.min_saving)
        )
        if not movers.any():
            return False
        mk = np.flatnonzero(movers)
        ranks = kernel.elig_rank[running_table.job_row[slots[mk]]]
        tied = move[mk] == best_cost[mk, None]
        best_mi = np.where(tied, ranks, ELIG_RANK_INELIGIBLE).argmin(axis=1)
        names = kernel.machine_names
        states = running_table.states
        overhead = self.overhead_s
        for slot, mi_cur, mi_best, rem, fdone in zip(
            slots[mk].tolist(),
            cur[mk].tolist(),
            best_mi.tolist(),
            remaining[mk].tolist(),
            frac_done[mk].tolist(),
        ):
            state = states[slot]
            job = state.job
            best_name = names[mi_best]
            self._charge_segment(state, fdone, state.is_continuation)
            state.remaining_fraction = rem
            state.migrations += 1
            clusters[names[mi_cur]].finish(job.job_id)
            running_table.remove(job.job_id)
            pending_runtime[job.job_id] = (
                job.runtime_s[best_name] * rem + overhead
            )
            clusters[best_name].enqueue(job)
        return True

    def _probe_costs_scalar(
        self,
        clusters: dict[str, ClusterSim],
        candidates: list[tuple[ClusterSim, int, _Progress, Job, float, float]],
        now: float,
    ) -> tuple[np.ndarray, dict[str, int]]:
        """Reference probe pricing: one ``charge()`` per (job, machine)."""
        name_idx = self._name_idx
        out = np.full((len(candidates), len(name_idx)), np.nan)
        for k, (cluster, _job_id, _state, job, remaining, _frac_done) in enumerate(
            candidates
        ):
            probe = _Progress(
                job=job,
                remaining_fraction=remaining,
                segment_start_s=now,
                segment_machine=cluster.name,
            )
            out[k, name_idx[cluster.name]] = self._remaining_cost(
                probe, cluster.name, now, migrating=False
            )
            for name in job.eligible_machines:
                if name == cluster.name or name not in clusters:
                    continue
                out[k, name_idx[name]] = self._remaining_cost(
                    probe, name, now, migrating=True
                )
        return out, name_idx

    def _probe_costs_columnar(
        self,
        running_table: RunningTable,
        slots: np.ndarray,
        remaining: np.ndarray,
        now: float,
    ) -> tuple[np.ndarray, dict[str, int]]:
        """Stay/move probe pricing as one ``charge_many`` per machine.

        The candidate columns come straight from the
        :class:`RunningTable` and the kernel's per-machine runtime and
        energy tables, so composing a probe batch is pure array
        arithmetic: scale by the remaining fraction, add the
        checkpoint/restart overhead on the move rows.  Every expression
        uses :meth:`_segment_scalars`' exact association order and
        ``charge_many`` replays ``charge()``'s IEEE operations, so probe
        costs — and therefore migration decisions — are bit-identical to
        the reference path.
        """
        kernel = self._kernel
        name_idx = self._name_idx
        idle_w = self._idle_w
        overhead = self.overhead_s
        method = self.method
        job_rows = running_table.job_row[slots]
        cur_machine = running_table.machine[slots]
        cores = kernel.cores[job_rows]
        out = np.full((len(slots), len(name_idx)), np.nan)
        for name, mi in name_idx.items():
            rt = kernel.runtime[name][job_rows]
            sub = np.flatnonzero(~np.isnan(rt))
            if not len(sub):
                continue
            rem_sub = remaining[sub]
            runtime = rt[sub] * rem_sub
            energy = kernel.energy[name][job_rows[sub]] * rem_sub
            cores_sub = cores[sub]
            move = cur_machine[sub] != mi
            if move.any():
                runtime[move] += overhead
                energy[move] += idle_w[name] * cores_sub[move] * overhead
            batch = UsageBatch.unchecked(
                machine=name,
                duration_s=runtime,
                energy_j=energy,
                cores=cores_sub,
                start_time_s=np.full(len(sub), now),
            )
            out[sub, mi] = method.charge_many(batch, self.pricings[name])
        return out, name_idx

    def _probe_costs_indexed(
        self,
        clusters: dict[str, ClusterSim],
        candidates: list[tuple[ClusterSim, int, _Progress, Job, float, float]],
        now: float,
    ) -> tuple[list[list[float]], dict[str, int]]:
        """Probe pricing through the per-machine scalar probe kernels.

        Candidate sets per tick are tiny (the running jobs of a few
        clusters), so fixed-overhead NumPy batches lose to plain float
        arithmetic; the probe kernels hoist every per-machine constant
        and memoize the single trace lookup a tick needs.  Segment
        scalars are composed with :meth:`_segment_scalars`' exact
        association order and the kernels replay ``charge()``'s IEEE
        operations, so probe costs (and therefore migration decisions)
        are bit-identical to the reference path.
        """
        quoters = self._quoters
        name_idx = self._name_idx
        idle_w = self._idle_w
        overhead = self.overhead_s
        nan = float("nan")
        n_machines = len(name_idx)
        out: list[list[float]] = []
        for cluster, _job_id, _state, job, remaining, _frac in candidates:
            row = [nan] * n_machines
            current = cluster.name
            cores = job.cores
            runtimes = job.runtime_s
            energies = job.energy_j
            for name, rt in runtimes.items():
                mi = name_idx.get(name)
                if mi is None or name not in clusters:
                    continue
                runtime = rt * remaining
                energy = energies[name] * remaining
                if name != current:
                    runtime += overhead
                    energy += idle_w[name] * cores * overhead
                row[mi] = quoters[name](runtime, energy, cores, now)
            out.append(row)
        return out, name_idx

    def _outcome(self, state: _Progress, end_s: float) -> JobOutcome:
        job = state.job
        return JobOutcome(
            job_id=job.job_id,
            user=job.user,
            machine=state.segment_machine,
            cores=job.cores,
            submit_s=job.submit_s,
            start_s=(
                state.first_start_s if state.first_start_s is not None else end_s
            ),
            end_s=end_s,
            energy_j=state.energy_j,
            cost=state.cost,
            work_core_hours=job.work_core_hours,
            operational_carbon_g=state.operational_g,
            attributed_carbon_g=state.attributed_g,
        )
