"""Job migration between machines — the paper's §7 limitation, lifted.

"In the simulation (as well as above), we do not allow job migration:
once a job has been started on a machine, it cannot move even as the
carbon intensities change."  This module implements the missing
mechanism so the claim can be tested rather than assumed: a simulator in
which running jobs are periodically re-evaluated and may checkpoint, pay
a migration overhead, and resume on a machine that has become cheaper
(under CBA this happens when grid intensities cross, Fig. 7b).

Model
-----
* Jobs execute in **segments**.  At every re-evaluation boundary the
  simulator compares the cost of finishing on the current machine with
  the cost of finishing elsewhere (remaining-fraction scaled, plus a
  checkpoint/restart overhead added to the remaining runtime).
* A job migrates when the relative saving exceeds ``min_saving``; the
  continuation re-enters the target's queue under the same user, so all
  §5.3 queue rules still apply.
* Every segment is charged at its own start-time intensity; a migrated
  job's cost, energy, and carbon are the sums over its segments —
  exactly what a provider metering per interval would bill.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass

from repro.accounting.base import AccountingMethod, UsageRecord
from repro.accounting.methods import CarbonBasedAccounting
from repro.sim.cluster import ClusterSim
from repro.sim.engine import SimulationResult, pricing_for_sim_machine
from repro.sim.job import Job, JobOutcome
from repro.sim.policies import MachineView, Policy
from repro.sim.scenarios import SimMachine
from repro.sim.workload import Workload
from repro.units import operational_carbon_g

_ARRIVAL = 0
_FINISH = 1
_REEVALUATE = 2


@dataclass
class _Progress:
    """Per-job execution state across segments."""

    job: Job
    remaining_fraction: float = 1.0
    energy_j: float = 0.0
    cost: float = 0.0
    operational_g: float = 0.0
    attributed_g: float = 0.0
    first_start_s: float | None = None
    migrations: int = 0
    segment_start_s: float = 0.0
    segment_machine: str = ""
    is_continuation: bool = False


class MigratingSimulator:
    """Event-driven simulation with periodic migration re-evaluation.

    Parameters
    ----------
    machines, method, policy:
        As for :class:`~repro.sim.engine.MultiClusterSimulator`.
    reevaluate_every_s:
        How often running jobs are reconsidered (hourly by default, the
        carbon-intensity resolution).
    overhead_s:
        Checkpoint + restart cost added to the remaining runtime on the
        target machine (charged at the target's idle power).
    min_saving:
        Minimum relative saving on the remaining cost required to move
        (hysteresis against flapping between machines).
    """

    def __init__(
        self,
        machines: dict[str, SimMachine],
        method: AccountingMethod,
        policy: Policy,
        reevaluate_every_s: float = 3600.0,
        overhead_s: float = 300.0,
        min_saving: float = 0.2,
    ) -> None:
        if reevaluate_every_s <= 0:
            raise ValueError("re-evaluation period must be positive")
        if overhead_s < 0:
            raise ValueError("overhead cannot be negative")
        if not 0.0 <= min_saving < 1.0:
            raise ValueError("min_saving must be in [0, 1)")
        self.machines = machines
        self.method = method
        self.policy = policy
        self.reevaluate_every_s = reevaluate_every_s
        self.overhead_s = overhead_s
        self.min_saving = min_saving
        self.pricings = {
            name: pricing_for_sim_machine(m) for name, m in machines.items()
        }
        self._carbon = CarbonBasedAccounting()

    # ------------------------------------------------------------------
    # Segment economics
    # ------------------------------------------------------------------
    def _segment_record(
        self,
        job: Job,
        machine: str,
        start_s: float,
        fraction: float,
        with_overhead: bool,
    ) -> UsageRecord:
        runtime = job.runtime_s[machine] * fraction
        energy = job.energy_j[machine] * fraction
        if with_overhead:
            runtime += self.overhead_s
            energy += (
                self.machines[machine].idle_watts_per_core
                * job.cores
                * self.overhead_s
            )
        return UsageRecord(
            machine=machine,
            duration_s=runtime,
            energy_j=energy,
            cores=job.cores,
            start_time_s=start_s,
        )

    def _charge_segment(
        self,
        state: _Progress,
        fraction: float,
        with_overhead: bool,
    ) -> None:
        """Accumulate one segment's cost/energy/carbon into the job state."""
        record = self._segment_record(
            state.job,
            state.segment_machine,
            state.segment_start_s,
            fraction,
            with_overhead,
        )
        pricing = self.pricings[state.segment_machine]
        intensity = self.machines[state.segment_machine].intensity.at(
            state.segment_start_s
        )
        operational = operational_carbon_g(record.energy_j, intensity)
        state.energy_j += record.energy_j
        state.cost += self.method.charge(record, pricing)
        state.operational_g += operational
        state.attributed_g += operational + self._carbon.embodied_charge(
            record, pricing
        )

    def _remaining_cost(
        self, state: _Progress, machine: str, at_s: float, migrating: bool
    ) -> float:
        record = self._segment_record(
            state.job, machine, at_s, state.remaining_fraction, migrating
        )
        return self.method.charge(record, self.pricings[machine])

    # ------------------------------------------------------------------
    # Main loop
    # ------------------------------------------------------------------
    def run(self, workload: Workload) -> SimulationResult:
        clusters = {name: ClusterSim(m) for name, m in self.machines.items()}
        progress = {job.job_id: _Progress(job=job) for job in workload.jobs}
        #: job_id -> runtime its queued continuation needs on its target.
        pending_runtime: dict[int, float] = {}

        events: list[tuple[float, int, int, object]] = []
        seq = 0

        def push(time_s: float, kind: int, payload: object) -> None:
            nonlocal seq
            heapq.heappush(events, (time_s, kind, seq, payload))
            seq += 1

        for job in workload.jobs:
            push(job.submit_s, _ARRIVAL, job)
        if workload.jobs:
            push(
                workload.jobs[0].submit_s + self.reevaluate_every_s,
                _REEVALUATE,
                None,
            )

        outcomes: list[JobOutcome] = []
        active = len(workload.jobs)

        def try_start(cluster: ClusterSim, now: float) -> None:
            for job in cluster.startable(now):
                state = progress[job.job_id]
                if state.first_start_s is None:
                    state.first_start_s = now
                state.segment_start_s = now
                state.segment_machine = cluster.name
                state.is_continuation = job.job_id in pending_runtime
                runtime = pending_runtime.get(
                    job.job_id, job.runtime_s[cluster.name]
                )
                end = now + runtime
                # ClusterSim scheduled the full runtime; continuations
                # carry only their remainder.
                cluster.running[job.job_id].end_s = end
                push(end, _FINISH, (cluster.name, job.job_id))

        while events and active > 0:
            now, kind, _, payload = heapq.heappop(events)

            if kind == _ARRIVAL:
                job = payload  # type: ignore[assignment]
                views = [
                    MachineView(
                        machine=name,
                        runtime_s=job.runtime_s[name],
                        energy_j=job.energy_j[name],
                        queue_wait_s=clusters[name].estimated_wait_s(),
                        cost=self.method.charge(
                            self._segment_record(job, name, now, 1.0, False),
                            self.pricings[name],
                        ),
                    )
                    for name in job.eligible_machines
                    if name in clusters
                ]
                if not views:
                    active -= 1
                    continue
                choice = self.policy.select(job, views)
                clusters[choice].enqueue(job)
                try_start(clusters[choice], now)

            elif kind == _FINISH:
                machine_name, job_id = payload  # type: ignore[misc]
                cluster = clusters[machine_name]
                entry = cluster.running.get(job_id)
                if entry is None or abs(entry.end_s - now) > 1e-6:
                    continue  # stale event from a migrated segment
                job = cluster.finish(job_id)
                state = progress[job_id]
                self._charge_segment(
                    state, state.remaining_fraction, state.is_continuation
                )
                state.remaining_fraction = 0.0
                pending_runtime.pop(job_id, None)
                outcomes.append(self._outcome(state, now))
                active -= 1
                try_start(cluster, now)

            else:  # _REEVALUATE
                moved = self._reevaluate(clusters, progress, pending_runtime, now)
                if moved:
                    for cluster in clusters.values():
                        try_start(cluster, now)
                if active > 0:
                    push(now + self.reevaluate_every_s, _REEVALUATE, None)

        return SimulationResult(
            policy=f"{self.policy.name}+migrate",
            method=self.method.name,
            outcomes=outcomes,
            machines=list(self.machines),
        )

    # ------------------------------------------------------------------
    def _reevaluate(
        self,
        clusters: dict[str, ClusterSim],
        progress: dict[int, _Progress],
        pending_runtime: dict[int, float],
        now: float,
    ) -> bool:
        """Preempt-and-requeue any running job with a big enough saving."""
        moved_any = False
        for cluster in clusters.values():
            for job_id in list(cluster.running):
                state = progress[job_id]
                job = state.job
                end_s = cluster.running[job_id].end_s
                segment_total = end_s - state.segment_start_s
                if segment_total <= 0 or now >= end_s - 1e-9:
                    continue
                done_of_segment = (now - state.segment_start_s) / segment_total
                if done_of_segment <= 0:
                    continue
                frac_done = state.remaining_fraction * done_of_segment
                remaining = state.remaining_fraction - frac_done
                if remaining <= 0.05:
                    continue  # nearly finished; never worth moving

                probe = _Progress(
                    job=job,
                    remaining_fraction=remaining,
                    segment_start_s=now,
                    segment_machine=cluster.name,
                )
                stay = self._remaining_cost(probe, cluster.name, now, migrating=False)
                best_name, best_cost = None, stay
                for name in job.eligible_machines:
                    if name == cluster.name or name not in clusters:
                        continue
                    cost = self._remaining_cost(probe, name, now, migrating=True)
                    if cost < best_cost:
                        best_name, best_cost = name, cost
                if best_name is None or best_cost > stay * (1.0 - self.min_saving):
                    continue

                # Bill the partial segment, release, and requeue.
                self._charge_segment(state, frac_done, state.is_continuation)
                state.remaining_fraction = remaining
                state.migrations += 1
                cluster.finish(job_id)
                pending_runtime[job_id] = (
                    job.runtime_s[best_name] * remaining + self.overhead_s
                )
                clusters[best_name].enqueue(job)
                moved_any = True
        return moved_any

    def _outcome(self, state: _Progress, end_s: float) -> JobOutcome:
        job = state.job
        return JobOutcome(
            job_id=job.job_id,
            user=job.user,
            machine=state.segment_machine,
            cores=job.cores,
            submit_s=job.submit_s,
            start_s=(
                state.first_start_s if state.first_start_s is not None else end_s
            ),
            end_s=end_s,
            energy_j=state.energy_j,
            cost=state.cost,
            work_core_hours=job.work_core_hours,
            operational_carbon_g=state.operational_g,
            attributed_carbon_g=state.attributed_g,
        )
