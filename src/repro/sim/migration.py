"""Job migration between machines — the paper's §7 limitation, lifted.

"In the simulation (as well as above), we do not allow job migration:
once a job has been started on a machine, it cannot move even as the
carbon intensities change."  This module implements the missing
mechanism so the claim can be tested rather than assumed: a simulator in
which running jobs are periodically re-evaluated and may checkpoint, pay
a migration overhead, and resume on a machine that has become cheaper
(under CBA this happens when grid intensities cross, Fig. 7b).

Model
-----
* Jobs execute in **segments**.  At every re-evaluation boundary the
  simulator compares the cost of finishing on the current machine with
  the cost of finishing elsewhere (remaining-fraction scaled, plus a
  checkpoint/restart overhead added to the remaining runtime).
* A job migrates when the relative saving exceeds ``min_saving``; the
  continuation re-enters the target's queue under the same user, so all
  §5.3 queue rules still apply.
* Every segment is charged at its own start-time intensity; a migrated
  job's cost, energy, and carbon are the sums over its segments —
  exactly what a provider metering per interval would bill.

Batched pricing architecture
----------------------------
The default path follows the quote-table / settle contract of
:mod:`repro.accounting.pricing`, so the migration simulator no longer
prices inside its event loop:

* arrival views come from a precomputed
  :class:`~repro.accounting.pricing.PricingKernel` quote table (arrival
  time *is* the submit time, as in the plain engine);
* each re-evaluation prices the stay/move probes through per-machine
  :meth:`~repro.accounting.base.AccountingMethod.probe_kernel` closures
  — hoisted per-machine constants, no record construction, and a
  memoized trace lookup per (machine, tick) — instead of a full
  ``charge()`` per (running job, machine) pair.  Probe sets at a tick
  are small (a handful of running jobs), so scalar closures beat
  fixed-overhead NumPy batches by a wide margin here;
* finished or preempted segments are appended to a
  :class:`~repro.accounting.pricing.SegmentLedger` and settled in one
  vectorized pass after the run, with per-job sums replayed in append
  order.

All three substitutions use the same IEEE operation order as the scalar
path, so results are **bit-identical** to ``batched=False`` (the test
suite asserts exact equality for all five accounting methods).

Events come from the shared :class:`~repro.sim.events.EventCalendar`:
arrivals are consumed from the submit-sorted job list, only finishes
live in the heap, and the single outstanding re-evaluation boundary is
a scalar tick — the same ``(time, kind, seq)`` order as the seed's
all-in-one heap, without pushing every arrival through it.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.accounting.base import AccountingMethod, UsageRecord
from repro.accounting.methods import CarbonBasedAccounting
from repro.accounting.pricing import PricingKernel, SegmentLedger
from repro.sim.cluster import ClusterSim
from repro.sim.engine import SimulationResult, pricing_for_sim_machine
from repro.sim.events import ARRIVAL, FINISH, EventCalendar
from repro.sim.job import Job, JobOutcome
from repro.sim.policies import MachineView, Policy
from repro.sim.scenarios import SimMachine
from repro.sim.workload import Workload
from repro.units import operational_carbon_g


@dataclass
class _Progress:
    """Per-job execution state across segments."""

    job: Job
    remaining_fraction: float = 1.0
    energy_j: float = 0.0
    cost: float = 0.0
    operational_g: float = 0.0
    attributed_g: float = 0.0
    first_start_s: float | None = None
    migrations: int = 0
    segment_start_s: float = 0.0
    segment_machine: str = ""
    is_continuation: bool = False


class MigratingSimulator:
    """Event-driven simulation with periodic migration re-evaluation.

    Parameters
    ----------
    machines, method, policy:
        As for :class:`~repro.sim.engine.MultiClusterSimulator`.
    reevaluate_every_s:
        How often running jobs are reconsidered (hourly by default, the
        carbon-intensity resolution).
    overhead_s:
        Checkpoint + restart cost added to the remaining runtime on the
        target machine (charged at the target's idle power).
    min_saving:
        Minimum relative saving on the remaining cost required to move
        (hysteresis against flapping between machines).
    batched:
        Use the vectorized pricing paths (default).  ``False`` runs the
        reference per-record implementation; outcomes are bit-identical
        either way.
    """

    def __init__(
        self,
        machines: dict[str, SimMachine],
        method: AccountingMethod,
        policy: Policy,
        reevaluate_every_s: float = 3600.0,
        overhead_s: float = 300.0,
        min_saving: float = 0.2,
        batched: bool = True,
    ) -> None:
        if reevaluate_every_s <= 0:
            raise ValueError("re-evaluation period must be positive")
        if overhead_s < 0:
            raise ValueError("overhead cannot be negative")
        if not 0.0 <= min_saving < 1.0:
            raise ValueError("min_saving must be in [0, 1)")
        self.machines = machines
        self.method = method
        self.policy = policy
        self.reevaluate_every_s = reevaluate_every_s
        self.overhead_s = overhead_s
        self.min_saving = min_saving
        self.batched = batched
        self.pricings = {
            name: pricing_for_sim_machine(m) for name, m in machines.items()
        }
        self._carbon = CarbonBasedAccounting()
        self._name_idx = {name: mi for mi, name in enumerate(self.pricings)}
        #: Idle watts per core, hoisted off the property chain (the probe
        #: path reads it once per move probe).
        self._idle_w = {
            name: m.idle_watts_per_core for name, m in machines.items()
        }
        #: Deferred-settlement state, rebuilt per run (batched mode only).
        self._ledger: SegmentLedger | None = None
        self._owners: list[_Progress] = []
        self._kernel: PricingKernel | None = None
        #: Per-machine scalar probe quoters, rebuilt per run (batched
        #: mode only; closures hold per-run memo state).
        self._quoters: dict[str, object] | None = None

    # ------------------------------------------------------------------
    # Segment economics
    # ------------------------------------------------------------------
    def _segment_scalars(
        self,
        job: Job,
        machine: str,
        fraction: float,
        with_overhead: bool,
    ) -> tuple[float, float]:
        """(runtime, energy) of one segment — the single definition both
        the scalar and the batched paths price, so they cannot drift."""
        runtime = job.runtime_s[machine] * fraction
        energy = job.energy_j[machine] * fraction
        if with_overhead:
            runtime += self.overhead_s
            energy += (
                self.machines[machine].idle_watts_per_core
                * job.cores
                * self.overhead_s
            )
        return runtime, energy

    def _segment_record(
        self,
        job: Job,
        machine: str,
        start_s: float,
        fraction: float,
        with_overhead: bool,
    ) -> UsageRecord:
        runtime, energy = self._segment_scalars(
            job, machine, fraction, with_overhead
        )
        return UsageRecord(
            machine=machine,
            duration_s=runtime,
            energy_j=energy,
            cores=job.cores,
            start_time_s=start_s,
        )

    def _charge_segment(
        self,
        state: _Progress,
        fraction: float,
        with_overhead: bool,
    ) -> None:
        """Bill one segment: append it to the deferred ledger (batched)
        or accumulate its cost/energy/carbon immediately (reference)."""
        if self._ledger is not None:
            job = state.job
            machine = state.segment_machine
            runtime, energy = self._segment_scalars(
                job, machine, fraction, with_overhead
            )
            self._ledger.add(
                machine, state.segment_start_s, runtime, energy, job.cores
            )
            self._owners.append(state)
            return
        record = self._segment_record(
            state.job,
            state.segment_machine,
            state.segment_start_s,
            fraction,
            with_overhead,
        )
        pricing = self.pricings[state.segment_machine]
        intensity = self.machines[state.segment_machine].intensity.at(
            state.segment_start_s
        )
        operational = operational_carbon_g(record.energy_j, intensity)
        state.energy_j += record.energy_j
        state.cost += self.method.charge(record, pricing)
        state.operational_g += operational
        state.attributed_g += operational + self._carbon.embodied_charge(
            record, pricing
        )

    def _settle_segments(self) -> None:
        """Price the whole segment ledger and replay the per-job sums.

        ``settle`` returns per-segment values in append order — the same
        chronological order the reference path charges in — so the
        ``+=`` replay below performs the identical sequence of additions
        per job and the accumulated floats match bit for bit.
        """
        ledger = self._ledger
        if ledger is None or not len(ledger):
            return
        cost, operational, attributed = ledger.settle()
        energy = ledger.energy
        cost_l = cost.tolist()
        oper_l = operational.tolist()
        attr_l = attributed.tolist()
        for idx, state in enumerate(self._owners):
            state.energy_j += energy[idx]
            state.cost += cost_l[idx]
            state.operational_g += oper_l[idx]
            state.attributed_g += attr_l[idx]

    def _remaining_cost(
        self, state: _Progress, machine: str, at_s: float, migrating: bool
    ) -> float:
        record = self._segment_record(
            state.job, machine, at_s, state.remaining_fraction, migrating
        )
        return self.method.charge(record, self.pricings[machine])

    # ------------------------------------------------------------------
    # Main loop
    # ------------------------------------------------------------------
    def run(self, workload: Workload) -> SimulationResult:
        clusters = {name: ClusterSim(m) for name, m in self.machines.items()}
        progress = {job.job_id: _Progress(job=job) for job in workload.jobs}
        #: job_id -> runtime its queued continuation needs on its target.
        pending_runtime: dict[int, float] = {}

        kernel: PricingKernel | None = None
        if self.batched:
            kernel = PricingKernel(workload.jobs, self.pricings, self.method)
            self._ledger = SegmentLedger(self.method, self.pricings)
            self._owners = []
            self._quoters = {
                name: self.method.probe_kernel(pricing)
                for name, pricing in self.pricings.items()
            }
        else:
            self._ledger = None
            self._owners = []
            self._quoters = None
        self._kernel = kernel
        static_views = kernel.static_views if kernel is not None else None
        row_of = kernel.row_of if kernel is not None else None

        calendar = EventCalendar(workload.jobs)
        if workload.jobs:
            calendar.schedule_tick(
                workload.jobs[0].submit_s + self.reevaluate_every_s
            )

        #: Finish log: (job_id, end time), in completion order.
        finish_log: list[tuple[int, float]] = []
        active = len(workload.jobs)

        def try_start(cluster: ClusterSim, now: float) -> None:
            for job in cluster.startable(now):
                state = progress[job.job_id]
                if state.first_start_s is None:
                    state.first_start_s = now
                state.segment_start_s = now
                state.segment_machine = cluster.name
                state.is_continuation = job.job_id in pending_runtime
                runtime = pending_runtime.get(
                    job.job_id, job.runtime_s[cluster.name]
                )
                end = now + runtime
                # ClusterSim scheduled the full runtime; continuations
                # carry only their remainder.
                cluster.reschedule_end(job.job_id, end)
                calendar.schedule_finish(end, (cluster.name, job.job_id))

        while calendar and active > 0:
            now, kind, payload = calendar.pop()

            if kind == ARRIVAL:
                job = payload  # type: ignore[assignment]
                if static_views is not None:
                    views = [
                        MachineView(
                            name, rt, en, clusters[name].estimated_wait_s(now), cost
                        )
                        for name, rt, en, cost in static_views[row_of[job.job_id]]
                    ]
                else:
                    views = [
                        MachineView(
                            machine=name,
                            runtime_s=job.runtime_s[name],
                            energy_j=job.energy_j[name],
                            queue_wait_s=clusters[name].estimated_wait_s(now),
                            cost=self.method.charge(
                                self._segment_record(job, name, now, 1.0, False),
                                self.pricings[name],
                            ),
                        )
                        for name in job.eligible_machines
                        if name in clusters
                    ]
                if not views:
                    active -= 1
                    continue
                choice = self.policy.select(job, views)
                clusters[choice].enqueue(job)
                try_start(clusters[choice], now)

            elif kind == FINISH:
                machine_name, job_id = payload  # type: ignore[misc]
                cluster = clusters[machine_name]
                entry = cluster.running.get(job_id)
                if entry is None or abs(entry.end_s - now) > 1e-6:
                    continue  # stale event from a migrated segment
                cluster.finish(job_id)
                state = progress[job_id]
                self._charge_segment(
                    state, state.remaining_fraction, state.is_continuation
                )
                state.remaining_fraction = 0.0
                pending_runtime.pop(job_id, None)
                finish_log.append((job_id, now))
                active -= 1
                try_start(cluster, now)

            else:  # TICK: periodic migration re-evaluation
                moved = self._reevaluate(clusters, progress, pending_runtime, now)
                if moved:
                    for cluster in clusters.values():
                        try_start(cluster, now)
                if active > 0:
                    calendar.schedule_tick(now + self.reevaluate_every_s)

        self._settle_segments()
        self._ledger = None
        self._owners = []
        self._kernel = None
        self._quoters = None
        outcomes = [
            self._outcome(progress[job_id], end_s)
            for job_id, end_s in finish_log
        ]
        return SimulationResult(
            policy=f"{self.policy.name}+migrate",
            method=self.method.name,
            machines=list(self.machines),
            outcomes=outcomes,
        )

    # ------------------------------------------------------------------
    def _reevaluate(
        self,
        clusters: dict[str, ClusterSim],
        progress: dict[int, _Progress],
        pending_runtime: dict[int, float],
        now: float,
    ) -> bool:
        """Preempt-and-requeue any running job with a big enough saving.

        Probes are pure functions of (job, remaining fraction, now), so
        the batched path collects every candidate first, prices all
        stay/move probes through the per-machine probe kernels, and then
        replays the exact decision comparisons of the scalar loop.
        """
        candidates: list[tuple[ClusterSim, int, _Progress, Job, float, float]] = []
        for cluster in clusters.values():
            for job_id, entry in cluster.running.items():
                state = progress[job_id]
                job = state.job
                end_s = entry.end_s
                segment_total = end_s - state.segment_start_s
                if segment_total <= 0 or now >= end_s - 1e-9:
                    continue
                done_of_segment = (now - state.segment_start_s) / segment_total
                if done_of_segment <= 0:
                    continue
                frac_done = state.remaining_fraction * done_of_segment
                remaining = state.remaining_fraction - frac_done
                if remaining <= 0.05:
                    continue  # nearly finished; never worth moving
                candidates.append(
                    (cluster, job_id, state, job, remaining, frac_done)
                )
        if not candidates:
            return False

        if self.batched:
            probe_costs, name_idx = self._probe_costs_indexed(
                clusters, candidates, now
            )
        else:
            probe_costs, name_idx = self._probe_costs_scalar(
                clusters, candidates, now
            )

        moved_any = False
        for k, (cluster, job_id, state, job, remaining, frac_done) in enumerate(
            candidates
        ):
            costs = probe_costs[k]
            stay = costs[name_idx[cluster.name]]
            best_name, best_cost = None, stay
            for name in job.eligible_machines:
                if name == cluster.name or name not in clusters:
                    continue
                cost = costs[name_idx[name]]
                if cost < best_cost:
                    best_name, best_cost = name, cost
            if best_name is None or best_cost > stay * (1.0 - self.min_saving):
                continue

            # Bill the partial segment, release, and requeue.
            self._charge_segment(state, frac_done, state.is_continuation)
            state.remaining_fraction = remaining
            state.migrations += 1
            cluster.finish(job_id)
            pending_runtime[job_id] = (
                job.runtime_s[best_name] * remaining + self.overhead_s
            )
            clusters[best_name].enqueue(job)
            moved_any = True
        return moved_any

    def _probe_costs_scalar(
        self,
        clusters: dict[str, ClusterSim],
        candidates: list[tuple[ClusterSim, int, _Progress, Job, float, float]],
        now: float,
    ) -> tuple[np.ndarray, dict[str, int]]:
        """Reference probe pricing: one ``charge()`` per (job, machine)."""
        name_idx = self._name_idx
        out = np.full((len(candidates), len(name_idx)), np.nan)
        for k, (cluster, _job_id, _state, job, remaining, _frac_done) in enumerate(
            candidates
        ):
            probe = _Progress(
                job=job,
                remaining_fraction=remaining,
                segment_start_s=now,
                segment_machine=cluster.name,
            )
            out[k, name_idx[cluster.name]] = self._remaining_cost(
                probe, cluster.name, now, migrating=False
            )
            for name in job.eligible_machines:
                if name == cluster.name or name not in clusters:
                    continue
                out[k, name_idx[name]] = self._remaining_cost(
                    probe, name, now, migrating=True
                )
        return out, name_idx

    def _probe_costs_indexed(
        self,
        clusters: dict[str, ClusterSim],
        candidates: list[tuple[ClusterSim, int, _Progress, Job, float, float]],
        now: float,
    ) -> tuple[list[list[float]], dict[str, int]]:
        """Probe pricing through the per-machine scalar probe kernels.

        Candidate sets per tick are tiny (the running jobs of a few
        clusters), so fixed-overhead NumPy batches lose to plain float
        arithmetic; the probe kernels hoist every per-machine constant
        and memoize the single trace lookup a tick needs.  Segment
        scalars are composed with :meth:`_segment_scalars`' exact
        association order and the kernels replay ``charge()``'s IEEE
        operations, so probe costs (and therefore migration decisions)
        are bit-identical to the reference path.
        """
        quoters = self._quoters
        name_idx = self._name_idx
        idle_w = self._idle_w
        overhead = self.overhead_s
        nan = float("nan")
        n_machines = len(name_idx)
        out: list[list[float]] = []
        for cluster, _job_id, _state, job, remaining, _frac in candidates:
            row = [nan] * n_machines
            current = cluster.name
            cores = job.cores
            runtimes = job.runtime_s
            energies = job.energy_j
            for name, rt in runtimes.items():
                mi = name_idx.get(name)
                if mi is None or name not in clusters:
                    continue
                runtime = rt * remaining
                energy = energies[name] * remaining
                if name != current:
                    runtime += overhead
                    energy += idle_w[name] * cores * overhead
                row[mi] = quoters[name](runtime, energy, cores, now)
            out.append(row)
        return out, name_idx

    def _outcome(self, state: _Progress, end_s: float) -> JobOutcome:
        job = state.job
        return JobOutcome(
            job_id=job.job_id,
            user=job.user,
            machine=state.segment_machine,
            cores=job.cores,
            submit_s=job.submit_s,
            start_s=(
                state.first_start_s if state.first_start_s is not None else end_s
            ),
            end_s=end_s,
            energy_j=state.energy_j,
            cost=state.cost,
            work_core_hours=job.work_core_hours,
            operational_carbon_g=state.operational_g,
            attributed_carbon_g=state.attributed_g,
        )
