"""Statistical regeneration of the Patel et al. per-job energy dataset.

The paper (§5.2) builds its workload from a published dataset of per-job
energy from two HPC clusters [40]: 71,190 usable jobs, each repeated
twice (142,380 total), where jobs from the same user with the same
requested resources are treated as repetitions of one application.  The
dataset itself is not redistributable here, so this module regenerates a
workload with the same statistical structure:

* **users** with Zipf-distributed activity, each owning a handful of
  recurring application *templates* (same cores, same behaviour);
* **power-of-two core requests**, with 17% of jobs requesting more than
  the 16 cores of the one-node Desktop (the paper's constraint);
* **heavy-tailed runtimes** (log-normal, minutes to many hours);
* **counter signatures per template** drawn from a Gaussian Mixture
  Model fit on synthetic Institutional-Cluster counter data — the
  paper's method of generating "realistic values for hardware
  performance counters";
* **cross-platform extrapolation with a KNN** trained on the benchmark
  applications (§5.2, following Pham et al. [43]): given a template's
  counters, predict per-machine runtime scale and dynamic power.

Everything is driven by one seed; the same seed yields the same 142,380
jobs bit-for-bit.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterator, Sequence

import numpy as np
import numpy.typing as npt

from repro.apps.registry import APP_REGISTRY
from repro.ml.gmm import GaussianMixture
from repro.ml.knn import KNNRegressor
from repro.sim.job import Job
from repro.sim.scenarios import PERF_CURVES, SimMachine


@dataclass(frozen=True)
class WorkloadConfig:
    """Knobs of the workload generator.

    Defaults reproduce the paper's scale; tests and benchmarks shrink
    ``n_base_jobs`` for speed.
    """

    n_base_jobs: int = 71_190
    repeat: int = 2
    n_users: int = 500
    zipf_exponent: float = 1.1
    #: Arrival window over which submissions spread (seconds).
    arrival_window_s: float = 20 * 24 * 3600.0
    #: Median runtime on IC (seconds) and log-normal sigma.
    runtime_median_s: float = 1100.0
    runtime_sigma: float = 1.1
    #: Bounds on runtime (the dataset's jobs run minutes to two days).
    runtime_min_s: float = 30.0
    runtime_max_s: float = 48 * 3600.0
    #: Fraction of jobs that must request more than 16 cores.
    frac_over_16_cores: float = 0.17
    seed: int = 0

    def __post_init__(self) -> None:
        if self.n_base_jobs < 1:
            raise ValueError("need at least one job")
        if self.repeat < 1:
            raise ValueError("repeat must be >= 1")
        if not 0 <= self.frac_over_16_cores < 1:
            raise ValueError("frac_over_16_cores must be in [0, 1)")


@dataclass
class Workload:
    """The generated job list plus provenance."""

    jobs: list[Job]
    config: WorkloadConfig
    machines: list[str]

    def __len__(self) -> int:
        return len(self.jobs)

    @property
    def total_work_core_hours(self) -> float:
        return sum(j.work_core_hours for j in self.jobs)

    def frac_requiring_large_machine(self) -> float:
        """Fraction of jobs that cannot run on the 16-core Desktop."""
        return sum(1 for j in self.jobs if j.cores > 16) / max(1, len(self.jobs))


@dataclass
class StreamingWorkload:
    """A workload delivered as submit-ordered job chunks, never whole.

    The flat-memory counterpart of :class:`Workload`: instead of a job
    list, it carries a *factory* of chunk iterators, so the trace is
    re-parseable (one workload can back several runs) while no consumer
    ever holds more than one chunk of jobs.  The engine's streaming loop
    (:meth:`~repro.sim.engine.MultiClusterSimulator.run`) dispatches on
    this type; chunks must be non-empty lists of jobs whose submit times
    never decrease across the whole stream — producers such as
    :func:`~repro.sim.swf.open_swf_stream` enforce that contract.
    """

    #: Zero-argument callable returning a fresh chunk iterator.
    chunk_factory: Callable[[], Iterator[list[Job]]]
    machines: list[str]
    #: Human-readable provenance (e.g. the trace path).
    source: str = "<stream>"

    def chunks(self) -> Iterator[list[Job]]:
        """A fresh iterator over the job chunks."""
        return self.chunk_factory()


# ---------------------------------------------------------------------------
# Counter model
# ---------------------------------------------------------------------------
#: Float/int/bool column types used throughout this module.
FloatArray = npt.NDArray[np.float64]
IntArray = npt.NDArray[np.int64]
BoolArray = npt.NDArray[np.bool_]


#: Feature space used throughout: (log10 instructions/s/core, log10 MPKI).
def _signature_features(ips: float, mpki: float) -> FloatArray:
    return np.array([np.log10(ips), np.log10(mpki + 1e-3)])


def _memory_intensity(log_mpki: float) -> float:
    """Map log10(MPKI) to the [0, 1] memory-intensity scale the perf
    curves use.  MPKI 0.3 -> ~0 (compute bound); MPKI 30 -> ~1."""
    return float(np.clip((log_mpki - np.log10(0.3)) / 2.0, 0.0, 1.0))


def synthetic_ic_counter_data(
    n: int = 2000, seed: int = 0
) -> FloatArray:
    """Synthetic Institutional-Cluster counter observations.

    Three workload populations (compute-bound, balanced, memory-bound)
    in (log ips/core, log MPKI) space — the data the paper's GMM is
    trained on, regenerated with the same cluster structure the
    benchmark suite exhibits.
    """
    rng = np.random.default_rng(seed)
    weights = np.array([0.4, 0.35, 0.25])
    means = np.array(
        [
            [np.log10(2.8e9), np.log10(0.4)],
            [np.log10(1.8e9), np.log10(5.0)],
            [np.log10(0.9e9), np.log10(18.0)],
        ]
    )
    sds = np.array([[0.12, 0.25], [0.12, 0.25], [0.12, 0.20]])
    counts = rng.multinomial(n, weights)
    chunks = [
        rng.normal(means[k], sds[k], size=(c, 2)) for k, c in enumerate(counts)
    ]
    data = np.vstack(chunks)
    rng.shuffle(data)
    return data


def fit_counter_gmm(n_samples: int = 2000, seed: int = 0) -> GaussianMixture:
    """The §5.2 GMM over IC counter space."""
    data = synthetic_ic_counter_data(n_samples, seed)
    return GaussianMixture(n_components=3, seed=seed).fit(data)


# ---------------------------------------------------------------------------
# Cross-platform KNN
# ---------------------------------------------------------------------------
def build_cross_platform_knn(
    machines: dict[str, SimMachine] | None = None,
    noise_sd: float = 0.06,
    seed: int = 0,
) -> dict[str, KNNRegressor]:
    """Train the per-machine KNN of §5.2.

    Training corpus: the seven benchmark applications' counter
    signatures, with targets (runtime scale vs IC, dynamic W/core)
    evaluated from the calibrated performance curves — i.e. the KNN
    learns (a noisy view of) the machine behaviour the benchmarks
    exhibit, then generalizes it to the workload's counter space.
    """
    rng = np.random.default_rng(seed)
    curves = (
        {name: m.perf for name, m in machines.items()}
        if machines is not None
        else dict(PERF_CURVES)
    )
    feats: list[FloatArray] = []
    mems: list[float] = []
    for profile in APP_REGISTRY.values():
        sig = profile.signature
        feats.append(_signature_features(sig.ips, sig.llc_mpki))
        mems.append(_memory_intensity(float(np.log10(sig.llc_mpki + 1e-3))))
    feats_arr = np.array(feats)

    models: dict[str, KNNRegressor] = {}
    for name, curve in curves.items():
        targets: list[list[float]] = []
        for m in mems:
            scale = curve.runtime_scale(m) * rng.lognormal(0.0, noise_sd)
            dyn = curve.dyn_watts_per_core * rng.lognormal(0.0, noise_sd)
            targets.append([float(scale), float(dyn)])
        knn = KNNRegressor(k=3)
        knn.fit(feats_arr, np.array(targets))
        models[name] = knn
    return models


# ---------------------------------------------------------------------------
# Generator
# ---------------------------------------------------------------------------
class PatelWorkloadGenerator:
    """Generates the §5.2 workload for a set of simulation machines."""

    #: Power-of-two core menu and base weights (before the >16-core
    #: fraction is enforced).
    CORE_MENU = np.array([1, 2, 4, 8, 16, 32, 64, 128])
    SMALL_WEIGHTS = np.array([0.18, 0.20, 0.27, 0.20, 0.15])  # cores <= 16
    LARGE_WEIGHTS = np.array([0.55, 0.33, 0.12])  # cores > 16

    def __init__(
        self,
        machines: dict[str, SimMachine],
        config: WorkloadConfig | None = None,
    ) -> None:
        if not machines:
            raise ValueError("need at least one machine")
        self.machines = machines
        self.config = config or WorkloadConfig()
        self.gmm = fit_counter_gmm(seed=self.config.seed)
        self.knn = build_cross_platform_knn(machines, seed=self.config.seed)

    # ------------------------------------------------------------------
    def _user_weights(self, rng: np.random.Generator) -> FloatArray:
        ranks = np.arange(1, self.config.n_users + 1)
        w = ranks ** (-self.config.zipf_exponent)
        return np.asarray(w / w.sum(), dtype=np.float64)

    def _sample_cores(
        self, rng: np.random.Generator, large: BoolArray
    ) -> IntArray:
        """Core sizes for templates whose >16-core status is ``large``."""
        n = len(large)
        small_idx = rng.choice(5, size=n, p=self.SMALL_WEIGHTS)
        large_idx = 5 + rng.choice(3, size=n, p=self.LARGE_WEIGHTS)
        return np.asarray(
            self.CORE_MENU[np.where(large, large_idx, small_idx)],
            dtype=np.int64,
        )

    def _stratified_large_mask(
        self, rng: np.random.Generator, counts: IntArray
    ) -> BoolArray:
        """Which templates request >16 cores.

        The paper's constraint is on *jobs* ("17% of jobs request more
        than the 16 cores of the Desktop"), but jobs pick (user,
        template) with Zipf-weighted users, so an iid Bernoulli per
        template leaves the realized per-job fraction hostage to the few
        heavy users' template luck (spread ~±0.1 at 500 users).  Each
        template's expected share of jobs is ``w_user / n_templates``;
        marking templates in random order until the marked share reaches
        ``frac_over_16_cores`` (stochastic rounding at the boundary
        keeps it unbiased) pins the job-weighted fraction to the target
        up to a single template's share.
        """
        frac = self.config.frac_over_16_cores
        total = int(counts.sum())
        seg = np.repeat(np.arange(len(counts)), counts)
        job_share = (self._user_weights(rng) / counts)[seg]
        order = rng.permutation(total)
        share = job_share[order]
        reached = np.cumsum(share)
        included = reached <= frac
        boundary = int(np.searchsorted(reached, frac, side="right"))
        if boundary < total:
            overshoot_start = reached[boundary] - share[boundary]
            if rng.random() < (frac - overshoot_start) / share[boundary]:
                included[boundary] = True
        large = np.empty(total, dtype=bool)
        large[order] = included
        return large

    def _make_templates(
        self, rng: np.random.Generator
    ) -> tuple[IntArray, IntArray, FloatArray, FloatArray, FloatArray]:
        """All users' templates as flat arrays.

        Returns ``(counts, cores, base_runtime_s, features, utilization)``
        where ``counts[u]`` is user ``u``'s template count and the flat
        arrays concatenate users in order.  Per-template attributes are
        drawn in one batch per distribution (the GMM shuffles its
        samples, so a single draw split across users is distributionally
        identical to per-user draws).
        """
        cfg = self.config
        counts = 1 + rng.poisson(2, size=cfg.n_users)
        total = int(counts.sum())
        large = self._stratified_large_mask(rng, counts)
        cores = self._sample_cores(rng, large).astype(np.int64)
        counters = self.gmm.sample(total, rng=rng)
        base = np.exp(
            rng.normal(
                np.log(cfg.runtime_median_s),
                cfg.runtime_sigma,
                size=total,
            )
        )
        base = np.clip(base, cfg.runtime_min_s, cfg.runtime_max_s)
        util = rng.uniform(0.55, 0.95, size=total)
        return counts, cores, base, counters, util

    # ------------------------------------------------------------------
    def generate(self) -> Workload:
        """Produce the full workload (fully vectorized numerics).

        Template selection, template-attribute gathers, and the
        per-(job, machine) runtime/energy model are all flat array
        expressions; the only per-job Python left is assembling each
        :class:`~repro.sim.job.Job`'s eligibility dicts from precomputed
        lists.
        """
        cfg = self.config
        rng = np.random.default_rng(cfg.seed + 1)
        tpl_counts, tpl_cores, tpl_base, tpl_feats, tpl_util = (
            self._make_templates(rng)
        )
        user_w = self._user_weights(rng)

        n = cfg.n_base_jobs
        users = rng.choice(cfg.n_users, size=n, p=user_w)
        # Pick each job's template and gather its attributes with flat
        # array indexing: `integers` broadcasts the per-draw upper
        # bound, so the template draw is a single vectorized call.
        tpl_offsets = np.concatenate(([0], np.cumsum(tpl_counts[:-1])))
        tmpl_idx = rng.integers(0, tpl_counts[users])
        gathered = tpl_offsets[users] + tmpl_idx
        cores = tpl_cores[gathered]
        base_rt = tpl_base[gathered]
        feats = tpl_feats[gathered]
        utils = tpl_util[gathered]

        # Cross-platform predictions, one KNN call per machine (vectorized).
        machine_names = list(self.machines)
        pred: dict[str, FloatArray] = {
            name: self.knn[name].predict(feats) for name in machine_names
        }

        # Per-(job, machine) residual noise around the KNN prediction:
        # cross-platform extrapolation is noisy per job, and this spread
        # is what lets energy-aware policies find per-job bargains that
        # performance-aware policies miss (the paper's large policy gaps).
        n_machines = len(machine_names)
        eligible = [
            (cores <= self.machines[name].max_job_cores).tolist()
            for name in machine_names
        ]
        users_l = users.tolist()
        cores_l = cores.tolist()
        jobs: list[Job] = []
        job_id = 0
        for rep in range(cfg.repeat):
            # Each repetition is an independent submission of the same app.
            submit = np.sort(rng.uniform(0, cfg.arrival_window_s, size=n))
            run_noise = rng.lognormal(0.0, 0.25, size=n)
            scale_noise = rng.lognormal(0.0, 0.30, size=(n, n_machines))
            power_noise = rng.lognormal(0.0, 0.20, size=(n, n_machines))
            ic_runtime = base_rt * run_noise
            rt_cols: list[list[float]] = []
            en_cols: list[list[float]] = []
            for mi, name in enumerate(machine_names):
                machine = self.machines[name]
                scale = pred[name][:, 0]
                dyn_w = pred[name][:, 1]
                rt = ic_runtime * scale * scale_noise[:, mi]
                power_per_core = machine.idle_watts_per_core + np.minimum(
                    utils * dyn_w * power_noise[:, mi],
                    machine.tdp_watts_per_core - machine.idle_watts_per_core,
                )
                rt_cols.append(rt.tolist())
                en_cols.append((power_per_core * cores * rt).tolist())
            submit_l = submit.tolist()
            for i in range(n):
                runtimes: dict[str, float] = {}
                energies: dict[str, float] = {}
                for mi, name in enumerate(machine_names):
                    if eligible[mi][i]:
                        runtimes[name] = rt_cols[mi][i]
                        energies[name] = en_cols[mi][i]
                if not runtimes:
                    continue
                jobs.append(
                    Job(
                        job_id=job_id,
                        user=users_l[i],
                        cores=cores_l[i],
                        submit_s=submit_l[i],
                        runtime_s=runtimes,
                        energy_j=energies,
                    )
                )
                job_id += 1

        jobs.sort(key=lambda j: j.submit_s)
        return Workload(jobs=jobs, config=cfg, machines=machine_names)


# ---------------------------------------------------------------------------
# Straggler injection
# ---------------------------------------------------------------------------
# The tiered-fleet scenarios (ROADMAP item 3) model stragglers — jobs
# whose runtime inflates far past their template's prediction — with a
# seeded heavy-tailed (lognormal) multiplier.  The draw is a *pure
# function of (seed, job_id)* built from splitmix64-style integer
# mixing rather than an RNG stream, so injection is order-, chunk- and
# process-invariant: applying it chunk by chunk to a
# :class:`StreamingWorkload` yields bit-identical jobs to applying it
# to the whole workload at once, and spawn-pool workers that re-derive
# the workload see the exact same stragglers.

_U64 = np.uint64
_SPLITMIX_GAMMA = _U64(0x9E3779B97F4A7C15)
_U64_MASK = 0xFFFFFFFFFFFFFFFF


@dataclass(frozen=True)
class StragglerConfig:
    """Knobs of the seeded heavy-tailed straggler model.

    A fraction ``frac`` of jobs (selected by hash, not by position)
    have their runtime — and, power being held, their energy — on
    *every* machine multiplied by ``1 + scale * exp(sigma * z)`` with
    ``z`` a standard normal: a lognormal tail on top of the job's own
    duration, with median extra runtime ``scale`` and tail weight
    ``sigma``.
    """

    frac: float = 0.08
    sigma: float = 1.0
    #: Median *extra* runtime of a straggler, as a multiple of the
    #: job's own (un-inflated) runtime.
    scale: float = 1.0
    seed: int = 0

    def __post_init__(self) -> None:
        if not 0.0 <= self.frac <= 1.0:
            raise ValueError("frac must be in [0, 1]")
        if self.sigma < 0.0:
            raise ValueError("sigma must be >= 0")
        if self.scale <= 0.0:
            raise ValueError("scale must be positive")


def _mix64(x: npt.NDArray[np.uint64]) -> npt.NDArray[np.uint64]:
    """The splitmix64 finalizer, elementwise over uint64 (wrapping)."""
    x = (x ^ (x >> _U64(30))) * _U64(0xBF58476D1CE4E5B9)
    x = (x ^ (x >> _U64(27))) * _U64(0x94D049BB133111EB)
    return x ^ (x >> _U64(31))


def _hash_u01(ids: IntArray, seed: int, stream: int) -> FloatArray:
    """One uniform in (0, 1] per job id, pure in (seed, id, stream)."""
    base = _mix64(
        np.array(
            [(seed & _U64_MASK) + (stream + 1) * 0x9E3779B97F4A7C15 & _U64_MASK],
            dtype=np.uint64,
        )
    )
    x = _mix64(_mix64(ids.astype(np.uint64) * _SPLITMIX_GAMMA ^ base))
    # Top 53 bits -> (0, 1]: never zero, so log() below stays finite.
    return ((x >> _U64(11)).astype(np.float64) + 1.0) * 2.0**-53


def straggler_factors(
    job_ids: IntArray, config: StragglerConfig
) -> FloatArray:
    """Per-job runtime inflation factors, all ``>= 1.0``.

    Pure in ``(config, job_id)``: the same id gets the same factor in
    any order, any chunking, and any process.  Non-stragglers get
    exactly ``1.0`` so un-inflated jobs can be reused untouched.
    """
    ids = np.ascontiguousarray(job_ids, dtype=np.int64)
    factors = np.ones(ids.shape[0], dtype=np.float64)
    if ids.shape[0] == 0 or config.frac == 0.0:
        return factors
    select = _hash_u01(ids, config.seed, 0)
    hit = select < config.frac
    if not bool(hit.any()):
        return factors
    # Box-Muller from two hashed uniforms: one standard normal per job.
    u1 = _hash_u01(ids, config.seed, 1)
    u2 = _hash_u01(ids, config.seed, 2)
    z = np.sqrt(-2.0 * np.log(u1)) * np.cos(2.0 * np.pi * u2)
    tail = 1.0 + config.scale * np.exp(config.sigma * z)
    factors[hit] = tail[hit]
    return factors


def straggler_mask(job_ids: IntArray, config: StragglerConfig) -> BoolArray:
    """True where a job straggles (used by the per-tier metrics)."""
    mask: BoolArray = straggler_factors(job_ids, config) > 1.0
    return mask


def apply_stragglers(
    jobs: Sequence[Job], config: StragglerConfig
) -> list[Job]:
    """Straggler-inflated copies of ``jobs`` (same ids, same order).

    Runtime and energy inflate by the same per-job factor on every
    machine (power held constant while the job drags on); submit times
    and core requests are untouched, so submit ordering is preserved.
    """
    if not jobs:
        return []
    ids = np.fromiter(
        (job.job_id for job in jobs), dtype=np.int64, count=len(jobs)
    )
    factors = straggler_factors(ids, config)
    out: list[Job] = []
    for job, factor in zip(jobs, factors.tolist()):
        if factor == 1.0:
            out.append(job)
            continue
        out.append(
            Job(
                job_id=job.job_id,
                user=job.user,
                cores=job.cores,
                submit_s=job.submit_s,
                runtime_s={m: rt * factor for m, rt in job.runtime_s.items()},
                energy_j={m: en * factor for m, en in job.energy_j.items()},
            )
        )
    return out


def inject_stragglers(workload: Workload, config: StragglerConfig) -> Workload:
    """A straggler-inflated copy of a whole in-memory workload."""
    return Workload(
        jobs=apply_stragglers(workload.jobs, config),
        config=workload.config,
        machines=list(workload.machines),
    )


def straggle_stream(
    stream: StreamingWorkload, config: StragglerConfig
) -> StreamingWorkload:
    """Chunk-wise straggler inflation over a streaming workload.

    Because factors are pure per ``(seed, job_id)``, this is
    bit-identical to inflating the materialized workload, at any chunk
    size — the property the tiered test harness pins.
    """

    def factory() -> Iterator[list[Job]]:
        return (apply_stragglers(chunk, config) for chunk in stream.chunks())

    return StreamingWorkload(
        chunk_factory=factory,
        machines=list(stream.machines),
        source=f"{stream.source} (+stragglers seed={config.seed})",
    )
