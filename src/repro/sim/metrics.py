"""Aggregation of simulation results into the paper's reporting units.

Table 6 reports energy in MWh and carbon in kgCO2e; Fig. 5a reports work
in millions of core-hours under a fixed allocation.  ``summarize``
produces one row of those units per (policy, method) run.

The tiered-fleet study adds two more views (ROADMAP item 3):
:func:`tier_metrics` — per-tier utilization, straggler load, and the
bottleneck tier — and :func:`tier_fairness`, which groups users by the
tier that served most of their work and compares what each group paid
per core-hour of (machine-independent) requested work.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.sim.engine import SimulationResult
from repro.sim.scenarios import SimMachine
from repro.sim.workload import StragglerConfig, straggler_mask
from repro.units import JOULES_PER_KWH


@dataclass(frozen=True)
class PolicySummary:
    """One row of the Table 6 / Fig. 5 reporting."""

    policy: str
    method: str
    jobs_completed: int
    work_core_hours: float
    energy_mwh: float
    operational_carbon_kg: float
    attributed_carbon_kg: float
    makespan_hours: float
    mean_queue_wait_hours: float
    machine_distribution: dict[str, int]

    #: Work completed within the fixed allocation, if a budget was given.
    budget: float | None = None
    work_with_budget_core_hours: float | None = None
    jobs_with_budget: int | None = None


def summarize(result: SimulationResult, budget: float | None = None) -> PolicySummary:
    """Collapse a simulation run into reporting units."""
    work_budget = result.work_with_budget(budget) if budget is not None else None
    jobs_budget = result.jobs_with_budget(budget) if budget is not None else None
    return PolicySummary(
        policy=result.policy,
        method=result.method,
        jobs_completed=result.n_jobs,
        work_core_hours=result.total_work_core_hours(),
        energy_mwh=result.total_energy_j() / JOULES_PER_KWH / 1e3,
        operational_carbon_kg=result.total_operational_carbon_g() / 1e3,
        attributed_carbon_kg=result.total_attributed_carbon_g() / 1e3,
        makespan_hours=result.makespan_s / 3600.0,
        mean_queue_wait_hours=result.mean_queue_wait_s() / 3600.0,
        machine_distribution=result.machine_distribution(),
        budget=budget,
        work_with_budget_core_hours=work_budget,
        jobs_with_budget=jobs_budget,
    )


def format_summaries(rows: list[PolicySummary]) -> str:
    """Fixed-width text table over several policy summaries."""
    header = (
        f"{'Policy':<10}{'Jobs':>9}{'Work(Mh)':>10}{'Energy(MWh)':>13}"
        f"{'OpC(kg)':>10}{'AttC(kg)':>10}{'Makespan(h)':>13}"
    )
    lines = [header, "-" * len(header)]
    for r in rows:
        work = (
            r.work_with_budget_core_hours
            if r.work_with_budget_core_hours is not None
            else r.work_core_hours
        )
        lines.append(
            f"{r.policy:<10}{r.jobs_completed:>9}{work / 1e6:>10.3f}"
            f"{r.energy_mwh:>13.1f}{r.operational_carbon_kg:>10.1f}"
            f"{r.attributed_carbon_kg:>10.1f}{r.makespan_hours:>13.1f}"
        )
    return "\n".join(lines)


# ---------------------------------------------------------------------------
# Tiered-fleet views
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class TierMetrics:
    """One tier's (machine's) share of a tiered-fleet run."""

    machine: str
    jobs: int
    straggler_jobs: int
    #: Served core-hours: cores x wall duration, per tier.
    core_hours: float
    straggler_core_hours: float
    #: Served core-hours over (tier cores x fleet makespan).
    utilization: float
    mean_queue_wait_h: float
    cost: float
    #: True for the tier with the worst mean queue wait (among tiers
    #: that served any jobs) — the fleet's current bottleneck.
    bottleneck: bool


def tier_metrics(
    result: SimulationResult,
    machines: dict[str, SimMachine],
    straggler: StragglerConfig | None = None,
) -> list[TierMetrics]:
    """Per-tier utilization / straggler / bottleneck metrics.

    Works block-wise over ``result.iter_tables()`` so streamed results
    aggregate without materializing.  ``straggler`` (the config the
    workload was inflated with) re-derives the straggler set from job
    ids — injection is a pure function of ``(seed, job_id)``, so no
    side channel is needed.
    """
    agg: dict[str, list[float]] = {
        name: [0.0, 0.0, 0.0, 0.0, 0.0, 0.0] for name in machines
    }  # jobs, core_s, wait_s, cost, straggler_jobs, straggler_core_s
    for table in result.iter_tables():
        n_m = len(table.machines)
        code = table.machine_code
        dur_core_s = table.cores * (table.end_s - table.start_s)
        jobs_b = np.bincount(code, minlength=n_m)
        core_b = np.bincount(code, weights=dur_core_s, minlength=n_m)
        wait_b = np.bincount(
            code, weights=table.start_s - table.submit_s, minlength=n_m
        )
        cost_b = np.bincount(code, weights=table.cost, minlength=n_m)
        if straggler is not None:
            hit = straggler_mask(table.job_id, straggler)
            s_jobs_b = np.bincount(code[hit], minlength=n_m)
            s_core_b = np.bincount(
                code[hit], weights=dur_core_s[hit], minlength=n_m
            )
        else:
            s_jobs_b = np.zeros(n_m)
            s_core_b = np.zeros(n_m)
        for i, name in enumerate(table.machines):
            acc = agg.setdefault(name, [0.0] * 6)
            acc[0] += float(jobs_b[i])
            acc[1] += float(core_b[i])
            acc[2] += float(wait_b[i])
            acc[3] += float(cost_b[i])
            acc[4] += float(s_jobs_b[i])
            acc[5] += float(s_core_b[i])

    makespan_s = result.makespan_s
    waits = {
        name: acc[2] / acc[0] for name, acc in agg.items() if acc[0] > 0
    }
    worst = max(waits, key=lambda name: waits[name]) if waits else None
    rows: list[TierMetrics] = []
    for name, acc in agg.items():
        jobs = int(acc[0])
        cores = machines[name].total_cores if name in machines else 0
        capacity_core_s = cores * makespan_s
        rows.append(
            TierMetrics(
                machine=name,
                jobs=jobs,
                straggler_jobs=int(acc[4]),
                core_hours=acc[1] / 3600.0,
                straggler_core_hours=acc[5] / 3600.0,
                utilization=(
                    acc[1] / capacity_core_s if capacity_core_s > 0 else 0.0
                ),
                mean_queue_wait_h=(acc[2] / jobs / 3600.0 if jobs else 0.0),
                cost=acc[3],
                bottleneck=name == worst,
            )
        )
    return rows


@dataclass(frozen=True)
class TierFairness:
    """Charge intensity of the users a tier predominantly served.

    ``cost_per_core_hour`` divides each user's total charge by their
    *machine-independent* requested work (``work_core_hours``), so a
    slow tier doesn't look expensive merely for being slow — only for
    being charged more per unit of the same work.
    """

    machine: str
    users: int
    mean_cost_per_core_hour: float
    min_cost_per_core_hour: float
    max_cost_per_core_hour: float


def tier_fairness(result: SimulationResult) -> list[TierFairness]:
    """Group users by dominant tier and compare charge intensities.

    A user's dominant tier is the machine that served the most of their
    work.  Returns one row per tier that dominates at least one user,
    in ``result.machines`` order.
    """
    tables = list(result.iter_tables())
    names = result.machines
    user = np.concatenate([t.user for t in tables])
    if user.size == 0:
        return []
    code = np.concatenate([t.machine_code for t in tables])
    cost = np.concatenate([t.cost for t in tables])
    work = np.concatenate([t.work_core_hours for t in tables])
    for t in tables:
        if list(t.machines) != list(names):
            raise ValueError("inconsistent machine coding across blocks")

    users, uidx = np.unique(user, return_inverse=True)
    work_um = np.zeros((len(users), len(names)))
    np.add.at(work_um, (uidx, code), work)
    dominant = work_um.argmax(axis=1)
    cost_u = np.bincount(uidx, weights=cost, minlength=len(users))
    work_u = np.bincount(uidx, weights=work, minlength=len(users))
    intensity = cost_u / np.maximum(work_u, 1e-300)

    rows: list[TierFairness] = []
    for mi, name in enumerate(names):
        sel = dominant == mi
        if not bool(sel.any()):
            continue
        vals = intensity[sel]
        rows.append(
            TierFairness(
                machine=name,
                users=int(sel.sum()),
                mean_cost_per_core_hour=float(vals.mean()),
                min_cost_per_core_hour=float(vals.min()),
                max_cost_per_core_hour=float(vals.max()),
            )
        )
    return rows
