"""Aggregation of simulation results into the paper's reporting units.

Table 6 reports energy in MWh and carbon in kgCO2e; Fig. 5a reports work
in millions of core-hours under a fixed allocation.  ``summarize``
produces one row of those units per (policy, method) run.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.sim.engine import SimulationResult
from repro.units import JOULES_PER_KWH


@dataclass(frozen=True)
class PolicySummary:
    """One row of the Table 6 / Fig. 5 reporting."""

    policy: str
    method: str
    jobs_completed: int
    work_core_hours: float
    energy_mwh: float
    operational_carbon_kg: float
    attributed_carbon_kg: float
    makespan_hours: float
    mean_queue_wait_hours: float
    machine_distribution: dict[str, int]

    #: Work completed within the fixed allocation, if a budget was given.
    budget: float | None = None
    work_with_budget_core_hours: float | None = None
    jobs_with_budget: int | None = None


def summarize(result: SimulationResult, budget: float | None = None) -> PolicySummary:
    """Collapse a simulation run into reporting units."""
    work_budget = result.work_with_budget(budget) if budget is not None else None
    jobs_budget = result.jobs_with_budget(budget) if budget is not None else None
    return PolicySummary(
        policy=result.policy,
        method=result.method,
        jobs_completed=result.n_jobs,
        work_core_hours=result.total_work_core_hours(),
        energy_mwh=result.total_energy_j() / JOULES_PER_KWH / 1e3,
        operational_carbon_kg=result.total_operational_carbon_g() / 1e3,
        attributed_carbon_kg=result.total_attributed_carbon_g() / 1e3,
        makespan_hours=result.makespan_s / 3600.0,
        mean_queue_wait_hours=result.mean_queue_wait_s() / 3600.0,
        machine_distribution=result.machine_distribution(),
        budget=budget,
        work_with_budget_core_hours=work_budget,
        jobs_with_budget=jobs_budget,
    )


def format_summaries(rows: list[PolicySummary]) -> str:
    """Fixed-width text table over several policy summaries."""
    header = (
        f"{'Policy':<10}{'Jobs':>9}{'Work(Mh)':>10}{'Energy(MWh)':>13}"
        f"{'OpC(kg)':>10}{'AttC(kg)':>10}{'Makespan(h)':>13}"
    )
    lines = [header, "-" * len(header)]
    for r in rows:
        work = (
            r.work_with_budget_core_hours
            if r.work_with_budget_core_hours is not None
            else r.work_core_hours
        )
        lines.append(
            f"{r.policy:<10}{r.jobs_completed:>9}{work / 1e6:>10.3f}"
            f"{r.energy_mwh:>13.1f}{r.operational_carbon_kg:>10.1f}"
            f"{r.attributed_carbon_kg:>10.1f}{r.makespan_hours:>13.1f}"
        )
    return "\n".join(lines)
