"""The simulated job model.

A job carries its cross-platform execution profile: per-machine runtime
and energy as extrapolated by the GMM + KNN pipeline (§5.2).  ``work``
is the paper's machine-neutral progress metric — "the average number of
core hours required to run a job across all machines", which weights
larger and longer jobs more without favouring any one machine.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.units import SECONDS_PER_HOUR


@dataclass(slots=True)
class Job:
    """One schedulable job.

    Attributes
    ----------
    job_id:
        Dense integer id.
    user:
        Integer user id (drives the one-running-job-per-cluster rule).
    cores:
        Cores requested (the same on every machine).
    submit_s:
        Submission time (seconds from simulation start).
    runtime_s:
        Machine name -> predicted runtime.  Machines the job cannot use
        (e.g. Desktop for >16-core jobs) are simply absent.
    energy_j:
        Machine name -> predicted energy (idle share + dynamic), joules.
    """

    job_id: int
    user: int
    cores: int
    submit_s: float
    runtime_s: dict[str, float]
    energy_j: dict[str, float]
    #: Lazily cached work metric (the engine reads it once per outcome).
    _work_core_hours: float | None = field(
        default=None, init=False, repr=False, compare=False
    )

    def __post_init__(self) -> None:
        if self.cores <= 0:
            raise ValueError("cores must be positive")
        if not self.runtime_s:
            raise ValueError(f"job {self.job_id} can run nowhere")
        if set(self.runtime_s) != set(self.energy_j):
            raise ValueError("runtime and energy machine sets differ")

    @property
    def eligible_machines(self) -> list[str]:
        return list(self.runtime_s)

    @property
    def work_core_hours(self) -> float:
        """Machine-averaged core-hours (the paper's work metric)."""
        if self._work_core_hours is None:
            # Plain sum is bit-identical to np.mean for these short
            # sequential reductions and an order of magnitude cheaper.
            values = self.runtime_s.values()
            mean_runtime = sum(values) / len(values)
            self._work_core_hours = self.cores * mean_runtime / SECONDS_PER_HOUR
        return self._work_core_hours

    def core_seconds_on(self, machine: str) -> float:
        return self.cores * self.runtime_s[machine]


@dataclass(slots=True)
class JobOutcome:
    """What happened to one job in a simulation run."""

    job_id: int
    user: int
    machine: str
    cores: int
    submit_s: float
    start_s: float
    end_s: float
    energy_j: float
    cost: float
    work_core_hours: float
    operational_carbon_g: float = 0.0
    attributed_carbon_g: float = 0.0

    @property
    def queue_wait_s(self) -> float:
        return self.start_s - self.submit_s

    @property
    def runtime_s(self) -> float:
        return self.end_s - self.start_s

