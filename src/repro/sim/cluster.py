"""Per-machine queue and capacity model.

Each machine runs an FCFS queue with conservative backfill: the head job
starts as soon as enough cores are free; jobs behind a blocked head may
start only if they fit in the currently free cores (no reservation),
scanning a bounded window so scheduling stays O(window).

The queue is an **indexed ready-queue**
(:class:`~repro.sim.events.ReadyQueue`): between scans, every job in the
backfill window sits in a blocked bucket keyed by (min free cores
needed, blocking user), so the events that dominate a saturated run — a
finish that frees too few cores to admit anyone, an arrival that lands
behind a blocked window — are answered in O(1) instead of rescanning
the window.  A real scan runs only when the index says some job may
actually start, and the scan is the seed's exact bounded FCFS+backfill
loop, so start decisions are bit-identical to always rescanning.

Three machine-specific rules live here:

* **one running job per user per cluster** (§5.3) — queued jobs whose
  user already runs on this cluster are skipped until that job ends;
* **per-machine concurrency caps** (the tiered fleets' worker-slot
  limits): when ``SimMachine.max_concurrent_jobs`` is set, at most that
  many jobs run at once regardless of free cores.  Cap-blocked jobs
  stay in the window, and because the ready-queue index never learns
  about the cap, ``reindex`` keeps the queue marked scan-needed while a
  cores-and-user-startable job waits on a slot — so the next finish
  rescans and no start is ever missed;
* **queue-time estimation** for the EFT/Mixed policies: expected wait is
  the committed core-seconds (running remainders + queued demand)
  divided by total capacity — the standard backlog heuristic.  Running
  jobs count only their *remaining* core-seconds at the query time
  (tracked incrementally as ``sum(cores * end) - now * sum(cores)``),
  not their full runtime, so the backlog estimate decays as work
  progresses instead of overstating busy machines until jobs finish.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

from repro.sim.events import ReadyQueue
from repro.sim.job import Job
from repro.sim.scenarios import SimMachine


@dataclass(slots=True)
class _Running:
    job: Job
    end_s: float


class ClusterSim:
    """Queue + capacity state of one machine inside the simulator."""

    __slots__ = (
        "machine",
        "backfill_window",
        "name",
        "total_cores",
        "_capacity",
        "free_cores",
        "_ready",
        "running",
        "_busy_users",
        "_queued_core_s",
        "_running_cores",
        "_running_end_core_s",
        "max_concurrent",
    )

    def __init__(self, machine: SimMachine, backfill_window: int = 64) -> None:
        if backfill_window < 1:
            raise ValueError("backfill window must be >= 1")
        self.machine = machine
        self.backfill_window = backfill_window
        # Cached off the property chain (machine.node.cores * node_count):
        # the hot loop reads these tens of thousands of times per run.
        self.name: str = machine.name
        self.total_cores: int = machine.total_cores
        self._capacity: int = max(1, self.total_cores)
        self.free_cores = self.total_cores
        self._ready = ReadyQueue(backfill_window)
        self.running: dict[int, _Running] = {}
        self._busy_users: set[int] = set()
        #: Committed core-seconds, split so running work can decay:
        #: queued demand is a plain sum; running remainders at time t are
        #: sum(cores * end_s) - t * sum(cores), maintained incrementally.
        self._queued_core_s = 0.0
        self._running_cores = 0
        self._running_end_core_s = 0.0
        #: Worker-slot cap (None = uncapped, the paper's machines).
        self.max_concurrent: int | None = machine.max_concurrent_jobs
        if self.max_concurrent is not None and self.max_concurrent < 1:
            raise ValueError("max_concurrent_jobs must be >= 1")

    # ------------------------------------------------------------------
    @property
    def queue(self) -> deque[Job]:
        """The pending-job deque (first ``backfill_window`` = the window).

        A *read-only view*: mutating it directly bypasses the ready
        queue's blocked-bucket index and can leave startable jobs
        stranded — always add work through :meth:`enqueue`.
        """
        return self._ready.jobs

    @property
    def queue_length(self) -> int:
        return len(self._ready)

    def user_busy(self, user: int) -> bool:
        return user in self._busy_users

    def estimated_wait_s(self, now: float) -> float:
        """Backlog heuristic: committed core-seconds over capacity.

        Committed work is the queued demand plus what running jobs still
        have left at ``now`` — a job started long ago contributes only
        its remainder, so the estimate no longer overstates machines
        whose work is nearly done.  ``now`` is required because the
        remainders are tracked against absolute end times; querying
        with a stale clock silently inflates the estimate.
        """
        committed = self._queued_core_s + (
            self._running_end_core_s - now * self._running_cores
        )
        return committed / self._capacity if committed > 0.0 else 0.0

    # ------------------------------------------------------------------
    def enqueue(self, job: Job) -> None:
        runtime = job.runtime_s.get(self.name)
        if runtime is None:
            raise ValueError(
                f"job {job.job_id} is not eligible on {self.name!r}"
            )
        self._ready.push(job, self.free_cores, self._busy_users)
        self._queued_core_s += job.cores * runtime

    def startable(self, now: float) -> list[Job]:
        """Pop every job that can start right now (FCFS + backfill).

        The indexed fast path: when the ready-queue's blocked buckets
        prove no window job changed state since the last scan, return
        without touching the queue.  Otherwise run the seed's exact
        bounded scan and reclassify the window under the post-scan
        state.
        """
        ready = self._ready
        if not ready.jobs or self.free_cores <= 0:
            return []
        cap = self.max_concurrent
        if cap is not None and len(self.running) >= cap:
            # Every slot is taken: nothing can start, and the queue's
            # scan-needed flag stays set for the finish that frees one.
            return []
        if not ready.scan_needed():
            return []
        started: list[Job] = []
        scanned = 0
        queue = ready.jobs
        remaining: deque[Job] = deque()
        busy = self._busy_users
        while queue and scanned < self.backfill_window:
            job = queue.popleft()
            scanned += 1
            if (
                job.cores <= self.free_cores
                and job.user not in busy
                and (cap is None or len(self.running) < cap)
            ):
                self._start(job, now)
                started.append(job)
            else:
                remaining.append(job)
        # Re-attach the unstarted (order-preserved) prefix before the
        # unscanned tail, then rebuild the blocked buckets.  When nothing
        # was left behind, ``queue`` (popped in place) is already the
        # residual deque.
        if remaining:
            remaining.extend(queue)
            ready.jobs = remaining
        ready.reindex(self.free_cores, busy)
        return started

    def _start(self, job: Job, now: float) -> None:
        self.free_cores -= job.cores
        if self.free_cores < 0:
            raise RuntimeError(
                f"over-allocated {self.name}: free cores {self.free_cores}"
            )
        runtime = job.runtime_s[self.name]
        end = now + runtime
        self.running[job.job_id] = _Running(job=job, end_s=end)
        self._busy_users.add(job.user)
        self._queued_core_s -= job.cores * runtime
        self._running_cores += job.cores
        self._running_end_core_s += job.cores * end

    def finish(self, job_id: int) -> Job:
        """Release a running job's resources; returns the job."""
        entry = self.running.pop(job_id)
        job = entry.job
        self.free_cores += job.cores
        self._running_cores -= job.cores
        self._running_end_core_s -= job.cores * entry.end_s
        # The user may have exactly one job here, so membership is safe
        # to clear unconditionally.
        self._busy_users.discard(job.user)
        self._ready.note_release(job.user, self.free_cores)
        return job

    def reschedule_end(self, job_id: int, end_s: float) -> None:
        """Move a running job's finish time (migration continuations
        carry only their remaining runtime), keeping the committed
        remainder accounting consistent."""
        entry = self.running[job_id]
        self._running_end_core_s += entry.job.cores * (end_s - entry.end_s)
        entry.end_s = end_s

    def end_time_of(self, job_id: int) -> float:
        return self.running[job_id].end_s

    @property
    def utilization(self) -> float:
        """Currently busy fraction of cores."""
        total = self.total_cores
        return (total - self.free_cores) / total if total else 0.0
