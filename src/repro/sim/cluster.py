"""Per-machine queue and capacity model.

Each machine runs an FCFS queue with conservative backfill: the head job
starts as soon as enough cores are free; jobs behind a blocked head may
start only if they fit in the currently free cores (no reservation),
scanning a bounded window so scheduling stays O(window).

Two paper-specific rules live here:

* **one running job per user per cluster** (§5.3) — queued jobs whose
  user already runs on this cluster are skipped until that job ends;
* **queue-time estimation** for the EFT/Mixed policies: expected wait is
  the committed core-seconds (running remainders + queued demand)
  divided by total capacity — the standard backlog heuristic.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

from repro.sim.job import Job
from repro.sim.scenarios import SimMachine


@dataclass(slots=True)
class _Running:
    job: Job
    end_s: float


class ClusterSim:
    """Queue + capacity state of one machine inside the simulator."""

    def __init__(self, machine: SimMachine, backfill_window: int = 64) -> None:
        if backfill_window < 1:
            raise ValueError("backfill window must be >= 1")
        self.machine = machine
        self.backfill_window = backfill_window
        # Cached off the property chain (machine.node.cores * node_count):
        # the hot loop reads these tens of thousands of times per run.
        self.name: str = machine.name
        self.total_cores: int = machine.total_cores
        self._capacity: int = max(1, self.total_cores)
        self.free_cores = self.total_cores
        self.queue: deque[Job] = deque()
        self.running: dict[int, _Running] = {}
        self._busy_users: set[int] = set()
        self._committed_core_s = 0.0

    # ------------------------------------------------------------------
    @property
    def queue_length(self) -> int:
        return len(self.queue)

    def user_busy(self, user: int) -> bool:
        return user in self._busy_users

    def estimated_wait_s(self) -> float:
        """Backlog heuristic: committed core-seconds over capacity."""
        return self._committed_core_s / self._capacity

    # ------------------------------------------------------------------
    def enqueue(self, job: Job) -> None:
        runtime = job.runtime_s.get(self.name)
        if runtime is None:
            raise ValueError(
                f"job {job.job_id} is not eligible on {self.name!r}"
            )
        self.queue.append(job)
        self._committed_core_s += job.cores * runtime

    def startable(self, now: float) -> list[Job]:
        """Pop every job that can start right now (FCFS + backfill)."""
        if not self.queue or self.free_cores <= 0:
            return []
        started: list[Job] = []
        scanned = 0
        remaining: deque[Job] = deque()
        busy = self._busy_users
        while self.queue and scanned < self.backfill_window:
            job = self.queue.popleft()
            scanned += 1
            if job.cores <= self.free_cores and job.user not in busy:
                self._start(job, now)
                started.append(job)
            else:
                remaining.append(job)
        # Re-attach the unstarted (order-preserved) prefix before the
        # unscanned tail.
        self.queue = remaining + self.queue
        return started

    def _start(self, job: Job, now: float) -> None:
        self.free_cores -= job.cores
        if self.free_cores < 0:
            raise RuntimeError(
                f"over-allocated {self.name}: free cores {self.free_cores}"
            )
        end = now + job.runtime_s[self.name]
        self.running[job.job_id] = _Running(job=job, end_s=end)
        self._busy_users.add(job.user)

    def finish(self, job_id: int) -> Job:
        """Release a running job's resources; returns the job."""
        entry = self.running.pop(job_id)
        job = entry.job
        self.free_cores += job.cores
        self._committed_core_s = max(
            0.0, self._committed_core_s - job.cores * job.runtime_s[self.name]
        )
        # The user may have exactly one job here, so membership is safe
        # to clear unconditionally.
        self._busy_users.discard(job.user)
        return job

    def end_time_of(self, job_id: int) -> float:
        return self.running[job_id].end_s

    @property
    def utilization(self) -> float:
        """Currently busy fraction of cores."""
        total = self.total_cores
        return (total - self.free_cores) / total if total else 0.0
