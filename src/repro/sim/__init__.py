"""Multi-machine batch simulator (paper §5).

The paper modifies an existing batch simulator [22] to charge jobs under
EBA/CBA across four machines (Table 5), replaying a published per-job
energy dataset [40].  This package rebuilds that pipeline:

* :mod:`repro.sim.job` — the job model;
* :mod:`repro.sim.workload` — a statistical regeneration of the Patel
  et al. dataset (71,190 unique jobs, each repeated twice) with the
  paper's GMM + KNN cross-platform extrapolation (§5.2);
* :mod:`repro.sim.cluster` — per-machine FCFS queues with backfill and
  the one-running-job-per-user-per-cluster constraint;
* :mod:`repro.sim.events` — the shared event-scheduling core: one
  ``(time, kind, seq)`` calendar for every simulator and the indexed
  ready-queue behind the cluster scan;
* :mod:`repro.sim.policies` — the eight machine-selection policies
  (§5.3);
* :mod:`repro.sim.engine` — the event-driven simulation loop with
  vectorized batch pricing;
* :mod:`repro.sim.sweep` — the parallel (scenario x policy x method x
  seed) sweep engine;
* :mod:`repro.sim.metrics` — work/energy/carbon aggregation;
* :mod:`repro.sim.scenarios` — baseline (Table 5 grids) and low-carbon
  (§5.6) machine/grid configurations.
"""

from repro.sim.job import Job, JobOutcome
from repro.sim.workload import (
    WorkloadConfig,
    PatelWorkloadGenerator,
    StreamingWorkload,
    Workload,
)
from repro.sim.cluster import ClusterSim
from repro.sim.events import EventCalendar, ReadyQueue
from repro.sim.policies import (
    Policy,
    GreedyPolicy,
    EnergyPolicy,
    MixedPolicy,
    EFTPolicy,
    RuntimePolicy,
    FixedMachinePolicy,
    standard_policies,
)
from repro.sim.engine import (
    MultiClusterSimulator,
    SimulationResult,
    StreamingSimulationResult,
)
from repro.sim.sweep import SweepRunner, SweepTask, sweep_grid
from repro.sim.metrics import PolicySummary, summarize
from repro.sim.scenarios import (
    SimMachine,
    baseline_scenario,
    low_carbon_scenario,
)
from repro.sim.shifting import (
    ShiftPlan,
    ShiftingSimulator,
    TemporalShiftPlanner,
)
from repro.sim.migration import MigratingSimulator
from repro.sim.swf import open_swf_stream, read_swf, write_swf

__all__ = [
    "Job",
    "JobOutcome",
    "WorkloadConfig",
    "PatelWorkloadGenerator",
    "StreamingWorkload",
    "Workload",
    "ClusterSim",
    "EventCalendar",
    "ReadyQueue",
    "Policy",
    "GreedyPolicy",
    "EnergyPolicy",
    "MixedPolicy",
    "EFTPolicy",
    "RuntimePolicy",
    "FixedMachinePolicy",
    "standard_policies",
    "MultiClusterSimulator",
    "SimulationResult",
    "SweepRunner",
    "SweepTask",
    "sweep_grid",
    "PolicySummary",
    "summarize",
    "SimMachine",
    "baseline_scenario",
    "low_carbon_scenario",
    "ShiftPlan",
    "ShiftingSimulator",
    "TemporalShiftPlanner",
    "MigratingSimulator",
    "StreamingSimulationResult",
    "open_swf_stream",
    "read_swf",
    "write_swf",
]
