"""Unit conversion helpers used throughout :mod:`repro`.

Internal conventions (see DESIGN.md §6):

* **energy** is carried in **joules** (J),
* **power** in **watts** (W),
* **carbon** in **grams of CO2-equivalent** (gCO2e),
* **carbon intensity** in **gCO2e per kWh**,
* **work** in **core-hours**,
* **time** in **seconds** unless a name says otherwise.

These helpers exist so that the conversion constants live in exactly one
place; the accounting and simulation code never hard-codes ``3.6e6``.
"""

from __future__ import annotations

#: Number of joules in one watt-hour.
JOULES_PER_WH: float = 3600.0

#: Number of joules in one kilowatt-hour.
JOULES_PER_KWH: float = 3.6e6

#: Seconds in one hour.
SECONDS_PER_HOUR: float = 3600.0

#: Hours in one (non-leap) year; the paper's carbon-rate divisor ``24*365``.
HOURS_PER_YEAR: float = 24.0 * 365.0

#: Seconds in one (non-leap) year.
SECONDS_PER_YEAR: float = HOURS_PER_YEAR * SECONDS_PER_HOUR


def joules_to_kwh(joules: float) -> float:
    """Convert joules to kilowatt-hours."""
    return joules / JOULES_PER_KWH


def kwh_to_joules(kwh: float) -> float:
    """Convert kilowatt-hours to joules."""
    return kwh * JOULES_PER_KWH


def joules_to_wh(joules: float) -> float:
    """Convert joules to watt-hours."""
    return joules / JOULES_PER_WH


def wh_to_joules(wh: float) -> float:
    """Convert watt-hours to joules."""
    return wh * JOULES_PER_WH


def watts_over_seconds_to_joules(watts: float, seconds: float) -> float:
    """Energy (J) of a constant ``watts`` draw sustained for ``seconds``."""
    return watts * seconds


def seconds_to_hours(seconds: float) -> float:
    """Convert seconds to hours."""
    return seconds / SECONDS_PER_HOUR


def hours_to_seconds(hours: float) -> float:
    """Convert hours to seconds."""
    return hours * SECONDS_PER_HOUR


def core_hours(cores: int | float, seconds: float) -> float:
    """Core-hours consumed by ``cores`` cores busy for ``seconds`` seconds."""
    return cores * seconds / SECONDS_PER_HOUR


def operational_carbon_g(energy_joules: float, intensity_g_per_kwh: float) -> float:
    """Operational carbon (gCO2e) of ``energy_joules`` at a given grid intensity.

    This is the first term of the paper's Eq. (2): ``e_j * I_f(t)`` with
    ``e_j`` expressed in kWh.
    """
    return joules_to_kwh(energy_joules) * intensity_g_per_kwh


def grams_to_kg(grams: float) -> float:
    """Convert grams to kilograms."""
    return grams / 1e3


def grams_to_mg(grams: float) -> float:
    """Convert grams to milligrams."""
    return grams * 1e3
