"""Fig. 9: user-study outcomes by game version.

* **9a** — total energy per instance by version (V3 significantly lower;
  V1 vs V2 indistinguishable);
* **9b** — jobs completed by version (V3 lower);
* **9c** — energy stratified by jobs completed (V3 lower at equal
  output).
"""

from __future__ import annotations

from functools import lru_cache

import numpy as np

from repro.study.analysis import (
    StudyResults,
    energy_by_version,
    energy_stratified_by_jobs,
    jobs_completed_by_version,
    run_study,
    v3_energy_ttests,
)


@lru_cache(maxsize=2)
def study(n_users: int = 90, seed: int = 11) -> StudyResults:
    return run_study(n_users=n_users, seed=seed)


def run(n_users: int = 90, seed: int = 11) -> dict[str, object]:
    """All Fig. 9 aggregates in one structure."""
    results = study(n_users, seed)
    return {
        "energy": energy_by_version(results),
        "jobs": jobs_completed_by_version(results),
        "stratified": energy_stratified_by_jobs(results),
        "ttests": v3_energy_ttests(results),
        "n_instances": len(results),
    }


def format_report(n_users: int = 90, seed: int = 11) -> str:
    data = run(n_users, seed)
    energy = data["energy"]
    jobs = data["jobs"]
    lines = [f"Fig. 9: user study ({data['n_instances']} retained instances)"]
    for v in (1, 2, 3):
        lines.append(
            f"  V{v}: n={len(energy[v]):3d}  energy={np.mean(energy[v]):7.2f} kWh"
            f"  jobs={np.mean(jobs[v]):5.1f}"
        )
    t = data["ttests"]
    lines.append(
        f"  t-tests: V3-vs-V1 p={t['v3_vs_v1']:.4f}, V3-vs-V2 p={t['v3_vs_v2']:.4f},"
        f" V1-vs-V2 p={t['v1_vs_v2']:.4f}"
    )
    lines.append("  (paper: V3 lower with p=0.00; V1 vs V2 not significant)")
    lines.append("")
    lines.append("Fig. 9c: mean energy by jobs-completed bin")
    for v, row in data["stratified"].items():
        cells = "  ".join(f"{k}:{x:6.2f}" for k, x in row.items())
        lines.append(f"  V{v}: {cells}")
    return "\n".join(lines)


if __name__ == "__main__":  # pragma: no cover
    print(format_report())
