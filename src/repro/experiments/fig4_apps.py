"""Fig. 4: runtime and energy of seven applications on four CPU nodes.

The paper's point is qualitative: machines trade off differently per
application — the fastest node is frequently not the most efficient.
``run`` returns the full (app, machine) grid; ``tradeoff_summary``
computes, per application, the fastest and the most efficient machine.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.apps.registry import APP_REGISTRY, CPU_APP_NAMES


@dataclass(frozen=True)
class AppRow:
    app: str
    machine: str
    runtime_s: float
    energy_j: float


def run() -> list[AppRow]:
    """All (application, machine) measurements, Fig. 4's data."""
    rows = []
    for app in CPU_APP_NAMES:
        profile = APP_REGISTRY[app]
        for machine, r in profile.runs.items():
            rows.append(
                AppRow(
                    app=app,
                    machine=machine,
                    runtime_s=r.runtime_s,
                    energy_j=r.energy_j,
                )
            )
    return rows


def tradeoff_summary() -> dict[str, dict[str, str]]:
    """Per app: which machine wins on time and which on energy."""
    out = {}
    for app in CPU_APP_NAMES:
        profile = APP_REGISTRY[app]
        out[app] = {
            "fastest": profile.fastest_machine(),
            "most_efficient": profile.most_efficient_machine(),
        }
    return out


def format_table() -> str:
    run()  # warm the per-app profiles the loop below reads
    machines = list(APP_REGISTRY[CPU_APP_NAMES[0]].runs)
    lines = ["Fig. 4: runtime (s) / energy (J) per application and node", ""]
    header = f"{'App':<10}" + "".join(f"{m:>20}" for m in machines)
    lines += [header, "-" * len(header)]
    for app in CPU_APP_NAMES:
        profile = APP_REGISTRY[app]
        cells = "".join(
            f"{profile.runs[m].runtime_s:>9.2f}/{profile.runs[m].energy_j:<10.1f}"
            for m in machines
        )
        lines.append(f"{app:<10}" + cells)
    lines.append("")
    for app, winners in tradeoff_summary().items():
        lines.append(
            f"{app:<10} fastest={winners['fastest']:<13} "
            f"efficient={winners['most_efficient']}"
        )
    return "\n".join(lines)


if __name__ == "__main__":  # pragma: no cover
    print(format_table())
