"""Table 2: GPU node specifications and per-configuration carbon rates.

The published carbon rates were computed with SCARIF; ``run`` reproduces
the table from the catalog and ``scarif_check`` regenerates the rates
from our SCARIF-style estimator, reporting the ratio to the published
value (the tests assert it stays within a small factor).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.carbon.embodied import DoubleDecliningBalance
from repro.carbon.scarif import ScarifEstimator
from repro.hardware.catalog import (
    GPU_CARBON_INTENSITY,
    GPU_CARBON_RATE,
    GPU_EXPERIMENT_YEAR,
    gpu_experiment_nodes,
)


@dataclass(frozen=True)
class GPURow:
    model: str
    year: int
    gflops: float
    tdp_watts: float
    count: int
    carbon_rate_g_per_h: float


def run() -> list[GPURow]:
    """Table 2's rows, in table order."""
    rows = []
    for config in gpu_experiment_nodes():
        rows.append(
            GPURow(
                model=config.gpu.model,
                year=config.gpu.year,
                gflops=config.gpu.peak_gflops,
                tdp_watts=config.gpu.tdp_watts,
                count=config.count,
                carbon_rate_g_per_h=GPU_CARBON_RATE[(config.gpu.model, config.count)],
            )
        )
    return rows


def scarif_check() -> dict[tuple[str, int], float]:
    """Estimated/published carbon-rate ratio per configuration."""
    estimator = ScarifEstimator()
    schedule = DoubleDecliningBalance()
    out = {}
    for config in gpu_experiment_nodes():
        total = estimator.estimate_gpu_node_g(config)
        age = config.age_years(GPU_EXPERIMENT_YEAR)
        estimated = schedule.rate_per_hour(total, age)
        published = GPU_CARBON_RATE[(config.gpu.model, config.count)]
        out[(config.gpu.model, config.count)] = estimated / published
    return out


def format_table() -> str:
    lines = [
        f"Table 2: GPU nodes (avg carbon intensity {GPU_CARBON_INTENSITY} gCO2e/kWh)",
        f"{'GPU':<6}{'Year':>6}{'GFlop/s':>9}{'TDP':>6}{'#':>3}{'Rate(g/h)':>11}",
    ]
    for row in run():
        lines.append(
            f"{row.model:<6}{row.year:>6}{row.gflops:>9.0f}{row.tdp_watts:>6.0f}"
            f"{row.count:>3}{row.carbon_rate_g_per_h:>11.1f}"
        )
    lines.append("")
    lines.append("SCARIF-style estimate / published rate:")
    for (model, count), ratio in scarif_check().items():
        lines.append(f"  {model} x{count}: {ratio:.2f}")
    return "\n".join(lines)


if __name__ == "__main__":  # pragma: no cover
    print(format_table())
