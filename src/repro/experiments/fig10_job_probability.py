"""Fig. 10: probability a job was run vs its mean energy, per version.

The paper's finding is a *null*: even under EBA pricing (V3), players
did not selectively avoid energy-hungry jobs — they ran the same jobs on
more efficient machines.  So the per-version correlation between a job's
mean energy and its run probability is statistically indistinguishable
from zero.
"""

from __future__ import annotations

from repro.experiments.fig9_user_study import study
from repro.study.analysis import energy_run_correlation, run_probability_vs_energy


def run(n_users: int = 90, seed: int = 11) -> dict[int, list[tuple[float, float]]]:
    """Per version: (job mean energy kWh, P(run | seen)) points."""
    return run_probability_vs_energy(study(n_users, seed))


def correlations(n_users: int = 90, seed: int = 11) -> dict[int, tuple[float, float]]:
    """Per version: Pearson (r, p)."""
    return energy_run_correlation(study(n_users, seed))


def format_report(n_users: int = 90, seed: int = 11) -> str:
    points = run(n_users, seed)
    corr = correlations(n_users, seed)
    lines = ["Fig. 10: P(run | seen) vs mean job energy"]
    for v in (1, 2, 3):
        r, p = corr[v]
        lines.append(
            f"  V{v}: {len(points[v])} jobs, Pearson r={r:+.3f} (p={p:.3f})"
        )
    lines.append("  (paper: no significant correlation in any version)")
    return "\n".join(lines)


if __name__ == "__main__":  # pragma: no cover
    print(format_report())
