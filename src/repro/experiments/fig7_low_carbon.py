"""Fig. 7: the low-carbon, high-variability scenario (§5.6).

* **7a** — work per policy with a fixed CBA allocation on the
  re-homed grids (AU-SA / CA-ON / NO-NO2 / DK-BHM);
* **7b** — each region's carbon intensity over one day;
* **7c** — which machine is the *cheapest CBA choice* for a reference
  job, as a share of jobs, by hour of day.  The paper's shape: Theta
  (DK-BHM) is cheapest early in the day, shifting toward IC (AU-SA) as
  Danish intensity rises and Australian solar comes online.
"""

from __future__ import annotations

import numpy as np

from repro.accounting.base import UsageBatch
from repro.accounting.methods import CarbonBasedAccounting
from repro.accounting.pricing import PricingKernel
from repro.experiments._simulation import (
    DEFAULT_SCALE,
    greedy_budget,
    policy_sweep,
    scenario,
    workload,
)
from repro.sim.engine import pricing_for_sim_machine

MULTI_POLICIES = ("Greedy", "Energy", "Mixed", "EFT", "Runtime")


def work_with_fixed_allocation(
    scale: int = DEFAULT_SCALE, seed: int = 0
) -> dict[str, float]:
    """Fig. 7a: work per policy under a shared CBA budget, low-carbon grids."""
    results = policy_sweep("low-carbon", "CBA", scale, seed)
    budget = greedy_budget("low-carbon", "CBA", scale, seed)
    return {
        name: results[name].work_with_budget(budget) for name in MULTI_POLICIES
    }


def day_intensity(seed: int = 0, day: int = 10) -> dict[str, np.ndarray]:
    """Fig. 7b: 24 hourly intensities per machine's region."""
    machines = dict(scenario("low-carbon", seed))
    return {
        f"{m.intensity.region} ({name})": m.intensity.day_profile(day)
        for name, m in machines.items()
    }


def cheapest_endpoint_by_hour(
    scale: int = DEFAULT_SCALE, seed: int = 0, day: int = 10
) -> dict[int, dict[str, float]]:
    """Fig. 7c: share of jobs for which each machine is the cheapest CBA
    submission target, per hour of ``day``.

    Vectorized: the sample's per-(job, machine) runtime/energy arrays
    come straight from a :class:`~repro.accounting.pricing.PricingKernel`
    quote table, then one ``charge_many`` call per (machine, hour) and
    an argmin across the machine axis — the same winner-takes-first tie
    behaviour as scanning each job's eligible machines in order.
    """
    machines = dict(scenario("low-carbon", seed))
    pricings = {n: pricing_for_sim_machine(m) for n, m in machines.items()}
    cba = CarbonBasedAccounting()
    wl = workload("low-carbon", scale, seed)
    sample = wl.jobs[:: max(1, len(wl.jobs) // 400)]  # ~400 jobs is plenty

    kernel = PricingKernel(sample, pricings, cba)
    names = kernel.machine_names
    n = len(sample)
    eligible = {name: ~np.isnan(kernel.runtime[name]) for name in names}

    out: dict[int, dict[str, float]] = {}
    for hour in range(24):
        t = (day * 24 + hour) * 3600.0
        costs = np.full((len(names), n), np.inf)
        for mi, name in enumerate(names):
            mask = eligible[name]
            batch = UsageBatch.unchecked(
                machine=name,
                duration_s=kernel.runtime[name][mask],
                energy_j=kernel.energy[name][mask],
                cores=kernel.cores[mask],
                start_time_s=np.full(int(mask.sum()), t),
            )
            costs[mi, mask] = cba.charge_many(batch, pricings[name])
        winners = np.argmin(costs, axis=0)
        wins = np.bincount(winners, minlength=len(names))
        total = int(wins.sum()) or 1
        out[hour] = {name: int(wins[mi]) / total for mi, name in enumerate(names)}
    return out


def format_report(scale: int = DEFAULT_SCALE, seed: int = 0) -> str:
    works = work_with_fixed_allocation(scale, seed)
    lines = ["Fig. 7a: work with fixed CBA allocation (low-carbon grids)"]
    for name, work in works.items():
        lines.append(f"  {name:<8} {work / 1e3:9.2f}k core-hours")
    lines.append("")
    lines.append("Fig. 7b: day-10 intensity (gCO2e/kWh), every 4 hours")
    for label, series in day_intensity(seed).items():
        cells = " ".join(f"{series[h]:6.0f}" for h in range(0, 24, 4))
        lines.append(f"  {label:<18} {cells}")
    lines.append("")
    lines.append("Fig. 7c: cheapest-endpoint share by hour (every 4 hours)")
    shares = cheapest_endpoint_by_hour(scale, seed)
    machines = list(next(iter(shares.values())))
    for name in machines:
        cells = " ".join(f"{shares[h][name]:6.2f}" for h in range(0, 24, 4))
        lines.append(f"  {name:<10} {cells}")
    return "\n".join(lines)


if __name__ == "__main__":  # pragma: no cover
    print(format_report())
