"""Table 6: energy and carbon consumed per policy over the workload.

Rows: Greedy and Mixed under both EBA and CBA charging; Energy, EFT, and
Runtime (whose placements do not depend on the accounting method).
Columns: energy (MWh), operational carbon, and attributed carbon
(operational + CBA-attributed embodied), in kgCO2e.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments._simulation import DEFAULT_SCALE, policy_sweep
from repro.units import JOULES_PER_KWH


@dataclass(frozen=True)
class ImpactRow:
    policy: str
    energy_mwh: float
    operational_kg: float
    attributed_kg: float


def run(scale: int = DEFAULT_SCALE, seed: int = 0) -> list[ImpactRow]:
    eba = policy_sweep("baseline", "EBA", scale, seed)
    cba = policy_sweep("baseline", "CBA", scale, seed)

    def row(label: str, result) -> ImpactRow:
        return ImpactRow(
            policy=label,
            energy_mwh=result.total_energy_j() / JOULES_PER_KWH / 1e3,
            operational_kg=result.total_operational_carbon_g() / 1e3,
            attributed_kg=result.total_attributed_carbon_g() / 1e3,
        )

    return [
        row("Greedy - EBA", eba["Greedy"]),
        row("Greedy - CBA", cba["Greedy"]),
        row("Mixed - EBA", eba["Mixed"]),
        row("Mixed - CBA", cba["Mixed"]),
        row("Energy", eba["Energy"]),
        row("EFT", eba["EFT"]),
        row("Runtime", eba["Runtime"]),
    ]


def format_table(scale: int = DEFAULT_SCALE, seed: int = 0) -> str:
    rows = run(scale, seed)
    lines = [
        "Table 6: energy and carbon per policy",
        f"{'Policy':<14}{'Energy(MWh)':>13}{'Operational(kg)':>17}{'Attributed(kg)':>16}",
    ]
    for r in rows:
        lines.append(
            f"{r.policy:<14}{r.energy_mwh:>13.3f}{r.operational_kg:>17.1f}"
            f"{r.attributed_kg:>16.1f}"
        )
    energy_row = next(r for r in rows if r.policy == "Energy")
    eft_row = next(r for r in rows if r.policy == "EFT")
    runtime_row = next(r for r in rows if r.policy == "Runtime")
    lines.append("")
    lines.append(
        f"EFT / Energy = {eft_row.energy_mwh / energy_row.energy_mwh:.2f}, "
        f"Runtime / Energy = {runtime_row.energy_mwh / energy_row.energy_mwh:.2f} "
        "(paper: 1.51, 1.56)"
    )
    return "\n".join(lines)


if __name__ == "__main__":  # pragma: no cover
    print(format_table())
