"""CSV export of every figure/table's underlying data.

The paper ships plots; this reproduction ships the numbers.  ``export_all``
writes one CSV per artifact into a directory so any plotting tool can
regenerate the figures.  Each writer is also callable on its own.
"""

from __future__ import annotations

import csv
from pathlib import Path
from typing import Callable

from repro.experiments import (
    fig1_survey,
    fig2_survey,
    fig4_apps,
    fig5_eba_simulation,
    fig6_cba_simulation,
    fig7_low_carbon,
    fig9_user_study,
    fig10_job_probability,
    table1_cpu_costs,
    table2_gpu_specs,
    table3_gpu_costs,
    table4_embodied,
    table5_machines,
    table6_policy_impact,
)


def _write(path: Path, header: list[str], rows: list[list]) -> Path:
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w", newline="") as fh:
        writer = csv.writer(fh)
        writer.writerow(header)
        writer.writerows(rows)
    return path


def export_fig1(path: Path) -> Path:
    counts = fig1_survey.run()
    rows = [[m, c["yes"], c["no"], c["na"]] for m, c in counts.items()]
    return _write(path, ["metric", "yes", "no", "na"], rows)


def export_fig2(path: Path) -> Path:
    counts = fig2_survey.run()
    rows = [[f, c[1], c[2], c[3]] for f, c in counts.items()]
    return _write(path, ["factor", "not_important", "middling", "very_important"], rows)


def export_fig4(path: Path) -> Path:
    rows = [[r.app, r.machine, r.runtime_s, r.energy_j] for r in fig4_apps.run()]
    return _write(path, ["app", "machine", "runtime_s", "energy_j"], rows)


def export_table1(path: Path) -> Path:
    table = table1_cpu_costs.run()
    eba = table.normalized("EBA", "Desktop")
    cba = table.normalized("CBA", "Desktop")
    peak = table.normalized("Peak")
    rows = []
    for machine in table.machines:
        runtime, energy = table.metrics[machine]
        rows.append(
            [machine, runtime, energy, eba[machine], cba[machine], peak[machine]]
        )
    return _write(
        path, ["machine", "runtime_s", "energy_j", "eba", "cba", "peak"], rows
    )


def export_table2(path: Path) -> Path:
    rows = [
        [r.model, r.year, r.gflops, r.tdp_watts, r.count, r.carbon_rate_g_per_h]
        for r in table2_gpu_specs.run()
    ]
    return _write(
        path, ["gpu", "year", "gflops", "tdp_w", "count", "carbon_rate_g_per_h"], rows
    )


def export_table3(path: Path) -> Path:
    table = table3_gpu_costs.run()
    eba = table.normalized("EBA")
    cba = table.normalized("CBA")
    perf = table.normalized("Perf")
    rows = []
    for machine in table.machines:
        runtime, energy_kj = table.metrics[machine]
        rows.append(
            [machine, runtime, energy_kj, eba[machine], cba[machine], perf[machine]]
        )
    return _write(
        path, ["config", "runtime_s", "energy_kj", "eba", "cba", "perf"], rows
    )


def export_table4(path: Path) -> Path:
    rows = [
        [r.machine, r.age_years, r.operational_mg, r.linear_mg, r.accelerated_mg]
        for r in table4_embodied.run()
    ]
    return _write(
        path,
        ["machine", "age_years", "operational_mg", "linear_mg", "accelerated_mg"],
        rows,
    )


def export_table5(path: Path) -> Path:
    rows = [
        [r.machine, r.year_deployed, r.cpu_model, r.cores, r.cpu_tdp_w,
         r.idle_power_w, r.carbon_rate_g_per_h, r.avg_intensity_g_per_kwh]
        for r in table5_machines.run()
    ]
    return _write(
        path,
        ["machine", "year", "cpu", "cores", "tdp_w", "idle_w",
         "carbon_rate_g_per_h", "avg_intensity_g_per_kwh"],
        rows,
    )


def export_fig5(path: Path, scale: int, seed: int = 0) -> Path:
    works = fig5_eba_simulation.work_with_fixed_allocation(scale, seed)
    dist = fig5_eba_simulation.machine_distribution(scale, seed)
    rows = []
    for policy, work in works.items():
        row = [policy, work]
        machines = dist.get(policy, {})
        row.extend(machines.get(m, "") for m in ("FASTER", "Desktop", "IC", "Theta"))
        rows.append(row)
    return _write(
        path,
        [
            "policy",
            "work_core_hours",
            "jobs_FASTER",
            "jobs_Desktop",
            "jobs_IC",
            "jobs_Theta",
        ],
        rows,
    )


def export_table6(path: Path, scale: int, seed: int = 0) -> Path:
    rows = [
        [r.policy, r.energy_mwh, r.operational_kg, r.attributed_kg]
        for r in table6_policy_impact.run(scale, seed)
    ]
    return _write(
        path, ["policy", "energy_mwh", "operational_kg", "attributed_kg"], rows
    )


def export_fig6(path: Path, scale: int, seed: int = 0) -> Path:
    works = fig6_cba_simulation.work_with_fixed_allocation(scale, seed)
    shifts = fig6_cba_simulation.eba_vs_cba_shift(scale, seed)
    rows = [[p, works[p], shifts[p]] for p in works]
    return _write(path, ["policy", "work_core_hours", "cba_over_eba"], rows)


def export_fig7(path: Path, scale: int, seed: int = 0) -> Path:
    shares = fig7_low_carbon.cheapest_endpoint_by_hour(scale, seed)
    machines = sorted(next(iter(shares.values())))
    rows = [[hour] + [shares[hour][m] for m in machines] for hour in sorted(shares)]
    return _write(path, ["hour"] + machines, rows)


def export_fig9(path: Path, n_users: int = 90, seed: int = 11) -> Path:
    data = fig9_user_study.run(n_users, seed)
    rows = []
    for version in (1, 2, 3):
        for energy, jobs in zip(data["energy"][version], data["jobs"][version]):
            rows.append([version, energy, int(jobs)])
    return _write(path, ["version", "energy_kwh", "jobs_completed"], rows)


def export_fig10(path: Path, n_users: int = 90, seed: int = 11) -> Path:
    points = fig10_job_probability.run(n_users, seed)
    rows = []
    for version, pts in points.items():
        for energy, prob in pts:
            rows.append([version, energy, prob])
    return _write(path, ["version", "mean_energy_kwh", "run_probability"], rows)


#: Every exporter, keyed by artifact name.  Simulation exporters take a
#: scale; the rest only a path.
SIMPLE_EXPORTERS: dict[str, Callable[[Path], Path]] = {
    "fig1": export_fig1,
    "fig2": export_fig2,
    "fig4": export_fig4,
    "table1": export_table1,
    "table2": export_table2,
    "table3": export_table3,
    "table4": export_table4,
    "table5": export_table5,
}

SIM_EXPORTERS: dict[str, Callable[..., Path]] = {
    "fig5": export_fig5,
    "table6": export_table6,
    "fig6": export_fig6,
    "fig7": export_fig7,
}

STUDY_EXPORTERS: dict[str, Callable[..., Path]] = {
    "fig9": export_fig9,
    "fig10": export_fig10,
}


def export_all(directory: str | Path, scale: int = 1500, seed: int = 0) -> list[Path]:
    """Write every artifact's CSV into ``directory``; returns the paths."""
    directory = Path(directory)
    written = []
    for name, exporter in SIMPLE_EXPORTERS.items():
        written.append(exporter(directory / f"{name}.csv"))
    for name, exporter in SIM_EXPORTERS.items():
        written.append(exporter(directory / f"{name}.csv", scale, seed))
    for name, exporter in STUDY_EXPORTERS.items():
        written.append(exporter(directory / f"{name}.csv"))
    return written
