"""Table 1: normalized Cholesky costs on four CPU nodes.

Prices the Table 1 metrics (runtime, energy) under EBA, CBA, and the
Peak baseline, normalized to Desktop as in the paper.
"""

from __future__ import annotations

from repro.accounting.base import MachinePricing, UsageRecord, pricing_for_node
from repro.accounting.comparison import CostTable, normalized_cost_table
from repro.accounting.methods import (
    CarbonBasedAccounting,
    EnergyBasedAccounting,
    PeakAccounting,
)
from repro.apps.registry import APP_REGISTRY
from repro.hardware.catalog import (
    CPU_EXPERIMENT_NODES,
    CPU_EXPERIMENT_YEAR,
    TABLE1_CARBON_INTENSITY,
)

#: Paper values for the EXPERIMENTS.md comparison.
PAPER_TABLE1 = {
    "Desktop": {"EBA": 1.0, "CBA": 1.0, "Peak": 1.43},
    "Cascade Lake": {"EBA": 1.90, "CBA": 1.20, "Peak": 1.0},
    "Ice Lake": {"EBA": 1.10, "CBA": 1.10, "Peak": 1.06},
    "Zen3": {"EBA": 1.05, "CBA": 1.15, "Peak": 1.36},
}


def build_inputs() -> tuple[dict[str, UsageRecord], dict[str, MachinePricing]]:
    """Usage records (Cholesky profile) and pricing views per node."""
    profile = APP_REGISTRY["Cholesky"]
    records: dict[str, UsageRecord] = {}
    pricings: dict[str, MachinePricing] = {}
    for node in CPU_EXPERIMENT_NODES:
        run = profile.run_on(node.name)
        records[node.name] = UsageRecord(
            machine=node.name,
            duration_s=run.runtime_s,
            energy_j=run.energy_j,
            cores=run.requested_cores,
            provisioned_cores=run.provisioned_cores,
        )
        pricings[node.name] = pricing_for_node(
            node, CPU_EXPERIMENT_YEAR, TABLE1_CARBON_INTENSITY[node.name]
        )
    return records, pricings


def run() -> CostTable:
    """Compute the Table 1 cost table."""
    records, pricings = build_inputs()
    methods = [EnergyBasedAccounting(), CarbonBasedAccounting(), PeakAccounting()]
    return normalized_cost_table(records, pricings, methods)


def format_table() -> str:
    """Render Table 1 as text, normalized to Desktop (EBA/CBA) with the
    Peak column shown relative to its own minimum, as the paper does."""
    table = run()
    lines = [
        "Table 1: Cholesky on CPU nodes (normalized costs)",
        table.format(reference="Desktop"),
        "",
        "Peak normalized to cheapest (paper convention): "
        + ", ".join(
            f"{m}={v:.2f}" for m, v in table.normalized("Peak").items()
        ),
    ]
    return "\n".join(lines)


if __name__ == "__main__":  # pragma: no cover
    print(format_table())
