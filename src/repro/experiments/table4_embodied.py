"""Table 4: operational carbon vs linear vs accelerated embodied carbon.

Runs the same Cholesky profiles as Table 1 at the Table 4 run-time grid
intensities, decomposing each node's charge into operational carbon and
the embodied carbon attributed under the two depreciation schedules.
Units are mgCO2e, as in the paper.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.accounting.base import UsageRecord, pricing_for_node
from repro.accounting.methods import CarbonBasedAccounting
from repro.carbon.embodied import DoubleDecliningBalance, LinearDepreciation
from repro.apps.registry import APP_REGISTRY
from repro.hardware.catalog import (
    CPU_EXPERIMENT_NODES,
    CPU_EXPERIMENT_YEAR,
    TABLE4_CARBON_INTENSITY,
)

#: Paper values (mgCO2e) for the EXPERIMENTS.md comparison.
PAPER_TABLE4 = {
    "Desktop": {"age": 3, "operational": 2.1, "linear": 1.5, "accelerated": 0.6},
    "Cascade Lake": {"age": 4, "operational": 2.8, "linear": 1.0, "accelerated": 0.3},
    "Ice Lake": {"age": 2, "operational": 0.9, "linear": 1.4, "accelerated": 1.0},
    "Zen3": {"age": 1, "operational": 1.2, "linear": 1.3, "accelerated": 1.6},
}


@dataclass(frozen=True)
class EmbodiedRow:
    machine: str
    age_years: int
    operational_mg: float
    linear_mg: float
    accelerated_mg: float


def run() -> list[EmbodiedRow]:
    profile = APP_REGISTRY["Cholesky"]
    cba_linear = CarbonBasedAccounting(schedule=LinearDepreciation())
    cba_accel = CarbonBasedAccounting(schedule=DoubleDecliningBalance())
    rows = []
    for node in CPU_EXPERIMENT_NODES:
        run_ = profile.run_on(node.name)
        record = UsageRecord(
            machine=node.name,
            duration_s=run_.runtime_s,
            energy_j=run_.energy_j,
            cores=run_.requested_cores,
            provisioned_cores=run_.provisioned_cores,
        )
        pricing = pricing_for_node(
            node, CPU_EXPERIMENT_YEAR, TABLE4_CARBON_INTENSITY[node.name]
        )
        rows.append(
            EmbodiedRow(
                machine=node.name,
                age_years=pricing.age_years,
                operational_mg=cba_accel.operational_charge(record, pricing) * 1e3,
                linear_mg=cba_linear.embodied_charge(record, pricing) * 1e3,
                accelerated_mg=cba_accel.embodied_charge(record, pricing) * 1e3,
            )
        )
    return rows


def format_table() -> str:
    lines = [
        "Table 4: operational vs embodied carbon attribution (mgCO2e)",
        f"{'Machine':<14}{'Age':>5}{'Operational':>13}{'Linear':>9}{'Accel.':>9}",
    ]
    for row in run():
        lines.append(
            f"{row.machine:<14}{row.age_years:>5}{row.operational_mg:>13.1f}"
            f"{row.linear_mg:>9.1f}{row.accelerated_mg:>9.1f}"
        )
    return "\n".join(lines)


if __name__ == "__main__":  # pragma: no cover
    print(format_table())
